//! Exporters: JSONL event traces and CSV time-series.
//!
//! Both formats are rendered with a **stable field order and fixed
//! decimal precision** (`{:.6}`), because the CI determinism lane diffs
//! exported artifacts byte-for-byte across worker counts. All numbers in
//! events are finite by construction; non-finite values render as `0.0`
//! rather than producing invalid JSON.

use crate::event::{Event, EventPayload};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Fixed-precision float formatting shared by the exporters and the
/// SLO/Chrome renderers.
pub(crate) fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

/// Renders one event as a single JSONL line (no trailing newline).
///
/// Field order is fixed: `seq`, `t`, `kind`, then payload fields in
/// declaration order.
pub fn event_to_jsonl(event: &Event) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"seq\": {}, \"t\": {}, \"kind\": \"{}\"",
        event.seq,
        num(event.time_s),
        event.kind().as_str()
    );
    match event.payload {
        EventPayload::GpmRound {
            span,
            round,
            budget_w,
            actual_w,
            islands,
        } => {
            let _ = write!(
                s,
                ", \"span\": {span}, \"round\": {round}, \"budget_w\": {}, \"actual_w\": {}, \"islands\": {islands}",
                num(budget_w),
                num(actual_w)
            );
        }
        EventPayload::GpmAllocation {
            round,
            island,
            allocated_w,
            actual_w,
            budget_w,
        } => {
            let _ = write!(
                s,
                ", \"round\": {round}, \"island\": {island}, \"allocated_w\": {}, \"actual_w\": {}, \"budget_w\": {}",
                num(allocated_w),
                num(actual_w),
                num(budget_w)
            );
        }
        EventPayload::PicDecision {
            span,
            parent,
            round,
            step,
            island,
            sensed_w,
            utilization,
            target_w,
            error,
            p_term,
            i_term,
            d_term,
            output,
            dvfs_index,
            saturated,
        } => {
            let _ = write!(
                s,
                ", \"span\": {span}, \"parent\": {parent}, \"round\": {round}, \"step\": {step}, \"island\": {island}, \"sensed_w\": {}, \"utilization\": {}, \"target_w\": {}, \"error\": {}, \"p\": {}, \"i\": {}, \"d\": {}, \"output\": {}, \"dvfs\": {dvfs_index}, \"saturated\": {saturated}",
                num(sensed_w),
                num(utilization),
                num(target_w),
                num(error),
                num(p_term),
                num(i_term),
                num(d_term),
                num(output)
            );
        }
        EventPayload::Actuation {
            span,
            parent,
            island,
            from_dvfs,
            requested_dvfs,
            to_dvfs,
            granted,
        } => {
            let _ = write!(
                s,
                ", \"span\": {span}, \"parent\": {parent}, \"island\": {island}, \"from_dvfs\": {from_dvfs}, \"requested_dvfs\": {requested_dvfs}, \"to_dvfs\": {to_dvfs}, \"granted\": {granted}"
            );
        }
        EventPayload::TransducerRezero {
            island,
            residual_w,
            offset_w,
        } => {
            let _ = write!(
                s,
                ", \"island\": {island}, \"residual_w\": {}, \"offset_w\": {}",
                num(residual_w),
                num(offset_w)
            );
        }
        EventPayload::ThermalViolation {
            source,
            island,
            partner,
            value,
            limit,
        } => {
            let _ = write!(
                s,
                ", \"source\": \"{}\", \"island\": {island}",
                source.as_str()
            );
            if partner != u32::MAX {
                let _ = write!(s, ", \"partner\": {partner}");
            }
            let _ = write!(s, ", \"value\": {}, \"limit\": {}", num(value), num(limit));
        }
        EventPayload::PolicyHoldReversal {
            island,
            level,
            epi_now,
            epi_prev,
            hold_intervals,
        } => {
            let _ = write!(
                s,
                ", \"island\": {island}, \"level\": {}, \"epi_now\": {}, \"epi_prev\": {}, \"hold_intervals\": {hold_intervals}",
                num(level),
                num(epi_now),
                num(epi_prev)
            );
        }
        EventPayload::WorkerSpan {
            worker,
            label,
            start_s,
            end_s,
        } => {
            let _ = write!(
                s,
                ", \"worker\": {worker}, \"label\": \"{label}\", \"start_s\": {}, \"end_s\": {}",
                num(start_s),
                num(end_s)
            );
        }
        EventPayload::Injection {
            label,
            island,
            active,
            value,
        } => {
            let _ = write!(s, ", \"label\": \"{label}\"");
            if island != u32::MAX {
                let _ = write!(s, ", \"island\": {island}");
            }
            let _ = write!(s, ", \"active\": {active}, \"value\": {}", num(value));
        }
        EventPayload::Alarm {
            monitor,
            island,
            round,
            value,
            threshold,
        } => {
            let _ = write!(s, ", \"monitor\": \"{monitor}\"");
            if island != u32::MAX {
                let _ = write!(s, ", \"island\": {island}");
            }
            let _ = write!(
                s,
                ", \"round\": {round}, \"value\": {}, \"threshold\": {}",
                num(value),
                num(threshold)
            );
        }
    }
    s.push('}');
    s
}

/// Renders a slice of events as a JSONL document (one event per line,
/// trailing newline after the last).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&event_to_jsonl(e));
        s.push('\n');
    }
    s
}

/// Writes a JSONL event trace to `w`.
pub fn write_jsonl<W: Write>(w: &mut W, events: &[Event]) -> io::Result<()> {
    w.write_all(events_to_jsonl(events).as_bytes())
}

/// A CSV time-series writer: a header of column names, then rows of
/// fixed-precision values. Rows shorter than the header are padded with
/// empty cells so the column count is constant.
#[derive(Debug, Clone)]
pub struct CsvSeries {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl CsvSeries {
    /// A series with the given column names.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows longer than the header are truncated.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = f64>) {
        let mut row: Vec<f64> = row.into_iter().collect();
        row.truncate(self.columns.len());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the series as a CSV document.
    pub fn to_csv(&self) -> String {
        let mut s = self.columns.join(",");
        s.push('\n');
        for row in &self.rows {
            for (i, _) in self.columns.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                if let Some(v) = row.get(i) {
                    s.push_str(&num(*v));
                }
            }
            s.push('\n');
        }
        s
    }

    /// Writes the CSV document to `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ThermalSource;

    fn at(seq: u64, time_s: f64, payload: EventPayload) -> Event {
        Event {
            seq,
            time_s,
            payload,
        }
    }

    #[test]
    fn pic_decision_line_has_stable_field_order() {
        let span = crate::SpanId::pic_decision(2, 1, 3);
        let line = event_to_jsonl(&at(
            3,
            0.0015,
            EventPayload::PicDecision {
                span: span.raw(),
                parent: span.parent().unwrap().raw(),
                round: 2,
                step: 3,
                island: 1,
                sensed_w: 18.5,
                utilization: 0.75,
                target_w: 16.0,
                error: -0.125,
                p_term: -0.05,
                i_term: -0.0625,
                d_term: -0.0125,
                output: -0.125,
                dvfs_index: 7,
                saturated: true,
            },
        ));
        assert_eq!(
            line,
            format!(
                "{{\"seq\": 3, \"t\": 0.001500, \"kind\": \"PicDecision\", \
                 \"span\": {}, \"parent\": {}, \"round\": 2, \"step\": 3, \"island\": 1, \
                 \"sensed_w\": 18.500000, \"utilization\": 0.750000, \"target_w\": 16.000000, \
                 \"error\": -0.125000, \"p\": -0.050000, \"i\": -0.062500, \"d\": -0.012500, \
                 \"output\": -0.125000, \"dvfs\": 7, \"saturated\": true}}",
                span.raw(),
                span.parent().unwrap().raw()
            )
        );
    }

    #[test]
    fn actuation_and_round_lines_carry_span_links() {
        let round = crate::SpanId::gpm_round(14);
        let line = event_to_jsonl(&at(
            10,
            0.07,
            EventPayload::GpmRound {
                span: round.raw(),
                round: 14,
                budget_w: 64.0,
                actual_w: 61.5,
                islands: 4,
            },
        ));
        assert_eq!(
            line,
            format!(
                "{{\"seq\": 10, \"t\": 0.070000, \"kind\": \"GpmRound\", \"span\": {}, \
                 \"round\": 14, \"budget_w\": 64.000000, \"actual_w\": 61.500000, \
                 \"islands\": 4}}",
                round.raw()
            )
        );
        let act = crate::SpanId::actuation(14, 2, 7);
        let line = event_to_jsonl(&at(
            11,
            0.0735,
            EventPayload::Actuation {
                span: act.raw(),
                parent: act.parent().unwrap().raw(),
                island: 2,
                from_dvfs: 5,
                requested_dvfs: 7,
                to_dvfs: 6,
                granted: false,
            },
        ));
        assert_eq!(
            line,
            format!(
                "{{\"seq\": 11, \"t\": 0.073500, \"kind\": \"Actuation\", \"span\": {}, \
                 \"parent\": {}, \"island\": 2, \"from_dvfs\": 5, \"requested_dvfs\": 7, \
                 \"to_dvfs\": 6, \"granted\": false}}",
                act.raw(),
                act.parent().unwrap().raw()
            )
        );
    }

    #[test]
    fn chip_wide_alarm_omits_island_targeted_alarm_keeps_it() {
        let chip_wide = event_to_jsonl(&at(
            5,
            0.05,
            EventPayload::Alarm {
                monitor: "budget-overshoot",
                island: u32::MAX,
                round: 9,
                value: 0.081,
                threshold: 0.05,
            },
        ));
        assert_eq!(
            chip_wide,
            "{\"seq\": 5, \"t\": 0.050000, \"kind\": \"Alarm\", \
             \"monitor\": \"budget-overshoot\", \"round\": 9, \"value\": 0.081000, \
             \"threshold\": 0.050000}"
        );
        let targeted = event_to_jsonl(&at(
            6,
            0.05,
            EventPayload::Alarm {
                monitor: "stale-sensor",
                island: 3,
                round: 9,
                value: 8.0,
                threshold: 6.0,
            },
        ));
        assert!(targeted.contains("\"island\": 3"), "{targeted}");
    }

    #[test]
    fn pair_violation_includes_partner_single_omits_it() {
        let pair = event_to_jsonl(&at(
            0,
            0.01,
            EventPayload::ThermalViolation {
                source: ThermalSource::AdjacentPairCap,
                island: 2,
                partner: 3,
                value: 18.0,
                limit: 17.6,
            },
        ));
        assert!(pair.contains("\"partner\": 3"), "{pair}");
        let single = event_to_jsonl(&at(
            1,
            0.01,
            EventPayload::ThermalViolation {
                source: ThermalSource::SingleIslandCap,
                island: 2,
                partner: u32::MAX,
                value: 11.0,
                limit: 10.4,
            },
        ));
        assert!(!single.contains("partner"), "{single}");
        assert!(single.contains("\"source\": \"single_island_cap\""));
    }

    #[test]
    fn jsonl_document_is_one_line_per_event() {
        let events = vec![
            at(
                0,
                0.0,
                EventPayload::GpmAllocation {
                    round: 0,
                    island: 0,
                    allocated_w: 10.0,
                    actual_w: 0.0,
                    budget_w: 80.0,
                },
            ),
            at(
                1,
                0.0005,
                EventPayload::TransducerRezero {
                    island: 0,
                    residual_w: 0.2,
                    offset_w: 0.08,
                },
            ),
        ];
        let doc = events_to_jsonl(&events);
        assert_eq!(doc.lines().count(), 2);
        assert!(doc.ends_with('\n'));
        for line in doc.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn non_finite_numbers_render_as_zero() {
        let line = event_to_jsonl(&at(
            0,
            f64::NAN,
            EventPayload::WorkerSpan {
                worker: 0,
                label: "measure",
                start_s: f64::INFINITY,
                end_s: 1.0,
            },
        ));
        assert!(line.contains("\"t\": 0.0,"), "{line}");
        assert!(line.contains("\"start_s\": 0.0,"), "{line}");
    }

    #[test]
    fn csv_renders_header_and_fixed_precision_rows() {
        let mut series = CsvSeries::new(["time_s", "chip_power_w", "budget_w"]);
        series.push_row([0.0005, 61.25, 64.0]);
        series.push_row([0.001, 62.5, 64.0]);
        assert_eq!(
            series.to_csv(),
            "time_s,chip_power_w,budget_w\n\
             0.000500,61.250000,64.000000\n\
             0.001000,62.500000,64.000000\n"
        );
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn csv_pads_short_rows_and_truncates_long_ones() {
        let mut series = CsvSeries::new(["a", "b", "c"]);
        series.push_row([1.0]);
        series.push_row([1.0, 2.0, 3.0, 4.0]);
        let csv = series.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "1.000000,,");
        assert_eq!(lines[2], "1.000000,2.000000,3.000000");
    }
}
