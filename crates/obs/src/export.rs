//! Exporters: JSONL event traces and CSV time-series.
//!
//! Both formats are rendered with a **stable field order and fixed
//! decimal precision** (`{:.6}`), because the CI determinism lane diffs
//! exported artifacts byte-for-byte across worker counts. All numbers in
//! events are finite by construction; non-finite values render as `0.0`
//! rather than producing invalid JSON.

use crate::event::{Event, EventPayload};
use std::fmt::Write as _;
use std::io::{self, Write};

/// Fixed-precision float formatting shared by both exporters.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

/// Renders one event as a single JSONL line (no trailing newline).
///
/// Field order is fixed: `seq`, `t`, `kind`, then payload fields in
/// declaration order.
pub fn event_to_jsonl(event: &Event) -> String {
    let mut s = String::with_capacity(160);
    let _ = write!(
        s,
        "{{\"seq\": {}, \"t\": {}, \"kind\": \"{}\"",
        event.seq,
        num(event.time_s),
        event.kind().as_str()
    );
    match event.payload {
        EventPayload::GpmAllocation {
            round,
            island,
            allocated_w,
            actual_w,
            budget_w,
        } => {
            let _ = write!(
                s,
                ", \"round\": {round}, \"island\": {island}, \"allocated_w\": {}, \"actual_w\": {}, \"budget_w\": {}",
                num(allocated_w),
                num(actual_w),
                num(budget_w)
            );
        }
        EventPayload::PicStep {
            island,
            error,
            p_term,
            i_term,
            d_term,
            output,
            dvfs_index,
            saturated,
        } => {
            let _ = write!(
                s,
                ", \"island\": {island}, \"error\": {}, \"p\": {}, \"i\": {}, \"d\": {}, \"output\": {}, \"dvfs\": {dvfs_index}, \"saturated\": {saturated}",
                num(error),
                num(p_term),
                num(i_term),
                num(d_term),
                num(output)
            );
        }
        EventPayload::TransducerRezero {
            island,
            residual_w,
            offset_w,
        } => {
            let _ = write!(
                s,
                ", \"island\": {island}, \"residual_w\": {}, \"offset_w\": {}",
                num(residual_w),
                num(offset_w)
            );
        }
        EventPayload::ThermalViolation {
            source,
            island,
            partner,
            value,
            limit,
        } => {
            let _ = write!(
                s,
                ", \"source\": \"{}\", \"island\": {island}",
                source.as_str()
            );
            if partner != u32::MAX {
                let _ = write!(s, ", \"partner\": {partner}");
            }
            let _ = write!(s, ", \"value\": {}, \"limit\": {}", num(value), num(limit));
        }
        EventPayload::PolicyHoldReversal {
            island,
            level,
            epi_now,
            epi_prev,
            hold_intervals,
        } => {
            let _ = write!(
                s,
                ", \"island\": {island}, \"level\": {}, \"epi_now\": {}, \"epi_prev\": {}, \"hold_intervals\": {hold_intervals}",
                num(level),
                num(epi_now),
                num(epi_prev)
            );
        }
        EventPayload::WorkerSpan {
            worker,
            label,
            start_s,
            end_s,
        } => {
            let _ = write!(
                s,
                ", \"worker\": {worker}, \"label\": \"{label}\", \"start_s\": {}, \"end_s\": {}",
                num(start_s),
                num(end_s)
            );
        }
        EventPayload::Injection {
            label,
            island,
            active,
            value,
        } => {
            let _ = write!(s, ", \"label\": \"{label}\"");
            if island != u32::MAX {
                let _ = write!(s, ", \"island\": {island}");
            }
            let _ = write!(s, ", \"active\": {active}, \"value\": {}", num(value));
        }
    }
    s.push('}');
    s
}

/// Renders a slice of events as a JSONL document (one event per line,
/// trailing newline after the last).
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&event_to_jsonl(e));
        s.push('\n');
    }
    s
}

/// Writes a JSONL event trace to `w`.
pub fn write_jsonl<W: Write>(w: &mut W, events: &[Event]) -> io::Result<()> {
    w.write_all(events_to_jsonl(events).as_bytes())
}

/// A CSV time-series writer: a header of column names, then rows of
/// fixed-precision values. Rows shorter than the header are padded with
/// empty cells so the column count is constant.
#[derive(Debug, Clone)]
pub struct CsvSeries {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl CsvSeries {
    /// A series with the given column names.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows longer than the header are truncated.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = f64>) {
        let mut row: Vec<f64> = row.into_iter().collect();
        row.truncate(self.columns.len());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the series as a CSV document.
    pub fn to_csv(&self) -> String {
        let mut s = self.columns.join(",");
        s.push('\n');
        for row in &self.rows {
            for (i, _) in self.columns.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                if let Some(v) = row.get(i) {
                    s.push_str(&num(*v));
                }
            }
            s.push('\n');
        }
        s
    }

    /// Writes the CSV document to `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_csv().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ThermalSource;

    fn at(seq: u64, time_s: f64, payload: EventPayload) -> Event {
        Event {
            seq,
            time_s,
            payload,
        }
    }

    #[test]
    fn pic_step_line_has_stable_field_order() {
        let line = event_to_jsonl(&at(
            3,
            0.0015,
            EventPayload::PicStep {
                island: 1,
                error: -0.125,
                p_term: -0.05,
                i_term: -0.0625,
                d_term: -0.0125,
                output: -0.125,
                dvfs_index: 7,
                saturated: true,
            },
        ));
        assert_eq!(
            line,
            "{\"seq\": 3, \"t\": 0.001500, \"kind\": \"PicStep\", \"island\": 1, \
             \"error\": -0.125000, \"p\": -0.050000, \"i\": -0.062500, \"d\": -0.012500, \
             \"output\": -0.125000, \"dvfs\": 7, \"saturated\": true}"
        );
    }

    #[test]
    fn pair_violation_includes_partner_single_omits_it() {
        let pair = event_to_jsonl(&at(
            0,
            0.01,
            EventPayload::ThermalViolation {
                source: ThermalSource::AdjacentPairCap,
                island: 2,
                partner: 3,
                value: 18.0,
                limit: 17.6,
            },
        ));
        assert!(pair.contains("\"partner\": 3"), "{pair}");
        let single = event_to_jsonl(&at(
            1,
            0.01,
            EventPayload::ThermalViolation {
                source: ThermalSource::SingleIslandCap,
                island: 2,
                partner: u32::MAX,
                value: 11.0,
                limit: 10.4,
            },
        ));
        assert!(!single.contains("partner"), "{single}");
        assert!(single.contains("\"source\": \"single_island_cap\""));
    }

    #[test]
    fn jsonl_document_is_one_line_per_event() {
        let events = vec![
            at(
                0,
                0.0,
                EventPayload::GpmAllocation {
                    round: 0,
                    island: 0,
                    allocated_w: 10.0,
                    actual_w: 0.0,
                    budget_w: 80.0,
                },
            ),
            at(
                1,
                0.0005,
                EventPayload::TransducerRezero {
                    island: 0,
                    residual_w: 0.2,
                    offset_w: 0.08,
                },
            ),
        ];
        let doc = events_to_jsonl(&events);
        assert_eq!(doc.lines().count(), 2);
        assert!(doc.ends_with('\n'));
        for line in doc.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn non_finite_numbers_render_as_zero() {
        let line = event_to_jsonl(&at(
            0,
            f64::NAN,
            EventPayload::WorkerSpan {
                worker: 0,
                label: "measure",
                start_s: f64::INFINITY,
                end_s: 1.0,
            },
        ));
        assert!(line.contains("\"t\": 0.0,"), "{line}");
        assert!(line.contains("\"start_s\": 0.0,"), "{line}");
    }

    #[test]
    fn csv_renders_header_and_fixed_precision_rows() {
        let mut series = CsvSeries::new(["time_s", "chip_power_w", "budget_w"]);
        series.push_row([0.0005, 61.25, 64.0]);
        series.push_row([0.001, 62.5, 64.0]);
        assert_eq!(
            series.to_csv(),
            "time_s,chip_power_w,budget_w\n\
             0.000500,61.250000,64.000000\n\
             0.001000,62.500000,64.000000\n"
        );
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn csv_pads_short_rows_and_truncates_long_ones() {
        let mut series = CsvSeries::new(["a", "b", "c"]);
        series.push_row([1.0]);
        series.push_row([1.0, 2.0, 3.0, 4.0]);
        let csv = series.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "1.000000,,");
        assert_eq!(lines[2], "1.000000,2.000000,3.000000");
    }
}
