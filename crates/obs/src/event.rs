//! Typed flight-recorder events.
//!
//! Every event carries a simulated-time timestamp (seconds) and a global
//! sequence number assigned at record time; the payload is one of a small
//! closed taxonomy covering the GPM/PIC control stack:
//!
//! * [`EventPayload::GpmRound`] — the root span of one GPM provisioning
//!   round (chip budget in force, sensed chip draw),
//! * [`EventPayload::GpmAllocation`] — one island's provisioning decision
//!   at a GPM invocation,
//! * [`EventPayload::PicDecision`] — one PIC invocation with its causal
//!   span, the inputs that produced it (sensed power, utilization,
//!   target), and the PID internals (error, P/I/D terms, saturation),
//! * [`EventPayload::Actuation`] — a DVFS knob application (requested vs
//!   granted operating point), child of the decision that asked for it,
//! * [`EventPayload::TransducerRezero`] — the GPM-granularity sensing
//!   bias trim applied to a PIC's fast transducer,
//! * [`EventPayload::ThermalViolation`] — a thermal constraint or die
//!   threshold crossing,
//! * [`EventPayload::PolicyHoldReversal`] — the variation-aware policy
//!   reversing its EPI search direction and entering a hold,
//! * [`EventPayload::WorkerSpan`] — a labelled span of work attributed to
//!   an execution context (replay phases, pool jobs),
//! * [`EventPayload::Injection`] — a fault-injection effect switching on
//!   or off (scenario harness edge markers),
//! * [`EventPayload::Alarm`] — an SLO watchdog monitor tripping over the
//!   event stream (see [`crate::slo`]).
//!
//! The three decision kinds (`GpmRound` → `PicDecision` → `Actuation`)
//! carry structural [`crate::SpanId`] values in their `span`/`parent`
//! fields, so a drained trajectory is a walkable cause tree — see
//! [`crate::span`].
//!
//! Payloads are `Copy` (labels are `&'static str`) so recording never
//! allocates on the hot path.

/// What raised a [`EventPayload::ThermalViolation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalSource {
    /// A single island exceeded its budget-fraction cap for too many
    /// consecutive GPM intervals (§IV-A single-island constraint).
    SingleIslandCap,
    /// An adjacent island pair jointly exceeded its cap for too many
    /// consecutive GPM intervals (§IV-A pair constraint).
    AdjacentPairCap,
    /// A die node crossed the thermal design threshold (hotspot tracker).
    DieThreshold,
}

impl ThermalSource {
    /// Stable identifier used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            ThermalSource::SingleIslandCap => "single_island_cap",
            ThermalSource::AdjacentPairCap => "adjacent_pair_cap",
            ThermalSource::DieThreshold => "die_threshold",
        }
    }
}

/// The event taxonomy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventPayload {
    /// The root span of one GPM provisioning round: the chip-wide
    /// context every per-island decision of the round descends from.
    GpmRound {
        /// Causal span id ([`crate::SpanId::gpm_round`], raw).
        span: u64,
        /// GPM invocation ordinal (matches `GpmAllocation::round`; the
        /// pre-feedback equal split is round 0).
        round: u64,
        /// Chip budget in force this round (injection scaling applied),
        /// watts.
        budget_w: f64,
        /// Mean chip power sensed over the interval that just ended,
        /// watts (0 for the first, feedback-free round).
        actual_w: f64,
        /// Number of islands provisioned this round.
        islands: u32,
    },
    /// One island's allocation at a GPM invocation.
    GpmAllocation {
        /// GPM invocation ordinal (1-based; the pre-feedback equal split
        /// is round 0).
        round: u64,
        /// Island index.
        island: u32,
        /// Power provisioned for the next interval, watts.
        allocated_w: f64,
        /// Mean power the island actually drew over the interval that just
        /// ended, watts (0 for the initial, feedback-free split).
        actual_w: f64,
        /// Chip budget in force, watts.
        budget_w: f64,
    },
    /// One PIC invocation: the causal span, the sensed inputs that
    /// produced the decision, and the controller internals.
    PicDecision {
        /// Causal span id ([`crate::SpanId::pic_decision`], raw).
        span: u64,
        /// Parent span id (the enclosing [`EventPayload::GpmRound`]).
        parent: u64,
        /// GPM round this invocation belongs to.
        round: u64,
        /// PIC interval ordinal within the round (`0..pics_per_gpm`).
        step: u32,
        /// Island index.
        island: u32,
        /// Power the transducer sensed (bias trim applied), watts.
        sensed_w: f64,
        /// Capacity utilization observed this interval (0..=1).
        utilization: f64,
        /// Power target the GPM provisioned for this island, watts.
        target_w: f64,
        /// Normalized tracking error fed to the PID.
        error: f64,
        /// Proportional term of the control output.
        p_term: f64,
        /// Integral term of the control output.
        i_term: f64,
        /// Derivative term of the control output.
        d_term: f64,
        /// Raw control output `u(t)` before actuation clamps.
        output: f64,
        /// DVFS operating-point index actually applied.
        dvfs_index: u32,
        /// True when the slew limit or the V/F range clamp refused part of
        /// the requested move (anti-windup back-calculation engaged).
        saturated: bool,
    },
    /// A DVFS knob application: what the decision requested versus what
    /// the platform granted (fault seams may veto or defer moves).
    Actuation {
        /// Causal span id ([`crate::SpanId::actuation`], raw).
        span: u64,
        /// Parent span id (the [`EventPayload::PicDecision`] that asked,
        /// or the [`EventPayload::GpmRound`] for direct-actuation schemes
        /// such as MaxBIPS).
        parent: u64,
        /// Island index.
        island: u32,
        /// Operating point before the move.
        from_dvfs: u32,
        /// Operating point the controller requested.
        requested_dvfs: u32,
        /// Operating point actually in force after the move.
        to_dvfs: u32,
        /// True when the platform honored the request verbatim
        /// (`to_dvfs == requested_dvfs`).
        granted: bool,
    },
    /// The coarse per-island meter re-zeroed a PIC's fast transducer.
    TransducerRezero {
        /// Island index.
        island: u32,
        /// Sensing residual observed this interval (true − sensed), watts.
        residual_w: f64,
        /// The EWMA bias correction now in force, watts.
        offset_w: f64,
    },
    /// A thermal constraint or die-temperature threshold was crossed.
    ThermalViolation {
        /// What raised the violation.
        source: ThermalSource,
        /// Primary island/core index.
        island: u32,
        /// Partner island for pair violations (`u32::MAX` when n/a).
        partner: u32,
        /// The observed value (watts for caps, °C for die thresholds).
        value: f64,
        /// The limit that was exceeded (same unit as `value`).
        limit: f64,
    },
    /// The variation-aware EPI search overshot its optimum: direction
    /// reversed and the allocation level holds.
    PolicyHoldReversal {
        /// Island index.
        island: u32,
        /// Allocation level (fraction of the equal share) being held.
        level: f64,
        /// EPI that triggered the reversal, joules/instruction.
        epi_now: f64,
        /// Previous interval's EPI, joules/instruction.
        epi_prev: f64,
        /// GPM intervals the level will hold.
        hold_intervals: u32,
    },
    /// A labelled span of work on an execution context.
    WorkerSpan {
        /// Context index (worker id, or 0 for the driving thread).
        worker: u32,
        /// Static label, e.g. `"calibrate"` or `"measure"`.
        label: &'static str,
        /// Span start, seconds (simulated time for replay phases).
        start_s: f64,
        /// Span end, seconds.
        end_s: f64,
    },
    /// A fault-injection effect crossed an activation edge (scenario
    /// harness). Emitted once when the effect switches on and once when
    /// it switches off, so golden trajectories anchor injections
    /// explicitly instead of inferring them from controller behavior.
    Injection {
        /// Effect label, e.g. `"sensor-dropout"` or `"budget-step"`.
        label: &'static str,
        /// Target island (`u32::MAX` for chip-wide effects).
        island: u32,
        /// `true` on activation, `false` on deactivation.
        active: bool,
        /// Effect magnitude (noise sigma, budget scale, actuator period…;
        /// 0 for parameter-free effects).
        value: f64,
    },
    /// An SLO watchdog monitor tripped (see [`crate::slo`]). Emitted
    /// deterministically from the event stream itself, so alarms ride
    /// golden trajectories like any other event.
    Alarm {
        /// Monitor label, e.g. `"tracking-error"` or `"actuator-churn"`.
        monitor: &'static str,
        /// Offending island (`u32::MAX` for chip-wide monitors).
        island: u32,
        /// GPM round at which the violation episode began.
        round: u64,
        /// The observed value that tripped the monitor.
        value: f64,
        /// The policy threshold it violated.
        threshold: f64,
    },
}

/// Discriminant-only view of a payload, for counting and golden tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// [`EventPayload::GpmRound`].
    GpmRound,
    /// [`EventPayload::GpmAllocation`].
    GpmAllocation,
    /// [`EventPayload::PicDecision`].
    PicDecision,
    /// [`EventPayload::Actuation`].
    Actuation,
    /// [`EventPayload::TransducerRezero`].
    TransducerRezero,
    /// [`EventPayload::ThermalViolation`].
    ThermalViolation,
    /// [`EventPayload::PolicyHoldReversal`].
    PolicyHoldReversal,
    /// [`EventPayload::WorkerSpan`].
    WorkerSpan,
    /// [`EventPayload::Injection`].
    Injection,
    /// [`EventPayload::Alarm`].
    Alarm,
}

impl EventKind {
    /// All kinds, in taxonomy order.
    pub const ALL: [EventKind; 10] = [
        EventKind::GpmRound,
        EventKind::GpmAllocation,
        EventKind::PicDecision,
        EventKind::Actuation,
        EventKind::TransducerRezero,
        EventKind::ThermalViolation,
        EventKind::PolicyHoldReversal,
        EventKind::WorkerSpan,
        EventKind::Injection,
        EventKind::Alarm,
    ];

    /// Stable identifier used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::GpmRound => "GpmRound",
            EventKind::GpmAllocation => "GpmAllocation",
            EventKind::PicDecision => "PicDecision",
            EventKind::Actuation => "Actuation",
            EventKind::TransducerRezero => "TransducerRezero",
            EventKind::ThermalViolation => "ThermalViolation",
            EventKind::PolicyHoldReversal => "PolicyHoldReversal",
            EventKind::WorkerSpan => "WorkerSpan",
            EventKind::Injection => "Injection",
            EventKind::Alarm => "Alarm",
        }
    }
}

impl EventPayload {
    /// The payload's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            EventPayload::GpmRound { .. } => EventKind::GpmRound,
            EventPayload::GpmAllocation { .. } => EventKind::GpmAllocation,
            EventPayload::PicDecision { .. } => EventKind::PicDecision,
            EventPayload::Actuation { .. } => EventKind::Actuation,
            EventPayload::TransducerRezero { .. } => EventKind::TransducerRezero,
            EventPayload::ThermalViolation { .. } => EventKind::ThermalViolation,
            EventPayload::PolicyHoldReversal { .. } => EventKind::PolicyHoldReversal,
            EventPayload::WorkerSpan { .. } => EventKind::WorkerSpan,
            EventPayload::Injection { .. } => EventKind::Injection,
            EventPayload::Alarm { .. } => EventKind::Alarm,
        }
    }
}

/// One recorded event: global sequence number, simulated-time timestamp,
/// typed payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Global record-order sequence number (total order across shards).
    pub seq: u64,
    /// Simulated time, seconds.
    pub time_s: f64,
    /// The typed payload.
    pub payload: EventPayload,
}

impl Event {
    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        self.payload.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_names() {
        for k in EventKind::ALL {
            assert!(!k.as_str().is_empty());
        }
        let p = EventPayload::PicDecision {
            span: crate::SpanId::pic_decision(1, 0, 3).raw(),
            parent: crate::SpanId::gpm_round(1).raw(),
            round: 1,
            step: 3,
            island: 0,
            sensed_w: 18.2,
            utilization: 0.8,
            target_w: 20.0,
            error: 0.1,
            p_term: 0.04,
            i_term: 0.0,
            d_term: 0.03,
            output: 0.07,
            dvfs_index: 5,
            saturated: false,
        };
        assert_eq!(p.kind(), EventKind::PicDecision);
        assert_eq!(p.kind().as_str(), "PicDecision");
    }

    #[test]
    fn thermal_sources_have_stable_names() {
        assert_eq!(ThermalSource::SingleIslandCap.as_str(), "single_island_cap");
        assert_eq!(ThermalSource::AdjacentPairCap.as_str(), "adjacent_pair_cap");
        assert_eq!(ThermalSource::DieThreshold.as_str(), "die_threshold");
    }
}
