//! Typed flight-recorder events.
//!
//! Every event carries a simulated-time timestamp (seconds) and a global
//! sequence number assigned at record time; the payload is one of a small
//! closed taxonomy covering the GPM/PIC control stack:
//!
//! * [`EventPayload::GpmAllocation`] — one island's provisioning decision
//!   at a GPM invocation,
//! * [`EventPayload::PicStep`] — one PIC invocation with the PID
//!   internals (error, P/I/D terms, actuator saturation),
//! * [`EventPayload::TransducerRezero`] — the GPM-granularity sensing
//!   bias trim applied to a PIC's fast transducer,
//! * [`EventPayload::ThermalViolation`] — a thermal constraint or die
//!   threshold crossing,
//! * [`EventPayload::PolicyHoldReversal`] — the variation-aware policy
//!   reversing its EPI search direction and entering a hold,
//! * [`EventPayload::WorkerSpan`] — a labelled span of work attributed to
//!   an execution context (replay phases, pool jobs),
//! * [`EventPayload::Injection`] — a fault-injection effect switching on
//!   or off (scenario harness edge markers).
//!
//! Payloads are `Copy` (labels are `&'static str`) so recording never
//! allocates on the hot path.

/// What raised a [`EventPayload::ThermalViolation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThermalSource {
    /// A single island exceeded its budget-fraction cap for too many
    /// consecutive GPM intervals (§IV-A single-island constraint).
    SingleIslandCap,
    /// An adjacent island pair jointly exceeded its cap for too many
    /// consecutive GPM intervals (§IV-A pair constraint).
    AdjacentPairCap,
    /// A die node crossed the thermal design threshold (hotspot tracker).
    DieThreshold,
}

impl ThermalSource {
    /// Stable identifier used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            ThermalSource::SingleIslandCap => "single_island_cap",
            ThermalSource::AdjacentPairCap => "adjacent_pair_cap",
            ThermalSource::DieThreshold => "die_threshold",
        }
    }
}

/// The event taxonomy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventPayload {
    /// One island's allocation at a GPM invocation.
    GpmAllocation {
        /// GPM invocation ordinal (1-based; the pre-feedback equal split
        /// is round 0).
        round: u64,
        /// Island index.
        island: u32,
        /// Power provisioned for the next interval, watts.
        allocated_w: f64,
        /// Mean power the island actually drew over the interval that just
        /// ended, watts (0 for the initial, feedback-free split).
        actual_w: f64,
        /// Chip budget in force, watts.
        budget_w: f64,
    },
    /// One PIC invocation with controller internals.
    PicStep {
        /// Island index.
        island: u32,
        /// Normalized tracking error fed to the PID.
        error: f64,
        /// Proportional term of the control output.
        p_term: f64,
        /// Integral term of the control output.
        i_term: f64,
        /// Derivative term of the control output.
        d_term: f64,
        /// Raw control output `u(t)` before actuation clamps.
        output: f64,
        /// DVFS operating-point index actually applied.
        dvfs_index: u32,
        /// True when the slew limit or the V/F range clamp refused part of
        /// the requested move (anti-windup back-calculation engaged).
        saturated: bool,
    },
    /// The coarse per-island meter re-zeroed a PIC's fast transducer.
    TransducerRezero {
        /// Island index.
        island: u32,
        /// Sensing residual observed this interval (true − sensed), watts.
        residual_w: f64,
        /// The EWMA bias correction now in force, watts.
        offset_w: f64,
    },
    /// A thermal constraint or die-temperature threshold was crossed.
    ThermalViolation {
        /// What raised the violation.
        source: ThermalSource,
        /// Primary island/core index.
        island: u32,
        /// Partner island for pair violations (`u32::MAX` when n/a).
        partner: u32,
        /// The observed value (watts for caps, °C for die thresholds).
        value: f64,
        /// The limit that was exceeded (same unit as `value`).
        limit: f64,
    },
    /// The variation-aware EPI search overshot its optimum: direction
    /// reversed and the allocation level holds.
    PolicyHoldReversal {
        /// Island index.
        island: u32,
        /// Allocation level (fraction of the equal share) being held.
        level: f64,
        /// EPI that triggered the reversal, joules/instruction.
        epi_now: f64,
        /// Previous interval's EPI, joules/instruction.
        epi_prev: f64,
        /// GPM intervals the level will hold.
        hold_intervals: u32,
    },
    /// A labelled span of work on an execution context.
    WorkerSpan {
        /// Context index (worker id, or 0 for the driving thread).
        worker: u32,
        /// Static label, e.g. `"calibrate"` or `"measure"`.
        label: &'static str,
        /// Span start, seconds (simulated time for replay phases).
        start_s: f64,
        /// Span end, seconds.
        end_s: f64,
    },
    /// A fault-injection effect crossed an activation edge (scenario
    /// harness). Emitted once when the effect switches on and once when
    /// it switches off, so golden trajectories anchor injections
    /// explicitly instead of inferring them from controller behavior.
    Injection {
        /// Effect label, e.g. `"sensor-dropout"` or `"budget-step"`.
        label: &'static str,
        /// Target island (`u32::MAX` for chip-wide effects).
        island: u32,
        /// `true` on activation, `false` on deactivation.
        active: bool,
        /// Effect magnitude (noise sigma, budget scale, actuator period…;
        /// 0 for parameter-free effects).
        value: f64,
    },
}

/// Discriminant-only view of a payload, for counting and golden tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// [`EventPayload::GpmAllocation`].
    GpmAllocation,
    /// [`EventPayload::PicStep`].
    PicStep,
    /// [`EventPayload::TransducerRezero`].
    TransducerRezero,
    /// [`EventPayload::ThermalViolation`].
    ThermalViolation,
    /// [`EventPayload::PolicyHoldReversal`].
    PolicyHoldReversal,
    /// [`EventPayload::WorkerSpan`].
    WorkerSpan,
    /// [`EventPayload::Injection`].
    Injection,
}

impl EventKind {
    /// All kinds, in taxonomy order.
    pub const ALL: [EventKind; 7] = [
        EventKind::GpmAllocation,
        EventKind::PicStep,
        EventKind::TransducerRezero,
        EventKind::ThermalViolation,
        EventKind::PolicyHoldReversal,
        EventKind::WorkerSpan,
        EventKind::Injection,
    ];

    /// Stable identifier used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::GpmAllocation => "GpmAllocation",
            EventKind::PicStep => "PicStep",
            EventKind::TransducerRezero => "TransducerRezero",
            EventKind::ThermalViolation => "ThermalViolation",
            EventKind::PolicyHoldReversal => "PolicyHoldReversal",
            EventKind::WorkerSpan => "WorkerSpan",
            EventKind::Injection => "Injection",
        }
    }
}

impl EventPayload {
    /// The payload's kind.
    pub fn kind(&self) -> EventKind {
        match self {
            EventPayload::GpmAllocation { .. } => EventKind::GpmAllocation,
            EventPayload::PicStep { .. } => EventKind::PicStep,
            EventPayload::TransducerRezero { .. } => EventKind::TransducerRezero,
            EventPayload::ThermalViolation { .. } => EventKind::ThermalViolation,
            EventPayload::PolicyHoldReversal { .. } => EventKind::PolicyHoldReversal,
            EventPayload::WorkerSpan { .. } => EventKind::WorkerSpan,
            EventPayload::Injection { .. } => EventKind::Injection,
        }
    }
}

/// One recorded event: global sequence number, simulated-time timestamp,
/// typed payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Global record-order sequence number (total order across shards).
    pub seq: u64,
    /// Simulated time, seconds.
    pub time_s: f64,
    /// The typed payload.
    pub payload: EventPayload,
}

impl Event {
    /// The event's kind.
    pub fn kind(&self) -> EventKind {
        self.payload.kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_through_names() {
        for k in EventKind::ALL {
            assert!(!k.as_str().is_empty());
        }
        let p = EventPayload::PicStep {
            island: 0,
            error: 0.1,
            p_term: 0.04,
            i_term: 0.0,
            d_term: 0.03,
            output: 0.07,
            dvfs_index: 5,
            saturated: false,
        };
        assert_eq!(p.kind(), EventKind::PicStep);
        assert_eq!(p.kind().as_str(), "PicStep");
    }

    #[test]
    fn thermal_sources_have_stable_names() {
        assert_eq!(ThermalSource::SingleIslandCap.as_str(), "single_island_cap");
        assert_eq!(ThermalSource::AdjacentPairCap.as_str(), "adjacent_pair_cap");
        assert_eq!(ThermalSource::DieThreshold.as_str(), "die_threshold");
    }
}
