//! Streaming SLO watchdog over flight-recorder events.
//!
//! Four control-health monitors run as a single pass over a recorded (or
//! live) event stream:
//!
//! * **tracking-error** — a PIC's normalized error stays above the policy
//!   bound for `tracking_patience` consecutive invocations (the island is
//!   not regulating to its share),
//! * **budget-overshoot** — the sensed chip draw over a GPM interval
//!   exceeds the budget that was in force by more than the allowed
//!   fraction,
//! * **actuator-churn** — a DVFS knob flaps: within a window of recent
//!   *large* moves (at least [`SloPolicy::churn_min_delta`] operating
//!   points — the ±1-step dither a quantized actuator exhibits around a
//!   fixed target is its designed limit cycle, not flapping), the
//!   direction alternates too many times,
//! * **stale-sensor** — a PIC's power transducer returns a bit-identical
//!   reading for too many consecutive invocations (dropped or stuck
//!   sensor), *or* an island that used to report decisions goes silent
//!   for a whole GPM round (dead controller — no readings at all).
//!
//! The watchdog is a pure fold over the stream — no clocks, no RNG — so
//! the alarms it emits are byte-deterministic and can ride golden
//! trajectories as first-class [`EventPayload::Alarm`] events (see
//! [`append_alarm_events`]). Each monitor alarms once at episode onset
//! rather than every step, so alarm counts measure distinct violations,
//! not violation duration.

use crate::event::{Event, EventPayload};
use crate::export::num;
use crate::span::SpanId;
use std::fmt::Write as _;

/// Ring capacity for the churn window (policy windows are clamped to it).
const CHURN_RING: usize = 16;

/// The monitor taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloMonitor {
    /// Sustained normalized tracking error on one island.
    TrackingError,
    /// Chip draw exceeded the budget in force.
    BudgetOvershoot,
    /// A DVFS knob is flapping.
    ActuatorChurn,
    /// A power transducer reading stopped changing.
    StaleSensor,
}

impl SloMonitor {
    /// All monitors, in taxonomy order.
    pub const ALL: [SloMonitor; 4] = [
        SloMonitor::TrackingError,
        SloMonitor::BudgetOvershoot,
        SloMonitor::ActuatorChurn,
        SloMonitor::StaleSensor,
    ];

    /// Stable identifier used in events, reports, and artifacts.
    pub fn as_str(self) -> &'static str {
        match self {
            SloMonitor::TrackingError => "tracking-error",
            SloMonitor::BudgetOvershoot => "budget-overshoot",
            SloMonitor::ActuatorChurn => "actuator-churn",
            SloMonitor::StaleSensor => "stale-sensor",
        }
    }
}

/// Thresholds for the four monitors.
///
/// The defaults are tuned so the fault-free baseline scenario raises no
/// alarms while every fault-injection scenario that plausibly violates a
/// monitor trips it (the scenario suite pins the exact counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Normalized tracking-error magnitude a PIC may sustain.
    pub tracking_error_frac: f64,
    /// Consecutive over-bound invocations before tracking-error alarms.
    pub tracking_patience: u32,
    /// Allowed chip overshoot as a fraction of the budget in force.
    pub overshoot_frac: f64,
    /// Number of recent large knob moves the churn monitor inspects.
    pub churn_window: u32,
    /// Direction alternations within the window that constitute flapping.
    pub churn_max_flips: u32,
    /// Minimum move magnitude (operating points) that counts as churn
    /// evidence; smaller moves are the quantized knob's normal dither.
    pub churn_min_delta: u32,
    /// Consecutive bit-identical sensor readings before stale alarms.
    pub stale_steps: u32,
}

impl Default for SloPolicy {
    fn default() -> Self {
        Self {
            tracking_error_frac: 0.25,
            tracking_patience: 3,
            overshoot_frac: 0.10,
            churn_window: 8,
            churn_max_flips: 5,
            churn_min_delta: 2,
            stale_steps: 6,
        }
    }
}

/// One watchdog alarm: which monitor tripped, where, and on what value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAlarm {
    /// The monitor that tripped.
    pub monitor: SloMonitor,
    /// Offending island (`u32::MAX` for chip-wide monitors).
    pub island: u32,
    /// GPM round at which the violation episode began.
    pub round: u64,
    /// Simulated time of the tripping event, seconds.
    pub time_s: f64,
    /// The observed value that tripped the monitor.
    pub value: f64,
    /// The policy threshold it violated.
    pub threshold: f64,
}

/// Per-island streaming state.
#[derive(Debug, Clone, Default)]
struct IslandState {
    /// Consecutive over-bound tracking errors.
    error_run: u32,
    /// Consecutive bit-identical sensor readings (bits of the last one).
    stale_bits: u64,
    stale_run: u32,
    /// Recent large knob-move directions, oldest first.
    dirs: Vec<i8>,
    /// The island has reported at least one decision, ever / this round.
    ever_seen: bool,
    seen_this_round: bool,
    /// Whether the island is currently inside a silent episode.
    silent_episode: bool,
}

/// The streaming watchdog: feed events in record order via
/// [`SloWatchdog::observe`], collect alarms with
/// [`SloWatchdog::into_alarms`] (or scan a whole slice with [`scan`]).
#[derive(Debug, Clone)]
pub struct SloWatchdog {
    policy: SloPolicy,
    islands: Vec<IslandState>,
    /// Budget in force over the interval whose draw the next `GpmRound`
    /// reports (0 until the first round announces one).
    prev_budget_w: f64,
    prev_round: u64,
    overshoot_episode: bool,
    alarms: Vec<SloAlarm>,
}

impl SloWatchdog {
    /// A watchdog with the given policy.
    pub fn new(policy: SloPolicy) -> Self {
        Self {
            policy,
            islands: Vec::new(),
            prev_budget_w: 0.0,
            prev_round: 0,
            overshoot_episode: false,
            alarms: Vec::new(),
        }
    }

    fn island_mut(&mut self, island: u32) -> &mut IslandState {
        let idx = island as usize;
        if self.islands.len() <= idx {
            self.islands.resize_with(idx + 1, IslandState::default);
        }
        &mut self.islands[idx]
    }

    /// Feeds one event (in record order).
    pub fn observe(&mut self, event: &Event) {
        match event.payload {
            EventPayload::GpmRound {
                round,
                budget_w,
                actual_w,
                ..
            } => {
                // Silent-island sweep: any island that has reported
                // decisions before but said nothing over the round that
                // just ended has a dead controller or a severed sensor
                // path. Alarm once at episode onset.
                let ended = self.prev_round;
                let time_s = event.time_s;
                for (i, st) in self.islands.iter_mut().enumerate() {
                    if st.ever_seen && !st.seen_this_round {
                        if !st.silent_episode {
                            st.silent_episode = true;
                            self.alarms.push(SloAlarm {
                                monitor: SloMonitor::StaleSensor,
                                island: i as u32,
                                round: ended,
                                time_s,
                                // value = consecutive silent rounds at
                                // onset; no silent round is tolerated.
                                value: 1.0,
                                threshold: 0.0,
                            });
                        }
                    } else {
                        st.silent_episode = false;
                    }
                    st.seen_this_round = false;
                }
                // `actual_w` is the draw over the interval that just
                // ended, so it is judged against the budget that was in
                // force then, not the one this round announces.
                let prev = self.prev_budget_w;
                if prev > 0.0 && actual_w > prev * (1.0 + self.policy.overshoot_frac) {
                    if !self.overshoot_episode {
                        self.overshoot_episode = true;
                        self.alarms.push(SloAlarm {
                            monitor: SloMonitor::BudgetOvershoot,
                            island: u32::MAX,
                            round: self.prev_round,
                            time_s: event.time_s,
                            value: actual_w / prev - 1.0,
                            threshold: self.policy.overshoot_frac,
                        });
                    }
                } else {
                    self.overshoot_episode = false;
                }
                self.prev_budget_w = budget_w;
                self.prev_round = round;
            }
            EventPayload::PicDecision {
                round,
                island,
                sensed_w,
                error,
                ..
            } => {
                let time_s = event.time_s;
                let bound = self.policy.tracking_error_frac;
                let patience = self.policy.tracking_patience;
                let stale_steps = self.policy.stale_steps;
                let st = self.island_mut(island);
                st.ever_seen = true;
                st.seen_this_round = true;
                st.silent_episode = false;
                // Tracking error: alarm once when the run length first
                // reaches the patience bound.
                if error.abs() > bound {
                    st.error_run += 1;
                    if st.error_run == patience {
                        self.alarms.push(SloAlarm {
                            monitor: SloMonitor::TrackingError,
                            island,
                            round,
                            time_s,
                            value: error.abs(),
                            threshold: bound,
                        });
                    }
                } else {
                    st.error_run = 0;
                }
                // Stale sensor: bit-identical readings, alarm at onset.
                let st = self.island_mut(island);
                let bits = sensed_w.to_bits();
                if st.stale_run > 0 && bits == st.stale_bits {
                    st.stale_run += 1;
                    if st.stale_run == stale_steps {
                        self.alarms.push(SloAlarm {
                            monitor: SloMonitor::StaleSensor,
                            island,
                            round,
                            time_s,
                            value: stale_steps as f64,
                            threshold: stale_steps as f64,
                        });
                    }
                } else {
                    st.stale_bits = bits;
                    st.stale_run = 1;
                }
            }
            EventPayload::Actuation {
                span,
                island,
                from_dvfs,
                to_dvfs,
                ..
            } => {
                let delta = to_dvfs.abs_diff(from_dvfs);
                if delta < self.policy.churn_min_delta {
                    // Zero or single-step moves are the quantized knob's
                    // designed limit cycle — not churn evidence.
                    return;
                }
                let window = (self.policy.churn_window as usize).min(CHURN_RING);
                let max_flips = self.policy.churn_max_flips;
                let round = SpanId::decode(span).map_or(0, |s| s.round());
                let time_s = event.time_s;
                let st = self.island_mut(island);
                st.dirs.push(if to_dvfs > from_dvfs { 1 } else { -1 });
                if st.dirs.len() > window {
                    st.dirs.remove(0);
                }
                let flips = st.dirs.windows(2).filter(|pair| pair[0] != pair[1]).count() as u32;
                if st.dirs.len() == window && flips >= max_flips {
                    // Clear the window so the next alarm needs a fresh
                    // run of flapping evidence (bounds the alarm rate).
                    st.dirs.clear();
                    self.alarms.push(SloAlarm {
                        monitor: SloMonitor::ActuatorChurn,
                        island,
                        round,
                        time_s,
                        value: flips as f64,
                        threshold: max_flips as f64,
                    });
                }
            }
            _ => {}
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Alarms raised so far, in stream order.
    pub fn alarms(&self) -> &[SloAlarm] {
        &self.alarms
    }

    /// Consumes the watchdog, yielding the alarms in stream order.
    pub fn into_alarms(self) -> Vec<SloAlarm> {
        self.alarms
    }
}

/// Runs the watchdog over a drained event slice.
pub fn scan(events: &[Event], policy: SloPolicy) -> Vec<SloAlarm> {
    let mut wd = SloWatchdog::new(policy);
    for e in events {
        wd.observe(e);
    }
    wd.into_alarms()
}

/// Appends one [`EventPayload::Alarm`] event per alarm to `events`,
/// continuing the sequence numbering. Each alarm keeps the simulated time
/// of the event that tripped it, so the appended block is a pure function
/// of the stream and stays byte-deterministic.
pub fn append_alarm_events(events: &mut Vec<Event>, alarms: &[SloAlarm]) {
    let next_seq = events.last().map_or(0, |e| e.seq + 1);
    for (offset, a) in alarms.iter().enumerate() {
        events.push(Event {
            seq: next_seq + offset as u64,
            time_s: a.time_s,
            payload: EventPayload::Alarm {
                monitor: a.monitor.as_str(),
                island: a.island,
                round: a.round,
                value: a.value,
                threshold: a.threshold,
            },
        });
    }
}

/// Per-monitor aggregate for the health report.
#[derive(Debug, Clone, Copy)]
pub struct MonitorHealth {
    /// Which monitor.
    pub monitor: SloMonitor,
    /// Alarms it raised.
    pub alarms: u32,
    /// Largest observed violation value (0 when clean).
    pub worst_value: f64,
    /// The policy threshold in force.
    pub threshold: f64,
}

/// A one-page health verdict over one trajectory.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// What was watched, e.g. `"perf@80"` or a scenario name.
    pub subject: String,
    /// Events scanned.
    pub events: u64,
    /// GPM rounds observed (count of `GpmRound` events).
    pub rounds: u64,
    /// Total alarms.
    pub alarms_total: u32,
    /// Per-monitor aggregates, in taxonomy order.
    pub monitors: [MonitorHealth; 4],
}

impl HealthReport {
    /// Aggregates a scanned trajectory into a report.
    pub fn new(subject: &str, events: &[Event], alarms: &[SloAlarm], policy: &SloPolicy) -> Self {
        let threshold_of = |m: SloMonitor| match m {
            SloMonitor::TrackingError => policy.tracking_error_frac,
            SloMonitor::BudgetOvershoot => policy.overshoot_frac,
            SloMonitor::ActuatorChurn => policy.churn_max_flips as f64,
            SloMonitor::StaleSensor => policy.stale_steps as f64,
        };
        let monitors = SloMonitor::ALL.map(|m| {
            let mut count = 0u32;
            let mut worst = 0.0f64;
            for a in alarms.iter().filter(|a| a.monitor == m) {
                count += 1;
                worst = worst.max(a.value.abs());
            }
            MonitorHealth {
                monitor: m,
                alarms: count,
                worst_value: worst,
                threshold: threshold_of(m),
            }
        });
        Self {
            subject: subject.to_string(),
            events: events.len() as u64,
            rounds: events
                .iter()
                .filter(|e| matches!(e.payload, EventPayload::GpmRound { .. }))
                .count() as u64,
            alarms_total: alarms.len() as u32,
            monitors,
        }
    }

    /// `"healthy"` when no monitor alarmed, `"degraded"` otherwise.
    pub fn verdict(&self) -> &'static str {
        if self.alarms_total == 0 {
            "healthy"
        } else {
            "degraded"
        }
    }

    /// Deterministic JSON rendering (`cpm-health-v1`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\n  \"schema\": \"cpm-health-v1\",\n");
        let _ = writeln!(s, "  \"subject\": \"{}\",", self.subject);
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"rounds\": {},", self.rounds);
        let _ = writeln!(s, "  \"alarms_total\": {},", self.alarms_total);
        let _ = writeln!(s, "  \"verdict\": \"{}\",", self.verdict());
        s.push_str("  \"monitors\": [\n");
        for (i, m) in self.monitors.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"monitor\": \"{}\", \"alarms\": {}, \"worst_value\": {}, \"threshold\": {}}}",
                m.monitor.as_str(),
                m.alarms,
                num(m.worst_value),
                num(m.threshold)
            );
            s.push_str(if i + 1 < self.monitors.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable one-page rendering.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = writeln!(s, "== health: {} ==", self.subject);
        let _ = writeln!(
            s,
            "verdict: {}  ({} alarms over {} events, {} rounds)",
            self.verdict(),
            self.alarms_total,
            self.events,
            self.rounds
        );
        for m in &self.monitors {
            let _ = writeln!(
                s,
                "  {:<17} alarms={:<3} worst={} threshold={}",
                m.monitor.as_str(),
                m.alarms,
                num(m.worst_value),
                num(m.threshold)
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn ev(seq: u64, time_s: f64, payload: EventPayload) -> Event {
        Event {
            seq,
            time_s,
            payload,
        }
    }

    fn decision(seq: u64, island: u32, sensed_w: f64, error: f64) -> Event {
        let span = SpanId::pic_decision(1, island, seq as u32);
        ev(
            seq,
            seq as f64 * 0.0005,
            EventPayload::PicDecision {
                span: span.raw(),
                parent: span.parent().unwrap().raw(),
                round: 1,
                step: seq as u32,
                island,
                sensed_w,
                utilization: 0.8,
                target_w: 20.0,
                error,
                p_term: 0.0,
                i_term: 0.0,
                d_term: 0.0,
                output: error,
                dvfs_index: 5,
                saturated: false,
            },
        )
    }

    fn round(seq: u64, round: u64, budget_w: f64, actual_w: f64) -> Event {
        ev(
            seq,
            round as f64 * 0.005,
            EventPayload::GpmRound {
                span: SpanId::gpm_round(round).raw(),
                round,
                budget_w,
                actual_w,
                islands: 4,
            },
        )
    }

    fn mv(seq: u64, island: u32, from: u32, to: u32) -> Event {
        let span = SpanId::actuation(1, island, seq as u32);
        ev(
            seq,
            seq as f64 * 0.0005,
            EventPayload::Actuation {
                span: span.raw(),
                parent: span.parent().unwrap().raw(),
                island,
                from_dvfs: from,
                requested_dvfs: to,
                to_dvfs: to,
                granted: true,
            },
        )
    }

    #[test]
    fn sustained_tracking_error_alarms_once_at_patience() {
        let policy = SloPolicy::default();
        let events: Vec<Event> = (0..8)
            .map(|i| decision(i, 0, 18.0 + i as f64, 0.5))
            .collect();
        let alarms = scan(&events, policy);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert_eq!(alarms[0].monitor, SloMonitor::TrackingError);
        assert_eq!(alarms[0].island, 0);
        assert!((alarms[0].value - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recovering_error_resets_the_patience_counter() {
        let policy = SloPolicy::default();
        // Two over-bound, one clean, two over-bound — never 3 in a row.
        let errs = [0.5, 0.5, 0.0, 0.5, 0.5, 0.0];
        let events: Vec<Event> = errs
            .iter()
            .enumerate()
            .map(|(i, &e)| decision(i as u64, 0, 18.0 + i as f64, e))
            .collect();
        assert!(scan(&events, policy).is_empty());
    }

    #[test]
    fn budget_overshoot_judges_draw_against_the_prior_budget() {
        let policy = SloPolicy::default();
        // Round 1 announces 100 W; round 2 reports a 115 W draw against
        // it (15 % overshoot) while announcing a lower budget.
        let events = vec![
            round(0, 1, 100.0, 0.0),
            round(1, 2, 80.0, 115.0),
            round(2, 3, 80.0, 115.0), // same episode: no second alarm
            round(3, 4, 80.0, 80.0),  // episode ends
            round(4, 5, 80.0, 90.0),  // new episode (12.5 %)
        ];
        let alarms = scan(&events, policy);
        assert_eq!(alarms.len(), 2, "{alarms:?}");
        assert_eq!(alarms[0].monitor, SloMonitor::BudgetOvershoot);
        assert_eq!(alarms[0].island, u32::MAX);
        assert_eq!(alarms[0].round, 1);
        assert!((alarms[0].value - 0.15).abs() < 1e-9);
        assert_eq!(alarms[1].round, 4);
    }

    #[test]
    fn flapping_knob_alarms_and_steady_knob_does_not() {
        let policy = SloPolicy::default();
        // Island 0 swings two operating points up/down every move;
        // island 1 ramps steadily in equally large moves.
        let mut events = Vec::new();
        for i in 0..12u64 {
            let (from, to) = if i % 2 == 0 { (5, 7) } else { (7, 5) };
            events.push(mv(i * 2, 0, from, to));
            events.push(mv(i * 2 + 1, 1, 2 * i as u32, 2 * i as u32 + 2));
        }
        let alarms = scan(&events, policy);
        assert!(!alarms.is_empty());
        assert!(alarms
            .iter()
            .all(|a| a.monitor == SloMonitor::ActuatorChurn));
        assert!(alarms.iter().all(|a| a.island == 0), "{alarms:?}");
    }

    #[test]
    fn single_step_dither_is_not_churn_evidence() {
        let policy = SloPolicy::default();
        // The quantized knob's normal ±1 limit cycle around a target.
        let events: Vec<Event> = (0..24)
            .map(|i| {
                let (from, to) = if i % 2 == 0 { (5, 6) } else { (6, 5) };
                mv(i, 0, from, to)
            })
            .collect();
        assert!(scan(&events, policy).is_empty());
    }

    #[test]
    fn zero_magnitude_moves_are_not_churn_evidence() {
        let policy = SloPolicy::default();
        let events: Vec<Event> = (0..24).map(|i| mv(i, 0, 5, 5)).collect();
        assert!(scan(&events, policy).is_empty());
    }

    #[test]
    fn stale_sensor_alarms_on_bit_identical_run() {
        let policy = SloPolicy::default();
        let mut events: Vec<Event> = (0..4)
            .map(|i| decision(i, 2, 18.0 + i as f64, 0.0))
            .collect();
        events.extend((4..12).map(|i| decision(i, 2, 18.125, 0.0)));
        let alarms = scan(&events, policy);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert_eq!(alarms[0].monitor, SloMonitor::StaleSensor);
        assert_eq!(alarms[0].island, 2);
    }

    #[test]
    fn silent_island_alarms_once_at_episode_onset() {
        let policy = SloPolicy::default();
        let mut events = Vec::new();
        let mut seq = 0u64;
        let mut push_decisions = |events: &mut Vec<Event>, islands: &[u32]| {
            for &i in islands {
                events.push(decision(seq, i, 18.0 + seq as f64, 0.0));
                seq += 1;
            }
        };
        events.push(round(1000, 1, 100.0, 0.0));
        push_decisions(&mut events, &[0, 1]);
        events.push(round(1001, 2, 100.0, 100.0));
        push_decisions(&mut events, &[0]); // island 1 goes silent
        events.push(round(1002, 3, 100.0, 100.0));
        push_decisions(&mut events, &[0]); // still silent: same episode
        events.push(round(1003, 4, 100.0, 100.0));
        push_decisions(&mut events, &[0, 1]); // island 1 recovers
        events.push(round(1004, 5, 100.0, 100.0));
        let alarms = scan(&events, policy);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert_eq!(alarms[0].monitor, SloMonitor::StaleSensor);
        assert_eq!(alarms[0].island, 1);
        assert_eq!(alarms[0].round, 2);
    }

    #[test]
    fn appended_alarm_events_continue_the_sequence() {
        let mut events: Vec<Event> = (0..8).map(|i| decision(i, 0, 18.0, 0.5)).collect();
        let alarms = scan(&events, SloPolicy::default());
        // stale-sensor also fires here (identical readings) — both ride.
        assert_eq!(alarms.len(), 2);
        let before = events.len();
        append_alarm_events(&mut events, &alarms);
        assert_eq!(events.len(), before + alarms.len());
        assert_eq!(events[before].seq, 8);
        assert_eq!(events[before + 1].seq, 9);
        assert_eq!(events[before].kind(), crate::EventKind::Alarm);
    }

    #[test]
    fn health_report_aggregates_and_renders_deterministically() {
        let events: Vec<Event> = vec![round(0, 1, 100.0, 0.0), round(1, 2, 100.0, 120.0)];
        let policy = SloPolicy::default();
        let alarms = scan(&events, policy);
        let report = HealthReport::new("perf@80", &events, &alarms, &policy);
        assert_eq!(report.verdict(), "degraded");
        assert_eq!(report.rounds, 2);
        assert_eq!(report.alarms_total, 1);
        let json = report.to_json();
        for needle in [
            "\"schema\": \"cpm-health-v1\"",
            "\"subject\": \"perf@80\"",
            "\"alarms_total\": 1",
            "\"verdict\": \"degraded\"",
            "\"monitor\": \"budget-overshoot\", \"alarms\": 1",
            "\"worst_value\": 0.200000",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert_eq!(json, report.to_json(), "rendering must be stable");
        let clean = HealthReport::new("x", &[], &[], &policy);
        assert_eq!(clean.verdict(), "healthy");
        assert!(clean.to_text().contains("verdict: healthy"));
    }
}
