//! Stable digests over flight-recorder traces.
//!
//! The scenario harness pins each named fault-injection scenario to a
//! *golden trajectory*: a short committed fingerprint of the full JSONL
//! event stream. The fingerprint is FNV-1a 64 — tiny, dependency-free,
//! and byte-stable across platforms because it hashes the *rendered*
//! JSONL text (fixed field order, `{:.6}` precision), never raw floats
//! or struct layouts. Collision resistance is irrelevant here: the
//! digest defends against accidental behavioral drift, not adversaries,
//! and any divergence is re-verified by an event-level diff before it is
//! reported.

use crate::event::Event;
use crate::export::events_to_jsonl;

/// FNV-1a 64 offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64 prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64 hasher (std-only, no `Hasher` trait so the
/// digest can never be confused with the randomized `DefaultHasher`).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64 {
    state: u64,
}

impl Fnv1a64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// The current 64-bit digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

/// FNV-1a 64 of a byte string.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Renders a digest value in the committed golden format:
/// `fnv1a64:<16 lowercase hex digits>`.
pub fn format_digest(value: u64) -> String {
    format!("fnv1a64:{value:016x}")
}

/// Digest of an arbitrary text fragment, in golden format.
pub fn digest_str(text: &str) -> String {
    format_digest(fnv1a64(text.as_bytes()))
}

/// Digest of an event slice: FNV-1a 64 over its JSONL rendering
/// (trailing newline included), in golden format. This is *the* scenario
/// trajectory fingerprint — two runs share a digest iff their exported
/// JSONL documents are byte-identical.
pub fn digest_events(events: &[Event]) -> String {
    digest_str(&events_to_jsonl(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventPayload;

    #[test]
    fn known_fnv_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn digest_format_is_prefixed_lowercase_hex() {
        let d = format_digest(0xDEAD_BEEF);
        assert_eq!(d, "fnv1a64:00000000deadbeef");
        assert_eq!(d.len(), "fnv1a64:".len() + 16);
    }

    #[test]
    fn event_digest_tracks_the_jsonl_rendering() {
        let events = vec![Event {
            seq: 0,
            time_s: 0.0005,
            payload: EventPayload::TransducerRezero {
                island: 0,
                residual_w: 0.25,
                offset_w: 0.1,
            },
        }];
        assert_eq!(
            digest_events(&events),
            digest_str(&crate::export::events_to_jsonl(&events))
        );
        // Any payload change moves the digest.
        let mut other = events.clone();
        other[0].payload = EventPayload::TransducerRezero {
            island: 0,
            residual_w: 0.25,
            offset_w: 0.11,
        };
        assert_ne!(digest_events(&events), digest_events(&other));
    }
}
