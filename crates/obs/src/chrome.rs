//! Chrome `trace_event` JSON export, so any recorded trajectory opens in
//! Perfetto (`ui.perfetto.dev`) or `chrome://tracing`.
//!
//! The rendering maps the simulated chip onto one trace process
//! (`pid 0`, named `cpm-chip`) with one thread lane per control context:
//! `tid 0` is the GPM, `tid 1 + i` is island `i`'s PIC, and
//! `tid 1000 + w` carries replay-phase `WorkerSpan`s for execution
//! context `w`. Timestamps are the events' **simulated** time converted
//! to microseconds, so the exported bytes are as deterministic as the
//! event stream itself and CI can diff them across worker counts.
//!
//! Event mapping:
//!
//! * `WorkerSpan` → complete span (`"ph": "X"`),
//! * `GpmAllocation` → per-island counter track (`"ph": "C"`) carrying
//!   allocated vs actual watts,
//! * everything else → instant events (`"ph": "i"`) on their island's
//!   lane with the payload as `args`.

use crate::event::{Event, EventPayload};
use crate::export::num;
use std::collections::BTreeSet;

/// Thread-id lane for an island's PIC.
fn island_tid(island: u32) -> u64 {
    1 + island as u64
}

/// Thread-id lane for a worker span.
fn worker_tid(worker: u32) -> u64 {
    1000 + worker as u64
}

/// Microsecond timestamp with fixed sub-µs precision.
fn us(time_s: f64) -> String {
    let v = time_s * 1e6;
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

/// The lane an event renders on (`tid 0` for chip-wide events).
fn tid_of(event: &Event) -> u64 {
    match event.payload {
        EventPayload::GpmRound { .. } | EventPayload::GpmAllocation { .. } => 0,
        EventPayload::PicDecision { island, .. }
        | EventPayload::Actuation { island, .. }
        | EventPayload::TransducerRezero { island, .. }
        | EventPayload::PolicyHoldReversal { island, .. } => island_tid(island),
        EventPayload::ThermalViolation { island, .. } => island_tid(island),
        EventPayload::WorkerSpan { worker, .. } => worker_tid(worker),
        EventPayload::Injection { island, .. } | EventPayload::Alarm { island, .. } => {
            if island == u32::MAX {
                0
            } else {
                island_tid(island)
            }
        }
    }
}

/// Renders a drained event slice as a Chrome `trace_event` JSON
/// document (object form, one trace-event per line).
pub fn events_to_chrome(events: &[Event]) -> String {
    let mut s = String::with_capacity(events.len() * 160 + 256);
    s.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |s: &mut String, line: &str| {
        if !std::mem::take(&mut first) {
            s.push_str(",\n");
        }
        s.push_str(line);
    };

    // Metadata first: name the process and every lane in use.
    push(
        &mut s,
        "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {\"name\": \"cpm-chip\"}}",
    );
    let tids: BTreeSet<u64> = events.iter().map(tid_of).collect();
    for tid in tids {
        let lane = if tid == 0 {
            "gpm".to_string()
        } else if tid >= 1000 {
            format!("worker{}", tid - 1000)
        } else {
            format!("island{}", tid - 1)
        };
        push(
            &mut s,
            &format!(
                "{{\"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \"name\": \"thread_name\", \
                 \"args\": {{\"name\": \"{lane}\"}}}}"
            ),
        );
    }

    for e in events {
        let tid = tid_of(e);
        let ts = us(e.time_s);
        let line = match e.payload {
            EventPayload::WorkerSpan {
                label,
                start_s,
                end_s,
                ..
            } => {
                let dur = ((end_s - start_s) * 1e6).max(0.0);
                format!(
                    "{{\"ph\": \"X\", \"pid\": 0, \"tid\": {tid}, \"ts\": {}, \
                     \"dur\": {:.3}, \"name\": \"{label}\", \"args\": {{\"seq\": {}}}}}",
                    us(start_s),
                    if dur.is_finite() { dur } else { 0.0 },
                    e.seq
                )
            }
            EventPayload::GpmAllocation {
                round,
                island,
                allocated_w,
                actual_w,
                ..
            } => format!(
                "{{\"ph\": \"C\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \
                 \"name\": \"island{island} power_w\", \"args\": {{\"allocated\": {}, \
                 \"actual\": {}, \"round\": {round}}}}}",
                num(allocated_w),
                num(actual_w)
            ),
            EventPayload::GpmRound {
                span,
                round,
                budget_w,
                actual_w,
                islands,
            } => format!(
                "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"p\", \
                 \"name\": \"GpmRound\", \"args\": {{\"span\": {span}, \"round\": {round}, \
                 \"budget_w\": {}, \"actual_w\": {}, \"islands\": {islands}}}}}",
                num(budget_w),
                num(actual_w)
            ),
            EventPayload::PicDecision {
                span,
                parent,
                round,
                step,
                island,
                sensed_w,
                target_w,
                error,
                output,
                dvfs_index,
                ..
            } => format!(
                "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"t\", \
                 \"name\": \"PicDecision\", \"args\": {{\"span\": {span}, \"parent\": {parent}, \
                 \"round\": {round}, \"step\": {step}, \"island\": {island}, \"sensed_w\": {}, \
                 \"target_w\": {}, \"error\": {}, \"output\": {}, \"dvfs\": {dvfs_index}}}}}",
                num(sensed_w),
                num(target_w),
                num(error),
                num(output)
            ),
            EventPayload::Actuation {
                span,
                parent,
                island,
                from_dvfs,
                requested_dvfs,
                to_dvfs,
                granted,
            } => format!(
                "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"t\", \
                 \"name\": \"Actuation\", \"args\": {{\"span\": {span}, \"parent\": {parent}, \
                 \"island\": {island}, \"from\": {from_dvfs}, \"requested\": {requested_dvfs}, \
                 \"to\": {to_dvfs}, \"granted\": {granted}}}}}"
            ),
            EventPayload::TransducerRezero {
                island,
                residual_w,
                offset_w,
            } => format!(
                "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"t\", \
                 \"name\": \"TransducerRezero\", \"args\": {{\"island\": {island}, \
                 \"residual_w\": {}, \"offset_w\": {}}}}}",
                num(residual_w),
                num(offset_w)
            ),
            EventPayload::ThermalViolation {
                source,
                island,
                partner,
                value,
                limit,
            } => {
                let partner_arg = if partner != u32::MAX {
                    format!(", \"partner\": {partner}")
                } else {
                    String::new()
                };
                format!(
                    "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"t\", \
                     \"name\": \"ThermalViolation\", \"args\": {{\"source\": \"{}\", \
                     \"island\": {island}{partner_arg}, \"value\": {}, \"limit\": {}}}}}",
                    source.as_str(),
                    num(value),
                    num(limit)
                )
            }
            EventPayload::PolicyHoldReversal {
                island,
                level,
                epi_now,
                epi_prev,
                hold_intervals,
            } => format!(
                "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"t\", \
                 \"name\": \"PolicyHoldReversal\", \"args\": {{\"island\": {island}, \
                 \"level\": {}, \"epi_now\": {}, \"epi_prev\": {}, \
                 \"hold_intervals\": {hold_intervals}}}}}",
                num(level),
                num(epi_now),
                num(epi_prev)
            ),
            EventPayload::Injection {
                label,
                island,
                active,
                value,
            } => {
                let island_arg = if island != u32::MAX {
                    format!(", \"island\": {island}")
                } else {
                    String::new()
                };
                format!(
                    "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"g\", \
                     \"name\": \"Injection {label}\", \"args\": {{\"active\": {active}, \
                     \"value\": {}{island_arg}}}}}",
                    num(value)
                )
            }
            EventPayload::Alarm {
                monitor,
                island,
                round,
                value,
                threshold,
            } => {
                let island_arg = if island != u32::MAX {
                    format!(", \"island\": {island}")
                } else {
                    String::new()
                };
                format!(
                    "{{\"ph\": \"i\", \"pid\": 0, \"tid\": {tid}, \"ts\": {ts}, \"s\": \"g\", \
                     \"name\": \"Alarm {monitor}\", \"args\": {{\"round\": {round}, \
                     \"value\": {}, \"threshold\": {}{island_arg}}}}}",
                    num(value),
                    num(threshold)
                )
            }
        };
        push(&mut s, &line);
    }
    s.push_str("\n]}\n");
    s
}

/// Structural validation of a rendered Chrome trace: the envelope keys,
/// one balanced JSON object per trace-event line, and a `ph` tag on each.
/// This is the same bar the pinned-fixture test and the artifact schema
/// gate hold generated traces to.
pub fn validate_chrome_trace(doc: &str) -> Result<(), String> {
    if !doc.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [") {
        return Err("missing trace envelope".to_string());
    }
    if !doc.ends_with("]}\n") {
        return Err("unterminated traceEvents array".to_string());
    }
    let mut saw_process_meta = false;
    for (i, line) in doc.lines().enumerate() {
        if i == 0 || !line.starts_with('{') {
            continue;
        }
        let body = line.trim_end_matches(',');
        if body.matches('{').count() != body.matches('}').count() {
            return Err(format!("unbalanced braces on line {}: {line}", i + 1));
        }
        if !body.contains("\"ph\": \"") {
            return Err(format!("trace event without ph on line {}: {line}", i + 1));
        }
        if body.contains("\"process_name\"") {
            saw_process_meta = true;
        }
    }
    if !saw_process_meta {
        return Err("missing process_name metadata".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn ev(seq: u64, time_s: f64, payload: EventPayload) -> Event {
        Event {
            seq,
            time_s,
            payload,
        }
    }

    fn sample_events() -> Vec<Event> {
        let pic = SpanId::pic_decision(1, 1, 0);
        let act = SpanId::actuation(1, 1, 0);
        vec![
            ev(
                0,
                0.005,
                EventPayload::GpmRound {
                    span: SpanId::gpm_round(1).raw(),
                    round: 1,
                    budget_w: 64.0,
                    actual_w: 60.0,
                    islands: 2,
                },
            ),
            ev(
                1,
                0.005,
                EventPayload::GpmAllocation {
                    round: 1,
                    island: 1,
                    allocated_w: 32.0,
                    actual_w: 30.0,
                    budget_w: 64.0,
                },
            ),
            ev(
                2,
                0.0055,
                EventPayload::PicDecision {
                    span: pic.raw(),
                    parent: pic.parent().unwrap().raw(),
                    round: 1,
                    step: 0,
                    island: 1,
                    sensed_w: 30.5,
                    utilization: 0.8,
                    target_w: 32.0,
                    error: 0.02,
                    p_term: 0.008,
                    i_term: 0.001,
                    d_term: 0.0,
                    output: 0.009,
                    dvfs_index: 6,
                    saturated: false,
                },
            ),
            ev(
                3,
                0.0055,
                EventPayload::Actuation {
                    span: act.raw(),
                    parent: act.parent().unwrap().raw(),
                    island: 1,
                    from_dvfs: 5,
                    requested_dvfs: 6,
                    to_dvfs: 6,
                    granted: true,
                },
            ),
            ev(
                4,
                0.01,
                EventPayload::WorkerSpan {
                    worker: 0,
                    label: "measure",
                    start_s: 0.0,
                    end_s: 0.01,
                },
            ),
            ev(
                5,
                0.01,
                EventPayload::Alarm {
                    monitor: "budget-overshoot",
                    island: u32::MAX,
                    round: 1,
                    value: 0.08,
                    threshold: 0.05,
                },
            ),
        ]
    }

    #[test]
    fn rendered_trace_validates_and_names_every_lane() {
        let doc = events_to_chrome(&sample_events());
        validate_chrome_trace(&doc).expect("generated trace must validate");
        for needle in [
            "\"name\": \"cpm-chip\"",
            "\"name\": \"gpm\"",
            "\"name\": \"island1\"",
            "\"name\": \"worker0\"",
            "\"ph\": \"X\"",
            "\"ph\": \"C\"",
            "\"name\": \"GpmRound\"",
            "\"name\": \"PicDecision\"",
            "\"name\": \"Actuation\"",
            "\"name\": \"Alarm budget-overshoot\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in:\n{doc}");
        }
        // Simulated µs: the 5 ms GpmRound lands at ts 5000.
        assert!(doc.contains("\"ts\": 5000.000"), "{doc}");
        // 10 ms worker span renders a 10 000 µs duration.
        assert!(doc.contains("\"dur\": 10000.000"), "{doc}");
    }

    #[test]
    fn rendering_is_deterministic_and_empty_stream_still_validates() {
        let events = sample_events();
        assert_eq!(events_to_chrome(&events), events_to_chrome(&events));
        let empty = events_to_chrome(&[]);
        validate_chrome_trace(&empty).expect("empty trace must validate");
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not a trace").is_err());
        let doc = events_to_chrome(&sample_events());
        let broken = doc.replace("\"ph\": \"C\"", "\"qh\": \"C\"");
        assert!(validate_chrome_trace(&broken).is_err());
        let truncated = &doc[..doc.len() - 4];
        assert!(validate_chrome_trace(truncated).is_err());
    }
}
