//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms with deterministic snapshots.
//!
//! Metrics complement the flight recorder: the recorder answers *what
//! happened, in order* (bounded history, typed events); the registry
//! answers *how much, in total* (unbounded aggregation, named scalars).
//! Handles are `Arc`-backed and lock-free on the update path (atomics),
//! so instruments can live on hot paths; names are kept in `BTreeMap`s so
//! every snapshot renders in a stable, sorted order — a requirement for
//! the byte-identical artifacts the CI determinism gates diff.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering from poison: every mutex in the registry guards
/// data that is only ever mutated in single complete operations (a float
/// add, a map entry insert), so a panicking holder cannot leave it
/// half-updated and later instruments must not be wedged.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets, strictly increasing;
    /// one implicit overflow bucket follows.
    bounds: Vec<f64>,
    /// `bounds.len() + 1` bucket counts.
    counts: Vec<AtomicU64>,
    /// Running sum of observed values (not atomically mergeable as f64;
    /// a mutex is fine — observation cost is dominated by the bucket
    /// search anyway).
    sum: Mutex<f64>,
}

/// A fixed-bucket histogram: values `v ≤ bounds[i]` land in bucket `i`
/// (first match), values above every bound land in the overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let idx = self.0.bounds.partition_point(|&b| b < value);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        *lock_recover(&self.0.sum) += value;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        *lock_recover(&self.0.sum)
    }

    /// Per-bucket counts (finite buckets in bound order, then overflow).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// The configured bucket bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }
}

/// An immutable rendering of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` counts (overflow last).
    pub counts: Vec<u64>,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean of observed values; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum / n as f64)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A shared, clonable registry of named metrics.
///
/// `counter`/`gauge`/`histogram` return the existing instrument when the
/// name is already registered (get-or-create), so independent components
/// can share a series by name.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        lock_recover(&self.inner.counters)
            .entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Gets or creates the named gauge (initially 0.0).
    pub fn gauge(&self, name: &str) -> Gauge {
        lock_recover(&self.inner.gauges)
            .entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
            .clone()
    }

    /// Gets or creates the named histogram with the given inclusive upper
    /// bucket bounds (must be strictly increasing and non-empty). Bounds
    /// are fixed at first registration; later calls ignore `bounds`.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        lock_recover(&self.inner.histograms)
            .entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    counts: (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect(),
                    sum: Mutex::new(0.0),
                }))
            })
            .clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock_recover(&self.inner.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: lock_recover(&self.inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: lock_recover(&self.inner.histograms)
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            bounds: v.bounds().to_vec(),
                            counts: v.bucket_counts(),
                            sum: v.sum(),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`], renderable as JSON or a
/// one-page text report. Maps are `BTreeMap`s, so rendering order is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Formats a finite f64 for JSON (6 decimal places; non-finite becomes 0).
fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "0.0".to_string()
    }
}

impl Snapshot {
    /// Renders the snapshot as a JSON document (hand-rolled — the
    /// workspace builds with zero external crates).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i + 1 < self.counters.len() { "," } else { "" };
            let _ = write!(s, "\n    \"{k}\": {v}{sep}");
        }
        s.push_str(if self.counters.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i + 1 < self.gauges.len() { "," } else { "" };
            let _ = write!(s, "\n    \"{k}\": {}{sep}", jnum(*v));
        }
        s.push_str(if self.gauges.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });
        s.push_str("  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            let bounds: Vec<String> = h.bounds.iter().map(|b| jnum(*b)).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            let _ = write!(
                s,
                "\n    \"{k}\": {{\"bounds\": [{}], \"counts\": [{}], \"sum\": {}}}{sep}",
                bounds.join(", "),
                counts.join(", "),
                jnum(h.sum)
            );
        }
        s.push_str(if self.histograms.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        s.push_str("}\n");
        s
    }

    /// Renders the snapshot as a one-page text report.
    pub fn to_text(&self) -> String {
        let mut s = String::from("== metrics ==\n");
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(s, "  {k:<44} {v}");
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(s, "  {k:<44} {}", jnum(*v));
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms:\n");
            for (k, h) in &self.histograms {
                let mean = h.mean().map_or("-".to_string(), jnum);
                let _ = writeln!(s, "  {k:<44} n={} mean={mean}", h.count());
                for (i, c) in h.counts.iter().enumerate() {
                    let label = if i < h.bounds.len() {
                        format!("≤{}", jnum(h.bounds[i]))
                    } else {
                        "overflow".to_string()
                    };
                    let _ = writeln!(s, "    {label:<14} {c}");
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let r = Registry::new();
        let a = r.counter("jobs");
        let b = r.counter("jobs");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("jobs").get(), 5);
    }

    #[test]
    fn gauges_take_the_last_write() {
        let r = Registry::new();
        let g = r.gauge("util");
        g.set(0.25);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let r = Registry::new();
        let h = r.histogram("err", &[0.1, 0.5, 1.0]);
        // Exactly on a bound → that bucket (inclusive upper bound).
        h.observe(0.1);
        // Strictly inside a bucket.
        h.observe(0.3);
        // On the last finite bound.
        h.observe(1.0);
        // Above every bound → overflow.
        h.observe(1.0000001);
        // Below everything → first bucket.
        h.observe(-5.0);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
    }

    #[test]
    fn histogram_sum_and_mean() {
        let r = Registry::new();
        let h = r.histogram("lat", &[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        let snap = r.snapshot();
        let hs = &snap.histograms["lat"];
        assert_eq!(hs.count(), 2);
        assert!((hs.mean().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        Registry::new().histogram("bad", &[1.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn empty_bounds_rejected() {
        Registry::new().histogram("bad", &[]);
    }

    #[test]
    fn snapshot_json_is_sorted_and_balanced() {
        let r = Registry::new();
        r.counter("z.last").add(2);
        r.counter("a.first").inc();
        r.gauge("mid").set(1.5);
        r.histogram("h", &[1.0]).observe(0.5);
        let json = r.snapshot().to_json();
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "counters must render in sorted order");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close} in:\n{json}"
            );
        }
    }

    #[test]
    fn empty_snapshot_renders_valid_json() {
        let json = Registry::new().snapshot().to_json();
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }

    #[test]
    fn text_report_mentions_every_metric() {
        let r = Registry::new();
        r.counter("pic.invocations").add(7);
        r.gauge("pool.utilization").set(0.5);
        r.histogram("pic.error", &[0.01, 0.1]).observe(0.02);
        let text = r.snapshot().to_text();
        for needle in ["pic.invocations", "pool.utilization", "pic.error", "n=1"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn snapshots_are_point_in_time() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        let snap = r.snapshot();
        c.inc();
        assert_eq!(snap.counters["x"], 1);
        assert_eq!(r.snapshot().counters["x"], 2);
    }
}
