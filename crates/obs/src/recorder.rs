//! The flight recorder: a fixed-capacity, sharded ring buffer of
//! [`Event`]s behind a zero-cost-when-disabled [`Recorder`] handle.
//!
//! ## Design
//!
//! * **Handle, not singleton.** A [`Recorder`] is a cheaply clonable
//!   handle — either *disabled* (the default: an empty `Option`, so every
//!   `record` is a single branch and no event is ever constructed beyond
//!   the stack temporary) or attached to a shared [`FlightRecorder`].
//!   Components own a handle and never know whether anyone is listening.
//! * **Sharded ring.** Events land in `shards` mutex-protected rings
//!   selected by sequence number, so concurrent recorders contend only
//!   1/`shards` of the time. Each shard holds `capacity / shards` events
//!   and drops its *oldest* entry on overflow — a flight recorder keeps
//!   the most recent history, like its aeronautical namesake.
//! * **Total order.** Every event takes a global sequence number from one
//!   atomic; [`Recorder::drain`] merges the shards back into sequence
//!   order, so wraparound and sharding never reorder the story.
//! * **Ambient simulated clock.** The simulation driver calls
//!   [`Recorder::set_time`] as simulated time advances; instrumented
//!   components just `record(payload)` and inherit the current timestamp.
//!   Wall-clock time never enters an event, which is what makes traces
//!   byte-identical across runs and worker counts.

use crate::event::{Event, EventPayload};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// The shared ring-buffer store behind enabled [`Recorder`] handles.
#[derive(Debug)]
pub struct FlightRecorder {
    shards: Vec<Mutex<VecDeque<Event>>>,
    shard_capacity: usize,
    seq: AtomicU64,
    /// Simulated "now" in seconds, stored as f64 bits.
    clock_bits: AtomicU64,
    /// Events evicted by ring wraparound.
    dropped: AtomicU64,
    /// Recording gate: `false` turns `record` into a no-op without
    /// detaching handles (used to blank out calibration phases).
    enabled: AtomicBool,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events across
    /// `shards` shards (both clamped to ≥ 1). Capacity rounds up to a
    /// multiple of the shard count.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let shard_capacity = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(VecDeque::with_capacity(shard_capacity)))
                .collect(),
            shard_capacity,
            seq: AtomicU64::new(0),
            clock_bits: AtomicU64::new(0f64.to_bits()),
            dropped: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Total event capacity (shards × shard capacity).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Events evicted by wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn record(&self, payload: EventPayload) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event {
            seq,
            time_s: f64::from_bits(self.clock_bits.load(Ordering::Relaxed)),
            payload,
        };
        let shard = (seq % self.shards.len() as u64) as usize;
        // Poison recovery: a shard only ever holds fully written events,
        // so a panicking recorder thread cannot leave it inconsistent —
        // later recorders must keep working rather than panic in turn.
        let mut ring = self.shards[shard]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.shard_capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    fn drain(&self) -> Vec<Event> {
        let mut all = Vec::new();
        for shard in &self.shards {
            let mut ring = shard.lock().unwrap_or_else(PoisonError::into_inner);
            all.extend(ring.drain(..));
        }
        all.sort_by_key(|e| e.seq);
        all
    }
}

/// A cheaply clonable recording handle: disabled (default) or attached to
/// a shared [`FlightRecorder`]. See the module docs for the contract.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<FlightRecorder>>,
}

impl Recorder {
    /// The disabled handle: every operation is a no-op costing one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Creates an enabled recorder with the given total event capacity and
    /// a default shard count of 8.
    pub fn enabled(capacity: usize) -> Self {
        Self::with_shards(capacity, 8)
    }

    /// Creates an enabled recorder with an explicit shard count.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        Self {
            inner: Some(Arc::new(FlightRecorder::new(capacity, shards))),
        }
    }

    /// True when attached to a store (whether or not recording is paused).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event at the current simulated time. No-op when
    /// disabled or paused.
    #[inline]
    pub fn record(&self, payload: EventPayload) {
        if let Some(inner) = &self.inner {
            inner.record(payload);
        }
    }

    /// Advances the ambient simulated clock (seconds). Subsequent
    /// `record` calls from any handle sharing the store use this time.
    #[inline]
    pub fn set_time(&self, time_s: f64) {
        if let Some(inner) = &self.inner {
            inner.clock_bits.store(time_s.to_bits(), Ordering::Relaxed);
        }
    }

    /// The ambient simulated time (0.0 when disabled).
    pub fn time(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |r| {
            f64::from_bits(r.clock_bits.load(Ordering::Relaxed))
        })
    }

    /// Pauses recording without detaching handles (e.g. during the
    /// calibration sweep, whose controller chatter is not part of the
    /// measured story).
    pub fn pause(&self) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(false, Ordering::Relaxed);
        }
    }

    /// Resumes a paused recorder.
    pub fn resume(&self) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(true, Ordering::Relaxed);
        }
    }

    /// Drains all buffered events in sequence order, clearing the ring.
    /// Empty when disabled.
    pub fn drain(&self) -> Vec<Event> {
        self.inner.as_ref().map_or_else(Vec::new, |r| r.drain())
    }

    /// Events evicted by ring wraparound so far (0 when disabled).
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |r| r.dropped())
    }

    /// Total event capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |r| r.capacity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn span(label: &'static str) -> EventPayload {
        EventPayload::WorkerSpan {
            worker: 0,
            label,
            start_s: 0.0,
            end_s: 1.0,
        }
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.record(span("x"));
        r.set_time(5.0);
        assert_eq!(r.time(), 0.0);
        assert!(r.drain().is_empty());
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn events_carry_the_ambient_clock() {
        let r = Recorder::enabled(16);
        r.set_time(0.005);
        r.record(span("a"));
        r.set_time(0.010);
        r.record(span("b"));
        let events = r.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time_s, 0.005);
        assert_eq!(events[1].time_s, 0.010);
    }

    #[test]
    fn drain_merges_shards_in_sequence_order() {
        // 3 shards: consecutive events land on different shards; drain
        // must restore record order via the global sequence numbers.
        let r = Recorder::with_shards(30, 3);
        for i in 0..20 {
            r.set_time(i as f64);
            r.record(span("s"));
        }
        let events = r.drain();
        assert_eq!(events.len(), 20);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64, "sequence order broken at {i}");
            assert_eq!(e.time_s, i as f64);
        }
        // Drain clears the buffer.
        assert!(r.drain().is_empty());
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        // Capacity 4 over 2 shards = 2 events per shard; 10 records keep
        // the 4 newest and drop 6.
        let r = Recorder::with_shards(4, 2);
        for _ in 0..10 {
            r.record(span("w"));
        }
        let events = r.drain();
        assert_eq!(events.len(), 4);
        assert_eq!(r.dropped(), 6);
        // The survivors are the most recent sequence numbers, in order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn capacity_rounds_up_to_shard_multiple() {
        let r = Recorder::with_shards(10, 4);
        assert_eq!(r.capacity(), 12); // ceil(10/4)=3 per shard × 4
    }

    #[test]
    fn pause_and_resume_gate_recording() {
        let r = Recorder::enabled(8);
        r.record(span("kept"));
        r.pause();
        r.record(span("lost"));
        r.resume();
        r.record(span("kept"));
        let events = r.drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.kind() == EventKind::WorkerSpan));
    }

    #[test]
    fn clones_share_the_store() {
        let a = Recorder::enabled(8);
        let b = a.clone();
        a.set_time(1.5);
        b.record(span("via-b"));
        let events = a.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].time_s, 1.5);
    }

    #[test]
    fn concurrent_recording_is_lossless_under_capacity() {
        let r = Recorder::with_shards(4096, 8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        r.record(span("t"));
                    }
                });
            }
        });
        let events = r.drain();
        assert_eq!(events.len(), 4000);
        assert_eq!(r.dropped(), 0);
        // Sequence numbers are a permutation of 0..4000, sorted.
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }
}
