//! Causal spans: stable, derivable identifiers for control decisions.
//!
//! The control stack emits three provenance-carrying event kinds per GPM
//! round — [`EventPayload::GpmRound`] → per-island
//! [`EventPayload::PicDecision`] → [`EventPayload::Actuation`] — and each
//! carries a [`SpanId`] plus its parent's, so a drained trajectory is a
//! walkable cause tree: *why did island 2 get 18 W in round 14* is
//! answered by following `Actuation.parent` to the PIC decision (PID
//! terms, sensed power, target) and `PicDecision.parent` to the GPM
//! round (budget in force, chip draw).
//!
//! Span ids are **structural**, not allocated: a span is a pure function
//! of `(kind, round, island, step)`, packed into a `u64`. Two runs of
//! the same configuration therefore assign identical ids (the byte-
//! determinism contract extends to provenance), and an id can be decoded
//! back into its coordinates without any side table.
//!
//! Layout (most- to least-significant): 4 tag bits, 28 round bits,
//! 12 island bits, 20 step bits. Values beyond a field's width saturate
//! rather than alias — far outside any realistic run (2^28 GPM rounds is
//! ~15 days of simulated time at 5 ms per round).
//!
//! [`EventPayload::GpmRound`]: crate::event::EventPayload::GpmRound
//! [`EventPayload::PicDecision`]: crate::event::EventPayload::PicDecision
//! [`EventPayload::Actuation`]: crate::event::EventPayload::Actuation

const TAG_SHIFT: u32 = 60;
const ROUND_SHIFT: u32 = 32;
const ISLAND_SHIFT: u32 = 20;
const ROUND_MAX: u64 = (1 << 28) - 1;
const ISLAND_MAX: u64 = (1 << 12) - 1;
const STEP_MAX: u64 = (1 << 20) - 1;

const TAG_GPM_ROUND: u64 = 1;
const TAG_PIC_DECISION: u64 = 2;
const TAG_ACTUATION: u64 = 3;

/// Which decision a [`SpanId`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One GPM provisioning round (the root of a round's cause tree).
    GpmRound,
    /// One PIC control invocation within a round.
    PicDecision,
    /// One DVFS knob application.
    Actuation,
}

impl SpanKind {
    /// Stable identifier used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::GpmRound => "gpm-round",
            SpanKind::PicDecision => "pic-decision",
            SpanKind::Actuation => "actuation",
        }
    }
}

/// A stable, structurally derived span identifier (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The root span of one GPM provisioning round.
    pub fn gpm_round(round: u64) -> Self {
        Self(TAG_GPM_ROUND << TAG_SHIFT | round.min(ROUND_MAX) << ROUND_SHIFT)
    }

    /// One PIC invocation: `step` is the PIC interval ordinal within the
    /// round (`0..pics_per_gpm`).
    pub fn pic_decision(round: u64, island: u32, step: u32) -> Self {
        Self(
            TAG_PIC_DECISION << TAG_SHIFT
                | round.min(ROUND_MAX) << ROUND_SHIFT
                | (island as u64).min(ISLAND_MAX) << ISLAND_SHIFT
                | (step as u64).min(STEP_MAX),
        )
    }

    /// One DVFS knob application, child of the same-coordinate
    /// [`SpanId::pic_decision`] (or of the round span for schemes that
    /// actuate without a PIC, e.g. MaxBIPS — see [`SpanId::parent`]).
    pub fn actuation(round: u64, island: u32, step: u32) -> Self {
        Self(
            TAG_ACTUATION << TAG_SHIFT
                | round.min(ROUND_MAX) << ROUND_SHIFT
                | (island as u64).min(ISLAND_MAX) << ISLAND_SHIFT
                | (step as u64).min(STEP_MAX),
        )
    }

    /// The raw packed id (what event payloads carry).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Decodes a raw id recorded in an event payload. `None` when the
    /// value carries no known tag.
    pub fn decode(raw: u64) -> Option<Self> {
        match raw >> TAG_SHIFT {
            TAG_GPM_ROUND | TAG_PIC_DECISION | TAG_ACTUATION => Some(Self(raw)),
            _ => None,
        }
    }

    /// The span's kind.
    pub fn kind(self) -> SpanKind {
        match self.0 >> TAG_SHIFT {
            TAG_GPM_ROUND => SpanKind::GpmRound,
            TAG_PIC_DECISION => SpanKind::PicDecision,
            _ => SpanKind::Actuation,
        }
    }

    /// The GPM round this span belongs to.
    pub fn round(self) -> u64 {
        (self.0 >> ROUND_SHIFT) & ROUND_MAX
    }

    /// The island coordinate (`None` for round spans, which are
    /// chip-wide).
    pub fn island(self) -> Option<u32> {
        match self.kind() {
            SpanKind::GpmRound => None,
            _ => Some(((self.0 >> ISLAND_SHIFT) & ISLAND_MAX) as u32),
        }
    }

    /// The PIC interval ordinal within the round (`None` for round
    /// spans).
    pub fn step(self) -> Option<u32> {
        match self.kind() {
            SpanKind::GpmRound => None,
            _ => Some((self.0 & STEP_MAX) as u32),
        }
    }

    /// The parent span in the cause tree: an actuation's PIC decision, a
    /// PIC decision's GPM round, `None` at the root.
    pub fn parent(self) -> Option<SpanId> {
        match self.kind() {
            SpanKind::GpmRound => None,
            SpanKind::PicDecision => Some(Self::gpm_round(self.round())),
            SpanKind::Actuation => Some(Self::pic_decision(
                self.round(),
                self.island().unwrap_or(0),
                self.step().unwrap_or(0),
            )),
        }
    }
}

/// A control-loop phase, for wall-clock self-profiling of the
/// coordinator's sense → decide → actuate cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlPhase {
    /// Stepping the chip and reading sensors/accumulators.
    Sense,
    /// Tier-1 provisioning and tier-2 PID computation.
    Decide,
    /// Applying DVFS moves to the chip.
    Actuate,
}

impl ControlPhase {
    /// Stable identifier used in registry metric names.
    pub fn as_str(self) -> &'static str {
        match self {
            ControlPhase::Sense => "sense",
            ControlPhase::Decide => "decide",
            ControlPhase::Actuate => "actuate",
        }
    }
}

/// Wall-clock self-profiling seam for the control loop.
///
/// `cpm-obs` defines only the trait — it never reads a clock itself (the
/// workspace's timing lint confines `Instant` to the bench/runtime
/// crates). The coordinator calls `enter`/`exit` around each phase when a
/// profiler is attached; the bench crate supplies the `Instant`-backed
/// implementation and publishes the totals through the metrics registry.
/// Wall-clock figures never enter recorded events, so byte-diffed
/// artifacts stay deterministic.
pub trait PhaseProfiler {
    /// A phase begins.
    fn enter(&mut self, phase: ControlPhase);
    /// The matching phase ends.
    fn exit(&mut self, phase: ControlPhase);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_round_trip_their_coordinates() {
        let s = SpanId::pic_decision(14, 2, 7);
        assert_eq!(s.kind(), SpanKind::PicDecision);
        assert_eq!(s.round(), 14);
        assert_eq!(s.island(), Some(2));
        assert_eq!(s.step(), Some(7));
        assert_eq!(SpanId::decode(s.raw()), Some(s));
    }

    #[test]
    fn parent_chain_walks_actuation_to_round() {
        let act = SpanId::actuation(14, 2, 7);
        let pic = act.parent().expect("actuation has a parent");
        assert_eq!(pic, SpanId::pic_decision(14, 2, 7));
        let round = pic.parent().expect("decision has a parent");
        assert_eq!(round, SpanId::gpm_round(14));
        assert_eq!(round.parent(), None);
        assert_eq!(round.island(), None);
        assert_eq!(round.step(), None);
    }

    #[test]
    fn ids_are_unique_across_coordinates() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..4u64 {
            assert!(seen.insert(SpanId::gpm_round(round).raw()));
            for island in 0..4u32 {
                for step in 0..4u32 {
                    assert!(seen.insert(SpanId::pic_decision(round, island, step).raw()));
                    assert!(seen.insert(SpanId::actuation(round, island, step).raw()));
                }
            }
        }
    }

    #[test]
    fn out_of_range_coordinates_saturate() {
        let s = SpanId::pic_decision(u64::MAX, u32::MAX, u32::MAX);
        assert_eq!(s.round(), (1 << 28) - 1);
        assert_eq!(s.island(), Some((1 << 12) - 1));
        assert_eq!(s.step(), Some((1 << 20) - 1));
    }

    #[test]
    fn decode_rejects_untagged_values() {
        assert_eq!(SpanId::decode(0), None);
        assert_eq!(SpanId::decode(42), None);
        assert_eq!(SpanId::decode(u64::MAX), None);
    }

    #[test]
    fn phases_have_stable_names() {
        assert_eq!(ControlPhase::Sense.as_str(), "sense");
        assert_eq!(ControlPhase::Decide.as_str(), "decide");
        assert_eq!(ControlPhase::Actuate.as_str(), "actuate");
        assert_eq!(SpanKind::GpmRound.as_str(), "gpm-round");
    }
}
