//! `cpm-obs` — the observability substrate for the CPM stack.
//!
//! Four pieces, all std-only (the workspace builds with zero external
//! crates):
//!
//! * **Flight recorder** ([`Recorder`], [`FlightRecorder`]) — a
//!   fixed-capacity sharded ring buffer of typed [`Event`]s with
//!   simulated-time timestamps. Answers *what happened, in order*, with
//!   bounded memory; drops the oldest history on overflow.
//! * **Metrics registry** ([`Registry`]) — named counters, gauges, and
//!   fixed-bucket histograms with deterministic [`Snapshot`] rendering to
//!   JSON and a one-page text report. Answers *how much, in total*.
//! * **Exporters** ([`export`]) — JSONL event traces and CSV time-series
//!   with stable field order and fixed decimal precision, so CI can diff
//!   artifacts byte-for-byte across worker counts.
//! * **Digests** ([`digest`]) — FNV-1a 64 fingerprints of rendered JSONL
//!   traces, the currency of the scenario harness's committed golden
//!   trajectories.
//! * **Causal spans** ([`span`]) — structural [`SpanId`]s linking
//!   `GpmRound` → `PicDecision` → `Actuation` events into a walkable
//!   cause tree, plus the [`PhaseProfiler`] seam for wall-clock
//!   self-profiling of the control loop.
//! * **SLO watchdog** ([`slo`]) — streaming tracking-error /
//!   budget-overshoot / actuator-churn / stale-sensor monitors over the
//!   event stream, deterministic [`EventPayload::Alarm`] emission, and a
//!   one-page [`HealthReport`].
//! * **Chrome export** ([`chrome`]) — `trace_event` JSON rendering of any
//!   trajectory, ready for Perfetto.
//!
//! The intended wiring: components hold a cheaply clonable [`Recorder`]
//! handle (disabled by default — one branch per call site) and
//! [`Registry`] instruments; the experiment driver decides per run
//! whether anything is attached.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod digest;
pub mod event;
pub mod export;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod span;

pub use chrome::{events_to_chrome, validate_chrome_trace};
pub use digest::{digest_events, digest_str, fnv1a64, format_digest, Fnv1a64};
pub use event::{Event, EventKind, EventPayload, ThermalSource};
pub use export::{event_to_jsonl, events_to_jsonl, write_jsonl, CsvSeries};
pub use recorder::{FlightRecorder, Recorder};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use slo::{
    append_alarm_events, scan, HealthReport, MonitorHealth, SloAlarm, SloMonitor, SloPolicy,
    SloWatchdog,
};
pub use span::{ControlPhase, PhaseProfiler, SpanId, SpanKind};
