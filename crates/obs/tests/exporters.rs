//! Exporter edge cases and the pinned Chrome-trace fixture.
//!
//! The unit tests in `export.rs`/`chrome.rs` pin individual event lines;
//! this suite covers the degenerate inputs the renderers must survive
//! (empty streams, single rows, ring-buffer truncation) and pins one
//! full Chrome `trace_event` document byte-for-byte, so any change to
//! the envelope, metadata ordering, or per-event field order shows up as
//! a fixture diff rather than a silently re-shaped artifact.

use cpm_obs::{
    events_to_chrome, events_to_jsonl, validate_chrome_trace, CsvSeries, Event, EventPayload,
    Recorder, SpanId,
};

#[test]
fn empty_event_stream_renders_empty_jsonl() {
    assert_eq!(events_to_jsonl(&[]), "");
}

#[test]
fn single_event_jsonl_is_one_terminated_line() {
    let rec = Recorder::enabled(8);
    rec.set_time(0.0025);
    rec.record(EventPayload::TransducerRezero {
        island: 1,
        residual_w: 0.125,
        offset_w: 0.0,
    });
    let jsonl = events_to_jsonl(&rec.drain());
    assert_eq!(jsonl.lines().count(), 1);
    assert!(jsonl.ends_with('\n'), "JSONL lines must be terminated");
    assert!(jsonl.contains("\"seq\": 0"));
    assert!(jsonl.contains("\"kind\": \"TransducerRezero\""));
}

#[test]
fn overflow_truncated_stream_still_renders_and_reports_drops() {
    // Capacity 4 in a single shard, 12 events: the ring keeps the newest
    // 4 and counts the rest as dropped; the JSONL must render the
    // survivors with their original (not renumbered) sequence numbers.
    let rec = Recorder::with_shards(4, 1);
    for i in 0..12u32 {
        rec.record(EventPayload::TransducerRezero {
            island: i,
            residual_w: f64::from(i),
            offset_w: 0.0,
        });
    }
    assert_eq!(rec.dropped(), 8);
    let events = rec.drain();
    assert_eq!(events.len(), 4);
    let jsonl = events_to_jsonl(&events);
    assert_eq!(jsonl.lines().count(), 4);
    assert!(jsonl.contains("\"seq\": 8"), "oldest survivor:\n{jsonl}");
    assert!(jsonl.contains("\"seq\": 11"), "newest survivor:\n{jsonl}");
    assert!(
        !jsonl.contains("\"seq\": 7"),
        "dropped event leaked:\n{jsonl}"
    );
    // The truncated stream is still a valid Chrome trace.
    validate_chrome_trace(&events_to_chrome(&events)).expect("truncated trace validates");
}

#[test]
fn empty_csv_is_header_only_and_single_row_has_one_record() {
    let mut csv = CsvSeries::new(["t_s", "power_w"]);
    assert!(csv.is_empty());
    let header_only = csv.to_csv();
    assert_eq!(header_only.lines().count(), 1);
    assert_eq!(header_only.lines().next().unwrap(), "t_s,power_w");
    csv.push_row([0.0005, 97.25]);
    assert_eq!(csv.len(), 1);
    let one = csv.to_csv();
    assert_eq!(one.lines().count(), 2);
    assert!(one.ends_with('\n'));
}

#[test]
fn empty_event_stream_is_a_valid_chrome_trace() {
    let doc = events_to_chrome(&[]);
    validate_chrome_trace(&doc).expect("empty trace validates");
    assert!(doc.contains("\"name\": \"process_name\""));
}

/// The pinned fixture: one event of each family the Chrome exporter
/// renders distinctly (round instant, allocation counter, decision and
/// actuation instants, worker span, chip-wide alarm). Byte-equality pins
/// the envelope, the metadata block, lane assignment, µs timestamps, and
/// per-event field order all at once.
#[test]
fn chrome_trace_matches_the_pinned_fixture() {
    let g = SpanId::gpm_round(1);
    let p = SpanId::pic_decision(1, 0, 0);
    let a = SpanId::actuation(1, 0, 0);
    let events = vec![
        Event {
            seq: 0,
            time_s: 0.005,
            payload: EventPayload::GpmRound {
                span: g.raw(),
                round: 1,
                budget_w: 100.0,
                actual_w: 97.25,
                islands: 2,
            },
        },
        Event {
            seq: 1,
            time_s: 0.005,
            payload: EventPayload::GpmAllocation {
                round: 1,
                island: 0,
                allocated_w: 50.0,
                actual_w: 48.5,
                budget_w: 100.0,
            },
        },
        Event {
            seq: 2,
            time_s: 0.0055,
            payload: EventPayload::PicDecision {
                span: p.raw(),
                parent: g.raw(),
                round: 1,
                step: 0,
                island: 0,
                sensed_w: 48.5,
                utilization: 0.75,
                target_w: 50.0,
                error: 0.03,
                p_term: 0.015,
                i_term: 0.01,
                d_term: 0.005,
                output: 0.03,
                dvfs_index: 5,
                saturated: false,
            },
        },
        Event {
            seq: 3,
            time_s: 0.0055,
            payload: EventPayload::Actuation {
                span: a.raw(),
                parent: p.raw(),
                island: 0,
                from_dvfs: 4,
                requested_dvfs: 5,
                to_dvfs: 5,
                granted: true,
            },
        },
        Event {
            seq: 4,
            time_s: 0.0100,
            payload: EventPayload::WorkerSpan {
                worker: 0,
                label: "scenario",
                start_s: 0.0,
                end_s: 0.01,
            },
        },
        Event {
            seq: 5,
            time_s: 0.0105,
            payload: EventPayload::Alarm {
                monitor: "budget-overshoot",
                island: u32::MAX,
                round: 1,
                value: 0.15,
                threshold: 0.10,
            },
        },
    ];
    let doc = events_to_chrome(&events);
    validate_chrome_trace(&doc).expect("fixture validates");
    let expected = concat!(
        "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n",
        "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"cpm-chip\"}},\n",
        "{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"thread_name\", \"args\": {\"name\": \"gpm\"}},\n",
        "{\"ph\": \"M\", \"pid\": 0, \"tid\": 1, \"name\": \"thread_name\", \"args\": {\"name\": \"island0\"}},\n",
        "{\"ph\": \"M\", \"pid\": 0, \"tid\": 1000, \"name\": \"thread_name\", \"args\": {\"name\": \"worker0\"}},\n",
        "{\"ph\": \"i\", \"pid\": 0, \"tid\": 0, \"ts\": 5000.000, \"s\": \"p\", \"name\": \"GpmRound\", \"args\": {\"span\": 1152921508901814272, \"round\": 1, \"budget_w\": 100.000000, \"actual_w\": 97.250000, \"islands\": 2}},\n",
        "{\"ph\": \"C\", \"pid\": 0, \"tid\": 0, \"ts\": 5000.000, \"name\": \"island0 power_w\", \"args\": {\"allocated\": 50.000000, \"actual\": 48.500000, \"round\": 1}},\n",
        "{\"ph\": \"i\", \"pid\": 0, \"tid\": 1, \"ts\": 5500.000, \"s\": \"t\", \"name\": \"PicDecision\", \"args\": {\"span\": 2305843013508661248, \"parent\": 1152921508901814272, \"round\": 1, \"step\": 0, \"island\": 0, \"sensed_w\": 48.500000, \"target_w\": 50.000000, \"error\": 0.030000, \"output\": 0.030000, \"dvfs\": 5}},\n",
        "{\"ph\": \"i\", \"pid\": 0, \"tid\": 1, \"ts\": 5500.000, \"s\": \"t\", \"name\": \"Actuation\", \"args\": {\"span\": 3458764518115508224, \"parent\": 2305843013508661248, \"island\": 0, \"from\": 4, \"requested\": 5, \"to\": 5, \"granted\": true}},\n",
        "{\"ph\": \"X\", \"pid\": 0, \"tid\": 1000, \"ts\": 0.000, \"dur\": 10000.000, \"name\": \"scenario\", \"args\": {\"seq\": 4}},\n",
        "{\"ph\": \"i\", \"pid\": 0, \"tid\": 0, \"ts\": 10500.000, \"s\": \"g\", \"name\": \"Alarm budget-overshoot\", \"args\": {\"round\": 1, \"value\": 0.150000, \"threshold\": 0.100000}}\n",
        "]}\n",
    );
    assert_eq!(
        doc, expected,
        "Chrome exporter drifted from the pinned fixture"
    );
}
