//! Time-series recording and reduction over chip snapshots.
//!
//! Experiments record a [`TimeSeries`] of per-interval samples and reduce
//! it to the paper's reporting metrics: tracking error, overshoot relative
//! to a target, averages, and per-island traces.

use cpm_units::Seconds;

/// One `(time, value)` sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Timestamp (end of the interval the value covers).
    pub time: Seconds,
    /// The recorded value.
    pub value: f64,
}

/// A named sequence of samples.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    samples: Vec<Sample>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, time: Seconds, value: f64) {
        self.samples.push(Sample { time, value });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// The values only.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(|s| s.value)
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.values().sum::<f64>() / self.len() as f64)
    }

    /// Largest value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values()
            .fold(None, |m, v| Some(m.map_or(v, |x: f64| x.max(v))))
    }

    /// Smallest value; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values()
            .fold(None, |m, v| Some(m.map_or(v, |x: f64| x.min(v))))
    }

    /// Population standard deviation; `None` when empty.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.values().map(|v| (v - mean).powi(2)).sum::<f64>() / self.len() as f64;
        Some(var.sqrt())
    }

    /// Largest positive excursion above `target`, as a fraction of
    /// `target` — the paper's "maximum overshoot" against a power budget.
    pub fn max_overshoot_vs(&self, target: f64) -> Option<f64> {
        assert!(target != 0.0);
        self.values()
            .map(|v| ((v - target) / target.abs()).max(0.0))
            .fold(None, |m, v| Some(m.map_or(v, |x: f64| x.max(v))))
    }

    /// Largest absolute excursion from `target`, as a fraction of `target`
    /// (over- or under-shoot).
    pub fn max_tracking_error_vs(&self, target: f64) -> Option<f64> {
        assert!(target != 0.0);
        self.values()
            .map(|v| ((v - target) / target.abs()).abs())
            .fold(None, |m, v| Some(m.map_or(v, |x: f64| x.max(v))))
    }

    /// Mean absolute tracking error against a *paired* target series (for
    /// time-varying references like GPM allocations). Panics when lengths
    /// differ.
    pub fn mean_abs_error_vs_series(&self, target: &TimeSeries) -> Option<f64> {
        assert_eq!(self.len(), target.len(), "paired series must align");
        if self.is_empty() {
            return None;
        }
        let sum: f64 = self
            .samples
            .iter()
            .zip(&target.samples)
            .map(|(a, b)| (a.value - b.value).abs())
            .sum();
        Some(sum / self.len() as f64)
    }

    /// Reduces the series to per-chunk means: every `n` consecutive
    /// samples collapse into one sample stamped with the chunk's last
    /// timestamp. A trailing partial chunk is dropped. This is how a power
    /// meter sampling at a coarser period (e.g. the GPM interval) would
    /// report the same trace.
    pub fn averaged_chunks(&self, n: usize) -> TimeSeries {
        assert!(n > 0, "chunk size must be positive");
        self.samples
            .chunks_exact(n)
            .map(|c| {
                (
                    c[n - 1].time,
                    c.iter().map(|s| s.value).sum::<f64>() / n as f64,
                )
            })
            .collect()
    }

    /// The mean of the final `n` samples (steady-state window); `None`
    /// when fewer than `n` samples exist.
    pub fn tail_mean(&self, n: usize) -> Option<f64> {
        if self.len() < n || n == 0 {
            return None;
        }
        Some(
            self.samples[self.len() - n..]
                .iter()
                .map(|s| s.value)
                .sum::<f64>()
                / n as f64,
        )
    }
}

impl FromIterator<(Seconds, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (Seconds, f64)>>(iter: I) -> Self {
        let mut ts = Self::new();
        for (t, v) in iter {
            ts.push(t, v);
        }
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[f64]) -> TimeSeries {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| (Seconds::from_ms(i as f64), v))
            .collect()
    }

    #[test]
    fn empty_series_reductions_are_none() {
        let s = TimeSeries::new();
        assert!(s.mean().is_none());
        assert!(s.max().is_none());
        assert!(s.min().is_none());
        assert!(s.std_dev().is_none());
        assert!(s.tail_mean(1).is_none());
    }

    #[test]
    fn basic_reductions() {
        let s = series(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.min(), Some(1.0));
        assert!((s.std_dev().unwrap() - 1.118).abs() < 1e-3);
        assert_eq!(s.tail_mean(2), Some(3.5));
    }

    #[test]
    fn overshoot_ignores_undershoot() {
        let s = series(&[70.0, 82.0, 78.0, 84.0]);
        // Max overshoot vs 80: (84-80)/80 = 5 %.
        assert!((s.max_overshoot_vs(80.0).unwrap() - 0.05).abs() < 1e-12);
        // Tracking error includes the 70 sample: 12.5 %.
        assert!((s.max_tracking_error_vs(80.0).unwrap() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn never_above_target_is_zero_overshoot() {
        let s = series(&[70.0, 75.0, 79.9]);
        assert_eq!(s.max_overshoot_vs(80.0), Some(0.0));
    }

    #[test]
    fn paired_error_against_moving_target() {
        let actual = series(&[10.0, 20.0, 30.0]);
        let target = series(&[12.0, 18.0, 30.0]);
        assert!((actual.mean_abs_error_vs_series(&target).unwrap() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_pair_lengths_panic() {
        series(&[1.0]).mean_abs_error_vs_series(&series(&[1.0, 2.0]));
    }

    #[test]
    fn averaged_chunks_reduces_resolution() {
        let s = series(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        let a = s.averaged_chunks(2);
        assert_eq!(a.len(), 2); // trailing partial chunk dropped
        let vals: Vec<f64> = a.values().collect();
        assert_eq!(vals, vec![2.0, 6.0]);
        // Timestamp of each chunk is its last sample's.
        assert_eq!(a.samples()[0].time, Seconds::from_ms(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn averaged_chunks_rejects_zero() {
        series(&[1.0]).averaged_chunks(0);
    }

    #[test]
    fn tail_mean_needs_enough_samples() {
        let s = series(&[1.0, 2.0]);
        assert!(s.tail_mean(3).is_none());
        assert!(s.tail_mean(0).is_none());
    }
}
