//! Interval-accurate CMP simulator.
//!
//! This crate replaces the paper's Simics + GEMS stack. It simulates a
//! chip-multiprocessor whose cores are grouped into voltage/frequency
//! islands, at the granularity the power controllers operate on: one
//! *control interval* (the PIC's 0.5 ms) per step. Within a step each core
//! executes according to a CPI-stack model — core-bound cycles are
//! frequency-scaled, DRAM stalls are fixed in wall-clock time — which
//! reproduces exactly the frequency-sensitivity split between CPU-bound and
//! memory-bound workloads that every experiment in the paper turns on.
//!
//! * [`config`] — chip configuration (Table I) and experiment knobs,
//! * [`cache`] — a real set-associative LRU cache hierarchy, exercised by
//!   synthetic address streams to calibrate miss rates,
//! * [`calibration`] — the profile↔cache-simulator consistency layer,
//! * [`core_model`] — per-core CPI-stack execution,
//! * [`island`] — V/F island state and actuation,
//! * [`chip`] — the full chip: cores + islands + thermal grid + power,
//! * [`injection`] — fault-injection seams on the sense/actuate paths,
//! * [`stats`] — interval snapshots and time-series reduction.

pub mod cache;
pub mod calibration;
pub mod chip;
pub mod config;
pub mod core_model;
pub mod injection;
pub mod island;
pub mod soa;
pub mod stats;

pub use chip::{Chip, ChipSnapshot, IslandSnapshot};
pub use config::CmpConfig;
pub use core_model::CoreModel;
pub use injection::{InjectionSeam, NoInjection};
pub use island::IslandState;
pub use soa::{CoreBank, CoreSegment, CoreView, IslandBank, IslandView, SegmentTotals};
pub use stats::TimeSeries;
