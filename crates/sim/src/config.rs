//! Chip and experiment configuration (the paper's Table I).

use cpm_power::dvfs::DvfsTable;
use cpm_power::CorePowerModel;
use cpm_thermal::{Floorplan, ThermalParams};
use cpm_units::Seconds;

/// Cache geometry (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// L1 capacity in bytes (16 KB).
    pub l1_bytes: usize,
    /// L1 associativity (2-way).
    pub l1_ways: usize,
    /// Per-core L2 slice in bytes (512 KB per core, shared).
    pub l2_bytes_per_core: usize,
    /// L2 associativity (16-way).
    pub l2_ways: usize,
    /// Line size in bytes (64 B).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Table I values.
    pub fn paper_default() -> Self {
        Self {
            l1_bytes: 16 * 1024,
            l1_ways: 2,
            l2_bytes_per_core: 512 * 1024,
            l2_ways: 16,
            line_bytes: 64,
        }
    }
}

/// Full CMP configuration.
#[derive(Debug, Clone)]
pub struct CmpConfig {
    /// Total core count (8 / 16 / 32 in the paper).
    pub cores: usize,
    /// Cores per voltage/frequency island (1 / 2 / 4).
    pub cores_per_island: usize,
    /// The DVFS operating-point table shared by every island.
    pub dvfs: DvfsTable,
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Per-core power model.
    pub power: CorePowerModel,
    /// Thermal network parameters.
    pub thermal: ThermalParams,
    /// GPM invocation interval (`T_global`, 5 ms default).
    pub gpm_interval: Seconds,
    /// PIC invocation interval (`T_local`, 0.5 ms default).
    pub pic_interval: Seconds,
    /// Shared memory-controller bandwidth in bytes/second; when the
    /// chip's aggregate DRAM traffic exceeds it, every miss queues and the
    /// effective memory latency inflates proportionally. `None` models an
    /// ideal (uncontended) memory system.
    pub memory_bandwidth: Option<f64>,
    /// Master seed for all stochastic components.
    pub seed: u64,
}

impl CmpConfig {
    /// The paper's default: 8 out-of-order cores, 4 islands × 2 cores,
    /// 8 Pentium-M V/F pairs, GPM every 5 ms, PIC every 0.5 ms.
    pub fn paper_default() -> Self {
        Self::with_topology(8, 2)
    }

    /// A configuration with the given core count and island width, all
    /// other parameters at paper defaults.
    pub fn with_topology(cores: usize, cores_per_island: usize) -> Self {
        let cfg = Self {
            cores,
            cores_per_island,
            dvfs: DvfsTable::pentium_m(),
            cache: CacheConfig::paper_default(),
            power: CorePowerModel::paper_default(),
            thermal: ThermalParams::paper_default(),
            gpm_interval: Seconds::from_ms(5.0),
            pic_interval: Seconds::from_ms(0.5),
            // DDR2-era dual-channel controller: ample for 8 cores, a real
            // ceiling once 32 memory-bound cores pile on.
            memory_bandwidth: Some(6.4e9),
            seed: 0xC0FFEE,
        };
        cfg.validate();
        cfg
    }

    /// Checks internal consistency; panics with a descriptive message on
    /// nonsense configurations.
    pub fn validate(&self) {
        assert!(self.cores > 0, "need at least one core");
        if let Some(bw) = self.memory_bandwidth {
            assert!(bw > 0.0, "memory bandwidth must be positive");
        }
        assert!(
            self.cores_per_island > 0 && self.cores % self.cores_per_island == 0,
            "cores ({}) must divide evenly into islands of {}",
            self.cores,
            self.cores_per_island
        );
        assert!(
            self.pic_interval.value() > 0.0 && self.gpm_interval.value() > 0.0,
            "control intervals must be positive"
        );
        assert!(
            self.gpm_interval >= self.pic_interval,
            "the GPM must run at a coarser interval than the PIC (Fig. 4)"
        );
        let ratio = self.gpm_interval.value() / self.pic_interval.value();
        assert!(
            (ratio - ratio.round()).abs() < 1e-9,
            "GPM interval must be an integer multiple of the PIC interval"
        );
    }

    /// Number of islands.
    pub fn islands(&self) -> usize {
        self.cores / self.cores_per_island
    }

    /// PIC invocations per GPM invocation (10 at paper defaults).
    pub fn pics_per_gpm(&self) -> usize {
        (self.gpm_interval.value() / self.pic_interval.value()).round() as usize
    }

    /// The thermal floorplan implied by the core count.
    pub fn floorplan(&self) -> Floorplan {
        Floorplan::for_cores(self.cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let c = CmpConfig::paper_default();
        assert_eq!(c.cores, 8);
        assert_eq!(c.islands(), 4);
        assert_eq!(c.dvfs.len(), 8);
        assert_eq!(c.cache.l1_bytes, 16 * 1024);
        assert_eq!(c.cache.l2_ways, 16);
        assert_eq!(c.pics_per_gpm(), 10);
    }

    #[test]
    fn topology_variants() {
        assert_eq!(CmpConfig::with_topology(16, 4).islands(), 4);
        assert_eq!(CmpConfig::with_topology(32, 4).islands(), 8);
        assert_eq!(CmpConfig::with_topology(8, 1).islands(), 8);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn ragged_islands_rejected() {
        CmpConfig::with_topology(8, 3);
    }

    #[test]
    #[should_panic(expected = "coarser")]
    fn gpm_faster_than_pic_rejected() {
        let mut c = CmpConfig::paper_default();
        c.gpm_interval = Seconds::from_ms(0.1);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "integer multiple")]
    fn non_integer_interval_ratio_rejected() {
        let mut c = CmpConfig::paper_default();
        c.gpm_interval = Seconds::from_ms(5.0);
        c.pic_interval = Seconds::from_ms(0.7);
        c.validate();
    }
}
