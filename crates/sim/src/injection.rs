//! Fault-injection seams for the control stack.
//!
//! The simulator exposes two narrow interfaces the controllers touch
//! every PIC interval — the utilization/power *sense* path feeding each
//! per-island controller, and the DVFS *actuate* path applying its
//! decision — plus two interval-rate knobs: the chip power budget and
//! per-island controller liveness. [`InjectionSeam`] lets a scenario
//! harness interpose on all four without the control stack knowing it is
//! under test: every method defaults to the identity, so an un-faulted
//! run through a seam is behaviorally (and, because the hot-path methods
//! never allocate, performance-) indistinguishable from no seam at all.
//!
//! The seam lives in `cpm-sim` (below the controllers in the dependency
//! graph) so both the coordinator in `cpm-core` and the scenario
//! catalogue in `cpm-scenario` can see it without a cycle. All times are
//! simulated seconds — wall-clock never enters an injection decision,
//! which is what keeps faulted trajectories byte-identical across runs
//! and worker counts.

use cpm_units::{IslandId, Ratio, Seconds, Watts};

/// An interposer on the control stack's sense/actuate/budget/liveness
/// seams. All methods take `&mut self` so effects can carry state (noise
/// streams, held samples, move counters); all default to the identity.
///
/// Contract: implementations must be deterministic functions of the
/// simulated time and their own state (seeded RNG included), and the
/// per-PIC-interval methods (`filter_sense`, `filter_actuate`,
/// `controller_failed`) must not allocate — they run inside the
/// coordinator's allocation-free measurement loop.
pub trait InjectionSeam {
    /// Filters one island's sensed `(capacity utilization, power)` pair
    /// before the controller sees it. Called once per island per PIC
    /// interval, before the controller invocation.
    fn filter_sense(
        &mut self,
        _time: Seconds,
        _island: IslandId,
        capacity_utilization: Ratio,
        power: Watts,
    ) -> (Ratio, Watts) {
        (capacity_utilization, power)
    }

    /// Filters one island's requested DVFS operating point before it is
    /// applied. `current` is the point the island is at now; returning it
    /// models a knob that refused to move.
    fn filter_actuate(
        &mut self,
        _time: Seconds,
        _island: IslandId,
        requested: usize,
        _current: usize,
    ) -> usize {
        requested
    }

    /// True while the island's local controller is offline: its sensing,
    /// control law, and re-zeroing are all skipped, and the global
    /// manager is told so it can fail over.
    fn controller_failed(&mut self, _time: Seconds, _island: IslandId) -> bool {
        false
    }

    /// Multiplier applied to the chip power budget this control round
    /// (1.0 = no transient). Sampled once per global-manager interval.
    fn budget_scale(&mut self, _time: Seconds) -> f64 {
        1.0
    }
}

/// The identity seam: no injection anywhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInjection;

impl InjectionSeam for NoInjection {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seam_is_the_identity() {
        let mut seam = NoInjection;
        let t = Seconds::new(0.01);
        let (u, p) = seam.filter_sense(t, IslandId(0), Ratio::new(0.5), Watts::new(12.0));
        assert_eq!(u.value(), 0.5);
        assert_eq!(p.value(), 12.0);
        assert_eq!(seam.filter_actuate(t, IslandId(1), 5, 3), 5);
        assert!(!seam.controller_failed(t, IslandId(2)));
        assert_eq!(seam.budget_scale(t), 1.0);
    }
}
