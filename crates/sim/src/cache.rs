//! A set-associative, true-LRU cache simulator (the role GEMS `g-cache`
//! plays in the paper's stack).
//!
//! Capacities are small enough (16 KB L1, 512 KB L2 slices) that a dense
//! per-set LRU stack is both exact and fast. The hierarchy is inclusive of
//! nothing — each level simply filters the miss stream of the level above,
//! which is all the interval performance model needs.

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_shift: u32,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid. Position 0 in a
    /// set's slice is MRU, `ways-1` is LRU.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache of `capacity_bytes` with `ways`-way associativity and
    /// `line_bytes` lines. All three must be powers of two and consistent.
    pub fn new(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(capacity_bytes.is_power_of_two(), "capacity must be 2^k");
        assert!(line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(ways >= 1);
        let lines = capacity_bytes / line_bytes;
        assert!(lines >= ways, "fewer lines than ways");
        let sets = lines / ways;
        assert!(sets.is_power_of_two(), "set count must be 2^k");
        Self {
            sets,
            ways,
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; sets * ways],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Accesses a byte address; returns `true` on hit. Misses allocate
    /// (evicting LRU) — a simple always-allocate read model.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let slice = &mut self.tags[base..base + self.ways];
        if slice[0] == line {
            // MRU hit — the dominant case on locality-heavy streams; the
            // stack is already in order, no movement needed.
            self.hits += 1;
            return true;
        }
        if let Some(pos) = slice[1..].iter().position(|&t| t == line) {
            // Hit below MRU: move to MRU.
            slice[..=pos + 1].rotate_right(1);
            self.hits += 1;
            true
        } else {
            // Miss: evict LRU, insert at MRU.
            slice.rotate_right(1);
            slice[0] = line;
            self.misses += 1;
            false
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio over all accesses (0 when no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Clears statistics but keeps cache contents (for warmup-then-measure
    /// protocols).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Invalidates all contents and statistics.
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
        self.reset_stats();
    }
}

/// An L1 + L2 filter hierarchy for one core's reference stream.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Private L1.
    pub l1: Cache,
    /// The core's share of the L2.
    pub l2: Cache,
}

impl Hierarchy {
    /// Builds from the chip cache geometry.
    pub fn new(cfg: &crate::config::CacheConfig) -> Self {
        Self {
            l1: Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes),
            l2: Cache::new(cfg.l2_bytes_per_core, cfg.l2_ways, cfg.line_bytes),
        }
    }

    /// Accesses the hierarchy; returns the level that hit (1, 2) or 3 for
    /// memory.
    pub fn access(&mut self, addr: u64) -> u8 {
        if self.l1.access(addr) {
            1
        } else if self.l2.access(addr) {
            2
        } else {
            3
        }
    }

    /// Resets statistics at both levels.
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut c = Cache::new(1024, 2, 64);
        assert!(!c.access(0x40));
        for _ in 0..10 {
            assert!(c.access(0x40));
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 10);
    }

    #[test]
    fn distinct_lines_in_one_set_respect_associativity() {
        // 1 KB, 2-way, 64 B lines → 8 sets. Lines k, k+8, k+16 map to the
        // same set; with 2 ways, cycling 3 of them thrashes.
        let mut c = Cache::new(1024, 2, 64);
        let same_set = [0u64, 8 * 64, 16 * 64];
        for _ in 0..5 {
            for &a in &same_set {
                c.access(a);
            }
        }
        assert_eq!(c.hits(), 0, "3-way cycle must thrash a 2-way set");
    }

    #[test]
    fn lru_keeps_most_recent_two() {
        let mut c = Cache::new(1024, 2, 64);
        let (a, b, d) = (0u64, 8 * 64, 16 * 64);
        c.access(a); // miss
        c.access(b); // miss
        c.access(a); // hit, a = MRU
        c.access(d); // miss, evicts b (LRU)
        assert!(c.access(a), "a must survive");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn working_set_within_capacity_has_near_zero_steady_miss_rate() {
        let mut c = Cache::new(16 * 1024, 2, 64); // 256 lines
        let lines: Vec<u64> = (0..200u64).map(|i| i * 64).collect();
        // Warm up.
        for _ in 0..4 {
            for &a in &lines {
                c.access(a);
            }
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert!(
            c.miss_ratio() < 0.02,
            "resident set should hit, ratio {}",
            c.miss_ratio()
        );
    }

    #[test]
    fn working_set_exceeding_capacity_misses_heavily_on_sequential_sweep() {
        let mut c = Cache::new(16 * 1024, 2, 64);
        // 4× capacity, cyclic sweep → LRU pathological: ~100 % misses.
        let lines: Vec<u64> = (0..1024u64).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &a in &lines {
                c.access(a);
            }
        }
        assert!(c.miss_ratio() > 0.95, "ratio {}", c.miss_ratio());
    }

    #[test]
    fn sub_line_addresses_share_a_line() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0x00);
        assert!(c.access(0x3F), "same 64B line");
        assert!(!c.access(0x40), "next line is distinct");
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(1024, 2, 64);
        c.access(0x40);
        c.flush();
        assert!(!c.access(0x40));
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn hierarchy_filters_misses() {
        let cfg = CacheConfig::paper_default();
        let mut h = Hierarchy::new(&cfg);
        assert_eq!(h.access(0x1000), 3, "cold miss goes to memory");
        assert_eq!(h.access(0x1000), 1, "now in L1");
        // Evict from tiny L1 by sweeping > 16 KB, then re-touch: L2 hit.
        for i in 0..1024u64 {
            h.access(0x100000 + i * 64);
        }
        assert_eq!(h.access(0x1000), 2, "L1 victim still resident in L2");
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_capacity_rejected() {
        Cache::new(1000, 2, 64);
    }

    #[test]
    fn paper_l1_geometry() {
        let cfg = CacheConfig::paper_default();
        let c = Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes);
        // 16 KB / 64 B / 2 ways = 128 sets.
        assert_eq!(c.sets(), 128);
        assert_eq!(c.ways(), 2);
    }
}
