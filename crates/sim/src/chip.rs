//! The full chip: cores, islands, power, and thermal state, advanced one
//! control interval at a time.

use crate::config::CmpConfig;
use crate::soa::{CoreBank, CoreView, IslandBank, IslandView};
use cpm_power::variation::VariationMap;
use cpm_runtime::Pool;
use cpm_thermal::ThermalGrid;
use cpm_units::{Celsius, CoreId, IslandId, Ratio, Seconds, Watts};
use cpm_workloads::WorkloadAssignment;
use std::sync::Arc;

/// Per-island observations for one interval — exactly the feedback the
/// GPM and PICs consume.
#[derive(Debug, Clone, PartialEq)]
pub struct IslandSnapshot {
    /// Which island.
    pub island: IslandId,
    /// Average island power over the interval.
    pub power: Watts,
    /// Mean CPU utilization across the island's cores (busy fraction of the
    /// interval at the *current* clock).
    pub utilization: Ratio,
    /// Capacity utilization: busy fraction scaled by `f / f_max` — the
    /// OS-counter view of "how much of the core's maximum capability was
    /// used". This is the observable the PIC's transducer regresses power
    /// against (it correlates positively with power across DVFS points,
    /// unlike the raw busy fraction).
    pub capacity_utilization: Ratio,
    /// Instructions retired by the island this interval.
    pub instructions: f64,
    /// Throughput in billions of instructions per second.
    pub bips: f64,
    /// Operating point in effect.
    pub dvfs_index: usize,
}

/// Full-chip observations for one interval.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipSnapshot {
    /// Simulated time at the *end* of the interval.
    pub time: Seconds,
    /// Interval length.
    pub dt: Seconds,
    /// Per-island observations.
    pub islands: Vec<IslandSnapshot>,
    /// Per-core power draw (core-id order) — the thermal model's input.
    pub core_powers: Vec<Watts>,
    /// Per-core die temperature at the end of the interval.
    pub temperatures: Vec<Celsius>,
    /// Total chip power (Σ islands).
    pub chip_power: Watts,
    /// Total instructions retired this interval.
    pub instructions: f64,
    /// Aggregate DRAM traffic demand this interval, bytes/second.
    pub memory_demand: f64,
    /// The memory-contention (DRAM latency inflation) factor that was in
    /// effect during this interval (1.0 = uncontended).
    pub memory_contention: f64,
}

impl ChipSnapshot {
    /// An empty snapshot suitable as a reusable output buffer for
    /// [`Chip::step_into`]. The vectors start unallocated and grow to the
    /// chip's size on first use, after which they are reused in place.
    pub fn empty() -> Self {
        Self {
            time: Seconds::ZERO,
            dt: Seconds::ZERO,
            islands: Vec::new(),
            core_powers: Vec::new(),
            temperatures: Vec::new(),
            chip_power: Watts::ZERO,
            instructions: 0.0,
            memory_demand: 0.0,
            memory_contention: 1.0,
        }
    }

    /// Chip throughput in BIPS this interval.
    pub fn chip_bips(&self) -> f64 {
        self.instructions / self.dt.value() / 1.0e9
    }
}

/// The simulated CMP.
///
/// Hot per-core and per-island state lives in structure-of-arrays banks
/// (see [`crate::soa`]); [`Chip::core`] and [`Chip::island`] expose the
/// scalar-struct read API over them.
#[derive(Debug, Clone)]
pub struct Chip {
    config: CmpConfig,
    cores: CoreBank,
    islands: IslandBank,
    thermal: ThermalGrid,
    variation: VariationMap,
    time: Seconds,
    max_power: Watts,
    /// Memory-contention factor applied this interval (computed from the
    /// previous interval's aggregate traffic — a one-interval lag, as a
    /// real controller's congestion feedback would have).
    mem_contention: f64,
}

impl Chip {
    /// Builds a chip from a configuration and a workload assignment (which
    /// must agree on topology), with uniform process variation.
    pub fn new(config: CmpConfig, assignment: &WorkloadAssignment) -> Self {
        let variation = VariationMap::uniform(config.islands());
        Self::with_variation(config, assignment, variation)
    }

    /// Builds a chip with an explicit per-island leakage variation map.
    pub fn with_variation(
        config: CmpConfig,
        assignment: &WorkloadAssignment,
        variation: VariationMap,
    ) -> Self {
        config.validate();
        assert_eq!(
            assignment.cores(),
            config.cores,
            "workload assignment core count must match the chip"
        );
        assert_eq!(
            assignment.cores_per_island(),
            config.cores_per_island,
            "workload assignment island width must match the chip"
        );
        assert_eq!(
            variation.islands(),
            config.islands(),
            "variation map must cover every island"
        );
        let mut cores = CoreBank::new(config.cores_per_island);
        for c in 0..config.cores {
            cores.push(assignment.profile(CoreId(c)).clone(), config.seed, c as u64);
        }
        let top = config.dvfs.len() - 1;
        // Boot every island at the nominal (highest) operating point.
        let islands = IslandBank::new(config.islands(), config.cores_per_island, top);
        let thermal = ThermalGrid::new(config.floorplan(), config.thermal);
        let max_power = Self::compute_max_power(&config, &variation);
        Self {
            config,
            cores,
            islands,
            thermal,
            variation,
            time: Seconds::ZERO,
            max_power,
            mem_contention: 1.0,
        }
    }

    fn compute_max_power(config: &CmpConfig, variation: &VariationMap) -> Watts {
        (0..config.cores)
            .map(|c| {
                let island = IslandId(c / config.cores_per_island);
                config
                    .power
                    .max_power(&config.dvfs, variation.multiplier(island))
            })
            .sum()
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CmpConfig {
        &self.config
    }

    /// Simulated time so far.
    pub fn time(&self) -> Seconds {
        self.time
    }

    /// The basis for all "percent power" figures: every core at the top
    /// operating point, fully active, at the hot reference temperature.
    pub fn max_power(&self) -> Watts {
        self.max_power
    }

    /// Converts an absolute power into percent-of-max-chip-power.
    pub fn percent_of_max(&self, p: Watts) -> Ratio {
        Ratio::new(p.value() / self.max_power.value())
    }

    /// Current operating point of an island.
    pub fn island_dvfs(&self, island: IslandId) -> usize {
        self.islands.dvfs_index(island.index())
    }

    /// Requests an island operating-point change (takes effect immediately;
    /// the transition freeze is charged to the next interval).
    pub fn set_island_dvfs(&mut self, island: IslandId, idx: usize) {
        self.islands
            .set_dvfs_index(island.index(), idx, &self.config.dvfs);
    }

    /// Total DVFS transitions performed by an island so far.
    pub fn island_transitions(&self, island: IslandId) -> u64 {
        self.islands.transitions(island.index())
    }

    /// Read view of one core's state (profile, lifetime accounting).
    pub fn core(&self, core: CoreId) -> CoreView<'_> {
        CoreView::new(&self.cores, core)
    }

    /// Read view of one island's state (operating point, transitions).
    pub fn island(&self, island: IslandId) -> IslandView<'_> {
        IslandView::new(&self.islands, island)
    }

    /// The per-island process-variation map.
    pub fn variation(&self) -> &VariationMap {
        &self.variation
    }

    /// Per-core die temperatures in °C, borrowed (allocation-free).
    pub fn temperatures_deg(&self) -> &[f64] {
        self.thermal.temperatures_deg()
    }

    /// The memory-contention factor currently in effect (≥ 1).
    pub fn memory_contention(&self) -> f64 {
        self.mem_contention
    }

    /// Advances the chip by one PIC interval and reports what happened.
    pub fn step_pic(&mut self) -> ChipSnapshot {
        self.step(self.config.pic_interval)
    }

    /// Advances the chip by one PIC interval, writing the observations into
    /// a caller-owned snapshot buffer (see [`Chip::step_into`]).
    pub fn step_pic_into(&mut self, out: &mut ChipSnapshot) {
        self.step_into(self.config.pic_interval, out);
    }

    /// Advances the chip by an arbitrary interval `dt`.
    pub fn step(&mut self, dt: Seconds) -> ChipSnapshot {
        let mut out = ChipSnapshot::empty();
        self.step_into(dt, &mut out);
        out
    }

    /// Advances the chip by `dt`, writing the observations into `out`.
    ///
    /// The snapshot's vectors are cleared and refilled in place, so a buffer
    /// obtained from [`ChipSnapshot::empty`] and reused across steps makes
    /// steady-state stepping allocation-free after the first call. Results
    /// are bit-identical to [`Chip::step`].
    pub fn step_into(&mut self, dt: Seconds, out: &mut ChipSnapshot) {
        out.core_powers.clear();
        out.islands.clear();
        out.islands.reserve(self.islands.len());
        let mut total_instructions = 0.0;
        let mut total_dram_bytes = 0.0;
        let contention = self.mem_contention;

        // One pass over all cores for the phase sequences (independent
        // per-core streams, so this draws exactly what the per-island walk
        // would), then one fused CPI+power pass per island segment.
        self.cores.advance_phases(dt);
        for i in 0..self.islands.len() {
            let op = self.config.dvfs.point(self.islands.dvfs_index(i));
            let frozen = self.islands.take_freeze(i, &self.config.dvfs, dt);
            let leak_mult = self.variation.multiplier(IslandId(i));
            // V²f and the leakage voltage factor are functions of the
            // operating point alone — compute them once per island, not
            // once per core (bit-identical, see `IslandPowerTerms`).
            let terms = self.config.power.island_terms(op);
            let totals = self.cores.step_island(
                i,
                op.frequency,
                dt,
                frozen,
                contention,
                &self.config.power,
                terms,
                leak_mult,
                self.thermal.temperatures_deg(),
            );
            let seg = self.cores.segment(i);
            out.core_powers.extend_from_slice(seg.core_powers());
            // Fold DRAM bytes in chip core order — the exact addition
            // order of the array-of-structs walk.
            for &b in seg.dram_bytes() {
                total_dram_bytes += b;
            }
            total_instructions += totals.instructions;
            self.push_island_snapshot(out, i, totals, dt);
        }

        self.finish_step(dt, out, total_instructions, total_dram_bytes, contention);
    }

    /// [`Chip::step_pic_into`] with the island segments sharded across
    /// `pool` (see [`Chip::step_into_on`]).
    pub fn step_pic_into_on(&mut self, out: &mut ChipSnapshot, pool: &Pool) {
        self.step_into_on(self.config.pic_interval, out, pool);
    }

    /// Advances the chip by `dt` with the per-island work sharded across
    /// `pool`, writing the observations into `out`.
    ///
    /// Each island's segment is moved onto the pool whole (phases + CPI +
    /// power for its cores), then restored and reduced in island order —
    /// the exact serial reduction order — so trajectories are
    /// byte-identical to [`Chip::step_into`] at any worker count. Per-core
    /// phase streams are independent, which is what makes the per-segment
    /// phase advance order-free.
    ///
    /// Unlike the serial path this one allocates per step (boxed pool jobs
    /// and a temperature snapshot); it exists for large chips where the
    /// parallelism pays for that overhead many times over.
    pub fn step_into_on(&mut self, dt: Seconds, out: &mut ChipSnapshot, pool: &Pool) {
        if pool.workers() <= 1 || self.islands.len() <= 1 {
            self.step_into(dt, out);
            return;
        }
        let n_islands = self.islands.len();
        let width = self.islands.width();
        out.core_powers.clear();
        out.islands.clear();
        out.islands.reserve(n_islands);
        let contention = self.mem_contention;
        // The job closure is 'static: snapshot the temperatures into a
        // shared slice and clone the (stack-only) power model.
        let temps: Arc<[f64]> = Arc::from(self.thermal.temperatures_deg());
        let power_model = self.config.power.clone();

        // Serial prologue in island order: consume freezes and hoist the
        // island-constant factors exactly as the serial walk does, then
        // move each island's segment into its job.
        let mut jobs = Vec::with_capacity(n_islands);
        for i in 0..n_islands {
            let op = self.config.dvfs.point(self.islands.dvfs_index(i));
            let frozen = self.islands.take_freeze(i, &self.config.dvfs, dt);
            let leak_mult = self.variation.multiplier(IslandId(i));
            let terms = self.config.power.island_terms(op);
            let seg = std::mem::take(&mut self.cores.segments_mut()[i]);
            jobs.push((i, seg, op.frequency, frozen, terms, leak_mult));
        }
        let results = pool.parallel_map(jobs, move |(i, mut seg, freq, frozen, terms, leak)| {
            seg.advance_phases(dt);
            let lo = i * width;
            let totals = seg.step(
                freq,
                dt,
                frozen,
                contention,
                &power_model,
                terms,
                leak,
                &temps[lo..lo + seg.len()],
            );
            (seg, totals)
        });

        // Serial epilogue in island order: restore the segments and fold
        // totals and DRAM bytes in exactly the serial reduction order.
        let mut total_instructions = 0.0;
        let mut total_dram_bytes = 0.0;
        for (i, (seg, totals)) in results.into_iter().enumerate() {
            out.core_powers.extend_from_slice(seg.core_powers());
            for &b in seg.dram_bytes() {
                total_dram_bytes += b;
            }
            self.cores.segments_mut()[i] = seg;
            total_instructions += totals.instructions;
            self.push_island_snapshot(out, i, totals, dt);
        }

        self.finish_step(dt, out, total_instructions, total_dram_bytes, contention);
    }

    /// Folds one island's [`SegmentTotals`] into its `IslandSnapshot` —
    /// shared verbatim by the serial and sharded steps so their island
    /// arithmetic cannot drift apart.
    fn push_island_snapshot(
        &self,
        out: &mut ChipSnapshot,
        i: usize,
        totals: crate::soa::SegmentTotals,
        dt: Seconds,
    ) {
        let n = self.islands.width() as f64;
        let op = self.config.dvfs.point(self.islands.dvfs_index(i));
        let utilization = Ratio::new(totals.util_sum / n);
        let f_ratio = op.frequency / self.config.dvfs.max_point().frequency;
        out.islands.push(IslandSnapshot {
            island: IslandId(i),
            power: totals.power,
            utilization,
            capacity_utilization: Ratio::new(utilization.value() * f_ratio),
            instructions: totals.instructions,
            bips: totals.instructions / dt.value() / 1.0e9,
            dvfs_index: self.islands.dvfs_index(i),
        });
    }

    /// The shared tail of the serial and sharded steps: thermal advance,
    /// contention feedback, and snapshot bookkeeping.
    fn finish_step(
        &mut self,
        dt: Seconds,
        out: &mut ChipSnapshot,
        total_instructions: f64,
        total_dram_bytes: f64,
        contention: f64,
    ) {
        self.thermal.step(&out.core_powers, dt);
        self.time += dt;

        // Next interval's contention from this interval's traffic, lightly
        // smoothed so the factor does not chatter interval to interval.
        let memory_demand = total_dram_bytes / dt.value();
        if let Some(bw) = self.config.memory_bandwidth {
            let raw = (memory_demand / bw).max(1.0);
            self.mem_contention = 0.5 * self.mem_contention + 0.5 * raw;
        }

        out.temperatures.clear();
        out.temperatures.extend(
            self.thermal
                .temperatures_deg()
                .iter()
                .map(|&t| Celsius::new(t)),
        );
        out.time = self.time;
        out.dt = dt;
        out.chip_power = out.islands.iter().map(|s| s.power).sum();
        out.instructions = total_instructions;
        out.memory_demand = memory_demand;
        out.memory_contention = contention;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_workloads::{Mix, WorkloadAssignment};

    fn chip() -> Chip {
        Chip::new(
            CmpConfig::paper_default(),
            &WorkloadAssignment::paper_mix(Mix::Mix1, 8),
        )
    }

    #[test]
    fn boots_at_top_operating_point() {
        let c = chip();
        for i in 0..4 {
            assert_eq!(c.island_dvfs(IslandId(i)), 7);
        }
    }

    #[test]
    fn max_power_is_plausible_for_8_cores() {
        let c = chip();
        let p = c.max_power().value();
        assert!(p > 80.0 && p < 110.0, "8-core max power {p} W");
    }

    #[test]
    fn snapshot_totals_are_consistent() {
        let mut c = chip();
        let s = c.step_pic();
        let island_sum: Watts = s.islands.iter().map(|i| i.power).sum();
        assert!((island_sum.value() - s.chip_power.value()).abs() < 1e-9);
        let core_sum: Watts = s.core_powers.iter().copied().sum();
        assert!((core_sum.value() - s.chip_power.value()).abs() < 1e-9);
        let instr_sum: f64 = s.islands.iter().map(|i| i.instructions).sum();
        assert!((instr_sum - s.instructions).abs() < 1.0);
    }

    #[test]
    fn full_speed_power_stays_below_max_basis() {
        let mut c = chip();
        for _ in 0..200 {
            let s = c.step_pic();
            assert!(
                s.chip_power <= c.max_power(),
                "power {} exceeded basis {}",
                s.chip_power,
                c.max_power()
            );
        }
    }

    #[test]
    fn lowering_dvfs_reduces_power_and_throughput() {
        let mut hi = chip();
        let mut lo = chip();
        for i in 0..4 {
            lo.set_island_dvfs(IslandId(i), 0);
        }
        // Skip the transition interval, then compare steady state.
        lo.step_pic();
        hi.step_pic();
        let mut p_hi = 0.0;
        let mut p_lo = 0.0;
        let mut i_hi = 0.0;
        let mut i_lo = 0.0;
        for _ in 0..50 {
            let sh = hi.step_pic();
            let sl = lo.step_pic();
            p_hi += sh.chip_power.value();
            p_lo += sl.chip_power.value();
            i_hi += sh.instructions;
            i_lo += sl.instructions;
        }
        assert!(p_lo < 0.5 * p_hi, "low V/F power {p_lo} vs {p_hi}");
        assert!(i_lo < i_hi);
        // But throughput falls less than power: the energy argument for DVFS.
        assert!(i_lo / i_hi > p_lo / p_hi);
    }

    #[test]
    fn dvfs_transition_freezes_cost_instructions() {
        let mut steady = chip();
        let mut switching = chip();
        // Warm both up identically.
        steady.step_pic();
        switching.step_pic();
        let mut i_steady = 0.0;
        let mut i_switch = 0.0;
        for k in 0..50 {
            i_steady += steady.step_pic().instructions;
            // Toggle between the top two points every interval.
            switching.set_island_dvfs(IslandId(0), 6 + (k % 2));
            i_switch += switching.step_pic().instructions;
        }
        assert!(i_switch < i_steady, "churn must cost throughput");
        assert_eq!(switching.island_transitions(IslandId(0)), 50);
    }

    #[test]
    fn temperatures_rise_under_load() {
        let mut c = chip();
        let ambient = c.temperatures_deg()[0];
        for _ in 0..400 {
            c.step_pic();
        }
        for &t in c.temperatures_deg() {
            assert!(t > ambient, "core should heat up: {t} °C");
        }
    }

    #[test]
    fn leaky_variation_increases_power() {
        let cfg = CmpConfig::paper_default();
        let asg = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
        let mut uniform = Chip::new(cfg.clone(), &asg);
        let mut leaky = Chip::with_variation(cfg, &asg, VariationMap::paper_four_island());
        let pu: f64 = (0..20).map(|_| uniform.step_pic().chip_power.value()).sum();
        let pl: f64 = (0..20).map(|_| leaky.step_pic().chip_power.value()).sum();
        assert!(pl > pu, "leaky chip {pl} must draw more than uniform {pu}");
        assert!(leaky.max_power() > uniform.max_power());
    }

    #[test]
    fn percent_of_max_roundtrip() {
        let c = chip();
        let half = c.max_power() * 0.5;
        assert!((c.percent_of_max(half).percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "core count must match")]
    fn mismatched_assignment_rejected() {
        Chip::new(
            CmpConfig::with_topology(16, 4),
            &WorkloadAssignment::paper_mix(Mix::Mix1, 8),
        );
    }

    #[test]
    fn memory_contention_is_idle_on_a_light_8_core_chip() {
        let mut c = chip();
        for _ in 0..50 {
            c.step_pic();
        }
        assert!(
            c.memory_contention() < 1.05,
            "8 Mix-1 cores should not saturate 6.4 GB/s: {}",
            c.memory_contention()
        );
    }

    #[test]
    fn memory_contention_binds_for_an_all_memory_chip() {
        // 32 cores of native canneal at full speed overwhelm the
        // controller; the contention factor must rise and throughput must
        // fall relative to an infinite-bandwidth twin.
        use cpm_workloads::{parsec, InputSet, WorkloadAssignment};
        let profile = parsec::canneal().with_input(InputSet::Native);
        let assignment = WorkloadAssignment::new(vec![profile; 32], 4);
        let cfg = CmpConfig::with_topology(32, 4);
        let mut ideal_cfg = cfg.clone();
        ideal_cfg.memory_bandwidth = None;
        let mut real = Chip::new(cfg, &assignment);
        let mut ideal = Chip::new(ideal_cfg, &assignment);
        let mut i_real = 0.0;
        let mut i_ideal = 0.0;
        for _ in 0..60 {
            i_real += real.step_pic().instructions;
            i_ideal += ideal.step_pic().instructions;
        }
        assert!(
            real.memory_contention() > 1.1,
            "contention factor {}",
            real.memory_contention()
        );
        assert!(
            i_real < 0.95 * i_ideal,
            "bandwidth ceiling must cost throughput"
        );
    }

    #[test]
    fn snapshot_reports_memory_demand() {
        let mut c = chip();
        let s = c.step_pic();
        assert!(s.memory_demand > 0.0);
        assert_eq!(
            s.memory_contention, 1.0,
            "first interval starts uncontended"
        );
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let mut a = chip();
        let mut b = chip();
        for _ in 0..30 {
            assert_eq!(a.step_pic(), b.step_pic());
        }
    }

    /// The sharding contract: a chip stepped with its islands fanned out
    /// across pool workers produces the identical trajectory — snapshots,
    /// per-core powers, temperatures, contention feedback — as the serial
    /// walk, under wandering DVFS (so transition freezes are in play).
    #[test]
    fn sharded_step_matches_serial_bitwise() {
        let cfg = CmpConfig::with_topology(32, 4);
        let asg = WorkloadAssignment::paper_mix(Mix::Mix3, 32);
        let mut serial = Chip::new(cfg.clone(), &asg);
        let mut sharded = Chip::new(cfg, &asg);
        let pool = Pool::new(4);
        let mut a = ChipSnapshot::empty();
        let mut b = ChipSnapshot::empty();
        for step in 0..60 {
            if step % 7 == 0 {
                let island = IslandId(step % 8);
                let idx = (step * 3) % 8;
                serial.set_island_dvfs(island, idx);
                sharded.set_island_dvfs(island, idx);
            }
            serial.step_pic_into(&mut a);
            sharded.step_pic_into_on(&mut b, &pool);
            assert_eq!(a, b, "step {step}");
            for (c, (x, y)) in a.core_powers.iter().zip(&b.core_powers).enumerate() {
                assert_eq!(
                    x.value().to_bits(),
                    y.value().to_bits(),
                    "core {c} power bits, step {step}"
                );
            }
        }
        assert_eq!(
            serial.memory_contention().to_bits(),
            sharded.memory_contention().to_bits()
        );
    }

    /// A single-worker pool must take the allocation-free serial path and
    /// still agree with the pooled result.
    #[test]
    fn sharded_step_on_one_worker_is_the_serial_path() {
        let mut serial = chip();
        let mut pooled = chip();
        let pool = Pool::new(1);
        let mut a = ChipSnapshot::empty();
        let mut b = ChipSnapshot::empty();
        for _ in 0..20 {
            serial.step_pic_into(&mut a);
            pooled.step_pic_into_on(&mut b, &pool);
            assert_eq!(a, b);
        }
    }
}
