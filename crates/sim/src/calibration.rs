//! Profile ↔ cache-simulator calibration.
//!
//! A [`crate::core_model::CoreModel`] can source its miss rates either from
//! the profile's paper-shaped constants (deterministic, the default for
//! experiments) or from *measurement*: running the benchmark's synthetic
//! address stream through the real cache hierarchy. The measured path keeps
//! the substrate honest — the working-set and locality parameters must
//! actually produce the claimed cache behaviour — and is compared against
//! the constants in tests and in an ablation bench.

use crate::cache::{Cache, Hierarchy};
use crate::config::CacheConfig;
use cpm_workloads::{AddressStream, BenchmarkProfile};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Memory references per kilo-instruction assumed by the calibrator
/// (≈ 30 % loads+stores — the standard x86 integer mix).
pub const REFS_PER_KILO_INSTRUCTION: f64 = 300.0;

/// Reference count for the warmup pass.
const WARMUP_REFS: usize = 60_000;
/// Reference count for the measurement pass.
const MEASURE_REFS: usize = 200_000;

/// Miss rates measured by driving the cache simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRates {
    /// L1 misses per kilo-instruction.
    pub l1_mpki: f64,
    /// L2 misses per kilo-instruction (DRAM accesses).
    pub l2_mpki: f64,
    /// Raw L1 miss ratio.
    pub l1_miss_ratio: f64,
    /// Raw local L2 miss ratio (of L1 misses).
    pub l2_miss_ratio: f64,
}

// ---------------------------------------------------------------------------
// Memoization
//
// Calibration is a pure function of (profile, cache config, seed): the
// address stream is seeded deterministically and the hierarchy starts cold.
// Sweep cells that differ only in budget re-run the identical calibration,
// so we memoize process-wide. The memo key is the exact `Debug` rendering of
// the inputs — Rust's `{:?}` for `f64` is round-trip exact, so two keys are
// equal iff the inputs are bit-identical, and a cached value is always
// bit-identical to recomputation (the workers=1 vs workers=4 byte-
// determinism gate is unaffected by which thread populates the cache first).
// The computation runs *outside* the lock; a racing double-compute writes
// the same bits.
// ---------------------------------------------------------------------------

static CALIBRATE_MEMO: OnceLock<Mutex<HashMap<String, MeasuredRates>>> = OnceLock::new();
static SHARED_MEMO: OnceLock<Mutex<HashMap<String, Vec<MeasuredRates>>>> = OnceLock::new();
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);
static MEMO_MISSES: AtomicU64 = AtomicU64::new(0);

/// Locks a memo cache, recovering a poisoned lock. The caches are only
/// mutated by whole-entry inserts of already-computed values, so a
/// panicking prober can never leave a key half-written; treating poison
/// as fatal would wedge every calibration for the rest of the process
/// over a panic that already propagated to its own caller.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Test support: panics *while holding* both memo locks (the panic is
/// caught here), leaving them poisoned exactly as a prober dying
/// mid-lookup would. Subsequent lookups must recover, not wedge.
#[doc(hidden)]
pub fn poison_memo_caches_for_tests() {
    let cases: [fn(); 2] = [
        || {
            let _guard = CALIBRATE_MEMO.get_or_init(Default::default).lock();
            panic!("poisoning calibrate memo");
        },
        || {
            let _guard = SHARED_MEMO.get_or_init(Default::default).lock();
            panic!("poisoning shared memo");
        },
    ];
    for poison in cases {
        let _ = std::panic::catch_unwind(poison);
    }
}

/// Cumulative (hits, misses) across both calibration memo caches for this
/// process — exported to the metrics registry by the sweep and trace
/// drivers so artifacts show the memoization working.
pub fn cache_stats() -> (u64, u64) {
    (
        MEMO_HITS.load(Ordering::Relaxed),
        MEMO_MISSES.load(Ordering::Relaxed),
    )
}

fn private_key(profile: &BenchmarkProfile, cache: &CacheConfig, seed: u64) -> String {
    format!("{profile:?}|{cache:?}|{seed}")
}

fn shared_key(profiles: &[BenchmarkProfile], cache: &CacheConfig, seed: u64) -> String {
    let mut key = String::new();
    for p in profiles {
        key.push_str(&format!("{p:?};"));
    }
    key.push_str(&format!("|{cache:?}|{seed}"));
    key
}

/// Runs `profile`'s address stream through a fresh hierarchy and reports
/// measured miss rates. Memoized on (profile, cache config, seed); the
/// cached value is bit-identical to [`calibrate_uncached`].
pub fn calibrate(profile: &BenchmarkProfile, cache: &CacheConfig, seed: u64) -> MeasuredRates {
    let memo = CALIBRATE_MEMO.get_or_init(Default::default);
    let key = private_key(profile, cache, seed);
    if let Some(&rates) = lock_recover(memo).get(&key) {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        return rates;
    }
    MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
    let rates = calibrate_uncached(profile, cache, seed);
    lock_recover(memo).insert(key, rates);
    rates
}

/// The memo-free calibration path: always re-drives the cache simulator.
pub fn calibrate_uncached(
    profile: &BenchmarkProfile,
    cache: &CacheConfig,
    seed: u64,
) -> MeasuredRates {
    let mut h = Hierarchy::new(cache);
    let mut stream = AddressStream::new(profile, seed);
    for _ in 0..WARMUP_REFS {
        h.access(stream.next_address());
    }
    h.reset_stats();
    for _ in 0..MEASURE_REFS {
        h.access(stream.next_address());
    }
    let l1_ratio = h.l1.miss_ratio();
    let l2_ratio = h.l2.miss_ratio();
    MeasuredRates {
        l1_mpki: REFS_PER_KILO_INSTRUCTION * l1_ratio,
        l2_mpki: REFS_PER_KILO_INSTRUCTION * l1_ratio * l2_ratio,
        l1_miss_ratio: l1_ratio,
        l2_miss_ratio: l2_ratio,
    }
}

/// Calibrates a *co-running group* that shares one physically-unified L2:
/// each core keeps its private L1, but all L1 misses compete for a single
/// L2 of `l2_bytes_per_core × n` bytes. Streams are interleaved
/// round-robin (the per-interval interleaving a real shared cache sees),
/// so cache-hungry neighbours evict each other's lines — the destructive
/// interference a per-core-slice model cannot show.
///
/// Address streams are offset per core so distinct cores never alias the
/// same lines.
///
/// Memoized on (profiles, cache config, seed); the cached vector is
/// bit-identical to [`calibrate_shared_uncached`].
pub fn calibrate_shared(
    profiles: &[BenchmarkProfile],
    cache: &CacheConfig,
    seed: u64,
) -> Vec<MeasuredRates> {
    let memo = SHARED_MEMO.get_or_init(Default::default);
    let key = shared_key(profiles, cache, seed);
    if let Some(rates) = lock_recover(memo).get(&key) {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        return rates.clone();
    }
    MEMO_MISSES.fetch_add(1, Ordering::Relaxed);
    let rates = calibrate_shared_uncached(profiles, cache, seed);
    lock_recover(memo).insert(key, rates.clone());
    rates
}

/// The memo-free shared-L2 calibration path.
pub fn calibrate_shared_uncached(
    profiles: &[BenchmarkProfile],
    cache: &CacheConfig,
    seed: u64,
) -> Vec<MeasuredRates> {
    assert!(!profiles.is_empty(), "need at least one co-runner");
    let n = profiles.len();
    let shared_l2_bytes = cache.l2_bytes_per_core * n;
    let mut l1s: Vec<Cache> = (0..n)
        .map(|_| Cache::new(cache.l1_bytes, cache.l1_ways, cache.line_bytes))
        .collect();
    let mut l2 = Cache::new(shared_l2_bytes, cache.l2_ways, cache.line_bytes);
    let mut streams: Vec<AddressStream> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| AddressStream::new(p, seed.wrapping_add(i as u64)))
        .collect();
    // Each core's addresses live in a disjoint 1 TiB region so distinct
    // cores never alias the same lines.
    let place = |i: usize, a: u64| a + ((i as u64) << 40);
    // Track per-core L2 stats by hand (the shared cache's counters mix
    // everyone together).
    let mut l1_miss = vec![0u64; n];
    let mut l2_miss = vec![0u64; n];
    let mut refs = vec![0u64; n];
    let total = (WARMUP_REFS + MEASURE_REFS) * n;
    for k in 0..total {
        let i = k % n;
        let addr = place(i, streams[i].next_address());
        let warm = k < WARMUP_REFS * n;
        if !warm {
            refs[i] += 1;
        }
        if !l1s[i].access(addr) {
            let hit = l2.access(addr);
            if !warm {
                l1_miss[i] += 1;
                if !hit {
                    l2_miss[i] += 1;
                }
            }
        }
    }
    (0..n)
        .map(|i| {
            let l1_ratio = l1_miss[i] as f64 / refs[i].max(1) as f64;
            let l2_local = if l1_miss[i] == 0 {
                0.0
            } else {
                l2_miss[i] as f64 / l1_miss[i] as f64
            };
            MeasuredRates {
                l1_mpki: REFS_PER_KILO_INSTRUCTION * l1_ratio,
                l2_mpki: REFS_PER_KILO_INSTRUCTION * l1_ratio * l2_local,
                l1_miss_ratio: l1_ratio,
                l2_miss_ratio: l2_local,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_workloads::{parsec, InputSet};

    fn cfg() -> CacheConfig {
        CacheConfig::paper_default()
    }

    #[test]
    fn small_working_set_fits_in_l2() {
        // blackscholes (2 MB working set > 512 KB slice, but heavy temporal
        // reuse) should show far lower DRAM traffic than canneal.
        let bs = calibrate(&parsec::blackscholes(), &cfg(), 1);
        let cn = calibrate(&parsec::canneal(), &cfg(), 1);
        assert!(
            cn.l2_mpki > 2.0 * bs.l2_mpki,
            "canneal {} vs blackscholes {}",
            cn.l2_mpki,
            bs.l2_mpki
        );
    }

    #[test]
    fn native_input_increases_measured_dram_traffic() {
        let sim_large = calibrate(&parsec::facesim(), &cfg(), 2);
        let native = calibrate(&parsec::facesim().with_input(InputSet::Native), &cfg(), 2);
        assert!(
            native.l2_mpki > sim_large.l2_mpki,
            "native {} ≤ sim-large {}",
            native.l2_mpki,
            sim_large.l2_mpki
        );
    }

    #[test]
    fn measured_rates_are_internally_consistent() {
        for p in parsec::all() {
            let r = calibrate(&p, &cfg(), 3);
            assert!(r.l1_mpki >= r.l2_mpki, "{}: L2 ⊆ L1 misses", p.name);
            assert!((0.0..=1.0).contains(&r.l1_miss_ratio));
            assert!((0.0..=1.0).contains(&r.l2_miss_ratio));
            assert!(r.l1_mpki <= REFS_PER_KILO_INSTRUCTION);
        }
    }

    #[test]
    fn shared_l2_interference_hurts_the_small_working_set() {
        // blackscholes solo vs blackscholes co-running with three copies of
        // native canneal in one shared L2: the hog evicts the victim's
        // resident set and its DRAM traffic rises.
        let cfg = cfg();
        let victim = parsec::blackscholes();
        let hog = parsec::canneal().with_input(InputSet::Native);
        let solo = calibrate_shared(std::slice::from_ref(&victim), &cfg, 5)[0];
        let together = calibrate_shared(&[victim, hog.clone(), hog.clone(), hog], &cfg, 5)[0];
        // LRU protects the victim's frequently re-touched hot set fairly
        // well, so the interference is measurable but not catastrophic.
        assert!(
            together.l2_mpki > 1.08 * solo.l2_mpki,
            "co-running L2 MPKI {} vs solo {}",
            together.l2_mpki,
            solo.l2_mpki
        );
    }

    #[test]
    fn shared_calibration_of_one_matches_private_shape() {
        // A single "co-runner" sees the same geometry as the private-slice
        // path; measured rates should land close.
        let cfg = cfg();
        let p = parsec::freqmine();
        let private = calibrate(&p, &cfg, 9);
        let shared = calibrate_shared(&[p], &cfg, 9)[0];
        assert!(
            (shared.l1_miss_ratio - private.l1_miss_ratio).abs() < 0.05,
            "L1 ratios diverge: {} vs {}",
            shared.l1_miss_ratio,
            private.l1_miss_ratio
        );
    }

    #[test]
    fn calibration_is_deterministic_per_seed() {
        let a = calibrate(&parsec::vips(), &cfg(), 9);
        let b = calibrate(&parsec::vips(), &cfg(), 9);
        assert_eq!(a, b);
    }

    #[test]
    fn measured_class_ordering_matches_profile_intent() {
        // The measured DRAM traffic should rank the M-role natives above
        // the C-role sim-large benchmarks — the substrate agrees with the
        // constants on who is memory-bound.
        let c_role: f64 = ["bschls", "btrack", "fmine", "x264"]
            .iter()
            .map(|s| calibrate(&parsec::by_short(s).unwrap(), &cfg(), 4).l2_mpki)
            .sum::<f64>()
            / 4.0;
        let m_role: f64 = ["sclust", "fsim", "canneal", "vips"]
            .iter()
            .map(|s| {
                calibrate(
                    &parsec::by_short(s).unwrap().with_input(InputSet::Native),
                    &cfg(),
                    4,
                )
                .l2_mpki
            })
            .sum::<f64>()
            / 4.0;
        assert!(
            m_role > 1.5 * c_role,
            "measured M-role {m_role} vs C-role {c_role}"
        );
    }
}
