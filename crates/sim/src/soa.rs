//! Structure-of-arrays chip state: the kilocore-scaling layout.
//!
//! [`crate::core_model::CoreModel`] and [`crate::island::IslandState`] are
//! the right unit of *meaning* — one core, one island — but a 1024-core
//! step over `Vec<CoreModel>` walks a thousand scattered structs. The
//! banks here keep every hot scalar in its own contiguous `Vec<f64>` so
//! [`crate::chip::Chip`] steps an island as one tight loop over a segment
//! of parallel arrays, fusing the CPI model with the per-island V²f/leakage
//! power terms.
//!
//! A [`CoreBank`] is a list of per-island [`CoreSegment`]s. Each segment
//! owns its island's columns outright (including its cores' phase streams
//! and the per-core power/DRAM scratch the chip folds afterwards), so the
//! chip stepper can move whole segments onto pool workers and restore them
//! in island order — the sharded step reduces in exactly the serial order.
//!
//! Inside a segment the step runs in `LANES`-wide chunks: an elementwise
//! CPI pass, a power pass through the lane kernels of `cpm-power`, and a
//! serial fold, with a scalar tail for the remainder. Chunking never
//! reassociates: the elementwise passes evaluate token-identical
//! expressions per lane, and every accumulator (island totals, the
//! chip-order DRAM sum) still receives its additions in the original core
//! order — so the contract from PR 4 holds unchanged: a [`CoreBank`]
//! stepped island-by-island is bit-identical to the same cores stepped one
//! [`CoreModel::step_contended`](crate::core_model::CoreModel::step_contended)
//! at a time, and an [`IslandBank`] mirrors
//! [`IslandState`](crate::island::IslandState)'s actuation semantics
//! exactly. The scalar structs stay the public single-entity API;
//! [`CoreView`] / [`IslandView`] re-expose their read accessors over the
//! banks.

use cpm_power::dvfs::DvfsTable;
use cpm_power::{CorePowerModel, IslandPowerTerms};
use cpm_units::{Celsius, CoreId, Hertz, IslandId, Ratio, Seconds, Watts};
use cpm_workloads::{BenchmarkProfile, PhaseBank};
use std::ops::Range;

/// Chunk width of the segment step. Eight `f64`s span two AVX2 registers
/// (or four NEON ones); the pass bodies are elementwise over arrays of
/// this size, which is the shape LLVM's autovectorizer recognizes.
const LANES: usize = 8;

/// Island-level aggregates of one [`CoreSegment::step`] call — the
/// quantities `Chip::step_into` folds into an `IslandSnapshot`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentTotals {
    /// Σ core power over the segment.
    pub power: Watts,
    /// Σ per-core utilization (callers divide by the core count).
    pub util_sum: f64,
    /// Σ instructions retired.
    pub instructions: f64,
}

/// The island-constant inputs of one segment step, hoisted once per
/// island. All are pure functions of island-constant arguments, so
/// computing them up front changes nothing bit-wise.
#[derive(Clone, Copy)]
struct StepCtx {
    cycles: f64,
    avail_frac: f64,
    f_val: f64,
    dt_val: f64,
    dram_latency_mult: f64,
    terms: IslandPowerTerms,
    leak_mult: f64,
}

/// One island's cores in structure-of-arrays form.
///
/// Each index holds exactly the state a
/// [`CoreModel`](crate::core_model::CoreModel) would: the profile's hot
/// scalars, the (possibly calibrated) miss rates, lifetime accounting, and
/// the per-core phase sequence. The three `*_scale` arrays are scratch for
/// the interval's phase samples, filled by [`CoreSegment::advance_phases`]
/// and consumed by [`CoreSegment::step`]; `core_powers` / `dram_bytes`
/// are per-core step outputs the chip folds in core order afterwards.
///
/// The segment owns everything its step touches, so the chip stepper can
/// move it onto a pool worker (`std::mem::take` + restore) without any
/// shared mutable state.
#[derive(Debug, Clone, Default)]
pub struct CoreSegment {
    profiles: Vec<BenchmarkProfile>,
    base_cpi: Vec<f64>,
    activity: Vec<f64>,
    /// The hoisted miss-rate factors of [`crate::core_model::miss_terms`]:
    /// `l1_mpki/1000·L2_HIT_CYCLES`, `l2_mpki/1000·DRAM_LATENCY_S`, and
    /// `l2_mpki/1000·64` — per-core constants, folded at push time so the
    /// CPI pass is multiply-add with a single reciprocal.
    l1_term: Vec<f64>,
    l2_dram: Vec<f64>,
    l2_bytes: Vec<f64>,
    total_instructions: Vec<f64>,
    total_time: Vec<f64>,
    phases: PhaseBank,
    cpi_scale: Vec<f64>,
    mem_scale: Vec<f64>,
    activity_scale: Vec<f64>,
    core_powers: Vec<Watts>,
    dram_bytes: Vec<f64>,
}

impl CoreSegment {
    /// An empty segment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the core [`CoreModel::new`](crate::core_model::CoreModel::new)
    /// would build for `(profile, seed, stream)`.
    pub fn push(&mut self, profile: BenchmarkProfile, seed: u64, stream: u64) {
        self.phases.push(&profile, seed, stream);
        self.base_cpi.push(profile.base_cpi);
        self.activity.push(profile.activity);
        let (l1_term, l2_dram, l2_bytes) =
            crate::core_model::miss_terms(profile.l1_mpki, profile.l2_mpki);
        self.l1_term.push(l1_term);
        self.l2_dram.push(l2_dram);
        self.l2_bytes.push(l2_bytes);
        self.total_instructions.push(0.0);
        self.total_time.push(0.0);
        self.cpi_scale.push(1.0);
        self.mem_scale.push(1.0);
        self.activity_scale.push(1.0);
        self.core_powers.push(Watts::ZERO);
        self.dram_bytes.push(0.0);
        self.profiles.push(profile);
    }

    /// Number of cores in the segment.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the segment holds no cores.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Advances every core's phase sequence by `dt`, leaving the interval's
    /// samples in the scale scratch arrays. Per-core phase streams are
    /// independent, so a segment-local pass draws exactly the numbers the
    /// per-core walk would, regardless of how segments interleave.
    pub fn advance_phases(&mut self, dt: Seconds) {
        self.phases.advance_into(
            dt,
            &mut self.cpi_scale,
            &mut self.mem_scale,
            &mut self.activity_scale,
        );
    }

    /// Per-core power of the last [`CoreSegment::step`], in segment-core
    /// order — the thermal model's input for this island's slice.
    pub fn core_powers(&self) -> &[Watts] {
        &self.core_powers
    }

    /// Per-core DRAM traffic of the last [`CoreSegment::step`], in bytes.
    /// Folding these in core order reproduces the array-of-structs DRAM
    /// sum bit-for-bit (same addends, same addition order).
    pub fn dram_bytes(&self) -> &[f64] {
        &self.dram_bytes
    }

    /// Steps the segment through one interval at frequency `f`, fusing the
    /// CPI model with the power model whose island-constant `terms` the
    /// caller hoisted. `temps_deg` is this segment's slice of the die
    /// temperatures, one per core.
    ///
    /// The loop runs in `LANES`-wide chunks of three passes — an
    /// elementwise CPI pass, the `cpm-power` lane kernels, a serial fold —
    /// with a scalar tail identical to the unchunked body. Every per-lane
    /// expression matches
    /// [`CoreModel::step_contended`](crate::core_model::CoreModel::step_contended)
    /// token for token and every accumulator still sees its additions in
    /// core order, so results are bit-identical to the scalar walk.
    // A params struct would hide the token-for-token identity with the
    // scalar path's signature.
    #[allow(clippy::too_many_arguments)] // mirrors step_contended's params
    pub fn step(
        &mut self,
        f: Hertz,
        dt: Seconds,
        frozen: Seconds,
        dram_latency_mult: f64,
        power_model: &CorePowerModel,
        terms: IslandPowerTerms,
        leak_mult: f64,
        temps_deg: &[f64],
    ) -> SegmentTotals {
        assert!(f.value() > 0.0, "core clock must be positive");
        assert!(
            frozen.value() >= 0.0 && frozen <= dt,
            "freeze within interval"
        );
        assert!(dram_latency_mult >= 1.0, "contention can only slow memory");
        let n = self.len();
        assert_eq!(temps_deg.len(), n, "one temperature per segment core");
        let avail = dt - frozen;
        let ctx = StepCtx {
            cycles: f.cycles_in(avail),
            avail_frac: avail.value() / dt.value(),
            f_val: f.value(),
            dt_val: dt.value(),
            dram_latency_mult,
            terms,
            leak_mult,
        };
        let mut totals = SegmentTotals {
            power: Watts::ZERO,
            util_sum: 0.0,
            instructions: 0.0,
        };
        let mut base = 0;
        while base + LANES <= n {
            self.step_chunk(base, ctx, power_model, temps_deg, &mut totals);
            base += LANES;
        }
        for i in base..n {
            self.step_one(i, ctx, power_model, temps_deg, &mut totals);
        }
        totals
    }

    /// One `LANES`-wide chunk of [`CoreSegment::step`], in three passes.
    fn step_chunk(
        &mut self,
        base: usize,
        ctx: StepCtx,
        power_model: &CorePowerModel,
        temps_deg: &[f64],
        totals: &mut SegmentTotals,
    ) {
        // Pass 1 — the CPI model, elementwise over the lanes (this is the
        // pass LLVM vectorizes: mul/add/div and two clamps, no calls).
        // `Ratio::new(x).clamped().value()` is `x.clamp(0.0, 1.0)` by
        // definition, so the plain-f64 clamp is the identical operation.
        let mut instr = [0.0; LANES];
        let mut util = [0.0; LANES];
        let mut act = [0.0; LANES];
        for l in 0..LANES {
            let i = base + l;
            let mem = self.mem_scale[i];
            let on_chip = self.base_cpi[i] * self.cpi_scale[i] + self.l1_term[i] * mem;
            let dram_base = self.l2_dram[i] * mem * ctx.f_val;
            let dram = dram_base * ctx.dram_latency_mult;
            let cpi = on_chip + dram;
            let inv_cpi = 1.0 / cpi;
            let instructions = ctx.cycles * inv_cpi;
            let busy_frac = on_chip * inv_cpi;
            instr[l] = instructions;
            util[l] = (busy_frac * ctx.avail_frac).clamp(0.0, 1.0);
            act[l] = (self.activity[i] * self.activity_scale[i] * busy_frac * ctx.avail_frac)
                .clamp(0.0, 1.0);
            self.total_instructions[i] += instructions;
            self.total_time[i] += ctx.dt_val;
            self.dram_bytes[i] = instructions * self.l2_bytes[i] * mem;
        }
        // Pass 2 — per-lane power through the cpm-power lane kernels
        // (vector dynamic pass, scalar-libm leakage pass; each lane
        // bit-identical to the scalar power call by that crate's tests).
        let temps: &[f64; LANES] = temps_deg[base..base + LANES]
            .try_into()
            .expect("chunk is LANES wide");
        let mut power = [Watts::ZERO; LANES];
        power_model.total_power_with_terms_lanes(ctx.terms, &act, temps, ctx.leak_mult, &mut power);
        // Pass 3 — serial fold in core order: the island accumulators
        // receive exactly the additions the unchunked loop performed, in
        // the same order; no reassociation anywhere.
        self.core_powers[base..base + LANES].copy_from_slice(&power);
        for l in 0..LANES {
            totals.power += power[l];
            totals.util_sum += util[l];
            totals.instructions += instr[l];
        }
    }

    /// The scalar tail of [`CoreSegment::step`]: the original unchunked
    /// per-core body, for the `len % LANES` remainder (and, degenerately,
    /// whole sub-lane segments).
    fn step_one(
        &mut self,
        i: usize,
        ctx: StepCtx,
        power_model: &CorePowerModel,
        temps_deg: &[f64],
        totals: &mut SegmentTotals,
    ) {
        let mem = self.mem_scale[i];
        let on_chip = self.base_cpi[i] * self.cpi_scale[i] + self.l1_term[i] * mem;
        let dram_base = self.l2_dram[i] * mem * ctx.f_val;
        let dram = dram_base * ctx.dram_latency_mult;
        let cpi = on_chip + dram;
        let inv_cpi = 1.0 / cpi;
        let instructions = ctx.cycles * inv_cpi;
        let busy_frac = on_chip * inv_cpi;
        let utilization = Ratio::new(busy_frac * ctx.avail_frac).clamped();
        let activity =
            Ratio::new(self.activity[i] * self.activity_scale[i] * busy_frac * ctx.avail_frac)
                .clamped();
        self.total_instructions[i] += instructions;
        self.total_time[i] += ctx.dt_val;
        self.dram_bytes[i] = instructions * self.l2_bytes[i] * mem;
        let p = power_model.total_power_with_terms(
            ctx.terms,
            activity,
            Celsius::new(temps_deg[i]),
            ctx.leak_mult,
        );
        self.core_powers[i] = p;
        totals.power += p;
        totals.util_sum += utilization.value();
        totals.instructions += instructions;
    }
}

/// All cores of a chip, segmented by island.
///
/// Cores pushed in chip order land in `width`-sized [`CoreSegment`]s, so
/// segment `i` is exactly island `i`'s contiguous core range and the chip
/// stepper can hand whole segments to pool workers.
#[derive(Debug, Clone)]
pub struct CoreBank {
    width: usize,
    segments: Vec<CoreSegment>,
}

impl CoreBank {
    /// An empty bank whose segments hold `width` cores each (the island
    /// width).
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "an island needs at least one core");
        Self {
            width,
            segments: Vec::new(),
        }
    }

    /// Appends the core [`CoreModel::new`](crate::core_model::CoreModel::new)
    /// would build for `(profile, seed, stream)`, opening a new segment at
    /// every island boundary.
    pub fn push(&mut self, profile: BenchmarkProfile, seed: u64, stream: u64) {
        if self.len() % self.width == 0 {
            self.segments.push(CoreSegment::new());
        }
        let seg = self
            .segments
            .last_mut()
            .expect("push opened a segment at the island boundary");
        seg.push(profile, seed, stream);
    }

    /// Number of cores in the bank.
    pub fn len(&self) -> usize {
        self.segments.iter().map(CoreSegment::len).sum()
    }

    /// Whether the bank holds no cores.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Cores per segment (the island width).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Island `i`'s segment.
    pub fn segment(&self, i: usize) -> &CoreSegment {
        &self.segments[i]
    }

    /// Mutable access to the segments, for the sharded chip step's
    /// take/restore discipline.
    pub(crate) fn segments_mut(&mut self) -> &mut [CoreSegment] {
        &mut self.segments
    }

    /// Advances every core's phase sequence by `dt` (see
    /// [`CoreSegment::advance_phases`]).
    pub fn advance_phases(&mut self, dt: Seconds) {
        for seg in &mut self.segments {
            seg.advance_phases(dt);
        }
    }

    /// Steps island `island`'s segment through one interval (see
    /// [`CoreSegment::step`]). `temps_deg` is the whole chip's temperature
    /// array; the island's slice is carved out here.
    #[allow(clippy::too_many_arguments)] // mirrors step_contended's params
    pub fn step_island(
        &mut self,
        island: usize,
        f: Hertz,
        dt: Seconds,
        frozen: Seconds,
        dram_latency_mult: f64,
        power_model: &CorePowerModel,
        terms: IslandPowerTerms,
        leak_mult: f64,
        temps_deg: &[f64],
    ) -> SegmentTotals {
        let lo = island * self.width;
        let seg = &mut self.segments[island];
        seg.step(
            f,
            dt,
            frozen,
            dram_latency_mult,
            power_model,
            terms,
            leak_mult,
            &temps_deg[lo..lo + seg.len()],
        )
    }

    /// The segment and in-segment index of chip core `index`.
    fn locate(&self, index: usize) -> (&CoreSegment, usize) {
        (&self.segments[index / self.width], index % self.width)
    }
}

/// All islands of a chip in structure-of-arrays form: islands own
/// contiguous, equal-width core segments, so per-island core lists reduce
/// to one `width` scalar and [`IslandBank::core_range`].
#[derive(Debug, Clone)]
pub struct IslandBank {
    width: usize,
    dvfs_index: Vec<usize>,
    /// Set when the operating point changed since the last interval — the
    /// next interval pays the freeze cost (see [`crate::island::IslandState`]).
    pending_transition: Vec<bool>,
    transitions: Vec<u64>,
}

impl IslandBank {
    /// Creates `islands` islands of `width` cores each, all starting at
    /// `dvfs_index`.
    pub fn new(islands: usize, width: usize, dvfs_index: usize) -> Self {
        assert!(width > 0, "an island needs at least one core");
        Self {
            width,
            dvfs_index: vec![dvfs_index; islands],
            pending_transition: vec![false; islands],
            transitions: vec![0; islands],
        }
    }

    /// Number of islands.
    pub fn len(&self) -> usize {
        self.dvfs_index.len()
    }

    /// Whether the bank holds no islands.
    pub fn is_empty(&self) -> bool {
        self.dvfs_index.is_empty()
    }

    /// Cores per island.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The contiguous core-index segment of island `i`.
    pub fn core_range(&self, i: usize) -> Range<usize> {
        i * self.width..(i + 1) * self.width
    }

    /// Current operating-point index of island `i`.
    pub fn dvfs_index(&self, i: usize) -> usize {
        self.dvfs_index[i]
    }

    /// Requests a new operating point for island `i` — same semantics as
    /// [`IslandState::set_dvfs_index`](crate::island::IslandState::set_dvfs_index): a real change schedules a freeze
    /// for the next interval; requesting the current point is free.
    pub fn set_dvfs_index(&mut self, i: usize, idx: usize, table: &DvfsTable) {
        assert!(idx < table.len(), "operating point {idx} out of range");
        if idx != self.dvfs_index[i] {
            self.dvfs_index[i] = idx;
            self.pending_transition[i] = true;
            self.transitions[i] += 1;
        }
    }

    /// Consumes island `i`'s pending transition, returning the freeze time
    /// to charge against an interval of length `dt` (see
    /// [`IslandState::take_freeze`](crate::island::IslandState::take_freeze)).
    pub fn take_freeze(&mut self, i: usize, table: &DvfsTable, dt: Seconds) -> Seconds {
        if self.pending_transition[i] {
            self.pending_transition[i] = false;
            dt * table.transition_overhead()
        } else {
            Seconds::ZERO
        }
    }

    /// Total operating-point changes by island `i` so far.
    pub fn transitions(&self, i: usize) -> u64 {
        self.transitions[i]
    }
}

/// Read view of one core inside a [`CoreBank`] — the accessors
/// [`CoreModel`](crate::core_model::CoreModel) offers, backed by the parallel arrays.
#[derive(Debug, Clone, Copy)]
pub struct CoreView<'a> {
    bank: &'a CoreBank,
    index: usize,
}

impl<'a> CoreView<'a> {
    /// A view of core `core` in `bank`.
    pub fn new(bank: &'a CoreBank, core: CoreId) -> Self {
        Self {
            bank,
            index: core.index(),
        }
    }

    /// The benchmark this core runs.
    pub fn profile(&self) -> &'a BenchmarkProfile {
        let (seg, i) = self.bank.locate(self.index);
        &seg.profiles[i]
    }

    /// Cumulative instructions retired.
    pub fn total_instructions(&self) -> f64 {
        let (seg, i) = self.bank.locate(self.index);
        seg.total_instructions[i]
    }

    /// Cumulative simulated time.
    pub fn total_time(&self) -> Seconds {
        let (seg, i) = self.bank.locate(self.index);
        Seconds::new(seg.total_time[i])
    }
}

/// Read view of one island inside an [`IslandBank`] — the accessors
/// [`IslandState`](crate::island::IslandState) offers, backed by the parallel arrays.
#[derive(Debug, Clone, Copy)]
pub struct IslandView<'a> {
    bank: &'a IslandBank,
    index: usize,
}

impl<'a> IslandView<'a> {
    /// A view of island `island` in `bank`.
    pub fn new(bank: &'a IslandBank, island: IslandId) -> Self {
        Self {
            bank,
            index: island.index(),
        }
    }

    /// The island's id.
    pub fn id(&self) -> IslandId {
        IslandId(self.index)
    }

    /// The cores in this island, as a contiguous index range.
    pub fn cores(&self) -> Range<usize> {
        self.bank.core_range(self.index)
    }

    /// Current operating-point index.
    pub fn dvfs_index(&self) -> usize {
        self.bank.dvfs_index(self.index)
    }

    /// Total operating-point changes so far.
    pub fn transitions(&self) -> u64 {
        self.bank.transitions(self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_model::CoreModel;
    use crate::island::IslandState;
    use cpm_workloads::parsec;

    /// The heart of the SoA contract, parameterized over island width: a
    /// bank stepped island-at-a-time is bit-identical to the same cores
    /// stepped one `CoreModel` at a time, including lifetime accounting
    /// and the chip-order DRAM-byte sum.
    fn assert_bank_matches_scalars(width: usize, islands: usize, steps: usize) {
        let n = width * islands;
        let profiles: Vec<BenchmarkProfile> = parsec::all().into_iter().cycle().take(n).collect();
        let seed = 0xC0FFEE;
        let mut scalars: Vec<CoreModel> = profiles
            .iter()
            .enumerate()
            .map(|(c, p)| CoreModel::new(p.clone(), seed, c as u64))
            .collect();
        let mut bank = CoreBank::new(width);
        for (c, p) in profiles.iter().enumerate() {
            bank.push(p.clone(), seed, c as u64);
        }
        let power_model = CorePowerModel::paper_default();
        let table = DvfsTable::pentium_m();
        let dt = Seconds::from_ms(0.5);
        let temps: Vec<f64> = (0..n).map(|i| 45.0 + i as f64 * 0.5).collect();
        for step in 0..steps {
            // Wander the knobs: per-island operating points, occasional
            // freezes, drifting contention.
            let contention = 1.0 + (step % 5) as f64 * 0.3;
            bank.advance_phases(dt);
            let mut bank_dram = 0.0;
            let mut scalar_dram = 0.0;
            for island in 0..islands {
                let op = table.point((island + step) % table.len());
                let frozen = if step % 11 == 0 {
                    dt * 0.005
                } else {
                    Seconds::ZERO
                };
                let terms = power_model.island_terms(op);
                let leak_mult = 1.0 + island as f64 * 0.1;
                let totals = bank.step_island(
                    island,
                    op.frequency,
                    dt,
                    frozen,
                    contention,
                    &power_model,
                    terms,
                    leak_mult,
                    &temps,
                );
                let seg = bank.segment(island);
                for &b in seg.dram_bytes() {
                    bank_dram += b;
                }
                let mut power = Watts::ZERO;
                let mut util_sum = 0.0;
                let mut instructions = 0.0;
                for c in island * width..(island + 1) * width {
                    let stats = scalars[c].step_contended(op.frequency, dt, frozen, contention);
                    scalar_dram += stats.dram_bytes;
                    let p = power_model.total_power_with_terms(
                        terms,
                        stats.activity,
                        Celsius::new(temps[c]),
                        leak_mult,
                    );
                    assert_eq!(
                        seg.core_powers()[c - island * width],
                        p,
                        "core {c} power, width {width}, step {step}"
                    );
                    power += p;
                    util_sum += stats.utilization.value();
                    instructions += stats.instructions;
                }
                assert_eq!(
                    totals.power, power,
                    "island {island} power, width {width}, step {step}"
                );
                assert_eq!(
                    totals.util_sum.to_bits(),
                    util_sum.to_bits(),
                    "island {island} utilization, width {width}, step {step}"
                );
                assert_eq!(
                    totals.instructions.to_bits(),
                    instructions.to_bits(),
                    "island {island} instructions, width {width}, step {step}"
                );
            }
            assert_eq!(
                bank_dram.to_bits(),
                scalar_dram.to_bits(),
                "width {width}, step {step}"
            );
        }
        for (c, scalar) in scalars.iter().enumerate() {
            let view = CoreView::new(&bank, CoreId(c));
            assert_eq!(view.total_instructions(), scalar.total_instructions());
            assert_eq!(view.total_time(), scalar.total_time());
            assert_eq!(view.profile().name, scalar.profile().name);
        }
    }

    #[test]
    fn bank_matches_scalar_core_models_bitwise() {
        assert_bank_matches_scalars(4, 4, 200);
    }

    /// Tail handling is where chunked kernels break: every width that is
    /// not a multiple of the lane width — including the 1-core degenerate
    /// segment and widths straddling one and two chunks — must still match
    /// the scalar walk bit for bit.
    #[test]
    fn bank_matches_scalars_at_non_lane_multiple_widths() {
        for width in [1, 3, 5, 7, 9, 13, 16] {
            assert_bank_matches_scalars(width, 2, 40);
        }
    }

    #[test]
    fn island_bank_mirrors_island_state() {
        let table = DvfsTable::pentium_m();
        let dt = Seconds::from_ms(0.5);
        let mut bank = IslandBank::new(4, 2, 7);
        let mut scalars: Vec<IslandState> = (0..4)
            .map(|i| IslandState::new(IslandId(i), vec![CoreId(2 * i), CoreId(2 * i + 1)], 7))
            .collect();
        let schedule = [3usize, 3, 7, 0, 5, 5, 7, 7, 1];
        for (k, &idx) in schedule.iter().enumerate() {
            let i = k % 4;
            bank.set_dvfs_index(i, idx, &table);
            scalars[i].set_dvfs_index(idx, &table);
            for (j, scalar) in scalars.iter().enumerate() {
                assert_eq!(bank.dvfs_index(j), scalar.dvfs_index());
                assert_eq!(bank.transitions(j), scalar.transitions());
            }
            let j = (k + 1) % 4;
            assert_eq!(
                bank.take_freeze(j, &table, dt),
                scalars[j].take_freeze(&table, dt)
            );
        }
        let view = IslandView::new(&bank, IslandId(2));
        assert_eq!(view.id(), IslandId(2));
        assert_eq!(view.cores(), 4..6);
        assert_eq!(view.dvfs_index(), bank.dvfs_index(2));
        assert_eq!(view.transitions(), bank.transitions(2));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_width_island_bank_rejected() {
        IslandBank::new(4, 0, 7);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_width_core_bank_rejected() {
        CoreBank::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn island_bank_rejects_out_of_range_point() {
        IslandBank::new(1, 2, 7).set_dvfs_index(0, 8, &DvfsTable::pentium_m());
    }

    #[test]
    #[should_panic(expected = "freeze within interval")]
    fn segment_rejects_oversized_freeze() {
        let mut bank = CoreBank::new(1);
        bank.push(parsec::x264(), 1, 0);
        let power_model = CorePowerModel::paper_default();
        let table = DvfsTable::pentium_m();
        let terms = power_model.island_terms(table.max_point());
        bank.advance_phases(Seconds::from_ms(0.5));
        bank.step_island(
            0,
            table.max_point().frequency,
            Seconds::from_ms(0.5),
            Seconds::from_ms(1.0),
            1.0,
            &power_model,
            terms,
            1.0,
            &[45.0],
        );
    }
}
