//! Structure-of-arrays chip state: the kilocore-scaling layout.
//!
//! [`crate::core_model::CoreModel`] and [`crate::island::IslandState`] are
//! the right unit of *meaning* — one core, one island — but a 1024-core
//! step over `Vec<CoreModel>` walks a thousand scattered structs. The
//! banks here keep every hot scalar in its own contiguous `Vec<f64>` so
//! [`crate::chip::Chip`] steps an island as one tight loop over a segment
//! of parallel arrays, fusing the CPI model with the per-island V²f/leakage
//! power terms in a single pass.
//!
//! The contract: a [`CoreBank`] stepped segment-by-segment produces
//! bit-identical results to the same cores stepped one
//! [`CoreModel::step_contended`](crate::core_model::CoreModel::step_contended) at a time, and an [`IslandBank`] mirrors
//! [`IslandState`](crate::island::IslandState)'s actuation semantics exactly. The scalar structs stay
//! the public single-entity API; [`CoreView`] / [`IslandView`] re-expose
//! their read accessors over the banks.

use cpm_power::dvfs::DvfsTable;
use cpm_power::{CorePowerModel, IslandPowerTerms};
use cpm_units::{Celsius, CoreId, Hertz, IslandId, Ratio, Seconds, Watts};
use cpm_workloads::{BenchmarkProfile, PhaseBank};
use std::ops::Range;

/// Island-level aggregates of one [`CoreBank::step_segment`] call — the
/// quantities `Chip::step_into` folds into an `IslandSnapshot`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentTotals {
    /// Σ core power over the segment.
    pub power: Watts,
    /// Σ per-core utilization (callers divide by the core count).
    pub util_sum: f64,
    /// Σ instructions retired.
    pub instructions: f64,
}

/// All cores of a chip in structure-of-arrays form.
///
/// Each index holds exactly the state a [`CoreModel`](crate::core_model::CoreModel) would: the profile's
/// hot scalars, the (possibly calibrated) miss rates, lifetime accounting,
/// and the per-core phase sequence. The three `*_scale` arrays are scratch
/// for the interval's phase samples, filled by
/// [`CoreBank::advance_phases`] and consumed by
/// [`CoreBank::step_segment`].
#[derive(Debug, Clone, Default)]
pub struct CoreBank {
    profiles: Vec<BenchmarkProfile>,
    base_cpi: Vec<f64>,
    activity: Vec<f64>,
    l1_mpki: Vec<f64>,
    l2_mpki: Vec<f64>,
    total_instructions: Vec<f64>,
    total_time: Vec<f64>,
    phases: PhaseBank,
    cpi_scale: Vec<f64>,
    mem_scale: Vec<f64>,
    activity_scale: Vec<f64>,
}

impl CoreBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the core [`CoreModel::new`](crate::core_model::CoreModel::new) would build for
    /// `(profile, seed, stream)`.
    pub fn push(&mut self, profile: BenchmarkProfile, seed: u64, stream: u64) {
        self.phases.push(&profile, seed, stream);
        self.base_cpi.push(profile.base_cpi);
        self.activity.push(profile.activity);
        self.l1_mpki.push(profile.l1_mpki);
        self.l2_mpki.push(profile.l2_mpki);
        self.total_instructions.push(0.0);
        self.total_time.push(0.0);
        self.cpi_scale.push(1.0);
        self.mem_scale.push(1.0);
        self.activity_scale.push(1.0);
        self.profiles.push(profile);
    }

    /// Number of cores in the bank.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the bank holds no cores.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Advances every core's phase sequence by `dt`, leaving the interval's
    /// samples in the scale scratch arrays. Per-core phase streams are
    /// independent, so one chip-wide pass draws exactly the numbers the
    /// per-core walk would.
    pub fn advance_phases(&mut self, dt: Seconds) {
        self.phases.advance_into(
            dt,
            &mut self.cpi_scale,
            &mut self.mem_scale,
            &mut self.activity_scale,
        );
    }

    /// Steps the cores in `range` (one island's contiguous segment) through
    /// one interval at frequency `f`, fusing the CPI model with the power
    /// model whose island-constant `terms` the caller hoisted.
    ///
    /// Per-core power lands in `core_powers[i]`; DRAM traffic accumulates
    /// onto `total_dram_bytes` in core order so the chip-wide sum keeps the
    /// exact addition order of the array-of-structs walk. Every expression
    /// matches [`CoreModel::step_contended`](crate::core_model::CoreModel::step_contended) token for token (the
    /// island-constant `avail`/`cycles`/`avail_frac` hoists are pure
    /// functions of island-constant inputs), so results are bit-identical.
    // A params struct would hide the token-for-token identity with the
    // scalar path's signature.
    #[allow(clippy::too_many_arguments)] // mirrors step_contended's params
    pub fn step_segment(
        &mut self,
        range: Range<usize>,
        f: Hertz,
        dt: Seconds,
        frozen: Seconds,
        dram_latency_mult: f64,
        power_model: &CorePowerModel,
        terms: IslandPowerTerms,
        leak_mult: f64,
        temps_deg: &[f64],
        core_powers: &mut [Watts],
        total_dram_bytes: &mut f64,
    ) -> SegmentTotals {
        assert!(f.value() > 0.0, "core clock must be positive");
        assert!(
            frozen.value() >= 0.0 && frozen <= dt,
            "freeze within interval"
        );
        assert!(dram_latency_mult >= 1.0, "contention can only slow memory");
        let avail = dt - frozen;
        let cycles = f.cycles_in(avail);
        let avail_frac = avail.value() / dt.value();
        let f_val = f.value();
        let mut totals = SegmentTotals {
            power: Watts::ZERO,
            util_sum: 0.0,
            instructions: 0.0,
        };
        for i in range {
            let mem = self.mem_scale[i];
            let on_chip = self.base_cpi[i] * self.cpi_scale[i]
                + self.l1_mpki[i] * mem / 1000.0 * BenchmarkProfile::L2_HIT_CYCLES;
            let dram_base =
                self.l2_mpki[i] * mem / 1000.0 * BenchmarkProfile::DRAM_LATENCY_S * f_val;
            let dram = dram_base * dram_latency_mult;
            let cpi = on_chip + dram;
            let instructions = cycles / cpi;
            let busy_frac = on_chip / cpi;
            let utilization = Ratio::new(busy_frac * avail_frac).clamped();
            let activity =
                Ratio::new(self.activity[i] * self.activity_scale[i] * busy_frac * avail_frac)
                    .clamped();
            self.total_instructions[i] += instructions;
            self.total_time[i] += dt.value();
            *total_dram_bytes += instructions * self.l2_mpki[i] * mem / 1000.0 * 64.0;
            let p = power_model.total_power_with_terms(
                terms,
                activity,
                Celsius::new(temps_deg[i]),
                leak_mult,
            );
            core_powers[i] = p;
            totals.power += p;
            totals.util_sum += utilization.value();
            totals.instructions += instructions;
        }
        totals
    }
}

/// All islands of a chip in structure-of-arrays form: islands own
/// contiguous, equal-width core segments, so per-island core lists reduce
/// to one `width` scalar and [`IslandBank::core_range`].
#[derive(Debug, Clone)]
pub struct IslandBank {
    width: usize,
    dvfs_index: Vec<usize>,
    /// Set when the operating point changed since the last interval — the
    /// next interval pays the freeze cost (see [`crate::island::IslandState`]).
    pending_transition: Vec<bool>,
    transitions: Vec<u64>,
}

impl IslandBank {
    /// Creates `islands` islands of `width` cores each, all starting at
    /// `dvfs_index`.
    pub fn new(islands: usize, width: usize, dvfs_index: usize) -> Self {
        assert!(width > 0, "an island needs at least one core");
        Self {
            width,
            dvfs_index: vec![dvfs_index; islands],
            pending_transition: vec![false; islands],
            transitions: vec![0; islands],
        }
    }

    /// Number of islands.
    pub fn len(&self) -> usize {
        self.dvfs_index.len()
    }

    /// Whether the bank holds no islands.
    pub fn is_empty(&self) -> bool {
        self.dvfs_index.is_empty()
    }

    /// Cores per island.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The contiguous core-index segment of island `i`.
    pub fn core_range(&self, i: usize) -> Range<usize> {
        i * self.width..(i + 1) * self.width
    }

    /// Current operating-point index of island `i`.
    pub fn dvfs_index(&self, i: usize) -> usize {
        self.dvfs_index[i]
    }

    /// Requests a new operating point for island `i` — same semantics as
    /// [`IslandState::set_dvfs_index`](crate::island::IslandState::set_dvfs_index): a real change schedules a freeze
    /// for the next interval; requesting the current point is free.
    pub fn set_dvfs_index(&mut self, i: usize, idx: usize, table: &DvfsTable) {
        assert!(idx < table.len(), "operating point {idx} out of range");
        if idx != self.dvfs_index[i] {
            self.dvfs_index[i] = idx;
            self.pending_transition[i] = true;
            self.transitions[i] += 1;
        }
    }

    /// Consumes island `i`'s pending transition, returning the freeze time
    /// to charge against an interval of length `dt` (see
    /// [`IslandState::take_freeze`](crate::island::IslandState::take_freeze)).
    pub fn take_freeze(&mut self, i: usize, table: &DvfsTable, dt: Seconds) -> Seconds {
        if self.pending_transition[i] {
            self.pending_transition[i] = false;
            dt * table.transition_overhead()
        } else {
            Seconds::ZERO
        }
    }

    /// Total operating-point changes by island `i` so far.
    pub fn transitions(&self, i: usize) -> u64 {
        self.transitions[i]
    }
}

/// Read view of one core inside a [`CoreBank`] — the accessors
/// [`CoreModel`](crate::core_model::CoreModel) offers, backed by the parallel arrays.
#[derive(Debug, Clone, Copy)]
pub struct CoreView<'a> {
    bank: &'a CoreBank,
    index: usize,
}

impl<'a> CoreView<'a> {
    /// A view of core `core` in `bank`.
    pub fn new(bank: &'a CoreBank, core: CoreId) -> Self {
        Self {
            bank,
            index: core.index(),
        }
    }

    /// The benchmark this core runs.
    pub fn profile(&self) -> &'a BenchmarkProfile {
        &self.bank.profiles[self.index]
    }

    /// Cumulative instructions retired.
    pub fn total_instructions(&self) -> f64 {
        self.bank.total_instructions[self.index]
    }

    /// Cumulative simulated time.
    pub fn total_time(&self) -> Seconds {
        Seconds::new(self.bank.total_time[self.index])
    }
}

/// Read view of one island inside an [`IslandBank`] — the accessors
/// [`IslandState`](crate::island::IslandState) offers, backed by the parallel arrays.
#[derive(Debug, Clone, Copy)]
pub struct IslandView<'a> {
    bank: &'a IslandBank,
    index: usize,
}

impl<'a> IslandView<'a> {
    /// A view of island `island` in `bank`.
    pub fn new(bank: &'a IslandBank, island: IslandId) -> Self {
        Self {
            bank,
            index: island.index(),
        }
    }

    /// The island's id.
    pub fn id(&self) -> IslandId {
        IslandId(self.index)
    }

    /// The cores in this island, as a contiguous index range.
    pub fn cores(&self) -> Range<usize> {
        self.bank.core_range(self.index)
    }

    /// Current operating-point index.
    pub fn dvfs_index(&self) -> usize {
        self.bank.dvfs_index(self.index)
    }

    /// Total operating-point changes so far.
    pub fn transitions(&self) -> u64 {
        self.bank.transitions(self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_model::CoreModel;
    use crate::island::IslandState;
    use cpm_workloads::parsec;

    /// The heart of the SoA contract: a bank stepped segment-at-a-time is
    /// bit-identical to the same cores stepped one `CoreModel` at a time,
    /// including lifetime accounting and the chip-order DRAM-byte sum.
    #[test]
    fn bank_matches_scalar_core_models_bitwise() {
        let profiles: Vec<BenchmarkProfile> = parsec::all().into_iter().cycle().take(16).collect();
        let seed = 0xC0FFEE;
        let mut scalars: Vec<CoreModel> = profiles
            .iter()
            .enumerate()
            .map(|(c, p)| CoreModel::new(p.clone(), seed, c as u64))
            .collect();
        let mut bank = CoreBank::new();
        for (c, p) in profiles.iter().enumerate() {
            bank.push(p.clone(), seed, c as u64);
        }
        let power_model = CorePowerModel::paper_default();
        let table = DvfsTable::pentium_m();
        let dt = Seconds::from_ms(0.5);
        let temps: Vec<f64> = (0..16).map(|i| 45.0 + i as f64 * 0.5).collect();
        let mut core_powers = vec![Watts::ZERO; 16];
        let width = 4;
        for step in 0..200 {
            // Wander the knobs: per-island operating points, occasional
            // freezes, drifting contention.
            let contention = 1.0 + (step % 5) as f64 * 0.3;
            bank.advance_phases(dt);
            let mut bank_dram = 0.0;
            let mut scalar_dram = 0.0;
            for island in 0..4 {
                let op = table.point((island + step) % table.len());
                let frozen = if step % 11 == 0 {
                    dt * 0.005
                } else {
                    Seconds::ZERO
                };
                let terms = power_model.island_terms(op);
                let leak_mult = 1.0 + island as f64 * 0.1;
                let totals = bank.step_segment(
                    island * width..(island + 1) * width,
                    op.frequency,
                    dt,
                    frozen,
                    contention,
                    &power_model,
                    terms,
                    leak_mult,
                    &temps,
                    &mut core_powers,
                    &mut bank_dram,
                );
                let mut power = Watts::ZERO;
                let mut util_sum = 0.0;
                let mut instructions = 0.0;
                for c in island * width..(island + 1) * width {
                    let stats = scalars[c].step_contended(op.frequency, dt, frozen, contention);
                    scalar_dram += stats.dram_bytes;
                    let p = power_model.total_power_with_terms(
                        terms,
                        stats.activity,
                        Celsius::new(temps[c]),
                        leak_mult,
                    );
                    assert_eq!(core_powers[c], p, "core {c} power, step {step}");
                    power += p;
                    util_sum += stats.utilization.value();
                    instructions += stats.instructions;
                }
                assert_eq!(totals.power, power, "island {island} power, step {step}");
                assert_eq!(
                    totals.util_sum.to_bits(),
                    util_sum.to_bits(),
                    "island {island} utilization, step {step}"
                );
                assert_eq!(
                    totals.instructions.to_bits(),
                    instructions.to_bits(),
                    "island {island} instructions, step {step}"
                );
            }
            assert_eq!(bank_dram.to_bits(), scalar_dram.to_bits(), "step {step}");
        }
        for (c, scalar) in scalars.iter().enumerate() {
            let view = CoreView::new(&bank, CoreId(c));
            assert_eq!(view.total_instructions(), scalar.total_instructions());
            assert_eq!(view.total_time(), scalar.total_time());
            assert_eq!(view.profile().name, scalar.profile().name);
        }
    }

    #[test]
    fn island_bank_mirrors_island_state() {
        let table = DvfsTable::pentium_m();
        let dt = Seconds::from_ms(0.5);
        let mut bank = IslandBank::new(4, 2, 7);
        let mut scalars: Vec<IslandState> = (0..4)
            .map(|i| IslandState::new(IslandId(i), vec![CoreId(2 * i), CoreId(2 * i + 1)], 7))
            .collect();
        let schedule = [3usize, 3, 7, 0, 5, 5, 7, 7, 1];
        for (k, &idx) in schedule.iter().enumerate() {
            let i = k % 4;
            bank.set_dvfs_index(i, idx, &table);
            scalars[i].set_dvfs_index(idx, &table);
            for (j, scalar) in scalars.iter().enumerate() {
                assert_eq!(bank.dvfs_index(j), scalar.dvfs_index());
                assert_eq!(bank.transitions(j), scalar.transitions());
            }
            let j = (k + 1) % 4;
            assert_eq!(
                bank.take_freeze(j, &table, dt),
                scalars[j].take_freeze(&table, dt)
            );
        }
        let view = IslandView::new(&bank, IslandId(2));
        assert_eq!(view.id(), IslandId(2));
        assert_eq!(view.cores(), 4..6);
        assert_eq!(view.dvfs_index(), bank.dvfs_index(2));
        assert_eq!(view.transitions(), bank.transitions(2));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_width_island_bank_rejected() {
        IslandBank::new(4, 0, 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn island_bank_rejects_out_of_range_point() {
        IslandBank::new(1, 2, 7).set_dvfs_index(0, 8, &DvfsTable::pentium_m());
    }

    #[test]
    #[should_panic(expected = "freeze within interval")]
    fn segment_rejects_oversized_freeze() {
        let mut bank = CoreBank::new();
        bank.push(parsec::x264(), 1, 0);
        let power_model = CorePowerModel::paper_default();
        let table = DvfsTable::pentium_m();
        let terms = power_model.island_terms(table.max_point());
        bank.advance_phases(Seconds::from_ms(0.5));
        bank.step_segment(
            0..1,
            table.max_point().frequency,
            Seconds::from_ms(0.5),
            Seconds::from_ms(1.0),
            1.0,
            &power_model,
            terms,
            1.0,
            &[45.0],
            &mut [Watts::ZERO],
            &mut 0.0,
        );
    }
}
