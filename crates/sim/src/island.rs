//! Voltage/frequency island state and actuation.
//!
//! All cores of an island share one DVFS knob ("multiple CPUs share a
//! common DVFS controller … all cores in an island are now restricted to
//! operate under identical voltage frequency settings", §II-B). Changing
//! the knob freezes the island's cores for the transition overhead during
//! the next interval.

use cpm_power::dvfs::DvfsTable;
use cpm_units::{CoreId, IslandId, Seconds};

/// Runtime state of one island.
#[derive(Debug, Clone)]
pub struct IslandState {
    id: IslandId,
    cores: Vec<CoreId>,
    dvfs_index: usize,
    /// Set when the operating point changed since the last interval — the
    /// next interval pays the freeze cost.
    pending_transition: bool,
    transitions: u64,
}

impl IslandState {
    /// Creates an island over `cores` starting at `dvfs_index`.
    pub fn new(id: IslandId, cores: Vec<CoreId>, dvfs_index: usize) -> Self {
        assert!(!cores.is_empty(), "an island needs at least one core");
        Self {
            id,
            cores,
            dvfs_index,
            pending_transition: false,
            transitions: 0,
        }
    }

    /// The island's id.
    pub fn id(&self) -> IslandId {
        self.id
    }

    /// The cores in this island.
    pub fn cores(&self) -> &[CoreId] {
        &self.cores
    }

    /// Current operating-point index into the chip's DVFS table.
    pub fn dvfs_index(&self) -> usize {
        self.dvfs_index
    }

    /// Requests a new operating point. A real change schedules a freeze for
    /// the next interval; requesting the current point is free.
    pub fn set_dvfs_index(&mut self, idx: usize, table: &DvfsTable) {
        assert!(idx < table.len(), "operating point {idx} out of range");
        if idx != self.dvfs_index {
            self.dvfs_index = idx;
            self.pending_transition = true;
            self.transitions += 1;
        }
    }

    /// Consumes the pending transition, returning the freeze time to charge
    /// against an interval of length `dt`.
    pub fn take_freeze(&mut self, table: &DvfsTable, dt: Seconds) -> Seconds {
        if self.pending_transition {
            self.pending_transition = false;
            dt * table.transition_overhead()
        } else {
            Seconds::ZERO
        }
    }

    /// Total operating-point changes so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn island() -> IslandState {
        IslandState::new(IslandId(0), vec![CoreId(0), CoreId(1)], 7)
    }

    #[test]
    fn starts_without_pending_transition() {
        let mut i = island();
        let t = DvfsTable::pentium_m();
        assert_eq!(i.take_freeze(&t, Seconds::from_ms(0.5)), Seconds::ZERO);
    }

    #[test]
    fn change_schedules_one_freeze() {
        let mut i = island();
        let t = DvfsTable::pentium_m();
        i.set_dvfs_index(3, &t);
        let dt = Seconds::from_ms(0.5);
        let frozen = i.take_freeze(&t, dt);
        assert!((frozen.value() - dt.value() * 0.005).abs() < 1e-15);
        // Consumed: second take is free.
        assert_eq!(i.take_freeze(&t, dt), Seconds::ZERO);
    }

    #[test]
    fn setting_same_index_is_free() {
        let mut i = island();
        let t = DvfsTable::pentium_m();
        i.set_dvfs_index(7, &t);
        assert_eq!(i.transitions(), 0);
        assert_eq!(i.take_freeze(&t, Seconds::from_ms(0.5)), Seconds::ZERO);
    }

    #[test]
    fn transitions_are_counted() {
        let mut i = island();
        let t = DvfsTable::pentium_m();
        i.set_dvfs_index(3, &t);
        i.set_dvfs_index(5, &t);
        i.set_dvfs_index(5, &t);
        assert_eq!(i.transitions(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        island().set_dvfs_index(8, &DvfsTable::pentium_m());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_island_rejected() {
        IslandState::new(IslandId(0), vec![], 0);
    }
}
