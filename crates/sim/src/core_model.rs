//! Per-core interval execution: the CPI-stack model.
//!
//! Over a control interval at frequency `f`, a core's average cycles per
//! instruction decompose as
//!
//! ```text
//! CPI(f) = base_cpi·φ_cpi  +  (l1_mpki·φ_mem/1000)·L2_HIT_CYCLES
//!        + (l2_mpki·φ_mem/1000)·(DRAM_LATENCY_S · f)
//! ```
//!
//! where the `φ` are the current phase multipliers. The first two terms are
//! on-chip work — fixed in *cycles*, so their wall-clock cost shrinks as
//! `f` rises. The DRAM term is fixed in *time*, so its cycle cost grows
//! with `f`: raising frequency buys little for memory-bound phases, which
//! is the asymmetry the whole power-management problem rides on.

use cpm_units::{Hertz, Ratio, Seconds};
use cpm_workloads::{BenchmarkProfile, PhaseGenerator, PhaseSample};

/// What a core did during one control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreIntervalStats {
    /// Instructions retired.
    pub instructions: f64,
    /// Fraction of the interval spent on useful on-chip work (the "CPU
    /// utilization" visible to performance counters, net of DRAM stalls
    /// and DVFS-transition freeze time).
    pub utilization: Ratio,
    /// Average functional-unit activity factor over the interval (drives
    /// dynamic power; includes the freeze dead-time).
    pub activity: Ratio,
    /// Core cycles elapsed while clocked.
    pub cycles: f64,
    /// Bytes of DRAM traffic generated (L2 misses × line size).
    pub dram_bytes: f64,
}

/// One core executing one benchmark through its phase sequence.
#[derive(Debug, Clone)]
pub struct CoreModel {
    profile: BenchmarkProfile,
    phase: PhaseGenerator,
    l1_mpki: f64,
    l2_mpki: f64,
    /// `l1_mpki/1000 · L2_HIT_CYCLES`: the on-chip miss term per unit of
    /// `mem_scale`. The per-`mpki` constants fold into per-core factors at
    /// construction so the hot CPI expression — here and in the SoA twin —
    /// is pure multiply-add with a single divide (the CPI reciprocal).
    l1_term: f64,
    /// `l2_mpki/1000 · DRAM_LATENCY_S`: the DRAM-seconds term per unit of
    /// `mem_scale` (multiplied by `f` in the step).
    l2_dram: f64,
    /// `l2_mpki/1000 · 64`: DRAM bytes per instruction per unit of
    /// `mem_scale`.
    l2_bytes: f64,
    total_instructions: f64,
    total_time: Seconds,
}

/// The hoisted per-core factors of the CPI stack for miss rates
/// `(l1_mpki, l2_mpki)` — shared by [`CoreModel`] and the SoA segment so
/// both derive bit-identical columns from the same expressions.
pub(crate) fn miss_terms(l1_mpki: f64, l2_mpki: f64) -> (f64, f64, f64) {
    (
        l1_mpki / 1000.0 * BenchmarkProfile::L2_HIT_CYCLES,
        l2_mpki / 1000.0 * BenchmarkProfile::DRAM_LATENCY_S,
        l2_mpki / 1000.0 * 64.0,
    )
}

impl CoreModel {
    /// Creates a core running `profile`, with phase randomness derived from
    /// `(seed, stream)`.
    pub fn new(profile: BenchmarkProfile, seed: u64, stream: u64) -> Self {
        let phase = PhaseGenerator::new(&profile, seed, stream);
        let (l1, l2) = (profile.l1_mpki, profile.l2_mpki);
        let (l1_term, l2_dram, l2_bytes) = miss_terms(l1, l2);
        Self {
            profile,
            phase,
            l1_mpki: l1,
            l2_mpki: l2,
            l1_term,
            l2_dram,
            l2_bytes,
            total_instructions: 0.0,
            total_time: Seconds::ZERO,
        }
    }

    /// Overrides the miss rates with externally calibrated values (e.g.
    /// from [`crate::calibration::calibrate`]).
    pub fn with_rates(mut self, l1_mpki: f64, l2_mpki: f64) -> Self {
        assert!(l1_mpki >= 0.0 && l2_mpki >= 0.0 && l1_mpki >= l2_mpki);
        self.l1_mpki = l1_mpki;
        self.l2_mpki = l2_mpki;
        let (l1_term, l2_dram, l2_bytes) = miss_terms(l1_mpki, l2_mpki);
        self.l1_term = l1_term;
        self.l2_dram = l2_dram;
        self.l2_bytes = l2_bytes;
        self
    }

    /// The benchmark this core runs.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Cumulative instructions retired.
    pub fn total_instructions(&self) -> f64 {
        self.total_instructions
    }

    /// Cumulative simulated time.
    pub fn total_time(&self) -> Seconds {
        self.total_time
    }

    /// Effective CPI for a given frequency and phase sample.
    fn cpi_parts(&self, f: Hertz, s: PhaseSample) -> (f64, f64) {
        let on_chip = self.profile.base_cpi * s.cpi_scale + self.l1_term * s.mem_scale;
        let dram = self.l2_dram * s.mem_scale * f.value();
        (on_chip, dram)
    }

    /// Advances the core one interval of `dt` at frequency `f`, with
    /// `frozen` of that interval lost to a DVFS transition (no instructions
    /// retire while frozen), under an uncontended memory system.
    pub fn step(&mut self, f: Hertz, dt: Seconds, frozen: Seconds) -> CoreIntervalStats {
        self.step_contended(f, dt, frozen, 1.0)
    }

    /// Like [`CoreModel::step`], with the effective DRAM latency inflated
    /// by `dram_latency_mult ≥ 1` (memory-controller queueing under
    /// bandwidth contention; the chip supplies last interval's factor).
    pub fn step_contended(
        &mut self,
        f: Hertz,
        dt: Seconds,
        frozen: Seconds,
        dram_latency_mult: f64,
    ) -> CoreIntervalStats {
        assert!(f.value() > 0.0, "core clock must be positive");
        assert!(
            frozen.value() >= 0.0 && frozen <= dt,
            "freeze within interval"
        );
        assert!(dram_latency_mult >= 1.0, "contention can only slow memory");
        let sample = self.phase.advance(dt);
        let avail = dt - frozen;
        let (on_chip, dram_base) = self.cpi_parts(f, sample);
        let dram = dram_base * dram_latency_mult;
        let cpi = on_chip + dram;
        let cycles = f.cycles_in(avail);
        // One reciprocal feeds both quotients: cycles/cpi and on_chip/cpi
        // as two divides would double the slowest f64 op in the loop.
        let inv_cpi = 1.0 / cpi;
        let instructions = cycles * inv_cpi;
        let avail_frac = avail.value() / dt.value();
        let busy_frac = on_chip * inv_cpi;
        let utilization = Ratio::new(busy_frac * avail_frac).clamped();
        let activity =
            Ratio::new(self.profile.activity * sample.activity_scale * busy_frac * avail_frac)
                .clamped();
        self.total_instructions += instructions;
        self.total_time += dt;
        let dram_bytes = instructions * self.l2_bytes * sample.mem_scale;
        CoreIntervalStats {
            instructions,
            utilization,
            activity,
            cycles,
            dram_bytes,
        }
    }

    /// Phase-free instruction rate at frequency `f` (for quick estimates).
    pub fn nominal_ips(&self, f: Hertz) -> f64 {
        let (on_chip, dram) = self.cpi_parts(f, PhaseSample::NEUTRAL);
        f.value() / (on_chip + dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_workloads::{parsec, InputSet};

    fn cpu_core(seed: u64) -> CoreModel {
        CoreModel::new(parsec::blackscholes(), seed, 0)
    }

    fn mem_core(seed: u64) -> CoreModel {
        CoreModel::new(parsec::canneal().with_input(InputSet::Native), seed, 0)
    }

    #[test]
    fn instructions_scale_with_frequency_for_cpu_bound() {
        let mut lo = cpu_core(1);
        let mut hi = cpu_core(1); // same seed → same phases
        let dt = Seconds::from_ms(0.5);
        let mut ilo = 0.0;
        let mut ihi = 0.0;
        for _ in 0..100 {
            ilo += lo
                .step(Hertz::from_mhz(600.0), dt, Seconds::ZERO)
                .instructions;
            ihi += hi
                .step(Hertz::from_ghz(2.0), dt, Seconds::ZERO)
                .instructions;
        }
        let speedup = ihi / ilo;
        assert!(
            speedup > 3.0,
            "cpu-bound speedup {speedup} should approach the 3.33 clock ratio"
        );
    }

    #[test]
    fn memory_bound_barely_benefits_from_frequency() {
        let mut lo = mem_core(1);
        let mut hi = mem_core(1);
        let dt = Seconds::from_ms(0.5);
        let mut ilo = 0.0;
        let mut ihi = 0.0;
        for _ in 0..100 {
            ilo += lo
                .step(Hertz::from_mhz(600.0), dt, Seconds::ZERO)
                .instructions;
            ihi += hi
                .step(Hertz::from_ghz(2.0), dt, Seconds::ZERO)
                .instructions;
        }
        let speedup = ihi / ilo;
        assert!(
            speedup < 2.6,
            "memory-bound speedup {speedup} should be well below the 3.33 clock ratio"
        );
    }

    #[test]
    fn utilization_reflects_memory_stalls() {
        let mut c = cpu_core(2);
        let mut m = mem_core(2);
        let dt = Seconds::from_ms(0.5);
        let f = Hertz::from_ghz(2.0);
        let uc: f64 = (0..50)
            .map(|_| c.step(f, dt, Seconds::ZERO).utilization.value())
            .sum::<f64>()
            / 50.0;
        let um: f64 = (0..50)
            .map(|_| m.step(f, dt, Seconds::ZERO).utilization.value())
            .sum::<f64>()
            / 50.0;
        assert!(uc > 0.85, "cpu-bound utilization {uc}");
        assert!(um < 0.70, "memory-bound utilization {um}");
    }

    #[test]
    fn freeze_time_costs_instructions_and_utilization() {
        let dt = Seconds::from_ms(0.5);
        let f = Hertz::from_ghz(1.0);
        let mut a = cpu_core(3);
        let mut b = cpu_core(3);
        let sa = a.step(f, dt, Seconds::ZERO);
        let sb = b.step(f, dt, dt * 0.5);
        assert!((sb.instructions / sa.instructions - 0.5).abs() < 1e-9);
        assert!((sb.utilization.value() / sa.utilization.value() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let mut a = cpu_core(7);
        let mut b = cpu_core(7);
        for _ in 0..20 {
            let sa = a.step(Hertz::from_ghz(1.4), Seconds::from_ms(0.5), Seconds::ZERO);
            let sb = b.step(Hertz::from_ghz(1.4), Seconds::from_ms(0.5), Seconds::ZERO);
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn accounting_accumulates() {
        let mut c = cpu_core(4);
        for _ in 0..10 {
            c.step(Hertz::from_ghz(2.0), Seconds::from_ms(0.5), Seconds::ZERO);
        }
        assert!((c.total_time().ms() - 5.0).abs() < 1e-9);
        // ~2 GHz / CPI ~0.9 → ≈ 10 M instructions in 5 ms.
        assert!(c.total_instructions() > 5.0e6);
    }

    #[test]
    fn calibrated_rates_override() {
        let base = cpu_core(5);
        let heavy = cpu_core(5).with_rates(30.0, 10.0);
        assert!(heavy.nominal_ips(Hertz::from_ghz(2.0)) < base.nominal_ips(Hertz::from_ghz(2.0)));
    }

    #[test]
    #[should_panic(expected = "freeze within interval")]
    fn freeze_longer_than_interval_panics() {
        cpu_core(6).step(
            Hertz::from_ghz(1.0),
            Seconds::from_ms(0.5),
            Seconds::from_ms(1.0),
        );
    }

    #[test]
    fn contention_slows_memory_bound_cores_most() {
        let dt = Seconds::from_ms(0.5);
        let f = Hertz::from_ghz(2.0);
        let mut cu = cpu_core(9);
        let mut cc = cpu_core(9);
        let mut mu = mem_core(9);
        let mut mc = mem_core(9);
        let mut sums = [0.0f64; 4];
        for _ in 0..40 {
            sums[0] += cu.step(f, dt, Seconds::ZERO).instructions;
            sums[1] += cc.step_contended(f, dt, Seconds::ZERO, 2.0).instructions;
            sums[2] += mu.step(f, dt, Seconds::ZERO).instructions;
            sums[3] += mc.step_contended(f, dt, Seconds::ZERO, 2.0).instructions;
        }
        let cpu_loss = 1.0 - sums[1] / sums[0];
        let mem_loss = 1.0 - sums[3] / sums[2];
        assert!(
            mem_loss > 2.0 * cpu_loss,
            "mem {mem_loss} vs cpu {cpu_loss}"
        );
    }

    #[test]
    fn dram_bytes_track_miss_rate() {
        let dt = Seconds::from_ms(0.5);
        let f = Hertz::from_ghz(2.0);
        let mut c = cpu_core(10);
        let mut m = mem_core(10);
        let sc = c.step(f, dt, Seconds::ZERO);
        let sm = m.step(f, dt, Seconds::ZERO);
        // Bytes per instruction ∝ l2_mpki.
        let bpi_c = sc.dram_bytes / sc.instructions;
        let bpi_m = sm.dram_bytes / sm.instructions;
        assert!(bpi_m > 10.0 * bpi_c, "{bpi_m} vs {bpi_c}");
    }

    #[test]
    #[should_panic(expected = "only slow")]
    fn contention_below_one_rejected() {
        cpu_core(11).step_contended(
            Hertz::from_ghz(1.0),
            Seconds::from_ms(0.5),
            Seconds::ZERO,
            0.5,
        );
    }

    #[test]
    fn activity_is_higher_for_active_cpu_bound_work() {
        let mut c = cpu_core(8);
        let mut m = mem_core(8);
        let dt = Seconds::from_ms(0.5);
        let f = Hertz::from_ghz(2.0);
        let ac: f64 = (0..50)
            .map(|_| c.step(f, dt, Seconds::ZERO).activity.value())
            .sum::<f64>()
            / 50.0;
        let am: f64 = (0..50)
            .map(|_| m.step(f, dt, Seconds::ZERO).activity.value())
            .sum::<f64>()
            / 50.0;
        assert!(ac > am, "cpu-bound activity {ac} vs memory-bound {am}");
    }
}
