//! A prober that panics while holding a calibration memo lock must not
//! wedge the process: the caches are only ever mutated by whole-entry
//! inserts of finished values, so later lookups recover the poisoned lock
//! and keep serving bit-identical results.

use cpm_sim::{calibration, CmpConfig};
use cpm_workloads::parsec;

#[test]
fn poisoned_private_memo_recovers_and_stays_bit_identical() {
    let cache = CmpConfig::paper_default().cache;
    let profile = parsec::blackscholes();

    let before = calibration::calibrate(&profile, &cache, 7);
    calibration::poison_memo_caches_for_tests();
    // The poisoned lock must be recovered, the cached entry must survive,
    // and the value must still equal the memo-free path exactly.
    let after = calibration::calibrate(&profile, &cache, 7);
    assert_eq!(before, after, "cache entry lost or corrupted by poisoning");
    let direct = calibration::calibrate_uncached(&profile, &cache, 7);
    assert_eq!(after, direct, "post-poison lookup != memo-free path");
}

#[test]
fn poisoned_shared_memo_recovers_and_stays_bit_identical() {
    let cache = CmpConfig::paper_default().cache;
    let group = [parsec::blackscholes(), parsec::vips()];

    let before = calibration::calibrate_shared(&group, &cache, 17);
    calibration::poison_memo_caches_for_tests();
    let after = calibration::calibrate_shared(&group, &cache, 17);
    assert_eq!(before, after, "shared cache entry lost by poisoning");
    let direct = calibration::calibrate_shared_uncached(&group, &cache, 17);
    assert_eq!(after, direct, "post-poison shared lookup != memo-free path");
}
