//! Tiled-vs-reference thermal stencil identity under *real* chip load.
//!
//! The unit tests in `cpm-thermal` drive both integrators with random
//! power fields; this test closes the loop at the system level: for every
//! PARSEC profile, a full chip run produces the per-core power series, and
//! the tiled stencil must reproduce the reference CSR integrator bit for
//! bit on exactly that input.

use cpm_sim::{Chip, CmpConfig};
use cpm_thermal::ThermalGrid;
use cpm_workloads::{parsec, WorkloadAssignment};

#[test]
fn tiled_stencil_matches_reference_on_every_parsec_profile() {
    for profile in parsec::all() {
        let name = profile.name;
        let cfg = CmpConfig::with_topology(8, 2);
        let assignment = WorkloadAssignment::new(vec![profile; 8], 2);
        let mut chip = Chip::new(cfg.clone(), &assignment);
        let mut tiled = ThermalGrid::new(cfg.floorplan(), cfg.thermal);
        let mut reference = tiled.clone();
        let dt = cfg.pic_interval;
        for step in 0..200 {
            let snap = chip.step_pic();
            tiled.step(&snap.core_powers, dt);
            reference.step_reference(&snap.core_powers, dt);
            for (i, (a, b)) in tiled
                .temperatures_deg()
                .iter()
                .zip(reference.temperatures_deg())
                .enumerate()
            {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{name}: node {i} diverged at step {step}: {a} vs {b}"
                );
            }
            // The chip's own grid ran the tiled path — it must agree too.
            for (i, (a, b)) in chip
                .temperatures_deg()
                .iter()
                .zip(reference.temperatures_deg())
                .enumerate()
            {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{name}: chip node {i} diverged at step {step}"
                );
            }
        }
    }
}
