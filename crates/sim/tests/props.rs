//! Property-based tests for the simulator substrate.

use cpm_sim::cache::Cache;
use cpm_sim::core_model::CoreModel;
use cpm_sim::stats::TimeSeries;
use cpm_units::{Hertz, Seconds};
use cpm_workloads::{BenchmarkProfile, InputSet};
use proptest::prelude::*;

fn any_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.5..2.0f64,  // base_cpi
        0.0..20.0f64, // l2_mpki
        0.0..30.0f64, // extra l1 over l2
        0.3..1.0f64,  // activity
        0.0..0.3f64,  // variability
    )
        .prop_map(
            |(base_cpi, l2, l1_extra, activity, variability)| BenchmarkProfile {
                name: "prop",
                short: "prop",
                description: "generated",
                input: InputSet::SimLarge,
                base_cpi,
                l1_mpki: l2 + l1_extra,
                l2_mpki: l2,
                activity,
                working_set: 4 << 20,
                stream_fraction: 0.3,
                phase_period: 0.05,
                variability,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_accounting_is_exact(
        addrs in prop::collection::vec(0u64..1_000_000, 1..2000),
    ) {
        let mut c = Cache::new(16 * 1024, 2, 64);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    }

    #[test]
    fn cache_is_deterministic(
        addrs in prop::collection::vec(0u64..100_000, 1..500),
    ) {
        let mut a = Cache::new(4096, 4, 64);
        let mut b = Cache::new(4096, 4, 64);
        for &addr in &addrs {
            prop_assert_eq!(a.access(addr), b.access(addr));
        }
    }

    #[test]
    fn resident_set_always_hits_after_warmup(
        lines in prop::collection::vec(0u64..32, 1..200),
    ) {
        // 32 distinct lines fit trivially in 16 KB/2-way (256 lines, 128
        // sets → at most 1 line per set here... not guaranteed; but 32
        // lines over 128 sets with 2 ways can collide at most 2 deep only
        // if >2 map to one set — with line indices < 32 and 128 sets, each
        // line maps to a distinct set. So after one touch, everything hits.
        let mut c = Cache::new(16 * 1024, 2, 64);
        for l in 0u64..32 {
            c.access(l * 64);
        }
        c.reset_stats();
        for &l in &lines {
            c.access(l * 64);
        }
        prop_assert_eq!(c.misses(), 0);
    }

    #[test]
    fn core_instructions_monotone_in_frequency(
        profile in any_profile(),
        seed in 0u64..1000,
    ) {
        // Same seed → same phases; higher clock must never retire fewer
        // instructions over the same wall-clock window.
        let dt = Seconds::from_ms(0.5);
        let mut totals = Vec::new();
        for mhz in [600.0, 1200.0, 2000.0] {
            let mut core = CoreModel::new(profile.clone(), seed, 0);
            let t: f64 = (0..20)
                .map(|_| core.step(Hertz::from_mhz(mhz), dt, Seconds::ZERO).instructions)
                .sum();
            totals.push(t);
        }
        prop_assert!(totals[0] < totals[1] && totals[1] < totals[2], "{totals:?}");
    }

    #[test]
    fn core_utilization_and_activity_stay_in_unit_range(
        profile in any_profile(),
        seed in 0u64..1000,
        mhz in 600.0..2000.0f64,
    ) {
        let mut core = CoreModel::new(profile, seed, 1);
        for _ in 0..50 {
            let s = core.step(Hertz::from_mhz(mhz), Seconds::from_ms(0.5), Seconds::ZERO);
            prop_assert!((0.0..=1.0).contains(&s.utilization.value()));
            prop_assert!((0.0..=1.0).contains(&s.activity.value()));
            prop_assert!(s.instructions >= 0.0);
        }
    }

    #[test]
    fn freeze_reduces_instructions_proportionally(
        profile in any_profile(),
        freeze_frac in 0.0..1.0f64,
    ) {
        let dt = Seconds::from_ms(0.5);
        let f = Hertz::from_ghz(1.0);
        let mut a = CoreModel::new(profile.clone(), 7, 0);
        let mut b = CoreModel::new(profile, 7, 0);
        let sa = a.step(f, dt, Seconds::ZERO);
        let sb = b.step(f, dt, dt * freeze_frac);
        let expected = sa.instructions * (1.0 - freeze_frac);
        prop_assert!((sb.instructions - expected).abs() < 1e-6 * (1.0 + expected));
    }

    #[test]
    fn timeseries_mean_bounded_by_min_max(
        vals in prop::collection::vec(-100.0..100.0f64, 1..200),
    ) {
        let ts: TimeSeries = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (Seconds::from_ms(i as f64), v))
            .collect();
        let mean = ts.mean().unwrap();
        prop_assert!(mean >= ts.min().unwrap() - 1e-9);
        prop_assert!(mean <= ts.max().unwrap() + 1e-9);
    }

    #[test]
    fn chunk_averaging_preserves_the_mean_on_exact_multiples(
        vals in prop::collection::vec(-50.0..50.0f64, 4..40),
        chunk in 2usize..4,
    ) {
        let n = (vals.len() / chunk) * chunk;
        prop_assume!(n > 0);
        let ts: TimeSeries = vals[..n]
            .iter()
            .enumerate()
            .map(|(i, &v)| (Seconds::from_ms(i as f64), v))
            .collect();
        let avg = ts.averaged_chunks(chunk);
        prop_assert!((avg.mean().unwrap() - ts.mean().unwrap()).abs() < 1e-9);
    }
}
