//! Property-based tests for the simulator substrate, on the in-tree
//! `cpm_rng::check` harness.

use cpm_rng::{check, Xoshiro256pp};
use cpm_sim::cache::Cache;
use cpm_sim::core_model::CoreModel;
use cpm_sim::stats::TimeSeries;
use cpm_units::{Hertz, Seconds};
use cpm_workloads::{BenchmarkProfile, InputSet};

fn any_profile(rng: &mut Xoshiro256pp) -> BenchmarkProfile {
    let l2 = rng.f64_in(0.0, 20.0);
    BenchmarkProfile {
        name: "prop",
        short: "prop",
        description: "generated",
        input: InputSet::SimLarge,
        base_cpi: rng.f64_in(0.5, 2.0),
        l1_mpki: l2 + rng.f64_in(0.0, 30.0),
        l2_mpki: l2,
        activity: rng.f64_in(0.3, 1.0),
        working_set: 4 << 20,
        stream_fraction: 0.3,
        phase_period: 0.05,
        variability: rng.f64_in(0.0, 0.3),
    }
}

#[test]
fn cache_accounting_is_exact() {
    check::forall_cases("cache accounting", 64, |rng| {
        let addrs = check::vec_u64(rng, 1_000_000, 1, 2000);
        let mut c = Cache::new(16 * 1024, 2, 64);
        for &a in &addrs {
            c.access(a);
        }
        assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
    });
}

#[test]
fn cache_is_deterministic() {
    check::forall_cases("cache determinism", 64, |rng| {
        let addrs = check::vec_u64(rng, 100_000, 1, 500);
        let mut a = Cache::new(4096, 4, 64);
        let mut b = Cache::new(4096, 4, 64);
        for &addr in &addrs {
            assert_eq!(a.access(addr), b.access(addr));
        }
    });
}

#[test]
fn resident_set_always_hits_after_warmup() {
    check::forall_cases("resident set hits", 64, |rng| {
        // 32 distinct lines over 128 sets: each line maps to its own set,
        // so after one touch everything hits.
        let lines = check::vec_u64(rng, 32, 1, 200);
        let mut c = Cache::new(16 * 1024, 2, 64);
        for l in 0u64..32 {
            c.access(l * 64);
        }
        c.reset_stats();
        for &l in &lines {
            c.access(l * 64);
        }
        assert_eq!(c.misses(), 0);
    });
}

#[test]
fn core_instructions_monotone_in_frequency() {
    check::forall_cases("instructions monotone in f", 64, |rng| {
        // Same seed → same phases; higher clock must never retire fewer
        // instructions over the same wall-clock window.
        let profile = any_profile(rng);
        let seed = rng.below(1000);
        let dt = Seconds::from_ms(0.5);
        let mut totals = Vec::new();
        for mhz in [600.0, 1200.0, 2000.0] {
            let mut core = CoreModel::new(profile.clone(), seed, 0);
            let t: f64 = (0..20)
                .map(|_| {
                    core.step(Hertz::from_mhz(mhz), dt, Seconds::ZERO)
                        .instructions
                })
                .sum();
            totals.push(t);
        }
        assert!(totals[0] < totals[1] && totals[1] < totals[2], "{totals:?}");
    });
}

#[test]
fn core_utilization_and_activity_stay_in_unit_range() {
    check::forall_cases("core outputs in range", 64, |rng| {
        let profile = any_profile(rng);
        let seed = rng.below(1000);
        let mhz = rng.f64_in(600.0, 2000.0);
        let mut core = CoreModel::new(profile, seed, 1);
        for _ in 0..50 {
            let s = core.step(Hertz::from_mhz(mhz), Seconds::from_ms(0.5), Seconds::ZERO);
            assert!((0.0..=1.0).contains(&s.utilization.value()));
            assert!((0.0..=1.0).contains(&s.activity.value()));
            assert!(s.instructions >= 0.0);
        }
    });
}

#[test]
fn freeze_reduces_instructions_proportionally() {
    check::forall_cases("freeze proportional", 64, |rng| {
        let profile = any_profile(rng);
        let freeze_frac = rng.next_f64();
        let dt = Seconds::from_ms(0.5);
        let f = Hertz::from_ghz(1.0);
        let mut a = CoreModel::new(profile.clone(), 7, 0);
        let mut b = CoreModel::new(profile, 7, 0);
        let sa = a.step(f, dt, Seconds::ZERO);
        let sb = b.step(f, dt, dt * freeze_frac);
        let expected = sa.instructions * (1.0 - freeze_frac);
        assert!((sb.instructions - expected).abs() < 1e-6 * (1.0 + expected));
    });
}

#[test]
fn timeseries_mean_bounded_by_min_max() {
    check::forall_cases("timeseries mean bounds", 64, |rng| {
        let vals = check::vec_f64(rng, -100.0, 100.0, 1, 200);
        let ts: TimeSeries = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| (Seconds::from_ms(i as f64), v))
            .collect();
        let mean = ts.mean().unwrap();
        assert!(mean >= ts.min().unwrap() - 1e-9);
        assert!(mean <= ts.max().unwrap() + 1e-9);
    });
}

#[test]
fn chunk_averaging_preserves_the_mean_on_exact_multiples() {
    check::forall_cases("chunk averaging mean", 64, |rng| {
        let vals = check::vec_f64(rng, -50.0, 50.0, 4, 40);
        let chunk = rng.usize_in(2, 4);
        let n = (vals.len() / chunk) * chunk;
        if n == 0 {
            return;
        }
        let ts: TimeSeries = vals[..n]
            .iter()
            .enumerate()
            .map(|(i, &v)| (Seconds::from_ms(i as f64), v))
            .collect();
        let avg = ts.averaged_chunks(chunk);
        assert!((avg.mean().unwrap() - ts.mean().unwrap()).abs() < 1e-9);
    });
}
