//! The calibration memo caches must be *bit-identical* to recomputation.
//!
//! The sweep's byte-determinism gate (workers=1 vs workers=4 stdout diff)
//! only survives memoization if a cached value is indistinguishable from a
//! fresh computation down to the last bit — `MeasuredRates` is compared
//! with `f64 ==` throughout, so any divergence fails these tests exactly.

use cpm_sim::{calibration, CmpConfig};
use cpm_workloads::{parsec, InputSet};

#[test]
fn memoized_calibration_is_bit_identical_for_every_parsec_profile() {
    let cache = CmpConfig::paper_default().cache;
    for profile in parsec::all() {
        // First call may hit or miss depending on what else ran in this
        // process — either way the contract is the same: the returned
        // value equals the memo-free path exactly.
        let memoized = calibration::calibrate(&profile, &cache, 99);
        let direct = calibration::calibrate_uncached(&profile, &cache, 99);
        assert_eq!(memoized, direct, "{}: memo != direct", profile.name);
        // Second call is a guaranteed cache hit; still bit-identical.
        let again = calibration::calibrate(&profile, &cache, 99);
        assert_eq!(again, direct, "{}: cached != direct", profile.name);
    }
}

#[test]
fn memoized_shared_calibration_is_bit_identical() {
    let cache = CmpConfig::paper_default().cache;
    let group = [
        parsec::blackscholes(),
        parsec::canneal().with_input(InputSet::Native),
        parsec::freqmine(),
        parsec::vips(),
    ];
    let memoized = calibration::calibrate_shared(&group, &cache, 17);
    let direct = calibration::calibrate_shared_uncached(&group, &cache, 17);
    assert_eq!(memoized, direct, "shared memo != direct");
    let again = calibration::calibrate_shared(&group, &cache, 17);
    assert_eq!(again, direct, "shared cached != direct");
}
