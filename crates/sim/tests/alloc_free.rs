//! Steady-state `Chip::step_pic_into` must not touch the heap.
//!
//! The PR 3 hot-path pass moved chip stepping onto reusable snapshot
//! buffers (`ChipSnapshot` grows to high-water marks on the first step and
//! is only reused afterwards); this test pins that property with a
//! counting global allocator so an accidental per-step allocation shows up
//! as a test failure, not a silent sweep slowdown.
//!
//! The counter is **thread-local**: `cargo test` runs tests on several
//! threads sharing one global allocator, so a process-global counter would
//! pick up other tests' allocations. Only allocations made by *this*
//! test's thread between `reset` and `read` are counted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the thread-local bump is
// allocation-free (Cell<u64> is plain memory).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

#[test]
fn steady_state_chip_step_is_allocation_free() {
    use cpm_sim::{Chip, ChipSnapshot, CmpConfig};
    use cpm_workloads::{Mix, WorkloadAssignment};

    for (cores, width, mix) in [(8usize, 2usize, Mix::Mix1), (32, 4, Mix::Mix3)] {
        let cfg = CmpConfig::with_topology(cores, width);
        let assignment = WorkloadAssignment::paper_mix(mix, cores);
        let mut chip = Chip::new(cfg, &assignment);
        let mut snap = ChipSnapshot::empty();

        // Warm up: first steps grow the snapshot buffers (and any lazy
        // one-time state) to their high-water marks.
        for _ in 0..16 {
            chip.step_pic_into(&mut snap);
        }

        let before = allocs_on_this_thread();
        for _ in 0..64 {
            chip.step_pic_into(&mut snap);
        }
        let after = allocs_on_this_thread();
        assert_eq!(
            after - before,
            0,
            "{cores}-core steady-state step allocated {} times in 64 steps",
            after - before
        );
        // The snapshot still carries real data (the loop wasn't elided).
        assert_eq!(snap.core_powers.len(), cores);
    }
}
