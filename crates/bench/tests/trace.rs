//! Integration tests for `experiments trace`: event coverage, byte
//! determinism, and the GPM/PIC interleaving contract.

use cpm_bench::trace::{run_trace, TraceOptions};
use cpm_core::coordinator::{Coordinator, ExperimentConfig};
use cpm_obs::{EventKind, Recorder};
use cpm_units::Celsius;
use cpm_workloads::{spec, WorkloadAssignment};

/// The acceptance bar for the observability stack: one recorded cell
/// produces every event type in the taxonomy plus a metrics snapshot.
/// The variation policy supplies `PolicyHoldReversal`; a deliberately low
/// hotspot threshold makes the die watchdog fire `ThermalViolation`.
/// `Injection` is the one kind a fault-free trace cannot emit — it is
/// covered by the scenario suite (`tests/scenarios.rs`) instead — and
/// `Alarm` only appears when the SLO watchdog actually trips (also pinned
/// by the scenario suite).
#[test]
fn traced_cell_emits_every_fault_free_event_kind_and_metrics() {
    let opts = TraceOptions {
        rounds: 30,
        hotspot_threshold: Celsius::new(55.0),
        ..TraceOptions::default()
    };
    let artifacts = run_trace("variation@90", &opts).expect("cell runs");
    assert_eq!(artifacts.dropped, 0, "capacity must hold the whole trace");
    for kind in EventKind::ALL {
        if matches!(kind, EventKind::Injection | EventKind::Alarm) {
            continue;
        }
        assert!(
            artifacts.events.iter().any(|e| e.kind() == kind),
            "no {} event in the trace",
            kind.as_str()
        );
        assert!(
            artifacts
                .jsonl
                .contains(&format!("\"kind\": \"{}\"", kind.as_str())),
            "{} missing from the JSONL rendering",
            kind.as_str()
        );
    }
    // The metrics snapshot rides along with the expected instruments.
    for needle in [
        "\"coordinator.gpm_rounds\": 30",
        "\"pic.invocations\": 1200",
        "thermal.hotspot_events",
        "chip.budget_percent",
    ] {
        assert!(
            artifacts.metrics_json.contains(needle),
            "metrics snapshot missing {needle}:\n{}",
            artifacts.metrics_json
        );
    }
    assert!(artifacts.metrics_text.contains("== metrics =="));
    // CSV carries one row per PIC interval with the full column set.
    let mut lines = artifacts.csv.lines();
    let header = lines.next().expect("csv header");
    assert!(header.starts_with("t_s,chip_power_pct,"));
    assert_eq!(lines.count(), 30 * 10, "one row per PIC interval");
}

/// Timestamps are simulated, so replaying the same cell twice must yield
/// byte-identical artifacts — the contract CI's determinism gate diffs.
#[test]
fn trace_replay_is_byte_deterministic() {
    let opts = TraceOptions {
        rounds: 8,
        ..TraceOptions::default()
    };
    let a = run_trace("perf@80", &opts).expect("first run");
    let b = run_trace("perf@80", &opts).expect("second run");
    assert_eq!(a.jsonl, b.jsonl, "event logs diverged");
    assert_eq!(a.csv, b.csv, "time series diverged");
    assert_eq!(a.metrics_json, b.metrics_json, "metrics diverged");
    assert_eq!(a.chrome_json, b.chrome_json, "chrome traces diverged");
    assert_eq!(a.health_json, b.health_json, "health reports diverged");
    // `pid@80` is an alias for the same cell: identical trajectory.
    let c = run_trace("pid@80", &opts).expect("alias run");
    assert_eq!(a.jsonl, c.jsonl, "pid alias changed the trajectory");
    cpm_obs::validate_chrome_trace(&a.chrome_json).expect("chrome trace validates");
}

/// The Fig. 4 timeline, read back off the event log: on a 2-island chip
/// the measured trace interleaves one GPM provision (2 `GpmAllocation`
/// events, one per island) with 10 PIC intervals (2 `PicDecision` events
/// each), except the first round, which runs on the initial equal-share
/// allocation without consulting the policy.
#[test]
fn two_island_trace_interleaves_gpm_every_ten_pic_steps() {
    let rounds = 5;
    let assignment = WorkloadAssignment::new(
        vec![spec::mesa(), spec::bzip2(), spec::gcc(), spec::sixtrack()],
        2,
    );
    let cfg = ExperimentConfig::paper_default().with_assignment(assignment);
    assert_eq!(cfg.cmp.islands(), 2);
    let mut coord = Coordinator::new(cfg).expect("valid config");
    let recorder = Recorder::enabled(1 << 14);
    coord.set_recorder(recorder.clone());
    coord.run_for_gpm_intervals(rounds);
    let events = recorder.drain();

    // Project the log down to the two timeline kinds, G / P per event.
    let timeline: String = events
        .iter()
        .filter_map(|e| match e.kind() {
            EventKind::GpmAllocation => Some('G'),
            EventKind::PicDecision => Some('P'),
            _ => None,
        })
        .collect();
    let mut expected = "P".repeat(10 * 2);
    for _ in 1..rounds {
        expected.push_str(&"G".repeat(2));
        expected.push_str(&"P".repeat(10 * 2));
    }
    assert_eq!(timeline, expected, "GPM/PIC interleaving broke");

    // Cadence: PIC steps tick at 0.5 ms, GPM provisions 5 ms apart.
    let times = |kind: EventKind| -> Vec<f64> {
        events
            .iter()
            .filter(|e| e.kind() == kind)
            .map(|e| e.time_s)
            .collect()
    };
    let pic = times(EventKind::PicDecision);
    // Two PicDecision events share each tick (one per island).
    assert!((pic[2] - pic[0] - 0.0005).abs() < 1e-12, "PIC cadence");
    let gpm = times(EventKind::GpmAllocation);
    assert!((gpm[2] - gpm[0] - 0.005).abs() < 1e-12, "GPM cadence");
}
