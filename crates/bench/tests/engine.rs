//! Determinism contract of the parallel experiment engine: for any worker
//! count, the same experiment cells reduce to byte-identical reports in
//! the same order. CI enforces the full-sweep version of this by diffing
//! `experiments all` stdout across `CPM_WORKERS=1` and `CPM_WORKERS=4`;
//! this test pins the property in-process on a cheap experiment subset so
//! a regression fails fast in `cargo test`.

use cpm_bench::run_experiment;
use cpm_runtime::Pool;

/// Cheap, pure-computation experiments (control analysis + static
/// tables) — enough to exercise the fan-out/reduce path without paying
/// for full coordinator sweeps in a unit test.
const SMALL_GRID: &[&str] = &[
    "table1", "table2", "table3", "poles", "margin", "bode", "locus",
];

fn sweep_on(pool: &Pool) -> Vec<String> {
    pool.parallel_map(SMALL_GRID.to_vec(), |id| {
        run_experiment(id).expect("known id")
    })
}

#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    let serial = sweep_on(&Pool::new(1));
    let parallel = sweep_on(&Pool::new(4));
    assert_eq!(serial.len(), SMALL_GRID.len());
    for ((s, p), id) in serial.iter().zip(&parallel).zip(SMALL_GRID) {
        assert_eq!(s, p, "report for {id} differs between 1 and 4 workers");
    }
}

#[test]
fn repeated_parallel_sweeps_are_stable() {
    // Same pool width, two passes: flushes out any run-to-run
    // nondeterminism (stray global state, time-dependent seeding).
    let a = sweep_on(&Pool::new(4));
    let b = sweep_on(&Pool::new(4));
    assert_eq!(a, b);
}
