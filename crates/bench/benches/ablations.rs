//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! Each bench runs a short coordinated window end-to-end and reports its
//! wall-clock cost; the interesting output is printed once per variant —
//! the *quality* numbers (tracking error, degradation) for:
//!
//! 1. P vs PI vs PID control,
//! 2. transducer vs oracle power sensing,
//! 3. island width 1/2/4,
//! 4. closed-loop CPM vs open-loop MaxBIPS,
//! 5. fixed vs adaptive plant gain (under deliberate misidentification).

use cpm_bench::microbench::{black_box, Bench};
use cpm_control::PidGains;
use cpm_core::coordinator::run_with_baseline;
use cpm_core::prelude::*;
use cpm_workloads::WorkloadAssignment;

fn quality(cfg: ExperimentConfig) -> (f64, f64) {
    let (m, b) = run_with_baseline(cfg, 15).expect("valid");
    (
        m.chip_tracking_error().mean_abs_error_percent,
        m.degradation_vs(&b),
    )
}

fn print_quality_table() {
    println!("\n--- ablation quality (mean |tracking error| %, degradation %) ---");
    for (label, gains) in [
        ("P   (0.4, 0, 0)", PidGains::p_only(0.4)),
        ("PI  (0.4, 0.4, 0)", PidGains::pi(0.4, 0.4)),
        ("PID (0.4, 0.4, 0.3)", PidGains::paper()),
    ] {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.pid_gains = gains;
        let (track, deg) = quality(cfg);
        println!("  control {label}: tracking {track:.2} %, degradation {deg:.2} %");
    }
    for sensor in [SensorMode::Transducer, SensorMode::Oracle] {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.sensor = sensor;
        let (track, deg) = quality(cfg);
        println!("  sensor {sensor:?}: tracking {track:.2} %, degradation {deg:.2} %");
    }
    for width in [1usize, 2, 4] {
        let base = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
        let cfg = ExperimentConfig::paper_default()
            .with_assignment(WorkloadAssignment::new(base.profiles().to_vec(), width));
        let (track, deg) = quality(cfg);
        println!("  width {width} cores/island: tracking {track:.2} %, degradation {deg:.2} %");
    }
    for (label, gain, adaptive) in [
        ("fixed a=0.79 (nominal)", 0.79, false),
        ("fixed a=0.40 (misidentified)", 0.40, false),
        ("adaptive from a=0.40", 0.40, true),
    ] {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.plant_gain = gain;
        cfg.adaptive_gain = adaptive;
        let (track, deg) = quality(cfg);
        println!("  gain {label}: tracking {track:.2} %, degradation {deg:.2} %");
    }
    println!("-----------------------------------------------------------------\n");
}

fn main() {
    print_quality_table();
    let mut b = Bench::new("ablations");

    for (label, scheme) in [
        (
            "cpm",
            ManagementScheme::Cpm(cpm_core::coordinator::PolicyKind::Performance),
        ),
        ("maxbips", ManagementScheme::MaxBips),
        ("none", ManagementScheme::NoManagement),
    ] {
        // Cost of one additional GPM interval on a warm coordinator.
        let mut coord =
            Coordinator::new(ExperimentConfig::paper_default().with_scheme(scheme.clone()))
                .expect("valid");
        coord.run_for_gpm_intervals(2); // warm up + calibrate
        b.bench(&format!("coordinated_gpm_interval/{label}"), move || {
            black_box(coord.run_for_gpm_intervals(1))
        });
    }

    for sensor in [SensorMode::Transducer, SensorMode::Oracle] {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.sensor = sensor;
        let mut coord = Coordinator::new(cfg).expect("valid");
        coord.run_for_gpm_intervals(2);
        b.bench(&format!("sensor_mode_gpm_interval/{sensor:?}"), move || {
            black_box(coord.run_for_gpm_intervals(1))
        });
    }

    b.finish();
}
