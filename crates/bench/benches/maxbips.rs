//! MaxBIPS combination-search cost: the DP scales polynomially with island
//! count while the exhaustive reference explodes — the reason the paper
//! notes per-core global search "will be prohibitively expensive" at scale.

use cpm_bench::microbench::{black_box, Bench};
use cpm_core::maxbips::{MaxBips, MaxBipsObservation};
use cpm_power::dvfs::DvfsTable;
use cpm_units::Watts;

fn observations(n: usize) -> Vec<MaxBipsObservation> {
    (0..n)
        .map(|i| MaxBipsObservation {
            power: Watts::new(18.0 + (i % 5) as f64),
            static_power: Watts::new(4.0),
            bips: 1.0 + (i % 3) as f64,
            dvfs_index: 7,
        })
        .collect()
}

fn main() {
    let mut b = Bench::new("maxbips");

    for islands in [2usize, 4, 8, 16, 32] {
        let obs = observations(islands);
        let budget = Watts::new(16.0 * islands as f64);
        let mut mb = MaxBips::new(DvfsTable::pentium_m());
        b.bench(&format!("maxbips_dp/{islands}"), move || {
            black_box(mb.choose_uncached(budget, black_box(&obs)))
        });
    }

    for islands in [2usize, 4, 6] {
        let obs = observations(islands);
        let budget = Watts::new(16.0 * islands as f64);
        let mb = MaxBips::new(DvfsTable::pentium_m());
        b.bench(&format!("maxbips_exhaustive/{islands}"), move || {
            black_box(mb.choose_exhaustive(budget, black_box(&obs)))
        });
    }

    let obs = observations(8);
    let budget = Watts::new(130.0);
    for bin in [0.05f64, 0.1, 0.5, 1.0] {
        let mut mb = MaxBips::new(DvfsTable::pentium_m()).with_bin_watts(bin);
        let obs = obs.clone();
        b.bench(&format!("maxbips_dp_bin_width/{bin}"), move || {
            black_box(mb.choose_uncached(budget, black_box(&obs)))
        });
    }

    b.finish();
}
