//! MaxBIPS combination-search cost: the DP scales polynomially with island
//! count while the exhaustive reference explodes — the reason the paper
//! notes per-core global search "will be prohibitively expensive" at scale.

use cpm_core::maxbips::{MaxBips, MaxBipsObservation};
use cpm_power::dvfs::DvfsTable;
use cpm_units::Watts;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn observations(n: usize) -> Vec<MaxBipsObservation> {
    (0..n)
        .map(|i| MaxBipsObservation {
            power: Watts::new(18.0 + (i % 5) as f64),
            static_power: Watts::new(4.0),
            bips: 1.0 + (i % 3) as f64,
            dvfs_index: 7,
        })
        .collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxbips_dp");
    let mb = MaxBips::new(DvfsTable::pentium_m());
    for islands in [2usize, 4, 8, 16, 32] {
        let obs = observations(islands);
        let budget = Watts::new(16.0 * islands as f64);
        group.bench_with_input(BenchmarkId::from_parameter(islands), &obs, |b, o| {
            b.iter(|| black_box(mb.choose(budget, black_box(o))))
        });
    }
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxbips_exhaustive");
    group.sample_size(10);
    let mb = MaxBips::new(DvfsTable::pentium_m());
    for islands in [2usize, 4, 6] {
        let obs = observations(islands);
        let budget = Watts::new(16.0 * islands as f64);
        group.bench_with_input(BenchmarkId::from_parameter(islands), &obs, |b, o| {
            b.iter(|| black_box(mb.choose_exhaustive(budget, black_box(o))))
        });
    }
    group.finish();
}

fn bench_dp_bin_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxbips_dp_bin_width");
    let obs = observations(8);
    let budget = Watts::new(130.0);
    for bin in [0.05f64, 0.1, 0.5, 1.0] {
        let mb = MaxBips::new(DvfsTable::pentium_m()).with_bin_watts(bin);
        group.bench_with_input(BenchmarkId::from_parameter(bin), &obs, |b, o| {
            b.iter(|| black_box(mb.choose(budget, black_box(o))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dp, bench_exhaustive, bench_dp_bin_width);
criterion_main!(benches);
