//! Simulator throughput: how fast the substrate advances simulated time.
//! One `chip_step` covers a full 0.5 ms PIC interval (all cores + power +
//! thermal), so simulated-time / wall-time ≈ 0.5 ms / reported time.

use cpm_bench::microbench::{black_box, Bench};
use cpm_sim::{cache::Hierarchy, Chip, CmpConfig};
use cpm_thermal::{Floorplan, ThermalGrid, ThermalParams};
use cpm_units::{Seconds, Watts};
use cpm_workloads::{parsec, AddressStream, Mix, PhaseGenerator, WorkloadAssignment};

fn main() {
    let mut b = Bench::new("simulator");

    for (cores, width, mix) in [
        (8usize, 2usize, Mix::Mix1),
        (16, 4, Mix::Mix3),
        (32, 4, Mix::Mix3),
    ] {
        let cfg = CmpConfig::with_topology(cores, width);
        let assignment = WorkloadAssignment::paper_mix(mix, cores);
        let mut chip = Chip::new(cfg, &assignment);
        let mut snap = cpm_sim::ChipSnapshot::empty();
        b.bench(&format!("chip_step/{cores}"), move || {
            chip.step_pic_into(black_box(&mut snap))
        });
    }

    {
        let cfg = CmpConfig::paper_default().cache;
        let mut h = Hierarchy::new(&cfg);
        let mut stream = AddressStream::new(&parsec::canneal(), 42);
        let addrs = stream.take(4096);
        let mut k = 0usize;
        b.bench("cache_hierarchy_access", move || {
            k = (k + 1) & 4095;
            black_box(h.access(black_box(addrs[k])))
        });
    }

    {
        let mut stream = AddressStream::new(&parsec::streamcluster(), 7);
        b.bench("address_stream_next", move || {
            black_box(stream.next_address())
        });
    }

    {
        let mut g = PhaseGenerator::new(&parsec::x264(), 11, 0);
        b.bench("phase_advance", move || {
            black_box(g.advance(Seconds::from_ms(0.5)))
        });
    }

    for cores in [8usize, 32] {
        let mut grid =
            ThermalGrid::new(Floorplan::for_cores(cores), ThermalParams::paper_default());
        let powers = vec![Watts::new(8.0); cores];
        b.bench(&format!("thermal_step/{cores}"), move || {
            grid.step(black_box(&powers), Seconds::from_ms(0.5))
        });
    }

    b.finish();
}
