//! Simulator throughput: how fast the substrate advances simulated time.
//! One `chip_step` covers a full 0.5 ms PIC interval (all cores + power +
//! thermal), so simulated-time / wall-time ≈ 0.5 ms / reported time.

use cpm_sim::{cache::Hierarchy, Chip, CmpConfig};
use cpm_thermal::{Floorplan, ThermalGrid, ThermalParams};
use cpm_units::{Seconds, Watts};
use cpm_workloads::{parsec, AddressStream, Mix, PhaseGenerator, WorkloadAssignment};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_chip_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("chip_step");
    for (cores, width, mix) in [
        (8usize, 2usize, Mix::Mix1),
        (16, 4, Mix::Mix3),
        (32, 4, Mix::Mix3),
    ] {
        let cfg = CmpConfig::with_topology(cores, width);
        let assignment = WorkloadAssignment::paper_mix(mix, cores);
        let mut chip = Chip::new(cfg, &assignment);
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, _| {
            b.iter(|| black_box(chip.step_pic()))
        });
    }
    group.finish();
}

fn bench_cache_hierarchy(c: &mut Criterion) {
    let cfg = CmpConfig::paper_default().cache;
    let mut h = Hierarchy::new(&cfg);
    let mut stream = AddressStream::new(&parsec::canneal(), 42);
    let addrs = stream.take(4096);
    let mut k = 0usize;
    c.bench_function("cache_hierarchy_access", |b| {
        b.iter(|| {
            k = (k + 1) & 4095;
            black_box(h.access(black_box(addrs[k])))
        })
    });
}

fn bench_address_stream(c: &mut Criterion) {
    let mut stream = AddressStream::new(&parsec::streamcluster(), 7);
    c.bench_function("address_stream_next", |b| {
        b.iter(|| black_box(stream.next_address()))
    });
}

fn bench_phase_generator(c: &mut Criterion) {
    let mut g = PhaseGenerator::new(&parsec::x264(), 11, 0);
    c.bench_function("phase_advance", |b| {
        b.iter(|| black_box(g.advance(Seconds::from_ms(0.5))))
    });
}

fn bench_thermal_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_step");
    for cores in [8usize, 32] {
        let mut grid =
            ThermalGrid::new(Floorplan::for_cores(cores), ThermalParams::paper_default());
        let powers = vec![Watts::new(8.0); cores];
        group.bench_with_input(BenchmarkId::from_parameter(cores), &cores, |b, _| {
            b.iter(|| grid.step(black_box(&powers), Seconds::from_ms(0.5)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_chip_step,
    bench_cache_hierarchy,
    bench_address_stream,
    bench_phase_generator,
    bench_thermal_grid
);
criterion_main!(benches);
