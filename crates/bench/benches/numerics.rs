//! Numerical-kernel benchmarks: polynomial root finding (the pole
//! analysis), transfer-function simulation, and the regression fits that
//! back the transducer and the plant identification.

use cpm_bench::microbench::{black_box, Bench};
use cpm_control::sysid::{LinearRegression, QuadraticRegression};
use cpm_control::{closed_loop, PidGains, Polynomial};

fn main() {
    let mut b = Bench::new("numerics");

    for degree in [3usize, 6, 10] {
        let roots: Vec<f64> = (0..degree)
            .map(|k| -0.9 + 1.7 * k as f64 / degree as f64)
            .collect();
        let p = Polynomial::from_roots(&roots);
        b.bench(&format!("polynomial_roots/{degree}"), move || {
            black_box(cpm_control::roots::roots(black_box(&p)))
        });
    }

    b.bench("closed_loop_poles", || {
        let cl = closed_loop(PidGains::paper(), black_box(0.79));
        black_box(cl.poles())
    });
    b.bench("gain_margin_search", || {
        black_box(cpm_control::analysis::gain_margin(
            PidGains::paper(),
            black_box(0.79),
            1e-3,
        ))
    });

    let cl = closed_loop(PidGains::paper(), 0.79);
    for len in [100usize, 1000] {
        let cl = cl.clone();
        b.bench(&format!("step_response/{len}"), move || {
            black_box(cl.step_response(len))
        });
    }

    let data: Vec<(f64, f64)> = (0..256)
        .map(|i| {
            let x = i as f64 / 256.0;
            (x, 20.0 * x + 5.0 + ((i * 37) % 11) as f64 * 0.01)
        })
        .collect();
    {
        let data = data.clone();
        b.bench("linear_regression_fit_256", move || {
            let mut r = LinearRegression::new();
            for &(x, y) in &data {
                r.add(x, y);
            }
            black_box(r.fit())
        });
    }
    b.bench("quadratic_regression_fit_256", move || {
        let mut r = QuadraticRegression::new();
        for &(x, y) in &data {
            r.add(x, y);
        }
        black_box(r.fit())
    });

    b.finish();
}
