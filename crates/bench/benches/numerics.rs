//! Numerical-kernel benchmarks: polynomial root finding (the pole
//! analysis), transfer-function simulation, and the regression fits that
//! back the transducer and the plant identification.

use cpm_control::sysid::{LinearRegression, QuadraticRegression};
use cpm_control::{closed_loop, PidGains, Polynomial};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_root_finding(c: &mut Criterion) {
    let mut group = c.benchmark_group("polynomial_roots");
    for degree in [3usize, 6, 10] {
        let roots: Vec<f64> = (0..degree)
            .map(|k| -0.9 + 1.7 * k as f64 / degree as f64)
            .collect();
        let p = Polynomial::from_roots(&roots);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &p, |b, poly| {
            b.iter(|| black_box(cpm_control::roots::roots(black_box(poly))))
        });
    }
    group.finish();
}

fn bench_closed_loop_analysis(c: &mut Criterion) {
    c.bench_function("closed_loop_poles", |b| {
        b.iter(|| {
            let cl = closed_loop(PidGains::paper(), black_box(0.79));
            black_box(cl.poles())
        })
    });
    c.bench_function("gain_margin_search", |b| {
        b.iter(|| {
            black_box(cpm_control::analysis::gain_margin(
                PidGains::paper(),
                black_box(0.79),
                1e-3,
            ))
        })
    });
}

fn bench_step_response(c: &mut Criterion) {
    let cl = closed_loop(PidGains::paper(), 0.79);
    let mut group = c.benchmark_group("step_response");
    for len in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &n| {
            b.iter(|| black_box(cl.step_response(n)))
        });
    }
    group.finish();
}

fn bench_regressions(c: &mut Criterion) {
    let data: Vec<(f64, f64)> = (0..256)
        .map(|i| {
            let x = i as f64 / 256.0;
            (x, 20.0 * x + 5.0 + ((i * 37) % 11) as f64 * 0.01)
        })
        .collect();
    c.bench_function("linear_regression_fit_256", |b| {
        b.iter(|| {
            let mut r = LinearRegression::new();
            for &(x, y) in &data {
                r.add(x, y);
            }
            black_box(r.fit())
        })
    });
    c.bench_function("quadratic_regression_fit_256", |b| {
        b.iter(|| {
            let mut r = QuadraticRegression::new();
            for &(x, y) in &data {
                r.add(x, y);
            }
            black_box(r.fit())
        })
    });
}

criterion_group!(
    benches,
    bench_root_finding,
    bench_closed_loop_analysis,
    bench_step_response,
    bench_regressions
);
criterion_main!(benches);
