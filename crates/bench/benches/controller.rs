//! Controller-path microbenchmarks: the per-invocation cost of the PID
//! law, the PIC (sense → control → actuate), and GPM provisioning at
//! several island counts. These bound the runtime overhead the scheme
//! would impose on a real power-management firmware.

use cpm_bench::microbench::{black_box, Bench};
use cpm_control::{Pid, PidGains};
use cpm_core::gpm::{GlobalPowerManager, IslandFeedback, IslandRange};
use cpm_core::pic::{PerIslandController, PicSensor};
use cpm_core::policies::performance::PerformanceAware;
use cpm_power::dvfs::DvfsTable;
use cpm_units::{IslandId, Ratio, Watts};

fn main() {
    let mut b = Bench::new("controller");

    {
        let mut pid = Pid::new(PidGains::paper()).with_integral_limit(2.0);
        let mut e = 0.1f64;
        b.bench("pid_step", move || {
            e = -e * 0.99;
            black_box(pid.step(black_box(e)))
        });
    }

    for sensor in [PicSensor::Oracle, PicSensor::Transducer] {
        let mut pic = PerIslandController::new(
            IslandId(0),
            DvfsTable::pentium_m(),
            Watts::new(24.0),
            PidGains::paper(),
            0.79,
            sensor,
        );
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            pic.observe_calibration(Ratio::new(u), Watts::new(20.0 * u + 4.0));
        }
        pic.set_target(Watts::new(15.0));
        let mut p = 14.0f64;
        b.bench(&format!("pic_invoke/{sensor:?}"), move || {
            p = 14.0 + (p * 17.0) % 3.0;
            black_box(pic.invoke(Ratio::new(0.6), Watts::new(black_box(p))))
        });
    }

    for islands in [4usize, 8, 32] {
        let ranges = vec![
            IslandRange {
                floor: Watts::new(4.0),
                ceiling: Watts::new(25.0),
            };
            islands
        ];
        let mut gpm = GlobalPowerManager::new(
            Watts::new(20.0 * islands as f64),
            Box::new(PerformanceAware::new()),
            ranges,
        );
        let feedback: Vec<IslandFeedback> = (0..islands)
            .map(|i| IslandFeedback {
                island: IslandId(i),
                allocated: Watts::new(20.0),
                actual_power: Watts::new(18.0 + (i % 3) as f64),
                bips: 1.0 + (i % 4) as f64 * 0.5,
                utilization: Ratio::new(0.7),
                epi: None,
                peak_temperature: 60.0,
            })
            .collect();
        b.bench(&format!("gpm_provision/{islands}"), move || {
            black_box(gpm.provision(black_box(&feedback)))
        });
    }

    b.finish();
}
