//! Artifact schema gates: one checker for every BENCH_*.json shape.
//!
//! CI used to carry one copy-pasted `grep -q` loop per artifact; the
//! required-key tables now live here, behind `experiments check-schema
//! <artifact>`, so the workflow, the tier-1 tests, and any local run all
//! apply the identical gate. Checks are deliberately `grep`-equivalent —
//! substring presence of each required key (quotes included) — because
//! the artifacts are hand-rolled JSON and the gate guards the *shape
//! consumers parse*, not values. A balanced-brace count approximates
//! well-formedness without pulling in a JSON parser (the workspace
//! builds with zero external crates).

/// Which artifact shape a file must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// `BENCH_experiments.json` — sweep telemetry from `experiments all`.
    Experiments,
    /// `BENCH_perf.json` — the regression-gated perf suite.
    Perf,
    /// `BENCH_scaling.json` — the kilocore scaling study.
    Scaling,
    /// `BENCH_scenarios.json` — the fault-injection scenario suite.
    Scenarios,
    /// `HEALTH_*.json` — the SLO watchdog's health report.
    Health,
}

impl ArtifactKind {
    /// Stable name used in messages.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Experiments => "experiments",
            ArtifactKind::Perf => "perf",
            ArtifactKind::Scaling => "scaling",
            ArtifactKind::Scenarios => "scenarios",
            ArtifactKind::Health => "health",
        }
    }

    /// Infers the expected shape from an artifact path's basename.
    /// `None` when the name matches no known artifact family.
    pub fn infer(path: &str) -> Option<Self> {
        let base = path
            .rsplit(['/', '\\'])
            .next()
            .unwrap_or(path)
            .to_ascii_lowercase();
        // Order matters: "scenarios" and "scaling" both contain "s",
        // but only specific substrings decide. Health is checked first:
        // `HEALTH_<scenario stem>.json` basenames may embed a scenario
        // name, and the HEALTH_ prefix wins.
        if base.contains("health") {
            Some(ArtifactKind::Health)
        } else if base.contains("scenario") {
            Some(ArtifactKind::Scenarios)
        } else if base.contains("perf") {
            Some(ArtifactKind::Perf)
        } else if base.contains("scaling") {
            Some(ArtifactKind::Scaling)
        } else if base.contains("experiments") || base.contains("bench") {
            Some(ArtifactKind::Experiments)
        } else {
            None
        }
    }

    /// The keys consumers parse out of this artifact. Substring
    /// semantics, quotes included — exactly what the former CI `grep -q`
    /// loops matched.
    pub fn required_keys(self) -> &'static [&'static str] {
        match self {
            ArtifactKind::Experiments => &[
                "\"workers\"",
                "\"total_seconds\"",
                "\"experiments\"",
                "\"pool\"",
                "\"contexts\"",
                "\"utilization\"",
                "\"metrics\"",
            ],
            ArtifactKind::Perf => &[
                "\"targets\"",
                "\"chip_step_8\"",
                "\"chip_step_32\"",
                "\"chip_step_1024\"",
                "\"chip_step_1024_sharded\"",
                "\"math_sin_lane\"",
                "\"math_exp_lane\"",
                "\"pid_step\"",
                "\"maxbips_choose\"",
                "\"thermal_step_32\"",
                "\"thermal_step_64\"",
                "\"thermal_step_128\"",
                "\"cache_access\"",
                "\"calibration\"",
                "\"sweep\"",
                "\"baseline_seconds\"",
                "\"speedup\"",
            ],
            ArtifactKind::Scaling => &[
                "\"schema\": \"cpm-scaling-v1\"",
                "\"points\"",
                "\"cores\": 1024",
                "\"islands_requested\"",
                "\"step_ns_per_core\"",
                "\"step_fraction\"",
                "\"pic_fraction\"",
                "\"gpm_fraction\"",
                "\"two_tier_decision_ns\"",
                "\"maxbips_decision_ns\"",
                "\"maxbips_vs_two_tier\"",
                "\"metrics\"",
            ],
            ArtifactKind::Scenarios => &[
                "\"schema\": \"cpm-scenarios-v1\"",
                "\"scenarios\"",
                "\"name\"",
                "\"digest\"",
                "\"golden_digest\"",
                "\"status\"",
                "\"checks\"",
                "\"diverged\"",
                "\"alarms_total\"",
            ],
            ArtifactKind::Health => &[
                "\"schema\": \"cpm-health-v1\"",
                "\"subject\"",
                "\"events\"",
                "\"rounds\"",
                "\"alarms_total\"",
                "\"verdict\"",
                "\"monitors\"",
                "\"monitor\": \"tracking-error\"",
                "\"monitor\": \"budget-overshoot\"",
                "\"monitor\": \"actuator-churn\"",
                "\"monitor\": \"stale-sensor\"",
                "\"worst_value\"",
                "\"threshold\"",
            ],
        }
    }
}

/// Validates `content` against the artifact's required-key table and the
/// balanced-brace well-formedness check. Returns the list of problems
/// (empty = pass).
pub fn check_schema(kind: ArtifactKind, content: &str) -> Vec<String> {
    let mut problems = Vec::new();
    for key in kind.required_keys() {
        if !content.contains(key) {
            problems.push(format!("missing required key {key}"));
        }
    }
    for (open, close) in [('{', '}'), ('[', ']')] {
        let opens = content.matches(open).count();
        let closes = content.matches(close).count();
        if opens != closes {
            problems.push(format!(
                "unbalanced {open}{close}: {opens} opening vs {closes} closing"
            ));
        }
    }
    if content.trim().is_empty() {
        problems.push("artifact is empty".to_string());
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_is_inferred_from_basenames() {
        assert_eq!(
            ArtifactKind::infer("BENCH_experiments.json"),
            Some(ArtifactKind::Experiments)
        );
        assert_eq!(
            ArtifactKind::infer("/tmp/out/BENCH_perf.json"),
            Some(ArtifactKind::Perf)
        );
        assert_eq!(
            ArtifactKind::infer("BENCH_scaling.json"),
            Some(ArtifactKind::Scaling)
        );
        assert_eq!(
            ArtifactKind::infer("BENCH_scenarios.json"),
            Some(ArtifactKind::Scenarios)
        );
        assert_eq!(
            ArtifactKind::infer("bench_w1.json"),
            Some(ArtifactKind::Experiments)
        );
        assert_eq!(
            ArtifactKind::infer("HEALTH_baseline_pid.json"),
            Some(ArtifactKind::Health)
        );
        assert_eq!(
            ArtifactKind::infer("/tmp/HEALTH_perf_80.json"),
            Some(ArtifactKind::Health)
        );
        assert_eq!(ArtifactKind::infer("random.json"), None);
    }

    #[test]
    fn missing_keys_are_reported_individually() {
        let problems = check_schema(ArtifactKind::Experiments, "{\"workers\": 1}");
        assert!(problems.iter().any(|p| p.contains("\"pool\"")));
        assert!(problems.iter().any(|p| p.contains("\"metrics\"")));
        assert!(!problems.iter().any(|p| p.contains("\"workers\"")));
    }

    #[test]
    fn unbalanced_braces_fail() {
        let mut doc = String::from("{");
        for key in ArtifactKind::Experiments.required_keys() {
            doc.push_str(&format!("{key}: 1,"));
        }
        let problems = check_schema(ArtifactKind::Experiments, &doc);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("unbalanced"));
    }
}
