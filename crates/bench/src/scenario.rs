//! The scenario suite runner behind `experiments scenarios`.
//!
//! Fans the [`cpm_scenario::CATALOGUE`] out on the shared worker pool,
//! compares each trajectory against its committed golden, and — on
//! divergence — performs the differential replay: the scenario is re-run
//! from scratch and the two trajectories are compared with each other
//! first, so the report can say whether the gate tripped on
//! *nondeterminism* (replays disagree) or a *behavioral change* (replays
//! agree but the golden doesn't).
//!
//! The module is IO-free: the binary reads golden files into the input
//! map and writes the returned artifacts (`SCENARIO_<stem>.jsonl`,
//! `DIVERGENCE_<stem>.txt`, refreshed goldens, `BENCH_scenarios.json`).
//! Reduction is in catalogue order, so the per-scenario summary lines
//! and every trajectory artifact are byte-identical for any worker
//! count.

use std::collections::BTreeMap;
use std::sync::Arc;

use cpm_scenario::{differential_report, run_scenario, GoldenDoc, ScenarioCheck, CATALOGUE};

/// How a scenario fared against its committed golden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// Trajectory reproduces the committed golden exactly.
    Match,
    /// Trajectory differs from the committed golden (gate failure).
    Diverged,
    /// No golden is committed for this scenario (gate failure).
    Missing,
    /// `--update-goldens` refreshed (or created) the golden.
    Updated,
}

impl ScenarioStatus {
    /// Stable identifier used in artifacts and stdout.
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioStatus::Match => "match",
            ScenarioStatus::Diverged => "diverged",
            ScenarioStatus::Missing => "missing",
            ScenarioStatus::Updated => "updated",
        }
    }

    /// True when this status must fail the gate.
    pub fn is_failure(self) -> bool {
        matches!(self, ScenarioStatus::Diverged | ScenarioStatus::Missing)
    }
}

/// One scenario's suite result.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name (`<effect>@<scheme>`).
    pub name: &'static str,
    /// Filesystem-safe stem for artifact names.
    pub stem: String,
    /// Digest of this run's trajectory.
    pub digest: String,
    /// Digest recorded in the committed golden (`None` when missing).
    pub golden_digest: Option<String>,
    /// Gate outcome.
    pub status: ScenarioStatus,
    /// Behavioral assertions evaluated on the run.
    pub checks: Vec<ScenarioCheck>,
    /// Event count of the trajectory.
    pub events: usize,
    /// SLO alarms the watchdog raised (alarm events ride the trajectory).
    pub alarms: usize,
    /// The rendered trajectory (written as `SCENARIO_<stem>.jsonl`).
    pub jsonl: String,
    /// Watchdog health report (written as `HEALTH_<stem>.json`).
    pub health_json: String,
    /// Chrome `trace_event` document (written as `SCENARIO_<stem>_chrome.json`).
    pub chrome_json: String,
    /// Golden text to write when the status is [`ScenarioStatus::Updated`].
    pub refreshed_golden: Option<String>,
    /// Differential-replay report for diverged scenarios.
    pub divergence: Option<String>,
}

impl ScenarioReport {
    /// True when every behavioral check passed.
    pub fn checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// The whole suite's outcome.
#[derive(Debug, Clone)]
pub struct ScenarioSuite {
    /// Per-scenario results in catalogue order.
    pub reports: Vec<ScenarioReport>,
    /// Wall-clock of the whole suite, seconds.
    pub total_seconds: f64,
    /// Worker count the suite fanned out on.
    pub workers: usize,
}

impl ScenarioSuite {
    /// True when any scenario must fail the gate (golden divergence /
    /// missing golden / failed behavioral check).
    pub fn has_failures(&self) -> bool {
        self.reports
            .iter()
            .any(|r| r.status.is_failure() || !r.checks_passed())
    }
}

/// Filesystem-safe artifact stem for a scenario name:
/// `budget-step@thermal` → `budget-step_thermal`.
pub fn scenario_stem(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Runs the full catalogue against the committed goldens.
///
/// `goldens` maps scenario name → committed golden text (the binary
/// loads `goldens/<stem>.golden`); names absent from the map count as
/// [`ScenarioStatus::Missing`]. With `update_goldens`, divergent and
/// missing goldens are refreshed instead of failing, and the new text is
/// returned in [`ScenarioReport::refreshed_golden`].
pub fn run_scenario_suite(
    goldens: BTreeMap<String, String>,
    update_goldens: bool,
) -> Result<ScenarioSuite, String> {
    let t0 = std::time::Instant::now();
    let pool = cpm_runtime::Pool::global();
    let goldens = Arc::new(goldens);
    let cells = {
        let goldens = Arc::clone(&goldens);
        pool.parallel_map(CATALOGUE.to_vec(), move |scenario| {
            run_cell(
                &scenario,
                goldens.get(scenario.name).map(String::as_str),
                update_goldens,
            )
        })
    };
    let mut reports = Vec::with_capacity(cells.len());
    for cell in cells {
        reports.push(cell?);
    }
    Ok(ScenarioSuite {
        reports,
        total_seconds: t0.elapsed().as_secs_f64(),
        workers: pool.workers().max(1),
    })
}

/// Runs one catalogue entry and gates it against its golden.
fn run_cell(
    scenario: &cpm_scenario::Scenario,
    golden_text: Option<&str>,
    update_goldens: bool,
) -> Result<ScenarioReport, String> {
    let run = run_scenario(scenario)?;
    let stem = scenario_stem(run.name);
    let mut report = ScenarioReport {
        name: run.name,
        stem,
        digest: run.digest.clone(),
        golden_digest: None,
        status: ScenarioStatus::Missing,
        checks: run.checks.clone(),
        events: run.events,
        alarms: run.alarms,
        jsonl: run.jsonl.clone(),
        health_json: run.health_json.clone(),
        chrome_json: run.chrome_json.clone(),
        refreshed_golden: None,
        divergence: None,
    };
    let golden = match golden_text {
        None => {
            if update_goldens {
                report.status = ScenarioStatus::Updated;
                report.refreshed_golden = Some(run.golden.render());
            }
            return Ok(report);
        }
        Some(text) => match GoldenDoc::parse(text) {
            Ok(doc) => doc,
            Err(e) => {
                if update_goldens {
                    report.status = ScenarioStatus::Updated;
                    report.refreshed_golden = Some(run.golden.render());
                } else {
                    report.status = ScenarioStatus::Diverged;
                    report.divergence = Some(format!(
                        "scenario: {}\nverdict: CORRUPT-GOLDEN\ncommitted golden failed to \
                         parse: {e}\nRegenerate it with `experiments scenarios \
                         --update-goldens`.\n",
                        run.name
                    ));
                }
                return Ok(report);
            }
        },
    };
    report.golden_digest = Some(golden.digest.clone());
    if golden.matches(&run.golden) {
        report.status = ScenarioStatus::Match;
        return Ok(report);
    }
    if update_goldens {
        report.status = ScenarioStatus::Updated;
        report.refreshed_golden = Some(run.golden.render());
        return Ok(report);
    }
    // Differential replay: re-run the scenario and let the report tell
    // nondeterminism apart from behavioral change.
    report.status = ScenarioStatus::Diverged;
    let replay = run_scenario(scenario)?;
    report.divergence = Some(differential_report(&golden, &run.jsonl, &replay.jsonl));
    Ok(report)
}

/// Minimal JSON string escaping for the hand-rolled writer (check
/// details embed quoted labels).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the suite as the `BENCH_scenarios.json` artifact.
///
/// Hand-rolled writer — the workspace builds with zero external crates.
/// The artifact is schema-checked (see [`crate::schema`]), not
/// byte-diffed: `workers` and `total_seconds` vary by machine. The
/// trajectories themselves (`SCENARIO_<stem>.jsonl`) carry the
/// byte-determinism gate.
pub fn scenarios_json(suite: &ScenarioSuite) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"cpm-scenarios-v1\",\n");
    s.push_str(&format!("  \"workers\": {},\n", suite.workers));
    s.push_str(&format!(
        "  \"total_seconds\": {:.6},\n",
        if suite.total_seconds.is_finite() {
            suite.total_seconds
        } else {
            0.0
        }
    ));
    let diverged = suite
        .reports
        .iter()
        .filter(|r| r.status.is_failure())
        .count();
    let checks_failed = suite
        .reports
        .iter()
        .map(|r| r.checks.iter().filter(|c| !c.passed).count())
        .sum::<usize>();
    let alarms_total = suite.reports.iter().map(|r| r.alarms).sum::<usize>();
    s.push_str(&format!("  \"diverged\": {diverged},\n"));
    s.push_str(&format!("  \"checks_failed\": {checks_failed},\n"));
    s.push_str(&format!("  \"alarms_total\": {alarms_total},\n"));
    s.push_str("  \"scenarios\": [\n");
    for (k, r) in suite.reports.iter().enumerate() {
        let sep = if k + 1 < suite.reports.len() { "," } else { "" };
        let golden = r
            .golden_digest
            .as_ref()
            .map_or("null".to_string(), |d| format!("\"{}\"", esc(d)));
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"stem\": \"{}\", \"events\": {}, \"alarms\": {}, \
             \"digest\": \"{}\", \"golden_digest\": {golden}, \"status\": \"{}\", \"checks\": [",
            esc(r.name),
            esc(&r.stem),
            r.events,
            r.alarms,
            esc(&r.digest),
            r.status.as_str()
        ));
        for (j, c) in r.checks.iter().enumerate() {
            let csep = if j + 1 < r.checks.len() { ", " } else { "" };
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"passed\": {}, \"detail\": \"{}\"}}{csep}",
                esc(c.name),
                c.passed,
                esc(&c.detail)
            ));
        }
        s.push_str(&format!("]}}{sep}\n"));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(name: &'static str, status: ScenarioStatus) -> ScenarioReport {
        ScenarioReport {
            name,
            stem: scenario_stem(name),
            digest: "fnv1a64:00000000000000aa".to_string(),
            golden_digest: Some("fnv1a64:00000000000000bb".to_string()),
            status,
            checks: vec![ScenarioCheck {
                name: "tracks-at-end",
                passed: true,
                detail: "said \"ok\"".to_string(),
            }],
            events: 42,
            alarms: 3,
            jsonl: String::new(),
            health_json: String::new(),
            chrome_json: String::new(),
            refreshed_golden: None,
            divergence: None,
        }
    }

    #[test]
    fn stems_are_filesystem_safe() {
        assert_eq!(scenario_stem("budget-step@thermal"), "budget-step_thermal");
        assert_eq!(scenario_stem("a/b c"), "a_b_c");
    }

    #[test]
    fn json_has_the_artifact_shape() {
        let suite = ScenarioSuite {
            reports: vec![
                fake_report("baseline@pid", ScenarioStatus::Match),
                fake_report("stuck-knob@maxbips", ScenarioStatus::Diverged),
            ],
            total_seconds: 1.5,
            workers: 4,
        };
        let json = scenarios_json(&suite);
        for needle in [
            "\"schema\": \"cpm-scenarios-v1\"",
            "\"scenarios\": [",
            "\"name\": \"baseline@pid\"",
            "\"digest\": \"fnv1a64:00000000000000aa\"",
            "\"golden_digest\": \"fnv1a64:00000000000000bb\"",
            "\"status\": \"diverged\"",
            "\"checks\": [",
            "\"alarms\": 3",
            "\"alarms_total\": 6",
            "\"diverged\": 1",
            "\"detail\": \"said \\\"ok\\\"\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert!(suite.has_failures());
    }

    #[test]
    fn statuses_classify_failures() {
        assert!(ScenarioStatus::Diverged.is_failure());
        assert!(ScenarioStatus::Missing.is_failure());
        assert!(!ScenarioStatus::Match.is_failure());
        assert!(!ScenarioStatus::Updated.is_failure());
    }
}
