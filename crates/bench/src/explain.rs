//! `experiments explain <cell>`: walk the decision-provenance chain of
//! one traced cell and say *why* the controller did what it did.
//!
//! The explainer consumes nothing but the recorded event stream — the
//! same `TRACE_*.jsonl` events the flight recorder captures — and renders
//! the cause tree the causal spans encode:
//!
//! ```text
//! GpmRound #14  (budget, sensed chip draw)
//! ├─ GpmAllocation island 2  (draw it reacted to → share it granted)
//! └─ island 2
//!    ├─ PicDecision step 0  (sensed power, target, PID terms → output)
//!    │  └─ Actuation  (knob move it caused, granted or clamped)
//!    …
//! ```
//!
//! Every edge in the tree is checked against the recorded span ids
//! ([`cpm_obs::SpanId`]): a decision whose `parent` does not decode to
//! the enclosing round is flagged inline rather than silently re-parented,
//! so the output doubles as a provenance-integrity audit. Alarms the SLO
//! watchdog raised for the selected rounds are listed with the tree.
//!
//! All values come from simulated time and recorded inputs, so the
//! rendering is byte-identical across runs and worker counts.

use cpm_obs::{Event, EventPayload, SpanId};
use std::fmt::Write as _;

/// What to explain: which rounds, which islands.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExplainOptions {
    /// Explain only this GPM round (default: the last recorded round).
    pub round: Option<u64>,
    /// Restrict the tree to one island (default: all islands).
    pub island: Option<u32>,
}

/// Formats a raw span id the way the artifacts spell it.
fn span_str(raw: u64) -> String {
    match SpanId::decode(raw) {
        Some(s) => format!("{}#{raw:016x}", s.kind().as_str()),
        None => format!("invalid#{raw:016x}"),
    }
}

/// The rounds present in the stream, in first-appearance order.
fn recorded_rounds(events: &[Event]) -> Vec<u64> {
    let mut rounds = Vec::new();
    for e in events {
        if let EventPayload::GpmRound { round, .. } = e.payload {
            if !rounds.contains(&round) {
                rounds.push(round);
            }
        }
    }
    rounds
}

/// Renders the provenance chain for one traced event stream.
///
/// `subject` labels the header (e.g. `pid@80`). Fails when the stream has
/// no `GpmRound` events (nothing to walk) or the requested round is not
/// recorded.
pub fn explain_events(
    subject: &str,
    events: &[Event],
    opts: ExplainOptions,
) -> Result<String, String> {
    let rounds = recorded_rounds(events);
    if rounds.is_empty() {
        return Err(format!(
            "no GpmRound events recorded for {subject}: the cell ran without \
             provenance recording (or the ring buffer dropped the whole run)"
        ));
    }
    let round = match opts.round {
        Some(r) => {
            if !rounds.contains(&r) {
                return Err(format!(
                    "round {r} is not in the recorded stream (rounds {}..={})",
                    rounds.first().unwrap(),
                    rounds.last().unwrap()
                ));
            }
            r
        }
        None => *rounds.last().unwrap(),
    };

    let mut s = String::with_capacity(4096);
    let _ = writeln!(s, "== explain {subject} round {round} ==");
    let _ = writeln!(
        s,
        "stream: {} events, rounds {}..={} (pick one with --round)",
        events.len(),
        rounds.first().unwrap(),
        rounds.last().unwrap()
    );
    if let Some(i) = opts.island {
        let _ = writeln!(s, "island filter: {i}");
    }

    // The round node itself.
    let gpm_span = SpanId::gpm_round(round);
    let mut islands_on_chip = 0u32;
    for e in events {
        if let EventPayload::GpmRound {
            span,
            round: r,
            budget_w,
            actual_w,
            islands,
        } = e.payload
        {
            if r != round {
                continue;
            }
            islands_on_chip = islands;
            let _ = writeln!(
                s,
                "GpmRound #{round}  t={:.6}s  span={}  budget={:.3} W  \
                 sensed-draw={:.3} W  islands={islands}",
                e.time_s,
                span_str(span),
                budget_w,
                actual_w
            );
            if span != gpm_span.raw() {
                let _ = writeln!(
                    s,
                    "  !! span mismatch: recorded {} but coordinates say {}",
                    span_str(span),
                    span_str(gpm_span.raw())
                );
            }
        }
    }

    // Provisioning edges: what the GPM granted each island and the draw
    // it was reacting to.
    for e in events {
        if let EventPayload::GpmAllocation {
            round: r,
            island,
            allocated_w,
            actual_w,
            budget_w,
        } = e.payload
        {
            if r != round || opts.island.is_some_and(|want| want != island) {
                continue;
            }
            let _ = writeln!(
                s,
                "├─ GpmAllocation island {island}: drew {actual_w:.3} W last \
                 interval -> granted {allocated_w:.3} W of {budget_w:.3} W budget"
            );
        }
    }

    // Island subtrees: each PIC decision with the inputs it saw, and the
    // actuation it caused.
    let islands: Vec<u32> = match opts.island {
        Some(i) => vec![i],
        None => (0..islands_on_chip.max(1)).collect(),
    };
    for &island in &islands {
        let decisions: Vec<&Event> = events
            .iter()
            .filter(|e| {
                matches!(
                    e.payload,
                    EventPayload::PicDecision { round: r, island: i, .. }
                        if r == round && i == island
                )
            })
            .collect();
        let moves: Vec<&Event> = events
            .iter()
            .filter(|e| match e.payload {
                EventPayload::Actuation {
                    span, island: i, ..
                } => i == island && SpanId::decode(span).is_some_and(|sp| sp.round() == round),
                _ => false,
            })
            .collect();
        if decisions.is_empty() && moves.is_empty() {
            let _ = writeln!(
                s,
                "└─ island {island}: no decisions this round (controller out, \
                 or not a per-island scheme)"
            );
            continue;
        }
        let _ = writeln!(s, "└─ island {island}");
        for d in &decisions {
            if let EventPayload::PicDecision {
                span,
                parent,
                step,
                sensed_w,
                utilization,
                target_w,
                error,
                p_term,
                i_term,
                d_term,
                output,
                dvfs_index,
                saturated,
                ..
            } = d.payload
            {
                let _ = writeln!(
                    s,
                    "   ├─ PicDecision step {step}  t={:.6}s  span={}",
                    d.time_s,
                    span_str(span)
                );
                let _ = writeln!(
                    s,
                    "   │    sensed={sensed_w:.3} W  util={utilization:.3}  \
                     target={target_w:.3} W  err={error:+.4}"
                );
                let _ = writeln!(
                    s,
                    "   │    pid: p={p_term:+.4} i={i_term:+.4} d={d_term:+.4} \
                     -> output={output:+.4}  dvfs={dvfs_index}{}",
                    if saturated { "  [saturated]" } else { "" }
                );
                if parent != gpm_span.raw() {
                    let _ = writeln!(
                        s,
                        "   │    !! parent {} is not this round's {}",
                        span_str(parent),
                        span_str(gpm_span.raw())
                    );
                }
                // The actuation this decision caused shares the (round,
                // island, step) coordinates.
                let act = moves.iter().find(|m| match m.payload {
                    EventPayload::Actuation { span: a, .. } => {
                        SpanId::decode(a).is_some_and(|sp| sp.step() == Some(step))
                    }
                    _ => false,
                });
                if let Some(m) = act {
                    if let EventPayload::Actuation {
                        span,
                        parent,
                        from_dvfs,
                        requested_dvfs,
                        to_dvfs,
                        granted,
                        ..
                    } = m.payload
                    {
                        let verdict = if granted { "granted" } else { "clamped" };
                        let _ = writeln!(
                            s,
                            "   │    └─ Actuation span={}  dvfs {from_dvfs} -> \
                             {to_dvfs} (requested {requested_dvfs}, {verdict})",
                            span_str(span)
                        );
                        // Actuations parent to the decision's own span in
                        // per-island schemes, or straight to the round in
                        // chip-level ones.
                        let decision_span = SpanId::decode(span).and_then(|sp| {
                            Some(SpanId::pic_decision(sp.round(), sp.island()?, sp.step()?).raw())
                        });
                        if decision_span != Some(parent) && parent != gpm_span.raw() {
                            let _ = writeln!(
                                s,
                                "   │       !! parent {} matches neither the \
                                 decision nor the round",
                                span_str(parent)
                            );
                        }
                    }
                }
            }
        }
        // Chip-level schemes (MaxBIPS) actuate without PIC decisions.
        if decisions.is_empty() {
            for m in &moves {
                if let EventPayload::Actuation {
                    span,
                    from_dvfs,
                    requested_dvfs,
                    to_dvfs,
                    granted,
                    ..
                } = m.payload
                {
                    let verdict = if granted { "granted" } else { "clamped" };
                    let _ = writeln!(
                        s,
                        "   ├─ Actuation span={}  dvfs {from_dvfs} -> {to_dvfs} \
                         (requested {requested_dvfs}, {verdict})",
                        span_str(span)
                    );
                }
            }
        }
    }

    // Watchdog alarms attributed to the selected round.
    let mut alarm_lines = 0;
    for e in events {
        if let EventPayload::Alarm {
            monitor,
            island,
            round: r,
            value,
            threshold,
        } = e.payload
        {
            if r != round {
                continue;
            }
            if let Some(want) = opts.island {
                if island != u32::MAX && island != want {
                    continue;
                }
            }
            let at = if island == u32::MAX {
                "chip".to_string()
            } else {
                format!("island {island}")
            };
            let _ = writeln!(
                s,
                "!! alarm {monitor} at {at}: value {value:.4} vs threshold {threshold:.4}"
            );
            alarm_lines += 1;
        }
    }
    if alarm_lines == 0 {
        let _ = writeln!(s, "no watchdog alarms attributed to round {round}");
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_obs::EventPayload;

    fn stream() -> Vec<Event> {
        let g = SpanId::gpm_round(14);
        let p = SpanId::pic_decision(14, 2, 0);
        let a = SpanId::actuation(14, 2, 0);
        vec![
            Event {
                seq: 0,
                time_s: 0.070,
                payload: EventPayload::GpmRound {
                    span: g.raw(),
                    round: 14,
                    budget_w: 100.0,
                    actual_w: 98.5,
                    islands: 4,
                },
            },
            Event {
                seq: 1,
                time_s: 0.070,
                payload: EventPayload::GpmAllocation {
                    round: 14,
                    island: 2,
                    allocated_w: 25.0,
                    actual_w: 24.0,
                    budget_w: 100.0,
                },
            },
            Event {
                seq: 2,
                time_s: 0.0705,
                payload: EventPayload::PicDecision {
                    span: p.raw(),
                    parent: g.raw(),
                    round: 14,
                    step: 0,
                    island: 2,
                    sensed_w: 24.0,
                    utilization: 0.8,
                    target_w: 25.0,
                    error: 0.04,
                    p_term: 0.02,
                    i_term: 0.01,
                    d_term: 0.0,
                    output: 0.03,
                    dvfs_index: 5,
                    saturated: false,
                },
            },
            Event {
                seq: 3,
                time_s: 0.0705,
                payload: EventPayload::Actuation {
                    span: a.raw(),
                    parent: p.raw(),
                    island: 2,
                    from_dvfs: 4,
                    requested_dvfs: 5,
                    to_dvfs: 5,
                    granted: true,
                },
            },
            Event {
                seq: 4,
                time_s: 0.075,
                payload: EventPayload::Alarm {
                    monitor: "tracking-error",
                    island: 2,
                    round: 14,
                    value: 0.33,
                    threshold: 0.25,
                },
            },
        ]
    }

    #[test]
    fn chain_renders_from_events_alone() {
        let text = explain_events(
            "pid@80",
            &stream(),
            ExplainOptions {
                round: Some(14),
                island: Some(2),
            },
        )
        .unwrap();
        for needle in [
            "== explain pid@80 round 14 ==",
            "GpmRound #14",
            "budget=100.000 W",
            "GpmAllocation island 2",
            "granted 25.000 W",
            "PicDecision step 0",
            "pid: p=+0.0200 i=+0.0100 d=+0.0000",
            "Actuation span=actuation#",
            "dvfs 4 -> 5 (requested 5, granted)",
            "alarm tracking-error at island 2",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(!text.contains("!! span mismatch"), "{text}");
        assert!(!text.contains("!! parent"), "{text}");
    }

    #[test]
    fn default_round_is_the_last_recorded() {
        let text = explain_events("pid@80", &stream(), ExplainOptions::default()).unwrap();
        assert!(text.contains("round 14"), "{text}");
    }

    #[test]
    fn unrecorded_round_is_rejected() {
        let err = explain_events(
            "pid@80",
            &stream(),
            ExplainOptions {
                round: Some(99),
                island: None,
            },
        )
        .unwrap_err();
        assert!(err.contains("round 99"), "{err}");
        assert!(explain_events("pid@80", &[], ExplainOptions::default()).is_err());
    }

    #[test]
    fn broken_parent_is_flagged_not_hidden() {
        let mut events = stream();
        if let EventPayload::PicDecision { parent, .. } = &mut events[2].payload {
            *parent = SpanId::gpm_round(13).raw();
        }
        let text = explain_events(
            "pid@80",
            &events,
            ExplainOptions {
                round: Some(14),
                island: Some(2),
            },
        )
        .unwrap();
        assert!(text.contains("!! parent"), "{text}");
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = explain_events("pid@80", &stream(), ExplainOptions::default()).unwrap();
        let b = explain_events("pid@80", &stream(), ExplainOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
