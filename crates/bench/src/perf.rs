//! `experiments perf` — the regression-gated performance suite.
//!
//! Times the simulator's hot paths (one number per target, ns/op) plus one
//! full `experiments all` sweep, and renders the `BENCH_perf.json`
//! artifact CI uploads. The targets mirror the hot loops the PR 3
//! performance pass optimized: chip stepping (8/32 cores), the PIC's PID
//! step, the MaxBIPS DP search, the thermal RC step, a cache-hierarchy
//! access, and one full cache-simulator calibration.
//!
//! Built on [`crate::microbench::measure`] — the same calibrated-batch
//! protocol `cargo bench` uses, so numbers are comparable across both
//! entry points.

use crate::microbench::{black_box, measure, Measurement};
use cpm_control::PidGains;
use cpm_core::coordinator::SensorMode;
use cpm_core::maxbips::{MaxBips, MaxBipsObservation};
use cpm_core::pic::PerIslandController;
use cpm_power::dvfs::DvfsTable;
use cpm_sim::{cache::Hierarchy, calibration, Chip, ChipSnapshot, CmpConfig};
use cpm_thermal::{Floorplan, ThermalGrid, ThermalParams};
use cpm_units::{IslandId, Ratio, Seconds, Watts};
use cpm_workloads::{parsec, AddressStream, Mix, WorkloadAssignment};

/// One timed hot-path target.
#[derive(Debug, Clone)]
pub struct PerfEntry {
    /// Target name (stable — CI tooling keys on it).
    pub name: &'static str,
    /// The measurement.
    pub m: Measurement,
}

/// Everything one perf run produces.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Per-target ns/op, in suite order.
    pub entries: Vec<PerfEntry>,
    /// Wall-clock of one in-process `experiments all` sweep on a
    /// single-worker pool (the configuration the ≥ 2× acceptance gate is
    /// quoted in).
    pub sweep_seconds: f64,
    /// Whether the quick (smoke) protocol was used.
    pub quick: bool,
}

/// The pre-optimization single-worker sweep wall-clock on the reference
/// machine (seed of PR 3), kept in the artifact so the speedup that
/// gated the PR stays visible next to the current number.
pub const SWEEP_BASELINE_SECONDS: f64 = 0.26;

fn chip_step_target(cores: usize, width: usize, mix: Mix) -> impl FnMut() {
    let cfg = CmpConfig::with_topology(cores, width);
    let assignment = WorkloadAssignment::paper_mix(mix, cores);
    let mut chip = Chip::new(cfg, &assignment);
    let mut snap = ChipSnapshot::empty();
    move || chip.step_pic_into(black_box(&mut snap))
}

fn chip_step_kilocore_target(cores: usize, width: usize) -> impl FnMut() {
    // paper_mix caps out at 32 cores; tile Mix 3 across the big chip.
    let profiles: Vec<_> = WorkloadAssignment::paper_mix(Mix::Mix3, 32)
        .profiles()
        .iter()
        .cloned()
        .cycle()
        .take(cores)
        .collect();
    let cfg = CmpConfig::with_topology(cores, width);
    let assignment = WorkloadAssignment::new(profiles, width);
    let mut chip = Chip::new(cfg, &assignment);
    let mut snap = ChipSnapshot::empty();
    move || chip.step_pic_into(black_box(&mut snap))
}

/// Runs the suite. `quick` cuts per-target time budgets ~10× (the CI
/// smoke lane) — enough to catch order-of-magnitude regressions.
pub fn run_perf(quick: bool) -> PerfReport {
    let mut entries = Vec::new();
    let mut push = |name: &'static str, m: Measurement| {
        eprintln!("[perf] {name:<28} {:>12.1} ns/op", m.median_ns);
        entries.push(PerfEntry { name, m });
    };

    push(
        "chip_step_8",
        measure(quick, chip_step_target(8, 2, Mix::Mix1)),
    );
    push(
        "chip_step_32",
        measure(quick, chip_step_target(32, 4, Mix::Mix3)),
    );
    push(
        "chip_step_1024",
        measure(quick, chip_step_kilocore_target(1024, 64)),
    );

    {
        // The same kilocore chip with its island segments fanned out
        // across a 4-worker pool — the throughput figure the fleet tier
        // (ROADMAP item 1) builds on. On a single-CPU host this mostly
        // prices the fan-out overhead; the trajectory is byte-identical
        // to the serial target either way.
        let profiles: Vec<_> = WorkloadAssignment::paper_mix(Mix::Mix3, 32)
            .profiles()
            .iter()
            .cloned()
            .cycle()
            .take(1024)
            .collect();
        let cfg = CmpConfig::with_topology(1024, 64);
        let assignment = WorkloadAssignment::new(profiles, 64);
        let mut chip = Chip::new(cfg, &assignment);
        let mut snap = ChipSnapshot::empty();
        let pool = cpm_runtime::Pool::new(4);
        push(
            "chip_step_1024_sharded",
            measure(quick, move || {
                chip.step_pic_into_on(black_box(&mut snap), &pool)
            }),
        );
    }

    {
        // The deterministic cpm-math lane kernels at the kilocore column
        // width, reported per element (the unit the "libm floor"
        // discussion in EXPERIMENTS.md is quoted in). The closure steps a
        // whole 1024-wide column; the measurement is rescaled afterwards.
        const COL: usize = 1024;
        let per_elem = |m: Measurement| Measurement {
            median_ns: m.median_ns / COL as f64,
            min_ns: m.min_ns / COL as f64,
            batch: m.batch,
        };
        let xs: Vec<f64> = (0..COL).map(|i| 0.01 * i as f64 - 3.0).collect();
        let mut out = vec![0.0f64; COL];
        let xs2 = xs.clone();
        let mut out2 = out.clone();
        push(
            "math_sin_lane",
            per_elem(measure(quick, move || {
                cpm_math::sin_into(black_box(&xs), &mut out);
                black_box(&out);
            })),
        );
        push(
            "math_exp_lane",
            per_elem(measure(quick, move || {
                cpm_math::exp_into(black_box(&xs2), &mut out2);
                black_box(&out2);
            })),
        );
    }

    {
        // One PIC control-law invocation: transducer sense + PID step +
        // DVFS quantization (the per-island T_local work).
        let cfg = CmpConfig::paper_default();
        let mut pic = PerIslandController::new(
            IslandId(0),
            cfg.dvfs.clone(),
            Watts::new(24.0),
            PidGains::paper(),
            0.79,
            SensorMode::Oracle,
        );
        pic.set_target(Watts::new(16.0));
        push(
            "pid_step",
            measure(quick, move || {
                black_box(pic.invoke(black_box(Ratio::new(0.7)), black_box(Watts::new(17.0))))
            }),
        );
    }

    {
        // The MaxBIPS knapsack DP at the paper's 8-island scale
        // (memo-free: the round-to-round replay cache is bypassed).
        let obs: Vec<MaxBipsObservation> = (0..8)
            .map(|i| MaxBipsObservation {
                power: Watts::new(18.0 + (i % 5) as f64),
                static_power: Watts::new(4.0),
                bips: 1.0 + (i % 3) as f64,
                dvfs_index: 7,
            })
            .collect();
        let mut mb = MaxBips::new(DvfsTable::pentium_m());
        let budget = Watts::new(130.0);
        push(
            "maxbips_choose",
            measure(quick, move || {
                black_box(mb.choose_uncached(budget, black_box(&obs)))
            }),
        );
    }

    {
        let mut grid = ThermalGrid::new(Floorplan::for_cores(32), ThermalParams::paper_default());
        let powers = vec![Watts::new(8.0); 32];
        push(
            "thermal_step_32",
            measure(quick, move || {
                grid.step(black_box(&powers), Seconds::from_ms(0.5))
            }),
        );
    }

    // Datacenter-floorplan scales for the chunked stencil: 64×64 and
    // 128×128 dies (4096 / 16384 nodes), per the ROADMAP item 2 targets.
    for (name, dim) in [("thermal_step_64", 64usize), ("thermal_step_128", 128)] {
        let mut grid = ThermalGrid::new(Floorplan::grid(dim, dim), ThermalParams::paper_default());
        let powers = vec![Watts::new(8.0); dim * dim];
        push(
            name,
            measure(quick, move || {
                grid.step(black_box(&powers), Seconds::from_ms(0.5))
            }),
        );
    }

    {
        let cache = CmpConfig::paper_default().cache;
        let mut h = Hierarchy::new(&cache);
        let mut stream = AddressStream::new(&parsec::canneal(), 42);
        let addrs = stream.take(4096);
        let mut k = 0usize;
        push(
            "cache_access",
            measure(quick, move || {
                k = (k + 1) & 4095;
                black_box(h.access(black_box(addrs[k])))
            }),
        );
    }

    {
        // One full memo-free cache-simulator calibration (260k refs).
        let profile = parsec::blackscholes();
        let cache = CmpConfig::paper_default().cache;
        push(
            "calibration",
            measure(quick, move || {
                black_box(calibration::calibrate_uncached(&profile, &cache, 7))
            }),
        );
    }

    // One full sweep, single worker — the acceptance gate's configuration.
    // Memo caches may already be warm in this process; that is the same
    // steady state `experiments all` itself reaches, and the number is
    // reported alongside the per-target ns/op, not in place of them.
    let pool = cpm_runtime::Pool::new(1);
    let t0 = std::time::Instant::now();
    let sweep = crate::run_all_on(&pool);
    let sweep_seconds = t0.elapsed().as_secs_f64();
    black_box(sweep.reports.len());
    eprintln!("[perf] sweep_all (1 worker)        {sweep_seconds:.3} s  (pre-PR3 baseline {SWEEP_BASELINE_SECONDS:.2} s)");

    PerfReport {
        entries,
        sweep_seconds,
        quick,
    }
}

/// Renders the `BENCH_perf.json` artifact. Hand-rolled writer (the
/// workspace builds with zero external crates); all numbers are finite.
pub fn perf_json(report: &PerfReport) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "0.0".to_string()
        }
    }
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str("  \"targets\": [\n");
    for (k, e) in report.entries.iter().enumerate() {
        let sep = if k + 1 < report.entries.len() {
            ","
        } else {
            ""
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"batch\": {}}}{sep}\n",
            e.name,
            num(e.m.median_ns),
            num(e.m.min_ns),
            e.m.batch
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"sweep\": {\n");
    s.push_str(&format!(
        "    \"workers\": 1,\n    \"seconds\": {},\n    \"baseline_seconds\": {},\n    \"speedup\": {}\n",
        num(report.sweep_seconds),
        num(SWEEP_BASELINE_SECONDS),
        num(SWEEP_BASELINE_SECONDS / report.sweep_seconds.max(1e-9))
    ));
    s.push_str("  }\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_json_has_the_artifact_shape() {
        let report = PerfReport {
            entries: vec![PerfEntry {
                name: "chip_step_8",
                m: Measurement {
                    median_ns: 650.0,
                    min_ns: 600.0,
                    batch: 1000,
                },
            }],
            sweep_seconds: 0.12,
            quick: true,
        };
        let json = perf_json(&report);
        for needle in [
            "\"quick\": true",
            "\"targets\": [",
            "\"name\": \"chip_step_8\"",
            "\"median_ns\": 650.000",
            "\"sweep\": {",
            "\"seconds\": 0.120",
            "\"baseline_seconds\": 0.260",
            "\"speedup\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }
}
