//! Small text-report helpers shared by the experiments.

use std::fmt::Write as _;

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(line, "{}{}  ", c, " ".repeat(pad));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Section heading.
pub fn heading(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1.0".into()]);
        t.row(&["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
        // Columns align: both value cells start at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].find("1.0"), lines[3].find("2.5"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        Table::new(&["a", "b"]).row(&["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(f(2.0, 0), "2");
    }
}
