//! Trace exporter: writes the tracking traces behind Figs. 7–10 as CSV so
//! they can be plotted with any external tool.
//!
//! ```text
//! traces <output-dir> [budget-percent] [gpm-intervals]
//! ```
//!
//! Emits:
//! * `chip_power.csv` — time, chip power % (PIC and GPM resolution), budget,
//! * `island_<k>.csv` — time, target %, actual % per island,
//! * `temperatures.csv` — time, peak die temperature.

use cpm_core::prelude::*;
use cpm_units::IslandId;
use std::fmt::Write as _;
use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else {
        eprintln!("usage: traces <output-dir> [budget-percent] [gpm-intervals]");
        std::process::exit(2);
    };
    let budget: f64 = args
        .next()
        .map(|s| s.parse().expect("budget must be a number"))
        .unwrap_or(80.0);
    let intervals: usize = args
        .next()
        .map(|s| s.parse().expect("intervals must be an integer"))
        .unwrap_or(60);

    let out_dir = Path::new(&dir);
    std::fs::create_dir_all(out_dir).expect("create output directory");

    eprintln!("[traces] running {intervals} GPM intervals at a {budget} % budget …");
    let cfg = ExperimentConfig::paper_default().with_budget_percent(budget);
    let outcome = Coordinator::new(cfg)
        .expect("valid configuration")
        .run_for_gpm_intervals(intervals);

    // Chip power at both resolutions.
    let mut chip = String::from("time_s,chip_power_pct,budget_pct\n");
    for s in outcome.chip_power_percent.samples() {
        let _ = writeln!(
            chip,
            "{},{:.4},{:.2}",
            s.time.value(),
            s.value,
            outcome.budget_percent()
        );
    }
    std::fs::write(out_dir.join("chip_power.csv"), chip).expect("write chip_power.csv");

    let mut chip_gpm = String::from("time_s,chip_power_pct,budget_pct\n");
    for s in outcome.chip_power_percent_gpm().samples() {
        let _ = writeln!(
            chip_gpm,
            "{},{:.4},{:.2}",
            s.time.value(),
            s.value,
            outcome.budget_percent()
        );
    }
    std::fs::write(out_dir.join("chip_power_gpm.csv"), chip_gpm).expect("write chip_power_gpm.csv");

    // Per-island target vs actual.
    for i in 0..outcome.island_actual_percent.len() {
        let id = IslandId(i);
        let mut island = String::from("time_s,target_pct,actual_pct\n");
        let targets = &outcome.island_target_percent[i];
        let actuals = &outcome.island_actual_percent[i];
        for (t, a) in targets.samples().iter().zip(actuals.samples()) {
            let _ = writeln!(island, "{},{:.4},{:.4}", t.time.value(), t.value, a.value);
        }
        std::fs::write(
            out_dir.join(format!("island_{}.csv", id.index() + 1)),
            island,
        )
        .expect("write island CSV");
    }

    // Peak die temperature.
    let mut temps = String::from("time_s,peak_temp_c\n");
    for s in outcome.peak_temperature.samples() {
        let _ = writeln!(temps, "{},{:.3}", s.time.value(), s.value);
    }
    std::fs::write(out_dir.join("temperatures.csv"), temps).expect("write temperatures.csv");

    eprintln!(
        "[traces] wrote {} islands + chip traces to {}",
        outcome.island_actual_percent.len(),
        out_dir.display()
    );
}
