//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id>      run one experiment (table1 … fig19)
//! experiments all       run everything in paper order
//! experiments list      list experiment ids
//! ```

use cpm_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "list".to_string());
    match arg.as_str() {
        "list" => {
            println!("available experiments:");
            for id in ALL_EXPERIMENTS {
                println!("  {id}");
            }
            println!("  all");
        }
        "all" => {
            for id in ALL_EXPERIMENTS {
                eprintln!("[experiments] running {id} …");
                print!("{}", run_experiment(id).expect("known id"));
            }
        }
        id => match run_experiment(id) {
            Some(report) => print!("{report}"),
            None => {
                eprintln!("unknown experiment `{id}`; try `experiments list`");
                std::process::exit(2);
            }
        },
    }
}
