//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id> [<id> …]   run the named experiments (table1 … fig19)
//! experiments all             run everything in paper order, in parallel
//! experiments list            list experiment ids
//! ```
//!
//! `all` fans the experiments out on the shared worker pool (`CPM_WORKERS`
//! sets the width; default: available parallelism) and reduces results in
//! paper order, so **stdout is byte-identical for any worker count** — the
//! CI determinism gate diffs it across `CPM_WORKERS=1` and `=4`. Progress
//! and timing go to stderr; the engine telemetry (per-experiment
//! wall-clock, per-worker utilization) lands in `BENCH_experiments.json`
//! (override the path with `CPM_BENCH_JSON`).

use cpm_bench::{run_all, run_experiment, sweep_json, ALL_EXPERIMENTS};

fn run_one(id: &str) {
    match run_experiment(id) {
        Some(report) => print!("{report}"),
        None => {
            eprintln!("unknown experiment `{id}`; try `experiments list`");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => {
            println!("available experiments:");
            for id in ALL_EXPERIMENTS {
                println!("  {id}");
            }
            println!("  all");
        }
        Some("all") => {
            let workers = cpm_runtime::Pool::global().workers().max(1);
            eprintln!(
                "[experiments] running {} experiments on {workers} worker(s) …",
                ALL_EXPERIMENTS.len()
            );
            let sweep = run_all();
            for (_, report) in &sweep.reports {
                print!("{report}");
            }
            for t in &sweep.timings {
                eprintln!("[experiments] {:<12} {:8.2}s", t.id, t.seconds);
            }
            eprintln!(
                "[experiments] sweep total {:.2}s ({} jobs across {} contexts)",
                sweep.total_seconds,
                sweep.stats.total_jobs(),
                sweep.stats.per_context.len()
            );
            let path = std::env::var("CPM_BENCH_JSON")
                .unwrap_or_else(|_| "BENCH_experiments.json".to_string());
            match std::fs::write(&path, sweep_json(&sweep)) {
                Ok(()) => eprintln!("[experiments] telemetry written to {path}"),
                Err(e) => {
                    eprintln!("[experiments] failed to write {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(_) => {
            for id in &args {
                run_one(id);
            }
        }
    }
}
