//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id> [<id> …]   run the named experiments (table1 … fig19)
//! experiments all             run everything in paper order, in parallel
//! experiments trace <cell>    replay one cell with the flight recorder on
//! experiments perf [--quick]  time the hot paths, write BENCH_perf.json
//! experiments scaling [--quick]  kilocore sweep, write BENCH_scaling.json
//! experiments list            list experiment ids
//! ```
//!
//! `all` fans the experiments out on the shared worker pool (`CPM_WORKERS`
//! sets the width; default: available parallelism) and reduces results in
//! paper order, so **stdout is byte-identical for any worker count** — the
//! CI determinism gate diffs it across `CPM_WORKERS=1` and `=4`. Progress
//! and timing go to stderr, straight off the sweep's metrics registry; the
//! engine telemetry (per-experiment wall-clock, per-worker utilization,
//! the registry snapshot) lands in `BENCH_experiments.json` (override the
//! path with `CPM_BENCH_JSON`).
//!
//! `trace <cell>` replays one sweep cell — `<policy>@<budget>`, e.g.
//! `perf@80`, `thermal@80`, `variation@90` — with the flight recorder and
//! metrics registry enabled, and writes three artifacts next to the
//! working directory (override the directory with `CPM_TRACE_DIR`):
//! `TRACE_<cell>.jsonl` (the event log), `TRACE_<cell>.csv` (PIC-interval
//! time series), and `TRACE_<cell>_metrics.json` (the registry snapshot).
//! Timestamps are simulated time, so the artifacts are byte-identical
//! across runs and worker counts. Flags: `--rounds N` (default 30) and
//! `--hotspot-c T` (die-temperature watchdog threshold, default 80).
//!
//! `perf` runs the regression-gated performance suite: ns/op for each hot
//! path (chip step, PID step, MaxBIPS choose, thermal step, cache access,
//! calibration) plus one single-worker `all` sweep, written to
//! `BENCH_perf.json` (override with `CPM_PERF_JSON`). `--quick` cuts the
//! time budget ~10× for the CI smoke lane.
//!
//! `scaling` runs the kilocore scaling study: cores ∈ {8…1024} × islands
//! ∈ {2…16} under the performance-aware two-tier loop, recording ns/op
//! per core, the GPM/PIC overhead split, and MaxBIPS-vs-two-tier decision
//! latency, written to `BENCH_scaling.json` (override with
//! `CPM_SCALING_JSON`). `--quick` shrinks the per-point time budget for
//! the CI smoke lane.

use cpm_bench::perf::{perf_json, run_perf};
use cpm_bench::scaling::{run_scaling, scaling_json};
use cpm_bench::trace::{run_trace, TraceOptions};
use cpm_bench::{run_all, run_experiment, sweep_json, ALL_EXPERIMENTS};
use cpm_units::Celsius;

fn run_one(id: &str) {
    match run_experiment(id) {
        Some(report) => print!("{report}"),
        None => {
            eprintln!("unknown experiment `{id}`; try `experiments list`");
            std::process::exit(2);
        }
    }
}

fn run_all_cmd() {
    let workers = cpm_runtime::Pool::global().workers().max(1);
    eprintln!(
        "[experiments] running {} experiments on {workers} worker(s) …",
        ALL_EXPERIMENTS.len()
    );
    let sweep = run_all();
    for (_, report) in &sweep.reports {
        print!("{report}");
    }
    // Phase timing comes off the metrics registry the sweep published to,
    // in paper order (the registry holds one gauge per experiment).
    let snap = sweep.registry.snapshot();
    for id in ALL_EXPERIMENTS {
        if let Some(seconds) = snap.gauges.get(&format!("sweep.{id}.seconds")) {
            eprintln!("[experiments] {id:<12} {seconds:8.2}s");
        }
    }
    let total = snap
        .gauges
        .get("sweep.total_seconds")
        .copied()
        .unwrap_or(0.0);
    let jobs = snap.gauges.get("pool.jobs_total").copied().unwrap_or(0.0);
    eprintln!(
        "[experiments] sweep total {total:.2}s ({jobs:.0} jobs across {} contexts)",
        sweep.stats.per_context.len()
    );
    let path =
        std::env::var("CPM_BENCH_JSON").unwrap_or_else(|_| "BENCH_experiments.json".to_string());
    match std::fs::write(&path, sweep_json(&sweep)) {
        Ok(()) => eprintln!("[experiments] telemetry written to {path}"),
        Err(e) => {
            eprintln!("[experiments] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn trace_cmd(args: &[String]) {
    let Some(cell) = args.first() else {
        eprintln!("usage: experiments trace <policy>@<budget> [--rounds N] [--hotspot-c T]");
        std::process::exit(2);
    };
    let mut opts = TraceOptions::default();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--rounds" => {
                opts.rounds = args
                    .get(k + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--rounds needs a positive integer");
                        std::process::exit(2);
                    });
                k += 2;
            }
            "--hotspot-c" => {
                let t: f64 = args
                    .get(k + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--hotspot-c needs a temperature in °C");
                        std::process::exit(2);
                    });
                opts.hotspot_threshold = Celsius::new(t);
                k += 2;
            }
            other => {
                eprintln!("unknown trace flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let artifacts = run_trace(cell, &opts).unwrap_or_else(|e| {
        eprintln!("[trace] {e}");
        std::process::exit(2);
    });
    let dir = std::env::var("CPM_TRACE_DIR").unwrap_or_else(|_| ".".to_string());
    let stem = format!("{dir}/TRACE_{}", artifacts.stem);
    let outputs = [
        (format!("{stem}.jsonl"), &artifacts.jsonl),
        (format!("{stem}.csv"), &artifacts.csv),
        (format!("{stem}_metrics.json"), &artifacts.metrics_json),
    ];
    for (path, content) in &outputs {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("[trace] failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[trace] wrote {path}");
    }
    if artifacts.dropped > 0 {
        eprintln!(
            "[trace] ring buffer wrapped: {} oldest events dropped",
            artifacts.dropped
        );
    }
    eprintln!("[trace] {} events captured", artifacts.events.len());
    print!("{}", artifacts.metrics_text);
}

fn perf_cmd(args: &[String]) {
    let mut quick = false;
    for a in args {
        match a.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("unknown perf flag `{other}` (expected --quick)");
                std::process::exit(2);
            }
        }
    }
    let report = run_perf(quick);
    let path = std::env::var("CPM_PERF_JSON").unwrap_or_else(|_| "BENCH_perf.json".to_string());
    match std::fs::write(&path, perf_json(&report)) {
        Ok(()) => eprintln!("[perf] written to {path}"),
        Err(e) => {
            eprintln!("[perf] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn scaling_cmd(args: &[String]) {
    let mut quick = false;
    for a in args {
        match a.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("unknown scaling flag `{other}` (expected --quick)");
                std::process::exit(2);
            }
        }
    }
    let report = run_scaling(quick);
    let path =
        std::env::var("CPM_SCALING_JSON").unwrap_or_else(|_| "BENCH_scaling.json".to_string());
    match std::fs::write(&path, scaling_json(&report)) {
        Ok(()) => eprintln!("[scaling] written to {path}"),
        Err(e) => {
            eprintln!("[scaling] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => {
            println!("available experiments:");
            for id in ALL_EXPERIMENTS {
                println!("  {id}");
            }
            println!("  all");
            println!("  trace <policy>@<budget>");
            println!("  perf [--quick]");
            println!("  scaling [--quick]");
        }
        Some("all") => run_all_cmd(),
        Some("trace") => trace_cmd(&args[1..]),
        Some("perf") => perf_cmd(&args[1..]),
        Some("scaling") => scaling_cmd(&args[1..]),
        Some(_) => {
            for id in &args {
                run_one(id);
            }
        }
    }
}
