//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <id> [<id> …]   run the named experiments (table1 … fig19)
//! experiments all             run everything in paper order, in parallel
//! experiments trace <cell>    replay one cell with the flight recorder on
//! experiments explain <cell> [--round R] [--island I]  walk the cause chain
//! experiments perf [--quick]  time the hot paths, write BENCH_perf.json
//! experiments scaling [--quick]  kilocore sweep, write BENCH_scaling.json
//! experiments scenarios [--update-goldens]  fault-injection suite vs goldens
//! experiments check-schema <artifact> [..]  gate a BENCH/HEALTH json shape
//! experiments list            list experiment ids
//! ```
//!
//! `all` fans the experiments out on the shared worker pool (`CPM_WORKERS`
//! sets the width; default: available parallelism) and reduces results in
//! paper order, so **stdout is byte-identical for any worker count** — the
//! CI determinism gate diffs it across `CPM_WORKERS=1` and `=4`. Progress
//! and timing go to stderr, straight off the sweep's metrics registry; the
//! engine telemetry (per-experiment wall-clock, per-worker utilization,
//! the registry snapshot) lands in `BENCH_experiments.json` (override the
//! path with `CPM_BENCH_JSON`).
//!
//! `trace <cell>` replays one sweep cell — `<policy>@<budget>`, e.g.
//! `perf@80` (alias `pid@80`), `thermal@80`, `variation@90` — with the
//! flight recorder and metrics registry enabled, and writes the artifacts
//! next to the working directory (override the directory with
//! `CPM_TRACE_DIR`): `TRACE_<cell>.jsonl` (the event log, SLO alarms
//! appended), `TRACE_<cell>.csv` (PIC-interval time series),
//! `TRACE_<cell>_metrics.json` (the registry snapshot),
//! `TRACE_<cell>_chrome.json` (Chrome `trace_event` document — load it in
//! Perfetto / `chrome://tracing`), and `HEALTH_<cell>.json` (the SLO
//! watchdog's verdict). Timestamps are simulated time, so the artifacts
//! are byte-identical across runs and worker counts; the control loop's
//! wall-clock self-profile (sense/decide/actuate) goes to stderr only.
//! Flags: `--rounds N` (default 30) and `--hotspot-c T` (die-temperature
//! watchdog threshold, default 80).
//!
//! `explain <cell>` replays the cell like `trace` and then walks the
//! recorded decision-provenance chain: the GPM round's budget and sensed
//! draw, the per-island allocation it granted, every PIC decision with
//! the inputs it saw (sensed power, utilization, target, PID terms) and
//! the DVFS actuation it caused, with recorded span parentage verified
//! edge by edge. `--round R` picks a GPM round (default: last), and
//! `--island I` restricts the tree. The chain prints to stdout and lands
//! in `EXPLAIN_<cell>.txt` plus `HEALTH_<cell>.json` (same directory
//! rules as `trace`).
//!
//! `perf` runs the regression-gated performance suite: ns/op for each hot
//! path (chip step, PID step, MaxBIPS choose, thermal step, cache access,
//! calibration) plus one single-worker `all` sweep, written to
//! `BENCH_perf.json` (override with `CPM_PERF_JSON`). `--quick` cuts the
//! time budget ~10× for the CI smoke lane.
//!
//! `scaling` runs the kilocore scaling study: cores ∈ {8…1024} × islands
//! ∈ {2…16} under the performance-aware two-tier loop, recording ns/op
//! per core, the GPM/PIC overhead split, and MaxBIPS-vs-two-tier decision
//! latency, written to `BENCH_scaling.json` (override with
//! `CPM_SCALING_JSON`). `--quick` shrinks the per-point time budget for
//! the CI smoke lane.
//!
//! `scenarios` runs the deterministic fault-injection suite: every
//! catalogue entry (see `cpm-scenario`) replays against its committed
//! golden under `goldens/` (override with `CPM_GOLDEN_DIR`); trajectories
//! land as `SCENARIO_<stem>.jsonl` (SLO alarms appended as first-class
//! events), Chrome traces as `SCENARIO_<stem>_chrome.json`, watchdog
//! verdicts as `HEALTH_<stem>.json`, and divergence reports as
//! `DIVERGENCE_<stem>.txt` in `CPM_SCENARIO_DIR` (default `.`), with the
//! suite summary in `BENCH_scenarios.json` (`CPM_SCENARIOS_JSON`). The
//! command exits nonzero on any golden divergence, missing golden, or
//! failed behavioral check; `--update-goldens` refreshes the committed
//! fingerprints instead (use only for intended behavioral changes).
//!
//! `check-schema` applies the required-key artifact gates (the former CI
//! `grep` loops) to one or more `BENCH_*.json` / `HEALTH_*.json` files,
//! inferring the expected shape from each basename, and exits nonzero on
//! any missing key.

use cpm_bench::explain::{explain_events, ExplainOptions};
use cpm_bench::perf::{perf_json, run_perf};
use cpm_bench::scaling::{run_scaling, scaling_json};
use cpm_bench::scenario::{run_scenario_suite, scenario_stem, scenarios_json};
use cpm_bench::schema::{check_schema, ArtifactKind};
use cpm_bench::trace::{run_trace, TraceOptions};
use cpm_bench::{run_all, run_experiment, sweep_json, ALL_EXPERIMENTS};
use cpm_units::Celsius;

fn run_one(id: &str) {
    match run_experiment(id) {
        Some(report) => print!("{report}"),
        None => {
            eprintln!("unknown experiment `{id}`; try `experiments list`");
            std::process::exit(2);
        }
    }
}

fn run_all_cmd() {
    let workers = cpm_runtime::Pool::global().workers().max(1);
    eprintln!(
        "[experiments] running {} experiments on {workers} worker(s) …",
        ALL_EXPERIMENTS.len()
    );
    let sweep = run_all();
    for (_, report) in &sweep.reports {
        print!("{report}");
    }
    // Phase timing comes off the metrics registry the sweep published to,
    // in paper order (the registry holds one gauge per experiment).
    let snap = sweep.registry.snapshot();
    for id in ALL_EXPERIMENTS {
        if let Some(seconds) = snap.gauges.get(&format!("sweep.{id}.seconds")) {
            eprintln!("[experiments] {id:<12} {seconds:8.2}s");
        }
    }
    let total = snap
        .gauges
        .get("sweep.total_seconds")
        .copied()
        .unwrap_or(0.0);
    let jobs = snap.gauges.get("pool.jobs_total").copied().unwrap_or(0.0);
    eprintln!(
        "[experiments] sweep total {total:.2}s ({jobs:.0} jobs across {} contexts)",
        sweep.stats.per_context.len()
    );
    let path =
        std::env::var("CPM_BENCH_JSON").unwrap_or_else(|_| "BENCH_experiments.json".to_string());
    match std::fs::write(&path, sweep_json(&sweep)) {
        Ok(()) => eprintln!("[experiments] telemetry written to {path}"),
        Err(e) => {
            eprintln!("[experiments] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn trace_cmd(args: &[String]) {
    let Some(cell) = args.first() else {
        eprintln!("usage: experiments trace <policy>@<budget> [--rounds N] [--hotspot-c T]");
        std::process::exit(2);
    };
    let mut opts = TraceOptions::default();
    let mut k = 1;
    while k < args.len() {
        match args[k].as_str() {
            "--rounds" => {
                opts.rounds = args
                    .get(k + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--rounds needs a positive integer");
                        std::process::exit(2);
                    });
                k += 2;
            }
            "--hotspot-c" => {
                let t: f64 = args
                    .get(k + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--hotspot-c needs a temperature in °C");
                        std::process::exit(2);
                    });
                opts.hotspot_threshold = Celsius::new(t);
                k += 2;
            }
            other => {
                eprintln!("unknown trace flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let artifacts = run_trace(cell, &opts).unwrap_or_else(|e| {
        eprintln!("[trace] {e}");
        std::process::exit(2);
    });
    let dir = std::env::var("CPM_TRACE_DIR").unwrap_or_else(|_| ".".to_string());
    let stem = format!("{dir}/TRACE_{}", artifacts.stem);
    let outputs = [
        (format!("{stem}.jsonl"), &artifacts.jsonl),
        (format!("{stem}.csv"), &artifacts.csv),
        (format!("{stem}_metrics.json"), &artifacts.metrics_json),
        (format!("{stem}_chrome.json"), &artifacts.chrome_json),
        (
            format!("{dir}/HEALTH_{}.json", artifacts.stem),
            &artifacts.health_json,
        ),
    ];
    for (path, content) in &outputs {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("[trace] failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[trace] wrote {path}");
    }
    if artifacts.dropped > 0 {
        eprintln!(
            "[trace] ring buffer wrapped: {} oldest events dropped",
            artifacts.dropped
        );
    }
    eprintln!(
        "[trace] {} events captured, {} SLO alarms",
        artifacts.events.len(),
        artifacts.alarms
    );
    eprint!("{}", artifacts.profile_text);
    print!("{}", artifacts.metrics_text);
    print!("{}", artifacts.health_text);
}

fn explain_cmd(args: &[String]) {
    let Some(cell) = args.first() else {
        eprintln!(
            "usage: experiments explain <policy>@<budget> [--round R] [--island I] [--rounds N]"
        );
        std::process::exit(2);
    };
    let mut trace_opts = TraceOptions::default();
    let mut opts = ExplainOptions::default();
    let mut k = 1;
    while k < args.len() {
        let parse_u64 = |flag: &str, v: Option<&String>| -> u64 {
            v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} needs a non-negative integer");
                std::process::exit(2);
            })
        };
        match args[k].as_str() {
            "--round" => {
                opts.round = Some(parse_u64("--round", args.get(k + 1)));
                k += 2;
            }
            "--island" => {
                opts.island = Some(parse_u64("--island", args.get(k + 1)) as u32);
                k += 2;
            }
            "--rounds" => {
                trace_opts.rounds = parse_u64("--rounds", args.get(k + 1)) as usize;
                k += 2;
            }
            other => {
                eprintln!("unknown explain flag `{other}`");
                std::process::exit(2);
            }
        }
    }
    let artifacts = run_trace(cell, &trace_opts).unwrap_or_else(|e| {
        eprintln!("[explain] {e}");
        std::process::exit(2);
    });
    let text = explain_events(cell, &artifacts.events, opts).unwrap_or_else(|e| {
        eprintln!("[explain] {e}");
        std::process::exit(2);
    });
    let dir = std::env::var("CPM_TRACE_DIR").unwrap_or_else(|_| ".".to_string());
    let outputs = [
        (format!("{dir}/EXPLAIN_{}.txt", artifacts.stem), &text),
        (
            format!("{dir}/HEALTH_{}.json", artifacts.stem),
            &artifacts.health_json,
        ),
    ];
    for (path, content) in &outputs {
        if let Err(e) = std::fs::write(path, content) {
            eprintln!("[explain] failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[explain] wrote {path}");
    }
    print!("{text}");
    print!("{}", artifacts.health_text);
}

fn perf_cmd(args: &[String]) {
    let mut quick = false;
    for a in args {
        match a.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("unknown perf flag `{other}` (expected --quick)");
                std::process::exit(2);
            }
        }
    }
    let report = run_perf(quick);
    let path = std::env::var("CPM_PERF_JSON").unwrap_or_else(|_| "BENCH_perf.json".to_string());
    match std::fs::write(&path, perf_json(&report)) {
        Ok(()) => eprintln!("[perf] written to {path}"),
        Err(e) => {
            eprintln!("[perf] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn scaling_cmd(args: &[String]) {
    let mut quick = false;
    for a in args {
        match a.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("unknown scaling flag `{other}` (expected --quick)");
                std::process::exit(2);
            }
        }
    }
    let report = run_scaling(quick);
    let path =
        std::env::var("CPM_SCALING_JSON").unwrap_or_else(|_| "BENCH_scaling.json".to_string());
    match std::fs::write(&path, scaling_json(&report)) {
        Ok(()) => eprintln!("[scaling] written to {path}"),
        Err(e) => {
            eprintln!("[scaling] failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn scenarios_cmd(args: &[String]) {
    let mut update_goldens = false;
    for a in args {
        match a.as_str() {
            "--update-goldens" => update_goldens = true,
            other => {
                eprintln!("unknown scenarios flag `{other}` (expected --update-goldens)");
                std::process::exit(2);
            }
        }
    }
    let golden_dir = std::env::var("CPM_GOLDEN_DIR").unwrap_or_else(|_| "goldens".to_string());
    let out_dir = std::env::var("CPM_SCENARIO_DIR").unwrap_or_else(|_| ".".to_string());

    // Load whatever goldens are committed; missing files are reported
    // per-scenario by the suite rather than failing the whole run.
    let mut goldens = std::collections::BTreeMap::new();
    for scenario in cpm_scenario::CATALOGUE {
        let path = format!("{golden_dir}/{}.golden", scenario_stem(scenario.name));
        if let Ok(text) = std::fs::read_to_string(&path) {
            goldens.insert(scenario.name.to_string(), text);
        }
    }

    let suite = run_scenario_suite(goldens, update_goldens).unwrap_or_else(|e| {
        eprintln!("[scenarios] {e}");
        std::process::exit(1);
    });

    let mut failed = false;
    for r in &suite.reports {
        // Deterministic per-scenario summary on stdout (byte-identical
        // across worker counts); timing stays on stderr.
        let checks_ok = r.checks.iter().filter(|c| c.passed).count();
        println!(
            "scenario {} {} {} checks={}/{} alarms={}",
            r.name,
            r.digest,
            r.status.as_str(),
            checks_ok,
            r.checks.len(),
            r.alarms
        );
        for c in r.checks.iter().filter(|c| !c.passed) {
            println!("  check FAILED {}: {}", c.name, c.detail);
            failed = true;
        }
        let per_scenario = [
            (format!("{out_dir}/SCENARIO_{}.jsonl", r.stem), &r.jsonl),
            (
                format!("{out_dir}/SCENARIO_{}_chrome.json", r.stem),
                &r.chrome_json,
            ),
            (format!("{out_dir}/HEALTH_{}.json", r.stem), &r.health_json),
        ];
        for (path, content) in &per_scenario {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("[scenarios] failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(golden) = &r.refreshed_golden {
            let path = format!("{golden_dir}/{}.golden", r.stem);
            if let Err(e) = std::fs::write(&path, golden) {
                eprintln!("[scenarios] failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[scenarios] golden refreshed: {path}");
        }
        if let Some(divergence) = &r.divergence {
            let path = format!("{out_dir}/DIVERGENCE_{}.txt", r.stem);
            if let Err(e) = std::fs::write(&path, divergence) {
                eprintln!("[scenarios] failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[scenarios] divergence report written to {path}");
        }
        if r.status.is_failure() {
            failed = true;
        }
    }
    let json_path =
        std::env::var("CPM_SCENARIOS_JSON").unwrap_or_else(|_| "BENCH_scenarios.json".to_string());
    if let Err(e) = std::fs::write(&json_path, scenarios_json(&suite)) {
        eprintln!("[scenarios] failed to write {json_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[scenarios] {} scenarios on {} worker(s) in {:.2}s; artifact {json_path}",
        suite.reports.len(),
        suite.workers,
        suite.total_seconds
    );
    if failed {
        eprintln!("[scenarios] FAILED: golden divergence or behavioral check failure (see above)");
        std::process::exit(1);
    }
}

fn check_schema_cmd(args: &[String]) {
    if args.is_empty() {
        eprintln!("usage: experiments check-schema <artifact.json> [<artifact.json> …]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in args {
        let Some(kind) = ArtifactKind::infer(path) else {
            eprintln!("[check-schema] {path}: unrecognized artifact family");
            failed = true;
            continue;
        };
        let content = match std::fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("[check-schema] {path}: {e}");
                failed = true;
                continue;
            }
        };
        let problems = check_schema(kind, &content);
        if problems.is_empty() {
            println!("check-schema {path} ({}) ok", kind.name());
        } else {
            failed = true;
            println!("check-schema {path} ({}) FAILED", kind.name());
            for p in &problems {
                println!("  {p}");
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("list") => {
            println!("available experiments:");
            for id in ALL_EXPERIMENTS {
                println!("  {id}");
            }
            println!("  all");
            println!("  trace <policy>@<budget>");
            println!("  explain <policy>@<budget> [--round R] [--island I]");
            println!("  perf [--quick]");
            println!("  scaling [--quick]");
            println!("  scenarios [--update-goldens]");
            println!("  check-schema <artifact.json> …");
        }
        Some("all") => run_all_cmd(),
        Some("trace") => trace_cmd(&args[1..]),
        Some("explain") => explain_cmd(&args[1..]),
        Some("perf") => perf_cmd(&args[1..]),
        Some("scaling") => scaling_cmd(&args[1..]),
        Some("scenarios") => scenarios_cmd(&args[1..]),
        Some("check-schema") => check_schema_cmd(&args[1..]),
        Some(_) => {
            for id in &args {
                run_one(id);
            }
        }
    }
}
