//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment is a function returning a formatted text report (so the
//! integration tests can assert on the numbers); the `experiments` binary
//! dispatches on a subcommand and prints it. Run
//!
//! ```text
//! cargo run --release -p cpm-bench --bin experiments -- <id>
//! cargo run --release -p cpm-bench --bin experiments -- all
//! ```
//!
//! with `<id>` one of: `table1 table2 table3 poles margin fig5 fig6 fig7
//! fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19`.
//!
//! See DESIGN.md §4 for the experiment↔module map and EXPERIMENTS.md for
//! recorded paper-vs-measured results.

pub mod experiments;
pub mod report;

use experiments as ex;

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "poles",
    "margin",
    "bode",
    "locus",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "granularity",
];

/// Runs one experiment by id; `None` for unknown ids.
pub fn run_experiment(id: &str) -> Option<String> {
    Some(match id {
        "table1" => ex::tables::table1(),
        "table2" => ex::tables::table2(),
        "table3" => ex::tables::table3(),
        "poles" => ex::analysis::poles(),
        "margin" => ex::analysis::margin(),
        "bode" => ex::analysis::bode(),
        "locus" => ex::analysis::locus(),
        "fig5" => ex::model::fig5(),
        "fig6" => ex::model::fig6(),
        "fig7" => ex::tracking::fig7(),
        "fig8" => ex::tracking::fig8(),
        "fig9" => ex::tracking::fig9(),
        "fig10" => ex::tracking::fig10(),
        "fig11" => ex::budget::fig11(),
        "fig12" => ex::budget::fig12(),
        "fig13" => ex::scaling::fig13(),
        "fig14" => ex::budget::fig14(),
        "fig15" => ex::scaling::fig15(),
        "fig16" => ex::sensitivity::fig16(),
        "fig17" => ex::sensitivity::fig17(),
        "fig18" => ex::thermal::fig18(),
        "fig19" => ex::variation::fig19(),
        "granularity" => ex::granularity::granularity(),
        _ => return None,
    })
}
