//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment is a function returning a formatted text report (so the
//! integration tests can assert on the numbers); the `experiments` binary
//! dispatches on a subcommand and prints it. Run
//!
//! ```text
//! cargo run --release -p cpm-bench --bin experiments -- <id>
//! cargo run --release -p cpm-bench --bin experiments -- all
//! ```
//!
//! with `<id>` one of: `table1 table2 table3 poles margin fig5 fig6 fig7
//! fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19`.
//!
//! See DESIGN.md §4 for the experiment↔module map and EXPERIMENTS.md for
//! recorded paper-vs-measured results.

pub mod experiments;
pub mod explain;
pub mod microbench;
pub mod perf;
pub mod profile;
pub mod report;
pub mod scaling;
pub mod scenario;
pub mod schema;
pub mod trace;

use experiments as ex;

/// All experiment ids in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "poles",
    "margin",
    "bode",
    "locus",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "granularity",
];

/// Wall-clock cost of one experiment inside a sweep.
///
/// Measured around the experiment's `run_experiment` call on whichever
/// pool context executed it. Under work-stealing a context that finishes
/// its own cells helps with other experiments' cells, so an experiment's
/// wall-clock can exceed its pure compute time; the per-worker `busy`
/// accounting in [`cpm_runtime::PoolStats`] is the undistorted view.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTiming {
    /// Experiment id (one of [`ALL_EXPERIMENTS`]).
    pub id: &'static str,
    /// Wall-clock seconds from dispatch to report.
    pub seconds: f64,
}

/// Everything one `all` sweep produces.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// `(id, report)` in paper order — byte-identical for any worker
    /// count, so a determinism gate can diff the concatenation.
    pub reports: Vec<(&'static str, String)>,
    /// Per-experiment wall-clock, in the same order.
    pub timings: Vec<ExperimentTiming>,
    /// Wall-clock of the whole sweep.
    pub total_seconds: f64,
    /// Pool utilization snapshot taken when the sweep finished.
    pub stats: cpm_runtime::PoolStats,
    /// Sweep telemetry on the shared metrics registry: per-experiment
    /// wall-clock gauges (`sweep.<id>.seconds`), a `sweep.total_seconds`
    /// gauge, a `sweep.experiment_seconds` histogram, and the pool's
    /// jobs/steals/busy gauges (see [`cpm_runtime::PoolStats::export`]).
    pub registry: cpm_obs::Registry,
}

/// Histogram buckets for per-experiment wall-clock, seconds.
const EXPERIMENT_SECONDS_BUCKETS: &[f64] = &[0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0];

/// Runs every experiment on the global worker pool (sized by
/// `CPM_WORKERS`, default: available parallelism).
pub fn run_all() -> SweepOutcome {
    run_all_on(cpm_runtime::Pool::global())
}

/// Runs every experiment on an explicit pool.
///
/// Experiments are independent simulations, so the sweep fans them out as
/// top-level cells; sweep-style experiments additionally fan their own
/// (mix × budget × island-count) cells onto the *global* pool. Reduction
/// is deterministic: results are collected in [`ALL_EXPERIMENTS`] order
/// regardless of completion order or worker count.
pub fn run_all_on(pool: &cpm_runtime::Pool) -> SweepOutcome {
    let sweep_start = std::time::Instant::now();
    let cells = pool.parallel_map(ALL_EXPERIMENTS.to_vec(), |id| {
        let t0 = std::time::Instant::now();
        let report = run_experiment(id).expect("known id");
        (report, t0.elapsed().as_secs_f64())
    });
    let mut reports = Vec::with_capacity(cells.len());
    let mut timings = Vec::with_capacity(cells.len());
    for (id, (report, seconds)) in ALL_EXPERIMENTS.iter().zip(cells) {
        reports.push((*id, report));
        timings.push(ExperimentTiming { id, seconds });
    }
    let total_seconds = sweep_start.elapsed().as_secs_f64();

    // Sweep telemetry lives on a metrics registry (what `experiments all`
    // prints and the JSON artifact embeds), not on hand-rolled fields.
    let registry = cpm_obs::Registry::new();
    let duration = registry.histogram("sweep.experiment_seconds", EXPERIMENT_SECONDS_BUCKETS);
    for t in &timings {
        registry
            .gauge(&format!("sweep.{}.seconds", t.id))
            .set(t.seconds);
        duration.observe(t.seconds);
    }
    registry.gauge("sweep.total_seconds").set(total_seconds);
    registry
        .counter("sweep.experiments")
        .add(timings.len() as u64);
    let stats = pool.stats();
    stats.export(&registry);

    // Memoization effectiveness across the whole sweep: the process-wide
    // probe / calibration-sweep / cache-simulator caches count hits and
    // misses; publishing them here makes the artifact show the caches
    // actually carrying load. Absolute values depend on worker count and
    // process history — the artifact is schema-checked, not byte-diffed.
    for (name, (hits, misses)) in [
        (
            "memo.probe",
            cpm_core::coordinator::Coordinator::probe_cache_stats(),
        ),
        (
            "memo.calib_sweep",
            cpm_core::coordinator::Coordinator::calib_sweep_cache_stats(),
        ),
        ("memo.calibration", cpm_sim::calibration::cache_stats()),
    ] {
        registry.counter(&format!("{name}.hits")).add(hits);
        registry.counter(&format!("{name}.misses")).add(misses);
    }

    SweepOutcome {
        reports,
        timings,
        total_seconds,
        stats,
        registry,
    }
}

/// Renders a sweep's telemetry as a JSON document (the
/// `BENCH_experiments.json` artifact): per-experiment wall-clock plus
/// per-worker jobs / steals / busy-time / utilization.
///
/// Hand-rolled writer — the workspace builds with zero external crates,
/// so no serde. All emitted numbers are finite.
pub fn sweep_json(sweep: &SweepOutcome) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.6}")
        } else {
            "0.0".to_string()
        }
    }
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"workers\": {},\n", sweep.stats.workers));
    s.push_str(&format!(
        "  \"total_seconds\": {},\n",
        num(sweep.total_seconds)
    ));
    s.push_str("  \"experiments\": [\n");
    for (k, t) in sweep.timings.iter().enumerate() {
        let sep = if k + 1 < sweep.timings.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {}}}{sep}\n",
            t.id,
            num(t.seconds)
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"pool\": {{\n    \"elapsed_seconds\": {},\n    \"total_jobs\": {},\n    \"contexts\": [\n",
        num(sweep.stats.elapsed.as_secs_f64()),
        sweep.stats.total_jobs()
    ));
    let n = sweep.stats.per_context.len();
    for (k, c) in sweep.stats.per_context.iter().enumerate() {
        let role = if k + 1 == n { "caller" } else { "worker" };
        let sep = if k + 1 < n { "," } else { "" };
        s.push_str(&format!(
            "      {{\"context\": {k}, \"role\": \"{role}\", \"jobs\": {}, \"steals\": {}, \"busy_seconds\": {}, \"utilization\": {}}}{sep}\n",
            c.jobs,
            c.steals,
            num(c.busy.as_secs_f64()),
            num(sweep.stats.utilization(k))
        ));
    }
    s.push_str("    ]\n  },\n");
    // Additive key (schema stays backward-compatible): the full metrics
    // snapshot, re-indented to nest under the artifact object.
    let snap = sweep.registry.snapshot().to_json();
    let mut nested = String::new();
    for (k, line) in snap.trim_end().lines().enumerate() {
        if k > 0 {
            nested.push_str("  ");
        }
        nested.push_str(line);
        nested.push('\n');
    }
    s.push_str(&format!("  \"metrics\": {}", nested.trim_end()));
    s.push_str("\n}\n");
    s
}

/// Runs one experiment by id; `None` for unknown ids.
pub fn run_experiment(id: &str) -> Option<String> {
    Some(match id {
        "table1" => ex::tables::table1(),
        "table2" => ex::tables::table2(),
        "table3" => ex::tables::table3(),
        "poles" => ex::analysis::poles(),
        "margin" => ex::analysis::margin(),
        "bode" => ex::analysis::bode(),
        "locus" => ex::analysis::locus(),
        "fig5" => ex::model::fig5(),
        "fig6" => ex::model::fig6(),
        "fig7" => ex::tracking::fig7(),
        "fig8" => ex::tracking::fig8(),
        "fig9" => ex::tracking::fig9(),
        "fig10" => ex::tracking::fig10(),
        "fig11" => ex::budget::fig11(),
        "fig12" => ex::budget::fig12(),
        "fig13" => ex::scaling::fig13(),
        "fig14" => ex::budget::fig14(),
        "fig15" => ex::scaling::fig15(),
        "fig16" => ex::sensitivity::fig16(),
        "fig17" => ex::sensitivity::fig17(),
        "fig18" => ex::thermal::fig18(),
        "fig19" => ex::variation::fig19(),
        "granularity" => ex::granularity::granularity(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn sweep_json_has_the_artifact_shape() {
        let sweep = SweepOutcome {
            reports: vec![("table1", "report\n".into())],
            timings: vec![ExperimentTiming {
                id: "table1",
                seconds: 0.25,
            }],
            total_seconds: 0.3,
            stats: cpm_runtime::PoolStats {
                workers: 2,
                elapsed: Duration::from_millis(400),
                per_context: vec![
                    cpm_runtime::WorkerSnapshot {
                        jobs: 3,
                        steals: 1,
                        busy: Duration::from_millis(200),
                    };
                    3
                ],
            },
            registry: cpm_obs::Registry::new(),
        };
        sweep.registry.gauge("sweep.total_seconds").set(0.3);
        let json = sweep_json(&sweep);
        // The pre-registry schema must survive unchanged (consumers parse
        // these keys); `metrics` is the only addition.
        for needle in [
            "\"workers\": 2",
            "\"total_seconds\": 0.300000",
            "\"experiments\": [",
            "\"id\": \"table1\"",
            "\"seconds\": 0.250000",
            "\"pool\": {",
            "\"elapsed_seconds\": 0.400000",
            "\"total_jobs\": 9",
            "\"contexts\": [",
            "\"role\": \"caller\"",
            "\"steals\": 1",
            "\"utilization\": 0.500000",
            "\"metrics\": {",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency set.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn unknown_experiment_id_is_rejected() {
        assert!(run_experiment("fig99").is_none());
    }
}
