//! §II-D analytical artifacts: Eq. 12 closed-loop poles and the Eq. 13
//! stability margin.

use crate::report::{f, heading, Table};
use cpm_control::jury::jury_test;
use cpm_control::{analysis, closed_loop, island_plant, FrequencyResponse, PidGains, RootLocus};

/// Derives the Eq. 12 closed-loop transfer function and its poles for the
/// paper's design point.
pub fn poles() -> String {
    let gains = PidGains::paper();
    let cl = closed_loop(gains, 0.79);
    let mut out = heading("Eq. 12 — closed-loop transfer function and poles (a = 0.79)");
    out.push_str(&format!("Y(z) = {cl}\n\n"));
    let mut t = Table::new(&["pole", "re", "im", "|z|"]);
    for (k, p) in cl.poles().iter().enumerate() {
        t.row(&[(k + 1).to_string(), f(p.re, 4), f(p.im, 4), f(p.norm(), 4)]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nstable (all |z| < 1): {}\npaper: poles -0.2995, 0.734±0.45i (quadratic factor z² - 1.468z + 0.74)\n",
        cl.is_stable()
    ));
    let m = analysis::closed_loop_step_metrics(&cl, 80, 0.02);
    out.push_str(&format!(
        "analytical unit-step: overshoot {:.1} % of step, settles in {:?} invocations, sse {:.4}\n",
        m.overshoot * 100.0,
        m.settling_steps,
        m.steady_state_error
    ));
    out.push_str(&format!(
        "Jury criterion (algebraic cross-check): {:?}\n",
        jury_test(cl.denominator())
    ));
    out
}

/// Extension: Bode frequency response of the open loop, with the classical
/// gain/phase margins — a second, independent route to the §II-D
/// stability guarantee.
pub fn bode() -> String {
    let open = island_plant(0.79).series(&PidGains::paper().transfer_function());
    let fr = FrequencyResponse::sweep(&open, 1e-3, 20_000);
    let mut out = heading("Extension — Bode analysis of the open loop (a = 0.79)");
    let mut t = Table::new(&["omega (rad/sample)", "|H| dB", "phase (deg)"]);
    for k in (0..fr.points().len()).step_by(fr.points().len() / 12) {
        let p = fr.points()[k];
        t.row(&[
            f(p.omega, 4),
            f(p.magnitude_db, 1),
            f(p.phase.to_degrees(), 1),
        ]);
    }
    out.push_str(&t.render());
    if let Some(gm) = fr.gain_margin() {
        out.push_str(&format!(
            "\nBode gain margin: {gm:.3}   (pole-placement margin: {:.3})\n",
            analysis::gain_margin(PidGains::paper(), 0.79, 1e-4)
        ));
    }
    if let Some(pm) = fr.phase_margin() {
        out.push_str(&format!("phase margin: {:.1}°\n", pm.to_degrees()));
    }
    out
}

/// Extension: root locus of the closed loop as the plant-gain perturbation
/// g sweeps — the pole trajectories behind Eq. 13.
pub fn locus() -> String {
    let locus = RootLocus::sweep(|g| closed_loop(PidGains::paper(), g * 0.79), 0.1, 2.6, 500);
    let mut out = heading("Extension — root locus over the gain perturbation g");
    let mut t = Table::new(&["g", "spectral radius", "stable"]);
    for k in (0..locus.points().len()).step_by(locus.points().len() / 14) {
        let p = &locus.points()[k];
        t.row(&[
            f(p.parameter, 2),
            f(p.spectral_radius, 4),
            (p.spectral_radius < 1.0).to_string(),
        ]);
    }
    out.push_str(&t.render());
    if let Some(onset) = locus.instability_onset() {
        out.push_str(&format!(
            "\nlocus leaves the unit circle at g = {onset:.3}   (paper: 2.1)\n"
        ));
    }
    out
}

/// Sweeps the plant-gain perturbation g and locates the stability margin
/// (paper: stable for 0 < g < 2.1; Eq. 13 is the margin case).
pub fn margin() -> String {
    let gains = PidGains::paper();
    let g_max = analysis::gain_margin(gains, 0.79, 1e-4);
    let mut out = heading("Eq. 13 — stability margin of the PID loop");
    let mut t = Table::new(&["g", "stable", "spectral radius"]);
    for g in [0.25, 0.5, 1.0, 1.5, 2.0, 2.05, 2.1, 2.15, 2.5] {
        let cl = closed_loop(gains, g * 0.79);
        t.row(&[
            f(g, 2),
            cl.is_stable().to_string(),
            f(cl.spectral_radius(), 4),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nmeasured margin g_max = {g_max:.4}   (paper: 2.1)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poles_reports_stability() {
        let s = poles();
        assert!(s.contains("stable (all |z| < 1): true"));
    }

    #[test]
    fn margin_lands_near_2_1() {
        let s = margin();
        assert!(
            s.contains("g_max = 2.1") || s.contains("g_max = 2.0"),
            "{s}"
        );
    }

    #[test]
    fn bode_and_locus_agree_on_the_margin() {
        let b = bode();
        assert!(b.contains("gain margin"), "{b}");
        let l = locus();
        assert!(l.contains("g = 2.1") || l.contains("g = 2.0"), "{l}");
    }
}
