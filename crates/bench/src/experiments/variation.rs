//! Fig. 19 (§IV-B): the variation-aware provisioning policy under
//! intra-die leakage variation.

use crate::report::{f, heading, Table};
use cpm_core::coordinator::PolicyKind;
use cpm_core::prelude::*;
use cpm_power::variation::VariationMap;
use cpm_runtime::parallel_map;
use cpm_units::IslandId;

/// §IV-B: islands 1–3 leak 1.2×/1.5×/2× of island 4; compare the
/// variation-aware EPI-minimizing policy against the performance-aware
/// policy, per island: throughput degradation and power/throughput
/// improvement.
pub fn fig19() -> String {
    let rounds = 40;
    let variation = VariationMap::paper_four_island();

    let mut perf_cfg = ExperimentConfig::paper_default();
    perf_cfg.variation = Some(variation.clone());
    let var_cfg = perf_cfg
        .clone()
        .with_scheme(ManagementScheme::Cpm(PolicyKind::Variation));

    // Both policies simulate the same varied silicon independently.
    let mut runs = parallel_map(vec![perf_cfg, var_cfg], move |cfg| {
        Coordinator::new(cfg)
            .expect("valid")
            .run_for_gpm_intervals(rounds)
    })
    .into_iter();
    let perf = runs.next().expect("two cells");
    let var = runs.next().expect("two cells");

    let mut s = heading("Fig. 19 (§IV-B) — variation-aware provisioning under leakage variation");
    s.push_str(&format!(
        "leakage multipliers: island1 {:.1}x, island2 {:.1}x, island3 {:.1}x, island4 {:.1}x\n\n",
        variation.multiplier(IslandId(0)),
        variation.multiplier(IslandId(1)),
        variation.multiplier(IslandId(2)),
        variation.multiplier(IslandId(3)),
    ));
    let mut t = Table::new(&[
        "island",
        "leak x",
        "mean V/F level (perf)",
        "mean V/F level (var)",
        "throughput degradation %",
        "power/throughput improvement %",
    ]);
    for i in 0..4 {
        let id = IslandId(i);
        let bips_p = perf.island_energy[i].bips().unwrap_or(0.0);
        let bips_v = var.island_energy[i].bips().unwrap_or(0.0);
        let ppt_p = perf.island_energy[i]
            .average_power()
            .map(|w| w.value())
            .unwrap_or(0.0)
            / bips_p.max(1e-12);
        let ppt_v = var.island_energy[i]
            .average_power()
            .map(|w| w.value())
            .unwrap_or(0.0)
            / bips_v.max(1e-12);
        t.row(&[
            (i + 1).to_string(),
            f(variation.multiplier(id), 1),
            f(perf.mean_island_dvfs(id), 2),
            f(var.mean_island_dvfs(id), 2),
            f((1.0 - bips_v / bips_p) * 100.0, 2),
            f((1.0 - ppt_v / ppt_p) * 100.0, 2),
        ]);
    }
    s.push_str(&t.render());
    s.push_str(
        "\npaper: the greedy EPI search runs leakier islands at lower V/F — a modest\nthroughput cost buys a power/throughput (energy-efficiency) improvement.\nThe mean V/F columns show the mechanism directly: under the variation policy\nthe leakier the island, the lower its operating point relative to the\nperformance policy's choice for the same workload.\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use cpm_power::variation::VariationMap;

    #[test]
    fn paper_variation_map_shape() {
        let v = VariationMap::paper_four_island();
        assert_eq!(v.multipliers(), &[1.2, 1.5, 2.0, 1.0]);
    }
}
