//! Fig. 5 (plant-model validation) and Fig. 6 (utilization↔power fits).

use crate::report::{f, heading, Table};
use cpm_core::model;
use cpm_runtime::parallel_map;
use cpm_sim::{calibration, Chip, CmpConfig};
use cpm_units::IslandId;
use cpm_workloads::{parsec, WorkloadAssignment};

/// Fig. 5: identify `a` on the leave-bodytrack-out suite, then validate the
/// one-step model prediction on bodytrack under white-noise DVFS.
pub fn fig5() -> String {
    let cmp = CmpConfig::paper_default();
    let mut out =
        heading("Fig. 5 — actual power vs model prediction (bodytrack, white-noise DVFS)");
    let mut t = Table::new(&["benchmark", "identified a"]);
    let suite: Vec<_> = parsec::all()
        .into_iter()
        .filter(|p| p.short != "btrack")
        .collect();
    // One identification run per benchmark; each cell seeds its own noise
    // stream (1000 + k), so order of execution cannot leak into the fits.
    let cells: Vec<(usize, _)> = suite.iter().cloned().enumerate().collect();
    let gains = {
        let cmp = cmp.clone();
        parallel_map(cells, move |(k, p)| {
            model::identify_gain(&cmp, &p, 1000 + k as u64, 40)
        })
    };
    let mut sum = 0.0;
    for (p, a) in suite.iter().zip(&gains) {
        sum += a;
        t.row(&[p.short.into(), f(*a, 3)]);
    }
    let a_avg = sum / suite.len() as f64;
    out.push_str(&t.render());
    out.push_str(&format!("\nsuite average a = {a_avg:.3}   (paper: 0.79)\n"));
    let v = model::validate_model(&cmp, a_avg, 7, 100);
    out.push_str(&format!(
        "one-step prediction error on bodytrack: {:.2} %   (paper: within ~1 %)\n",
        v.mean_relative_error * 100.0
    ));
    out.push_str("\nfirst 12 samples (normalized island power):\nactual    predicted\n");
    for (a, p) in v.actual.iter().zip(&v.predicted).take(12) {
        out.push_str(&format!("{a:.4}    {p:.4}\n"));
    }
    out
}

/// Fig. 6: per-benchmark power↔capacity-utilization linear fits
/// (slope k₀, intercept k₁, R²), measured on the chip simulator by sweeping
/// DVFS levels — and the measured cache-calibration rates as context.
pub fn fig6() -> String {
    let mut out = heading("Fig. 6 — power vs utilization correlation per benchmark");
    let mut t = Table::new(&[
        "benchmark",
        "k0 (W)",
        "k1 (W)",
        "R^2 linear",
        "R^2 quadratic",
    ]);
    let all = parsec::all();
    // Each benchmark's sweep owns a private chip instance — fan them out.
    let fits = parallel_map(all.clone(), |p| {
        let cmp = CmpConfig::paper_default();
        let assignment = WorkloadAssignment::new(vec![p.clone(); 8], 2);
        let mut chip = Chip::new(cmp.clone(), &assignment);
        let mut tr = cpm_power::UtilizationPowerTransducer::new();
        let mut snap = cpm_sim::ChipSnapshot::empty();
        // Warm, then sweep all levels three times observing island 0.
        for _ in 0..200 {
            chip.step_pic_into(&mut snap);
        }
        for round in 0..3 {
            for step in 0..cmp.dvfs.len() {
                let level = if round % 2 == 0 {
                    cmp.dvfs.len() - 1 - step
                } else {
                    step
                };
                for i in 0..cmp.islands() {
                    chip.set_island_dvfs(IslandId(i), level);
                }
                chip.step_pic_into(&mut snap);
                for _ in 0..2 {
                    chip.step_pic_into(&mut snap);
                    let isl = &snap.islands[0];
                    tr.observe(isl.capacity_utilization, isl.power);
                }
            }
        }
        let fit = tr.fit().expect("calibrated");
        let q = tr.quadratic_fit().expect("calibrated");
        (fit.slope, fit.intercept, fit.r_squared, q.r_squared)
    });
    let mut r2_sum = 0.0;
    for (p, (slope, intercept, r2l, r2q)) in all.iter().zip(&fits) {
        r2_sum += r2l;
        t.row(&[
            p.short.into(),
            f(*slope, 2),
            f(*intercept, 2),
            f(*r2l, 3),
            f(*r2q, 3),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\naverage linear R² = {:.3}   (paper: 0.96)\n",
        r2_sum / all.len() as f64
    ));
    // Context: the cache-simulator calibration behind the profiles.
    out.push_str("\ncache-simulator calibration (measured MPKI):\n");
    let mut c = Table::new(&["benchmark", "L1 MPKI", "L2 MPKI"]);
    let rates = parallel_map(all.clone(), |p| {
        let r = calibration::calibrate(&p, &CmpConfig::paper_default().cache, 99);
        (r.l1_mpki, r.l2_mpki)
    });
    for (p, (l1, l2)) in all.iter().zip(&rates) {
        c.row(&[p.short.into(), f(*l1, 1), f(*l2, 1)]);
    }
    out.push_str(&c.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_reports_gain_near_paper() {
        let s = fig5();
        assert!(s.contains("suite average a = 0."), "{s}");
    }
}
