//! Figs. 13 and 15: island-size and core-count scaling.

use crate::report::{f, heading, Table};
use cpm_core::coordinator::run_with_baseline;
use cpm_core::prelude::*;
use cpm_runtime::parallel_map;
use cpm_units::Ratio;
use cpm_workloads::WorkloadAssignment;

/// The Mix-1 benchmark list regrouped into islands of `width` cores.
fn mix1_regrouped(width: usize) -> WorkloadAssignment {
    let base = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
    WorkloadAssignment::new(base.profiles().to_vec(), width)
}

/// Fig. 13: degradation vs island size (1 / 2 / 4 cores per island) at the
/// 80 % budget, plus the MaxBIPS comparison at 1 core/island (the
/// architecture MaxBIPS targets).
pub fn fig13() -> String {
    let mut s = heading("Fig. 13 — performance degradation vs island size (80 % budget)");
    let mut t = Table::new(&["cores/island", "CPM degradation %", "MaxBIPS degradation %"]);
    // One cell per (width × scheme); the baseline twin inside
    // `run_with_baseline` shares seeds with both schemes, so each cell can
    // rebuild it independently and still report against the same reference.
    let widths = [1usize, 2, 4];
    let cells: Vec<(usize, bool)> = widths
        .iter()
        .flat_map(|&w| [(w, false), (w, true)])
        .collect();
    let degs = parallel_map(cells, |(width, maxbips)| {
        let mut cfg = ExperimentConfig::paper_default()
            .with_assignment(mix1_regrouped(width))
            .with_budget_percent(80.0);
        if maxbips {
            cfg = cfg.with_scheme(ManagementScheme::MaxBips);
        }
        let (m, base) = run_with_baseline(cfg, 30).expect("valid");
        m.degradation_vs(&base)
    });
    for (k, width) in widths.iter().enumerate() {
        t.row(&[width.to_string(), f(degs[2 * k], 2), f(degs[2 * k + 1], 2)]);
    }
    s.push_str(&t.render());
    s.push_str("\npaper: degradation grows with island width (coarser actuation constrains\nco-scheduled apps); at 1 core/island CPM is within a few % of MaxBIPS\n");
    s
}

/// Fig. 15: 16- and 32-core CMPs (Mix-3, 4 cores/island), CPM vs MaxBIPS
/// across budgets.
pub fn fig15() -> String {
    let mut s = heading("Fig. 15 — scalability: 16 and 32 core CMPs (Mix-3)");
    let cores_axis = [16usize, 32];
    let budgets = [70.0, 80.0, 90.0];
    let cells: Vec<(usize, f64, bool)> = cores_axis
        .iter()
        .flat_map(|&c| {
            budgets
                .iter()
                .flat_map(move |&b| [(c, b, false), (c, b, true)])
        })
        .collect();
    let degs = parallel_map(cells, |(cores, budget, maxbips)| {
        let mut cfg = ExperimentConfig::paper_default().with_mix(Mix::Mix3, cores, 4);
        cfg.budget_fraction = Ratio::from_percent(budget);
        if maxbips {
            cfg = cfg.with_scheme(ManagementScheme::MaxBips);
        }
        let (m, base) = run_with_baseline(cfg, 25).expect("valid");
        m.degradation_vs(&base)
    });
    for (ci, cores) in cores_axis.iter().enumerate() {
        s.push_str(&format!("\n{cores}-core CMP:\n"));
        let mut t = Table::new(&["budget %", "CPM degradation %", "MaxBIPS degradation %"]);
        for (bi, &budget) in budgets.iter().enumerate() {
            let k = 2 * (ci * budgets.len() + bi);
            t.row(&[f(budget, 0), f(degs[k], 2), f(degs[k + 1], 2)]);
        }
        s.push_str(&t.render());
    }
    s.push_str("\npaper: CPM stays ≈ flat as the chip scales (4 % at 80 %); MaxBIPS degrades\nto 14 % (16 cores) and 16.2 % (32 cores) at the 80 % budget\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regrouping_preserves_the_benchmark_list() {
        let a1 = mix1_regrouped(1);
        let a4 = mix1_regrouped(4);
        assert_eq!(a1.islands(), 8);
        assert_eq!(a4.islands(), 2);
        for c in 0..8 {
            assert_eq!(
                a1.profile(cpm_units::CoreId(c)).short,
                a4.profile(cpm_units::CoreId(c)).short
            );
        }
    }
}
