//! Figs. 11, 12, 14: budget curves and performance degradation.
//!
//! Every (budget × scheme) cell is an independent simulation — each builds
//! its own `Coordinator` from a config, so the sweeps fan the cells out on
//! the shared worker pool and reduce the results in budget order.

use crate::report::{f, heading, Table};
use cpm_core::coordinator::run_with_baseline;
use cpm_core::prelude::*;
use cpm_runtime::parallel_map;

const BUDGETS: &[f64] = &[50.0, 60.0, 70.0, 80.0, 90.0, 95.0, 100.0];
const ROUNDS: usize = 30;

/// Fig. 11: consumed power vs budget for CPM and MaxBIPS.
pub fn fig11() -> String {
    let mut s = heading("Fig. 11 — budget curves: consumed power vs power budget");
    let mut t = Table::new(&["budget %", "CPM consumed %", "MaxBIPS consumed %"]);
    let cells: Vec<(f64, bool)> = BUDGETS
        .iter()
        .flat_map(|&b| [(b, false), (b, true)])
        .collect();
    let consumed = parallel_map(cells, |(b, maxbips)| {
        let mut cfg = ExperimentConfig::paper_default().with_budget_percent(b);
        if maxbips {
            cfg = cfg.with_scheme(ManagementScheme::MaxBips);
        }
        Coordinator::new(cfg)
            .expect("valid")
            .run_for_gpm_intervals(ROUNDS)
            .mean_chip_power_percent()
    });
    for (k, &b) in BUDGETS.iter().enumerate() {
        t.row(&[f(b, 0), f(consumed[2 * k], 1), f(consumed[2 * k + 1], 1)]);
    }
    s.push_str(&t.render());
    s.push_str("\npaper: CPM closely tracks the budget; MaxBIPS is always below it (discrete knobs + open loop)\n");
    s
}

/// Fig. 12: average performance degradation vs power budget (CPM).
pub fn fig12() -> String {
    let mut s = heading("Fig. 12 — performance degradation vs power target");
    let mut t = Table::new(&["budget %", "degradation %"]);
    let degs = parallel_map(BUDGETS.to_vec(), |b| {
        let cfg = ExperimentConfig::paper_default().with_budget_percent(b);
        let (m, base) = run_with_baseline(cfg, ROUNDS).expect("valid");
        m.degradation_vs(&base)
    });
    for (&b, d) in BUDGETS.iter().zip(&degs) {
        t.row(&[f(b, 0), f(*d, 2)]);
    }
    s.push_str(&t.render());
    s.push_str(
        "\npaper: ~4 % at the 80 % budget, falling toward ~1 % at 100 % (monotone in the budget)\n",
    );
    s.push_str("note: our substrate's higher leakage floor makes the same budget cut cost more\nfrequency, so absolute degradations run higher; the monotone shape and the CPM-vs-\nMaxBIPS ordering are the reproduced claims (see EXPERIMENTS.md)\n");
    s
}

/// Fig. 14: instantaneous performance degradation over time at the 100 %
/// budget (paper: avg ≈ 0.9 %, max ≈ 2.2 %).
pub fn fig14() -> String {
    let cfg = ExperimentConfig::paper_default().with_budget_percent(100.0);
    let (m, base) = run_with_baseline(cfg, 60).expect("valid");
    // Per-GPM-interval BIPS ratio.
    let mb = m.chip_bips.averaged_chunks(m.pics_per_gpm);
    let bb = base.chip_bips.averaged_chunks(base.pics_per_gpm);
    let degs: Vec<f64> = mb
        .values()
        .zip(bb.values())
        .map(|(a, b)| (1.0 - a / b) * 100.0)
        .collect();
    let avg = degs.iter().sum::<f64>() / degs.len() as f64;
    let max = degs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut s = heading("Fig. 14 — instantaneous degradation with time (100 % budget)");
    s.push_str(&format!(
        "average {:.2} %, maximum {:.2} %   (paper: avg ~0.9 %, max ~2.2 %)\n",
        avg, max
    ));
    let mut t = Table::new(&["GPM interval", "degradation %"]);
    for (k, d) in degs.iter().enumerate().step_by(6) {
        t.row(&[k.to_string(), f(*d, 2)]);
    }
    s.push_str(&t.render());
    s
}

#[cfg(test)]
mod tests {
    // The budget sweeps are exercised end-to-end by the workspace
    // integration tests; unit smoke here keeps runtime modest.
    #[test]
    fn budgets_are_sorted() {
        assert!(super::BUDGETS.windows(2).all(|w| w[0] < w[1]));
    }
}
