//! One module per experiment group; see DESIGN.md §4 for the map.

pub mod analysis;
pub mod budget;
pub mod granularity;
pub mod model;
pub mod scaling;
pub mod sensitivity;
pub mod tables;
pub mod thermal;
pub mod tracking;
pub mod variation;
