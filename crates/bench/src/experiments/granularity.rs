//! Extension: DVFS granularity ablation.
//!
//! The quantized actuator is this system's binding constraint — between
//! adjacent V/F pairs the PIC can only duty-cycle. This experiment
//! re-samples the Pentium-M voltage/frequency envelope at 4 / 8 / 16 / 32
//! points and measures what granularity buys: tighter tracking (smaller
//! duty-cycle ripple) and less wasted performance. §II-B's remark that
//! per-core controllers are "prohibitively expensive" is the other side of
//! this trade — hardware cost vs control resolution.

use crate::report::{f, heading, Table};
use cpm_core::coordinator::run_with_baseline;
use cpm_core::prelude::*;
use cpm_power::dvfs::DvfsTable;

/// Runs the paper-default experiment with the V/F envelope re-sampled at
/// several granularities.
pub fn granularity() -> String {
    let mut s = heading("Extension — DVFS table granularity (80 % budget, Mix-1)");
    let mut t = Table::new(&[
        "V/F points",
        "mean |tracking err| %",
        "chip overshoot %",
        "degradation %",
    ]);
    for n in [4usize, 8, 16, 32] {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.cmp.dvfs = DvfsTable::pentium_m_envelope(n);
        let (m, base) = run_with_baseline(cfg, 25).expect("valid");
        let tr = m.chip_tracking_error();
        t.row(&[
            n.to_string(),
            f(tr.mean_abs_error_percent, 2),
            f(tr.max_overshoot_percent, 2),
            f(m.degradation_vs(&base), 2),
        ]);
    }
    s.push_str(&t.render());
    s.push_str(
        "\nnote: the relationship is not monotone — the PID gains and slew limit were\ntuned for the 8-point table (the paper's design point), and re-sampling the\nenvelope shifts where island targets fall relative to the quantized levels.\nThe practical reading matches §II-B: more V/F pairs are not automatically\nbetter unless the controller is re-tuned for them\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_report_covers_all_levels() {
        let s = granularity();
        for n in ["4", "8", "16", "32"] {
            assert!(
                s.lines().any(|l| l.trim_start().starts_with(n)),
                "missing {n}"
            );
        }
    }
}
