//! Extension: DVFS granularity ablation.
//!
//! The quantized actuator is this system's binding constraint — between
//! adjacent V/F pairs the PIC can only duty-cycle. This experiment
//! re-samples the Pentium-M voltage/frequency envelope at 4 / 8 / 16 / 32
//! points and measures what granularity buys: tighter tracking (smaller
//! duty-cycle ripple) and less wasted performance. §II-B's remark that
//! per-core controllers are "prohibitively expensive" is the other side of
//! this trade — hardware cost vs control resolution.

use crate::report::{f, heading, Table};
use cpm_core::coordinator::run_with_baseline;
use cpm_core::prelude::*;
use cpm_power::dvfs::DvfsTable;
use cpm_runtime::parallel_map;

/// Runs the paper-default experiment with the V/F envelope re-sampled at
/// several granularities.
pub fn granularity() -> String {
    let mut s = heading("Extension — DVFS table granularity (80 % budget, Mix-1)");
    let mut t = Table::new(&[
        "V/F points",
        "mean |tracking err| %",
        "chip overshoot %",
        "degradation %",
    ]);
    let sizes = [4usize, 8, 16, 32];
    let rows = parallel_map(sizes.to_vec(), |n| {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.cmp.dvfs = DvfsTable::pentium_m_envelope(n);
        let (m, base) = run_with_baseline(cfg, 25).expect("valid");
        let tr = m.chip_tracking_error();
        (
            tr.mean_abs_error_percent,
            tr.max_overshoot_percent,
            m.degradation_vs(&base),
        )
    });
    for (n, (err, over, deg)) in sizes.iter().zip(&rows) {
        t.row(&[n.to_string(), f(*err, 2), f(*over, 2), f(*deg, 2)]);
    }
    s.push_str(&t.render());
    s.push_str(
        "\nnote: the relationship is not monotone — the PID gains and slew limit were\ntuned for the 8-point table (the paper's design point), and re-sampling the\nenvelope shifts where island targets fall relative to the quantized levels.\nThe practical reading matches §II-B: more V/F pairs are not automatically\nbetter unless the controller is re-tuned for them\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_report_covers_all_levels() {
        let s = granularity();
        for n in ["4", "8", "16", "32"] {
            assert!(
                s.lines().any(|l| l.trim_start().starts_with(n)),
                "missing {n}"
            );
        }
    }
}
