//! Figs. 16 and 17: sensitivity to the application mix and to the
//! controller invocation intervals.

use crate::report::{f, heading, Table};
use cpm_core::coordinator::run_with_baseline;
use cpm_core::prelude::*;
use cpm_runtime::parallel_map;
use cpm_units::Seconds;
use cpm_workloads::WorkloadAssignment;

/// Fig. 16: Mix-1 (heterogeneous C+M islands) vs Mix-2 (homogeneous
/// islands) degradation across budgets.
pub fn fig16() -> String {
    let mut s = heading("Fig. 16 — sensitivity to the application mix");
    let mut t = Table::new(&["budget %", "Mix-1 degradation %", "Mix-2 degradation %"]);
    let budgets = [60.0, 70.0, 80.0, 90.0];
    let cells: Vec<(f64, Mix)> = budgets
        .iter()
        .flat_map(|&b| [(b, Mix::Mix1), (b, Mix::Mix2)])
        .collect();
    let degs = parallel_map(cells, |(budget, mix)| {
        let mut cfg = ExperimentConfig::paper_default().with_budget_percent(budget);
        cfg.mix = mix;
        let (m, b) = run_with_baseline(cfg, 30).expect("valid");
        m.degradation_vs(&b)
    });
    for (k, &budget) in budgets.iter().enumerate() {
        t.row(&[f(budget, 0), f(degs[2 * k], 2), f(degs[2 * k + 1], 2)]);
    }
    s.push_str(&t.render());
    s.push_str("\npaper: Mix-2 degrades less — throttling an island holding two memory-bound\napps hurts little, while Mix-1 islands always sacrifice a co-scheduled\nCPU-bound app\n");
    s
}

/// Fig. 17: GPM/PIC invocation intervals (5 ms, 0.5 ms) vs (5 ms, 5 ms) for
/// 1/2/4 cores per island at the 80 % budget.
pub fn fig17() -> String {
    let mut s = heading("Fig. 17 — sensitivity to GPM/PIC invocation intervals (80 % budget)");
    let mut t = Table::new(&[
        "cores/island",
        "(5ms, 0.5ms) degradation %",
        "(5ms, 5ms) degradation %",
    ]);
    let widths = [1usize, 2, 4];
    let cells: Vec<(usize, f64)> = widths.iter().flat_map(|&w| [(w, 0.5), (w, 5.0)]).collect();
    let degs = parallel_map(cells, |(width, pic_ms)| {
        let base_assignment = {
            let m = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
            WorkloadAssignment::new(m.profiles().to_vec(), width)
        };
        let mut cfg = ExperimentConfig::paper_default()
            .with_assignment(base_assignment)
            .with_budget_percent(80.0);
        cfg.cmp.pic_interval = Seconds::from_ms(pic_ms);
        let (m, b) = run_with_baseline(cfg, 30).expect("valid");
        m.degradation_vs(&b)
    });
    for (k, width) in widths.iter().enumerate() {
        t.row(&[width.to_string(), f(degs[2 * k], 2), f(degs[2 * k + 1], 2)]);
    }
    s.push_str(&t.render());
    s.push_str("\npaper: the fast PIC (0.5 ms) degrades less — finer capping lets the GPM's\npredictions hold; a 5 ms PIC leaves each GPM interval with a single\ncorrection opportunity\n");
    s
}

#[cfg(test)]
mod tests {
    use cpm_core::prelude::*;
    use cpm_units::Seconds;

    #[test]
    fn slow_pic_config_is_valid() {
        let mut cfg = ExperimentConfig::paper_default();
        cfg.cmp.pic_interval = Seconds::from_ms(5.0);
        cfg.cmp.validate();
        assert_eq!(cfg.cmp.pics_per_gpm(), 1);
    }
}
