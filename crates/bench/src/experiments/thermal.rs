//! Fig. 18: the thermal-aware provisioning policy.

use crate::report::{f, heading, Table};
use cpm_core::coordinator::{run_with_baseline, Outcome, PolicyKind};
use cpm_core::gpm::ViolationStats;
use cpm_core::policies::thermal::{ConstraintTracker, ThermalConstraints};
use cpm_core::prelude::*;
use cpm_runtime::Pool;
use cpm_units::{IslandId, Watts};

/// Fig. 18(a–c): run the SPEC roster on 8 single-core islands under the
/// performance-aware and thermal-aware policies; compare degradation and
/// count how often the performance policy violates the thermal constraints.
pub fn fig18() -> String {
    let constraints = ThermalConstraints::paper_eight_island();
    let rounds = 40;

    // (a) layout.
    let mut s = heading("Fig. 18 — thermal-aware power provisioning (SPEC roster)");
    s.push_str("(a) 8-core CMP, one core per island; adjacent pairs (1,2)(3,4)(5,6)(7,8):\n");
    s.push_str("    core1 mesa | core2 bzip | core3 gcc | core4 sixtrack | (row repeated)\n\n");

    // The performance-aware run (the violating baseline) and the
    // thermal-aware run are independent simulations — overlap them on the
    // worker pool. Heterogeneous results ride in an enum; `run_jobs`
    // returns them in submission order.
    let mut perf_cfg = ExperimentConfig::paper_default();
    perf_cfg.mix = Mix::Thermal;
    perf_cfg.cmp = CmpConfig::with_topology(8, 1);
    let thermal_cfg = perf_cfg
        .clone()
        .with_scheme(ManagementScheme::Cpm(PolicyKind::Thermal(
            constraints.clone(),
        )));

    enum Cell {
        Perf(Box<(Outcome, Outcome)>),
        Thermal(Box<(Outcome, ViolationStats)>),
    }
    let jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = vec![
        Box::new({
            let cfg = perf_cfg.clone();
            move || Cell::Perf(Box::new(run_with_baseline(cfg, rounds).expect("valid")))
        }),
        Box::new(move || {
            let mut coord = Coordinator::new(thermal_cfg).expect("valid");
            let thermal = coord.run_for_gpm_intervals(rounds);
            let enforced = coord.thermal_stats().expect("thermal stats available");
            Cell::Thermal(Box::new((thermal, enforced)))
        }),
    ];
    let mut results = Pool::global().run_jobs(jobs).into_iter();
    let (perf, base) = match results.next() {
        Some(Cell::Perf(b)) => *b,
        _ => unreachable!("perf cell is submitted first"),
    };
    let (thermal, enforced) = match results.next() {
        Some(Cell::Thermal(b)) => *b,
        _ => unreachable!("thermal cell is submitted second"),
    };

    // (c): replay the performance policy's recorded GPM allocations through
    // an observe-only tracker.
    let mut tracker = ConstraintTracker::new(constraints, 8);
    let budget = perf.budget;
    let targets: Vec<_> = (0..8)
        .map(|i| perf.island_target_percent_gpm(IslandId(i)))
        .collect();
    for k in 0..targets[0].len() {
        let alloc: Vec<Watts> = targets
            .iter()
            .map(|ts| perf.reference_power * (ts.samples()[k].value / 100.0))
            .collect();
        tracker.observe(budget, &alloc);
    }

    s.push_str("(b) performance degradation vs the unmanaged baseline:\n");
    let mut t = Table::new(&["policy", "degradation %", "peak temp °C"]);
    t.row(&[
        "performance-aware".into(),
        f(perf.degradation_vs(&base), 2),
        f(perf.peak_temperature.max().unwrap_or(0.0), 1),
    ]);
    t.row(&[
        "thermal-aware".into(),
        f(thermal.degradation_vs(&base), 2),
        f(thermal.peak_temperature.max().unwrap_or(0.0), 1),
    ]);
    s.push_str(&t.render());
    s.push_str("\n(c) constraint violations:\n");
    let mut v = Table::new(&["policy", "% of GPM intervals violating"]);
    v.row(&[
        "performance-aware (observed)".into(),
        f(tracker.stats().violation_fraction() * 100.0, 1),
    ]);
    v.row(&[
        "thermal-aware (enforced)".into(),
        f(enforced.violation_fraction() * 100.0, 1),
    ]);
    s.push_str(&v.render());
    s.push_str("\npaper: with the thermal policy the budget is never exceeded and hotspots\nnever occur, at some extra performance cost vs the performance policy\n");
    s
}

#[cfg(test)]
mod tests {
    use cpm_core::policies::thermal::ThermalConstraints;

    #[test]
    fn paper_constraints_cover_eight_islands() {
        let c = ThermalConstraints::paper_eight_island();
        assert_eq!(c.adjacent_pairs.len(), 4);
        assert_eq!(c.single_streak, 4);
        assert_eq!(c.pair_streak, 2);
    }
}
