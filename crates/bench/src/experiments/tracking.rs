//! Figs. 7–10: power provisioning and tracking traces.

use crate::report::{f, heading, Table};
use cpm_core::metrics::{mean_settling, segment_metrics, worst_segment_metrics};
use cpm_core::prelude::*;
use cpm_units::IslandId;

fn default_run(gpm_intervals: usize) -> Outcome {
    Coordinator::new(ExperimentConfig::paper_default())
        .expect("valid config")
        .run_for_gpm_intervals(gpm_intervals)
}

/// Fig. 7: how the GPM distributes the 80 % budget across the four islands
/// over time (GPM-interval resolution).
pub fn fig7() -> String {
    let out = default_run(40);
    let mut s = heading("Fig. 7 — GPM power provisioning across 4 islands (P_target = 80 %)");
    let mut t = Table::new(&[
        "GPM interval",
        "island1 %",
        "island2 %",
        "island3 %",
        "island4 %",
        "sum %",
    ]);
    for k in 0..40 {
        let mut cells = vec![k.to_string()];
        let mut sum = 0.0;
        for i in 0..4 {
            let v = out.island_target_percent_gpm(IslandId(i)).samples()[k].value;
            sum += v;
            cells.push(f(v, 1));
        }
        cells.push(f(sum, 1));
        if k % 4 == 0 {
            t.row(&cells);
        }
    }
    s.push_str(&t.render());
    s.push_str(&format!(
        "\nbudget: {:.1} % — allocations sum to the budget at every instant (Eq. 6)\n",
        out.budget_percent()
    ));
    s
}

/// Fig. 8: per-island target vs actual power over 120 GPM invocations.
pub fn fig8() -> String {
    let out = default_run(120);
    let mut s = heading("Fig. 8 — tracking the target power in each island (120 GPM intervals)");
    for i in 0..4 {
        let tr = out.island_tracking_error(IslandId(i));
        s.push_str(&format!(
            "island {}: max overshoot {:.2} %, max undershoot {:.2} %, mean |err| {:.2} % of target\n",
            i + 1,
            tr.max_overshoot_percent,
            tr.max_undershoot_percent,
            tr.mean_abs_error_percent
        ));
    }
    s.push_str("\nsampled trace, island 1 (GPM resolution, % of required chip power):\n");
    let mut t = Table::new(&["GPM interval", "target %", "actual %"]);
    let tgt = out.island_target_percent_gpm(IslandId(0));
    let act = out.island_actual_percent_gpm(IslandId(0));
    for k in (0..tgt.len()).step_by(10) {
        t.row(&[
            k.to_string(),
            f(tgt.samples()[k].value, 2),
            f(act.samples()[k].value, 2),
        ]);
    }
    s.push_str(&t.render());
    s
}

/// Fig. 9: PIC-resolution tracking between two GPM invocations — the
/// transient metrics (overshoot ≤ ~2 %, settling in 5–6 PIC invocations).
pub fn fig9() -> String {
    let out = default_run(60);
    let mut s = heading("Fig. 9 — PIC tracking between successive GPM invocations");
    let mut t = Table::new(&[
        "island",
        "median overshoot %",
        "median settling (mean criterion)",
        "worst overshoot %",
    ]);
    for i in 0..4 {
        // Per-segment metrics across all GPM segments.
        let a: Vec<f64> = out.island_actual_percent[i].values().collect();
        let g: Vec<f64> = out.island_target_percent[i].values().collect();
        let mut overshoots = Vec::new();
        let mut settlings = Vec::new();
        for (ca, cg) in a
            .chunks_exact(out.pics_per_gpm)
            .zip(g.chunks_exact(out.pics_per_gpm))
        {
            let m = segment_metrics(ca, cg[0], 0.10);
            overshoots.push(m.overshoot * 100.0);
            if let Some(k) = mean_settling(ca, cg[0], 0.05) {
                settlings.push(k);
            }
        }
        overshoots.sort_by(|x, y| x.partial_cmp(y).unwrap());
        settlings.sort_unstable();
        let med_o = overshoots[overshoots.len() / 2];
        let med_s = settlings
            .get(settlings.len() / 2)
            .map(|k| k.to_string())
            .unwrap_or("unsettled".into());
        let worst = worst_segment_metrics(
            &out.island_actual_percent[i],
            &out.island_target_percent[i],
            out.pics_per_gpm,
            0.10,
        );
        t.row(&[
            (i + 1).to_string(),
            f(med_o, 1),
            med_s,
            f(worst.overshoot * 100.0, 1),
        ]);
    }
    s.push_str(&t.render());
    s.push_str("\npaper: overshoots mostly within 2 % of target; steady state within 5-6 PIC\ninvocations. The quantized actuator duty-cycles between adjacent V/F points,\nso settling is measured on the running mean (what a power meter integrates).\n");
    s.push_str("\none segment, island 2 (PIC resolution, % of required chip power):\n");
    let mut seg = Table::new(&["PIC k", "target %", "actual %"]);
    let base = 20 * out.pics_per_gpm;
    for k in base..base + out.pics_per_gpm {
        seg.row(&[
            (k - base).to_string(),
            f(out.island_target_percent[1].samples()[k].value, 2),
            f(out.island_actual_percent[1].samples()[k].value, 2),
        ]);
    }
    s.push_str(&seg.render());
    s
}

/// Fig. 10: chip-wide power tracking against the 80 % budget.
pub fn fig10() -> String {
    let out = default_run(120);
    let tr = out.chip_tracking_error();
    let mut s = heading("Fig. 10 — tracking chip target power (budget 80 %)");
    s.push_str(&format!(
        "budget {:.1} %: mean chip power {:.2} %, max overshoot {:.2} %, max undershoot {:.2} %, mean |err| {:.2} %\n",
        out.budget_percent(),
        out.mean_chip_power_percent(),
        tr.max_overshoot_percent,
        tr.max_undershoot_percent,
        tr.mean_abs_error_percent
    ));
    s.push_str("paper: overshoot/undershoot mostly within 4 % of the allocated budget\n");
    let r = out.robustness(0.05);
    s.push_str(&format!(
        "island-level robustness (worst over all islands/segments): overshoot {:.1} %,\nmean-criterion settling {:?} PIC invocations, segment-mean error {:.1} %\n",
        r.max_overshoot * 100.0,
        r.max_settling,
        r.max_steady_state_error * 100.0
    ));
    s.push_str("\ntrace (GPM resolution):\n");
    let mut t = Table::new(&["GPM interval", "P_actual %", "P_target %"]);
    let series = out.chip_power_percent_gpm();
    for k in (0..series.len()).step_by(10) {
        t.row(&[
            k.to_string(),
            f(series.samples()[k].value, 2),
            f(out.budget_percent(), 1),
        ]);
    }
    s.push_str(&t.render());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_reports_tight_tracking() {
        let s = fig10();
        assert!(s.contains("max overshoot"));
    }
}
