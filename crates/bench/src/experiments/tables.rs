//! Tables I–III: configuration, benchmark roster, and mixes.

use crate::report::{heading, Table};
use cpm_sim::CmpConfig;
use cpm_units::IslandId;
use cpm_workloads::{parsec, Mix, WorkloadAssignment};

/// Table I: core, memory, CMP configuration and V/F settings.
pub fn table1() -> String {
    let cfg = CmpConfig::paper_default();
    let mut out = heading("Table I — Core, Memory, CMP configuration and V-F settings");
    let mut t = Table::new(&["parameter", "value"]);
    t.row(&["technology".into(), "90 nm class, 2 GHz nominal".into()]);
    t.row(&[
        "CMP".into(),
        format!(
            "{} x86 OoO cores, {} islands x {} cores/island",
            cfg.cores,
            cfg.islands(),
            cfg.cores_per_island
        ),
    ]);
    t.row(&[
        "L1 I/D".into(),
        format!(
            "{}-way, {} KB, 64 B lines, 1-cycle",
            cfg.cache.l1_ways,
            cfg.cache.l1_bytes / 1024
        ),
    ]);
    t.row(&[
        "L2 (shared)".into(),
        format!(
            "{}-way, {} KB per core, 64 B lines, 12-cycle",
            cfg.cache.l2_ways,
            cfg.cache.l2_bytes_per_core / 1024
        ),
    ]);
    t.row(&["memory".into(), "100 ns (200 cycles @ 2 GHz)".into()]);
    t.row(&[
        "GPM / PIC interval".into(),
        format!(
            "{} ms / {} ms",
            cfg.gpm_interval.ms(),
            cfg.pic_interval.ms()
        ),
    ]);
    t.row(&[
        "DVFS overhead".into(),
        format!(
            "{:.1} % of interval per transition",
            cfg.dvfs.transition_overhead() * 100.0
        ),
    ]);
    out.push_str(&t.render());
    out.push_str("\nV/F pairs (Pentium-M derived):\n");
    let mut vf = Table::new(&["index", "frequency (MHz)", "voltage (V)"]);
    for (i, p) in cfg.dvfs.points().iter().enumerate() {
        vf.row(&[
            i.to_string(),
            format!("{:.0}", p.frequency.mhz()),
            format!("{:.3}", p.voltage.value()),
        ]);
    }
    out.push_str(&vf.render());
    out
}

/// Table II: the PARSEC roster.
pub fn table2() -> String {
    let mut out = heading("Table II — PARSEC benchmark details");
    let mut t = Table::new(&["benchmark", "abbrev", "kind", "description"]);
    for p in parsec::all() {
        let kind = if p.description.contains("kernel") {
            "kernel"
        } else {
            "application"
        };
        t.row(&[
            p.name.into(),
            p.short.into(),
            kind.into(),
            p.description.into(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Table III: Mix-1/2/3 island assignments with C/M characteristics.
pub fn table3() -> String {
    let mut out = heading("Table III — Application mix and island assignment");
    for (label, mix, cores) in [
        ("(a) Mix-1, 8-core CMP", Mix::Mix1, 8),
        ("(b) Mix-2, 8-core CMP", Mix::Mix2, 8),
        ("(c) Mix-3, 16-core CMP", Mix::Mix3, 16),
    ] {
        out.push_str(&format!("\n{label}:\n"));
        let a = WorkloadAssignment::paper_mix(mix, cores);
        let mut t = Table::new(&["island", "benchmarks", "characteristics"]);
        for i in 0..a.islands() {
            let names: Vec<&str> = a
                .cores_of(IslandId(i))
                .iter()
                .map(|&c| a.profile(c).short)
                .collect();
            t.row(&[
                (i + 1).to_string(),
                names.join(", "),
                a.island_classes(IslandId(i)),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_8_vf_pairs() {
        let s = table1();
        assert!(s.contains("600"));
        assert!(s.contains("2000"));
        assert!(s.contains("1.340"));
    }

    #[test]
    fn table2_lists_all_benchmarks() {
        let s = table2();
        for short in [
            "bschls", "btrack", "fsim", "fmine", "x264", "vips", "sclust", "canneal",
        ] {
            assert!(s.contains(short), "missing {short}");
        }
    }

    #[test]
    fn table3_shows_cm_classes() {
        let s = table3();
        assert!(s.contains("C, M"));
        assert!(s.contains("M, M, M, M"));
    }
}
