//! `experiments trace <cell>`: replay one experiment cell with the flight
//! recorder and metrics registry enabled and render the artifacts.
//!
//! A *cell* is one point of the sweep grid, written `<policy>@<budget>`
//! (e.g. `perf@80`, `thermal@80`, `variation@90`): the provisioning policy
//! and the chip budget as a percent of the required-power reference. The
//! replay runs the same simulation the sweep experiments run, but with a
//! [`cpm_obs::Recorder`] threaded through the whole control stack, so every
//! GPM allocation, PIC control step, transducer re-zero, thermal violation,
//! and policy reversal lands in the event log with its simulated-time
//! timestamp.
//!
//! All timestamps are **simulated** time, so two replays of the same cell
//! produce byte-identical JSONL/CSV no matter the host or worker count —
//! the CI determinism gate diffs exactly that.

use cpm_core::coordinator::{Coordinator, ExperimentConfig, ManagementScheme, Outcome, PolicyKind};
use cpm_core::policies::thermal::ThermalConstraints;
use cpm_obs::{
    append_alarm_events, events_to_chrome, events_to_jsonl, CsvSeries, Event, HealthReport,
    Recorder, Registry, SloPolicy,
};
use cpm_units::Celsius;
use cpm_workloads::Mix;

/// Which provisioning policy a traced cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePolicy {
    /// Performance-aware CPM (the paper's default).
    Performance,
    /// Thermal-aware CPM with the paper's 8-island constraint set.
    Thermal,
    /// Variation-aware greedy EPI search.
    Variation,
}

impl TracePolicy {
    /// The spelling used in cell specs and artifact file names.
    pub fn as_str(&self) -> &'static str {
        match self {
            TracePolicy::Performance => "perf",
            TracePolicy::Thermal => "thermal",
            TracePolicy::Variation => "variation",
        }
    }
}

/// A parsed `<policy>@<budget>` cell spec.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCell {
    /// The provisioning policy under trace.
    pub policy: TracePolicy,
    /// Chip budget, percent of the required-power reference.
    pub budget_percent: f64,
}

impl TraceCell {
    /// Parses `perf@80`-style cell specs.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (policy, budget) = spec
            .split_once('@')
            .ok_or_else(|| format!("cell `{spec}` is not of the form <policy>@<budget>"))?;
        let policy = match policy {
            // `pid` is an alias: the performance cell's PICs run the
            // normalized PID capping loop, and provenance tooling talks
            // about them by controller name.
            "perf" | "pid" => TracePolicy::Performance,
            "thermal" => TracePolicy::Thermal,
            "variation" => TracePolicy::Variation,
            other => {
                return Err(format!(
                    "unknown policy `{other}` (expected perf, pid, thermal, or variation)"
                ))
            }
        };
        let budget_percent: f64 = budget
            .parse()
            .map_err(|_| format!("budget `{budget}` is not a number"))?;
        if !(5.0..=100.0).contains(&budget_percent) {
            return Err(format!(
                "budget {budget_percent}% outside the sensible 5–100% range"
            ));
        }
        Ok(Self {
            policy,
            budget_percent,
        })
    }

    /// The experiment this cell replays. Thermal cells use the Fig. 18
    /// layout (8 single-core islands, SPEC thermal roster); the others run
    /// the paper-default 8-core / 4-island Mix-1 chip.
    pub fn config(&self) -> ExperimentConfig {
        let base = ExperimentConfig::paper_default().with_budget_percent(self.budget_percent);
        match self.policy {
            TracePolicy::Performance => base,
            TracePolicy::Thermal => {
                let mut cfg = base.with_mix(Mix::Thermal, 8, 1);
                cfg.scheme = ManagementScheme::Cpm(PolicyKind::Thermal(
                    ThermalConstraints::paper_eight_island(),
                ));
                cfg
            }
            TracePolicy::Variation => {
                base.with_scheme(ManagementScheme::Cpm(PolicyKind::Variation))
            }
        }
    }

    /// Artifact file stem, e.g. `perf_80`.
    pub fn file_stem(&self) -> String {
        format!("{}_{}", self.policy.as_str(), self.budget_percent.round())
    }
}

/// Knobs of one trace replay.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Measured GPM intervals.
    pub rounds: usize,
    /// Die-temperature watchdog threshold; hotspot onsets emit
    /// `ThermalViolation` events.
    pub hotspot_threshold: Celsius,
    /// Flight-recorder capacity (events kept; oldest dropped beyond it).
    pub capacity: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            rounds: 30,
            hotspot_threshold: Celsius::new(80.0),
            capacity: 1 << 16,
        }
    }
}

/// Everything one trace replay produces, rendered and raw.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Artifact file stem (`<policy>_<budget>`).
    pub stem: String,
    /// The drained event log, in global sequence order.
    pub events: Vec<Event>,
    /// Events lost to ring-buffer wraparound (0 unless capacity was small).
    pub dropped: u64,
    /// The event log as JSONL (one event per line).
    pub jsonl: String,
    /// PIC-interval time series (chip power / BIPS / temperature plus
    /// per-island actual / target / DVFS) as CSV.
    pub csv: String,
    /// Metrics-registry snapshot as JSON.
    pub metrics_json: String,
    /// Metrics-registry snapshot as a one-page text report.
    pub metrics_text: String,
    /// SLO alarms the watchdog raised over the trajectory (the matching
    /// `Alarm` events are appended to `events`/`jsonl`).
    pub alarms: usize,
    /// Watchdog health report as JSON (`cpm-health-v1`).
    pub health_json: String,
    /// Watchdog health report as one-page text.
    pub health_text: String,
    /// Control-phase wall-clock self-profile (sense/decide/actuate) —
    /// stderr material only: wall-clock never enters byte-diffed
    /// artifacts.
    pub profile_text: String,
    /// The event log as a Chrome `trace_event` JSON document
    /// (Perfetto-ready).
    pub chrome_json: String,
    /// The simulation outcome, for callers that want the numbers too.
    pub outcome: Outcome,
}

/// Replays one cell with recording enabled.
pub fn run_trace(spec: &str, opts: &TraceOptions) -> Result<TraceArtifacts, String> {
    let cell = TraceCell::parse(spec)?;
    // Warm the process-wide probe/calibration memo caches with a throwaway
    // coordinator before tracing. The traced run then reports `memo.*.hits`
    // deterministically — replaying the same cell twice yields byte-
    // identical metrics regardless of what ran earlier in the process —
    // and the cached values are bit-identical to recomputation, so the
    // trace itself is unchanged.
    {
        let mut warmup = Coordinator::new(cell.config()).map_err(|e| e.to_string())?;
        warmup.calibrate();
    }
    let mut coord = Coordinator::new(cell.config()).map_err(|e| e.to_string())?;
    let recorder = Recorder::enabled(opts.capacity);
    let registry = Registry::new();
    coord.set_registry(registry.clone());
    coord.set_recorder(recorder.clone());
    coord.attach_hotspot_tracker(opts.hotspot_threshold);
    // Wall-clock self-profiling publishes to its *own* registry: the
    // traced registry's snapshot is a byte-diffed artifact, and wall-clock
    // must never leak into the determinism gate.
    let profile_registry = Registry::new();
    coord.set_profiler(Box::new(crate::profile::WallClockProfiler::new(
        profile_registry.clone(),
    )));
    let outcome = coord.run_for_gpm_intervals(opts.rounds);
    let mut events = recorder.drain();
    // Watchdog pass: scan the recorded stream, then append the alarms as
    // first-class events so every downstream artifact carries them.
    let slo_policy = SloPolicy::default();
    let slo_alarms = cpm_obs::slo::scan(&events, slo_policy);
    append_alarm_events(&mut events, &slo_alarms);
    let health = HealthReport::new(spec, &events, &slo_alarms, &slo_policy);
    let jsonl = events_to_jsonl(&events);
    let csv = outcome_csv(&outcome);
    let snap = registry.snapshot();
    Ok(TraceArtifacts {
        stem: cell.file_stem(),
        dropped: recorder.dropped(),
        jsonl,
        csv,
        metrics_json: snap.to_json(),
        metrics_text: snap.to_text(),
        alarms: slo_alarms.len(),
        health_json: health.to_json(),
        health_text: health.to_text(),
        profile_text: crate::profile::profile_summary(&profile_registry),
        chrome_json: events_to_chrome(&events),
        events,
        outcome,
    })
}

/// Renders the outcome's PIC-interval series as one CSV table.
fn outcome_csv(out: &Outcome) -> String {
    let islands = out.island_actual_percent.len();
    let mut columns = vec![
        "t_s".to_string(),
        "chip_power_pct".to_string(),
        "chip_bips".to_string(),
        "peak_temp_c".to_string(),
    ];
    for i in 0..islands {
        columns.push(format!("island{i}_actual_pct"));
        columns.push(format!("island{i}_target_pct"));
        columns.push(format!("island{i}_dvfs"));
    }
    let mut csv = CsvSeries::new(columns);
    for (k, s) in out.chip_power_percent.samples().iter().enumerate() {
        let mut row = vec![
            s.time.value(),
            s.value,
            out.chip_bips.samples()[k].value,
            out.peak_temperature.samples()[k].value,
        ];
        for i in 0..islands {
            row.push(out.island_actual_percent[i].samples()[k].value);
            row.push(out.island_target_percent[i].samples()[k].value);
            row.push(out.island_dvfs_index[i].samples()[k].value);
        }
        csv.push_row(row);
    }
    csv.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_specs_parse() {
        let c = TraceCell::parse("perf@80").unwrap();
        assert_eq!(c.policy, TracePolicy::Performance);
        assert_eq!(c.budget_percent, 80.0);
        assert_eq!(c.file_stem(), "perf_80");
        let pid = TraceCell::parse("pid@80").unwrap();
        assert_eq!(pid.policy, TracePolicy::Performance);
        assert_eq!(pid.file_stem(), "perf_80");
        assert_eq!(
            TraceCell::parse("thermal@75.5").unwrap().policy,
            TracePolicy::Thermal
        );
        assert_eq!(
            TraceCell::parse("variation@90").unwrap().policy,
            TracePolicy::Variation
        );
    }

    #[test]
    fn bad_cell_specs_are_rejected() {
        for bad in ["perf", "perf@", "perf@x", "qos@80", "perf@200", "@80"] {
            assert!(TraceCell::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn thermal_cell_uses_the_fig18_layout() {
        let cfg = TraceCell::parse("thermal@80").unwrap().config();
        assert_eq!(cfg.cmp.cores, 8);
        assert_eq!(cfg.cmp.cores_per_island, 1);
        assert!(matches!(
            cfg.scheme,
            ManagementScheme::Cpm(PolicyKind::Thermal(_))
        ));
    }
}
