//! Minimal wall-clock micro-benchmark harness.
//!
//! The bench targets under `benches/` use `harness = false` and drive this
//! module directly, so `cargo bench` works with zero external crates. The
//! measurement loop is deliberately simple: calibrate a batch size that
//! takes a few milliseconds, time an odd number of batches, report the
//! median and minimum per-iteration cost. That is plenty to spot the
//! order-of-magnitude regressions these benches exist to catch.
//!
//! CLI: any non-flag argument is a substring filter on bench names (cargo
//! itself passes `--bench`, which is ignored). `CPM_BENCH_QUICK=1` cuts
//! the per-bench budget ~10× for smoke runs.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-batch target duration; long enough to swamp timer overhead.
const BATCH_TARGET: Duration = Duration::from_millis(4);
const WARMUP: Duration = Duration::from_millis(40);
const SAMPLES: usize = 11;

pub struct Bench {
    filter: Vec<String>,
    quick: bool,
    ran: usize,
}

impl Bench {
    /// Builds a runner from `std::env::args`, announcing the suite name.
    pub fn new(suite: &str) -> Self {
        let filter: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        let quick = std::env::var("CPM_BENCH_QUICK").is_ok_and(|v| v != "0");
        eprintln!("suite {suite}{}", if quick { " (quick)" } else { "" });
        Bench {
            filter,
            quick,
            ran: 0,
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| name.contains(f))
    }

    /// Times `f`, printing `name  median/iter (min …, N iters)`.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        self.ran += 1;
        let m = measure(self.quick, f);
        println!(
            "{name:<44} {:>12}/iter  (min {}, {} iters/sample)",
            fmt_ns(m.median_ns),
            fmt_ns(m.min_ns),
            m.batch
        );
    }

    /// Prints the run count; call last so empty filters are noticeable.
    pub fn finish(self) {
        if self.ran == 0 {
            eprintln!("no benches matched filter {:?}", self.filter);
        }
    }
}

/// One timed measurement: per-iteration cost and the calibrated batch size.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median per-iteration cost across samples, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample's per-iteration cost, nanoseconds.
    pub min_ns: f64,
    /// Iterations per timed batch (after calibration).
    pub batch: u64,
}

/// The numeric measurement core behind [`Bench::bench`]: warms `f` up,
/// calibrates a batch size that fills a few milliseconds, times an odd
/// number of batches, and returns the median/min per-iteration cost.
/// `quick` cuts the time budget ~10× for smoke runs.
pub fn measure<R>(quick: bool, mut f: impl FnMut() -> R) -> Measurement {
    let scale = if quick { 10 } else { 1 };

    // Warm up while calibrating how many iterations fill one batch.
    let warmup = WARMUP / scale;
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    while start.elapsed() < warmup || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
    let batch = ((BATCH_TARGET / scale).as_secs_f64() / per_iter.max(1e-9))
        .ceil()
        .max(1.0) as u64;

    let samples = if quick { 5 } else { SAMPLES };
    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    Measurement {
        median_ns: per_iter_ns[samples / 2],
        min_ns: per_iter_ns[0],
        batch,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_ns;

    #[test]
    fn formats_across_scales() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
