//! Wall-clock self-profiling of the control loop's phases.
//!
//! [`cpm_obs::PhaseProfiler`] is the clock-free seam the coordinator
//! exposes; this module supplies the one implementation that actually
//! reads a clock. The split is deliberate: recorded events and every
//! byte-diffed artifact carry only simulated time, so the `Instant`
//! calls live here in `cpm-bench` (the timing lint confines wall-clock
//! reads to the bench and runtime crates) and the measurements are
//! published through a [`cpm_obs::Registry`] — whose snapshot goes to
//! stderr and schema-checked artifacts, never into the determinism gate.
//!
//! Per phase (`sense`, `decide`, `actuate`) the profiler maintains
//! `profile.<phase>.seconds` (gauge: cumulative wall-clock) and
//! `profile.<phase>.calls` (counter), so a trace replay can report where
//! the controller's own time goes alongside the simulated trajectory.

use cpm_obs::{ControlPhase, PhaseProfiler, Registry};
use std::time::Instant;

/// All phases, in pipeline order.
const PHASES: [ControlPhase; 3] = [
    ControlPhase::Sense,
    ControlPhase::Decide,
    ControlPhase::Actuate,
];

fn idx(phase: ControlPhase) -> usize {
    match phase {
        ControlPhase::Sense => 0,
        ControlPhase::Decide => 1,
        ControlPhase::Actuate => 2,
    }
}

/// [`PhaseProfiler`] backed by [`Instant`], publishing to a registry.
#[derive(Debug)]
pub struct WallClockProfiler {
    registry: Registry,
    started: [Option<Instant>; 3],
    totals_s: [f64; 3],
    calls: [u64; 3],
}

impl WallClockProfiler {
    /// A profiler publishing to `registry` (keep a clone to read the
    /// totals after the coordinator consumes the profiler).
    pub fn new(registry: Registry) -> Self {
        Self {
            registry,
            started: [None; 3],
            totals_s: [0.0; 3],
            calls: [0; 3],
        }
    }

    /// Cumulative wall-clock seconds spent in `phase` so far.
    pub fn seconds(&self, phase: ControlPhase) -> f64 {
        self.totals_s[idx(phase)]
    }

    /// Completed enter/exit pairs observed for `phase`.
    pub fn calls(&self, phase: ControlPhase) -> u64 {
        self.calls[idx(phase)]
    }
}

impl PhaseProfiler for WallClockProfiler {
    fn enter(&mut self, phase: ControlPhase) {
        self.started[idx(phase)] = Some(Instant::now());
    }

    fn exit(&mut self, phase: ControlPhase) {
        let i = idx(phase);
        // An exit without a matching enter is ignored rather than
        // invented: the totals only ever contain measured intervals.
        if let Some(t0) = self.started[i].take() {
            self.totals_s[i] += t0.elapsed().as_secs_f64();
            self.calls[i] += 1;
            self.registry
                .gauge(&format!("profile.{}.seconds", phase.as_str()))
                .set(self.totals_s[i]);
            self.registry
                .counter(&format!("profile.{}.calls", phase.as_str()))
                .add(1);
        }
    }
}

/// One-line-per-phase summary off a registry snapshot (stderr material).
pub fn profile_summary(registry: &Registry) -> String {
    let snap = registry.snapshot();
    let mut s = String::new();
    for phase in PHASES {
        let name = phase.as_str();
        let seconds = snap
            .gauges
            .get(&format!("profile.{name}.seconds"))
            .copied()
            .unwrap_or(0.0);
        let calls = snap
            .counters
            .get(&format!("profile.{name}.calls"))
            .copied()
            .unwrap_or(0);
        let mean_us = if calls > 0 {
            seconds / calls as f64 * 1e6
        } else {
            0.0
        };
        s.push_str(&format!(
            "profile {name:<7} {seconds:10.6}s over {calls:6} calls ({mean_us:8.2} us/call)\n"
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_publish() {
        let registry = Registry::new();
        let mut p = WallClockProfiler::new(registry.clone());
        for _ in 0..3 {
            p.enter(ControlPhase::Sense);
            p.exit(ControlPhase::Sense);
        }
        p.enter(ControlPhase::Decide);
        p.exit(ControlPhase::Decide);
        assert_eq!(p.calls(ControlPhase::Sense), 3);
        assert_eq!(p.calls(ControlPhase::Decide), 1);
        assert_eq!(p.calls(ControlPhase::Actuate), 0);
        assert!(p.seconds(ControlPhase::Sense) >= 0.0);
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("profile.sense.calls"), Some(&3));
        assert!(snap.gauges.contains_key("profile.sense.seconds"));
        let summary = profile_summary(&registry);
        assert!(summary.contains("profile sense"), "{summary}");
        assert!(summary.contains("profile actuate"), "{summary}");
    }

    #[test]
    fn unmatched_exit_is_ignored() {
        let registry = Registry::new();
        let mut p = WallClockProfiler::new(registry.clone());
        p.exit(ControlPhase::Actuate);
        assert_eq!(p.calls(ControlPhase::Actuate), 0);
        assert!(!registry
            .snapshot()
            .counters
            .contains_key("profile.actuate.calls"));
    }

    #[test]
    fn profiler_threads_through_the_coordinator_seam() {
        // End-to-end: the coordinator drives enter/exit around its
        // sense/decide/actuate phases for every control step.
        let registry = Registry::new();
        let mut coord = cpm_core::coordinator::Coordinator::new(
            cpm_core::coordinator::ExperimentConfig::paper_default(),
        )
        .unwrap();
        coord.set_profiler(Box::new(WallClockProfiler::new(registry.clone())));
        coord.run_for_gpm_intervals(2);
        let snap = registry.snapshot();
        let pics = 10; // pics_per_gpm
        assert_eq!(
            snap.counters.get("profile.sense.calls").copied(),
            Some(2 * pics)
        );
        assert_eq!(
            snap.counters.get("profile.actuate.calls").copied(),
            Some(2 * pics)
        );
        assert_eq!(snap.counters.get("profile.decide.calls").copied(), Some(2));
    }
}
