//! `experiments scaling` — the kilocore scaling study.
//!
//! The paper's Section 7 argument is architectural: a centralized MaxBIPS
//! search over the whole chip explodes combinatorially, while the two-tier
//! GPM+PIC design does per-island work plus one cheap global provisioning
//! pass. The paper demonstrates it at 8/32 cores; this study measures it,
//! sweeping cores ∈ {8, 32, 128, 512, 1024} × islands ∈ {2, 4, 8, 16}
//! under the performance-aware policy and recording, per sweep point:
//!
//! * `chip.step_pic` ns/op and ns/op-per-core (the SoA stepping cost),
//! * the wall-clock split of a closed-loop two-tier run across chip
//!   stepping, PIC invocations, and GPM provisioning,
//! * decision latency head-to-head: one full two-tier decision round
//!   (GPM provision + every PIC invoke) vs one centralized MaxBIPS
//!   knapsack solve over the same islands and budget.
//!
//! Built on [`crate::microbench::measure`] and a `cpm-obs` registry, like
//! the `perf` suite; the artifact is `BENCH_scaling.json`.

use crate::microbench::{black_box, measure, Measurement};
use cpm_control::PidGains;
use cpm_core::gpm::IslandRange;
use cpm_core::maxbips::{MaxBips, MaxBipsObservation};
use cpm_core::pic::PicSensor;
use cpm_core::{GlobalPowerManager, IslandFeedback, PerIslandController, PerformanceAware};
use cpm_power::LeakageModel;
use cpm_sim::{Chip, ChipSnapshot, CmpConfig};
use cpm_units::{IslandId, Ratio, Watts};
use cpm_workloads::{BenchmarkProfile, Mix, WorkloadAssignment};
use std::time::{Duration, Instant};

/// Core counts the study sweeps.
pub const CORE_COUNTS: &[usize] = &[8, 32, 128, 512, 1024];
/// Island counts the study requests at each core count.
pub const ISLAND_COUNTS: &[usize] = &[2, 4, 8, 16];

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Cores on the chip.
    pub cores: usize,
    /// Islands the sweep requested.
    pub islands_requested: usize,
    /// Islands actually instantiated (a request for more islands than
    /// cores degrades to one core per island).
    pub islands: usize,
    /// Cores per island.
    pub width: usize,
    /// One `chip.step_pic_into` call.
    pub step: Measurement,
    /// Fraction of closed-loop wall-clock spent stepping the chip model.
    pub step_fraction: f64,
    /// Fraction spent in PIC control-law invocations (all islands).
    pub pic_fraction: f64,
    /// Fraction spent in GPM provisioning.
    pub gpm_fraction: f64,
    /// One full two-tier decision round: GPM provision + every PIC invoke.
    pub two_tier_decision: Measurement,
    /// One centralized MaxBIPS knapsack solve over the same islands.
    pub maxbips_decision: Measurement,
}

impl ScalingPoint {
    /// Chip-stepping cost normalized per core.
    pub fn step_ns_per_core(&self) -> f64 {
        self.step.median_ns / self.cores as f64
    }

    /// How many times slower the centralized decision is than the
    /// two-tier one.
    pub fn maxbips_vs_two_tier(&self) -> f64 {
        self.maxbips_decision.median_ns / self.two_tier_decision.median_ns.max(1e-9)
    }
}

/// Everything one scaling run produces.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// All sweep points, core-count-major order.
    pub points: Vec<ScalingPoint>,
    /// Whether the quick (smoke) protocol was used.
    pub quick: bool,
    /// Per-point gauges (`scaling.c<cores>.i<islands>.…`), embedded in the
    /// artifact like the sweep registry is.
    pub registry: cpm_obs::Registry,
}

/// Resolves a `(cores, islands_requested)` request to a feasible
/// `(width, islands)` topology: equal-width contiguous islands, degrading
/// to one core per island when more islands than cores are requested.
pub fn geometry(cores: usize, islands_requested: usize) -> (usize, usize) {
    let width = (cores / islands_requested).max(1);
    (width, cores / width)
}

/// The workload: PARSEC Mix 3 (the paper's 32-core mix) tiled out to
/// `cores` entries.
fn profiles_for(cores: usize) -> Vec<BenchmarkProfile> {
    WorkloadAssignment::paper_mix(Mix::Mix3, 32)
        .profiles()
        .iter()
        .cloned()
        .cycle()
        .take(cores)
        .collect()
}

/// Physical allocation range per island — floor at the idle power of the
/// lowest operating point, ceiling at the max-power basis share (mirrors
/// the coordinator's provisioning setup).
fn island_ranges(chip: &Chip) -> Vec<IslandRange> {
    let cfg = chip.config();
    let min_op = cfg.dvfs.min_point();
    (0..cfg.islands())
        .map(|i| {
            let mult = chip.variation().multiplier(IslandId(i));
            let idle_core =
                cfg.power
                    .total_power(min_op, Ratio::ZERO, LeakageModel::HOT_REFERENCE, mult);
            let max_core = cfg.power.max_power(&cfg.dvfs, mult);
            IslandRange {
                floor: idle_core * cfg.cores_per_island as f64,
                ceiling: max_core * cfg.cores_per_island as f64,
            }
        })
        .collect()
}

/// Measures one sweep point.
pub fn run_point(cores: usize, islands_requested: usize, quick: bool) -> ScalingPoint {
    let (width, islands) = geometry(cores, islands_requested);
    let cfg = CmpConfig::with_topology(cores, width);
    let assignment = WorkloadAssignment::new(profiles_for(cores), width);
    let mut chip = Chip::new(cfg.clone(), &assignment);
    let budget = chip.max_power() * 0.75;
    let ranges = island_ranges(&chip);
    let mut gpm =
        GlobalPowerManager::new(budget, Box::new(PerformanceAware::new()), ranges.clone());
    let mut pics: Vec<PerIslandController> = (0..islands)
        .map(|i| {
            PerIslandController::new(
                IslandId(i),
                cfg.dvfs.clone(),
                ranges[i].ceiling,
                PidGains::paper(),
                0.79,
                PicSensor::Oracle,
            )
        })
        .collect();
    let mut alloc = gpm.initial_allocation();
    for (pic, a) in pics.iter_mut().zip(&alloc) {
        pic.set_target(*a);
    }

    // Closed-loop overhead split: run the two-tier loop for `rounds` GPM
    // rounds, charging wall-clock to three buckets — chip stepping, PIC
    // invocations, GPM provisioning. Harness bookkeeping (feedback
    // aggregation) is deliberately left out of all three.
    let pics_per_gpm = (cfg.gpm_interval.value() / cfg.pic_interval.value()).round() as usize;
    let rounds = if quick { 10 } else { 30 };
    let mut snap = ChipSnapshot::empty();
    for _ in 0..8 {
        chip.step_pic_into(&mut snap); // settle out of the cold-boot state
    }
    let mut t_step = Duration::ZERO;
    let mut t_pic = Duration::ZERO;
    let mut t_gpm = Duration::ZERO;
    let mut feedback: Vec<IslandFeedback> = Vec::new();
    for _round in 0..rounds {
        let mut power_sum = vec![0.0; islands];
        let mut bips_sum = vec![0.0; islands];
        let mut util_sum = vec![0.0; islands];
        for _k in 0..pics_per_gpm {
            let t0 = Instant::now();
            chip.step_pic_into(&mut snap);
            t_step += t0.elapsed();
            let t1 = Instant::now();
            for (i, pic) in pics.iter_mut().enumerate() {
                let s = &snap.islands[i];
                let idx = pic.invoke(s.capacity_utilization, s.power);
                chip.set_island_dvfs(IslandId(i), idx);
            }
            t_pic += t1.elapsed();
            for (i, s) in snap.islands.iter().enumerate() {
                power_sum[i] += s.power.value();
                bips_sum[i] += s.bips;
                util_sum[i] += s.utilization.value();
            }
        }
        let k = pics_per_gpm as f64;
        feedback = (0..islands)
            .map(|i| {
                let peak = chip.temperatures_deg()[i * width..(i + 1) * width]
                    .iter()
                    .fold(f64::MIN, |a, &b| a.max(b));
                IslandFeedback {
                    island: IslandId(i),
                    allocated: alloc[i],
                    actual_power: Watts::new(power_sum[i] / k),
                    bips: bips_sum[i] / k,
                    utilization: Ratio::new(util_sum[i] / k),
                    epi: None,
                    peak_temperature: peak,
                }
            })
            .collect();
        let t2 = Instant::now();
        alloc = gpm.provision(&feedback);
        for (pic, a) in pics.iter_mut().zip(&alloc) {
            pic.set_target(*a);
        }
        t_gpm += t2.elapsed();
    }
    let total = (t_step + t_pic + t_gpm).as_secs_f64().max(1e-12);
    let step_fraction = t_step.as_secs_f64() / total;
    let pic_fraction = t_pic.as_secs_f64() / total;
    let gpm_fraction = t_gpm.as_secs_f64() / total;

    // Steady-state stepping cost (the SoA hot loop).
    let step = measure(quick, || chip.step_pic_into(black_box(&mut snap)));

    // Decision latency, two-tier: one GPM provision over the live feedback
    // plus one control-law invocation per island.
    let two_tier_decision = {
        let fb = feedback.clone();
        measure(quick, move || {
            let a = gpm.provision(black_box(&fb));
            for (i, pic) in pics.iter_mut().enumerate() {
                black_box(pic.invoke(fb[i].utilization, a[i].min(fb[i].actual_power)));
            }
        })
    };

    // Decision latency, centralized: the MaxBIPS knapsack DP over the same
    // islands and chip budget (memo-free — the paper's §7 cost).
    let maxbips_decision = {
        let obs: Vec<MaxBipsObservation> = feedback
            .iter()
            .map(|f| MaxBipsObservation {
                power: f.actual_power,
                static_power: f.actual_power * 0.25,
                bips: f.bips,
                dvfs_index: chip.island_dvfs(f.island),
            })
            .collect();
        let mut mb = MaxBips::new(cfg.dvfs.clone());
        measure(quick, move || {
            black_box(mb.choose_uncached(budget, black_box(&obs)))
        })
    };

    ScalingPoint {
        cores,
        islands_requested,
        islands,
        width,
        step,
        step_fraction,
        pic_fraction,
        gpm_fraction,
        two_tier_decision,
        maxbips_decision,
    }
}

/// Runs the full sweep. `quick` cuts per-point time budgets ~10× (the CI
/// smoke lane).
pub fn run_scaling(quick: bool) -> ScalingReport {
    let registry = cpm_obs::Registry::new();
    let mut points = Vec::new();
    for &cores in CORE_COUNTS {
        for &islands_requested in ISLAND_COUNTS {
            let p = run_point(cores, islands_requested, quick);
            eprintln!(
                "[scaling] {cores:>5} cores × {islands_requested:>2} islands ({:>2} eff.)  \
                 {:>10.1} ns/step  {:>7.2} ns/core  step/pic/gpm {:.0}/{:.0}/{:.0} %  \
                 maxbips/two-tier {:>8.1}×",
                p.islands,
                p.step.median_ns,
                p.step_ns_per_core(),
                p.step_fraction * 100.0,
                p.pic_fraction * 100.0,
                p.gpm_fraction * 100.0,
                p.maxbips_vs_two_tier()
            );
            let stem = format!("scaling.c{cores}.i{islands_requested}");
            registry
                .gauge(&format!("{stem}.step_ns"))
                .set(p.step.median_ns);
            registry
                .gauge(&format!("{stem}.step_ns_per_core"))
                .set(p.step_ns_per_core());
            registry
                .gauge(&format!("{stem}.gpm_fraction"))
                .set(p.gpm_fraction);
            registry
                .gauge(&format!("{stem}.pic_fraction"))
                .set(p.pic_fraction);
            registry
                .gauge(&format!("{stem}.maxbips_vs_two_tier"))
                .set(p.maxbips_vs_two_tier());
            points.push(p);
        }
    }
    ScalingReport {
        points,
        quick,
        registry,
    }
}

/// Renders the `BENCH_scaling.json` artifact. Hand-rolled writer (the
/// workspace builds with zero external crates); all numbers are finite.
pub fn scaling_json(report: &ScalingReport) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "0.0".to_string()
        }
    }
    let mut s = String::from("{\n");
    s.push_str("  \"schema\": \"cpm-scaling-v1\",\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str("  \"points\": [\n");
    for (k, p) in report.points.iter().enumerate() {
        let sep = if k + 1 < report.points.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"cores\": {}, \"islands_requested\": {}, \"islands\": {}, \"width\": {}, \
             \"step_median_ns\": {}, \"step_min_ns\": {}, \"step_ns_per_core\": {}, \
             \"step_fraction\": {}, \"pic_fraction\": {}, \"gpm_fraction\": {}, \
             \"two_tier_decision_ns\": {}, \"maxbips_decision_ns\": {}, \
             \"maxbips_vs_two_tier\": {}}}{sep}\n",
            p.cores,
            p.islands_requested,
            p.islands,
            p.width,
            num(p.step.median_ns),
            num(p.step.min_ns),
            num(p.step_ns_per_core()),
            num(p.step_fraction),
            num(p.pic_fraction),
            num(p.gpm_fraction),
            num(p.two_tier_decision.median_ns),
            num(p.maxbips_decision.median_ns),
            num(p.maxbips_vs_two_tier()),
        ));
    }
    s.push_str("  ],\n");
    // The full per-point gauge snapshot, nested like the sweep artifact's.
    let snap = report.registry.snapshot().to_json();
    let mut nested = String::new();
    for (k, line) in snap.trim_end().lines().enumerate() {
        if k > 0 {
            nested.push_str("  ");
        }
        nested.push_str(line);
        nested.push('\n');
    }
    s.push_str(&format!("  \"metrics\": {}", nested.trim_end()));
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_geometry_covers_all_points_feasibly() {
        let mut seen = 0;
        for &cores in CORE_COUNTS {
            for &islands_requested in ISLAND_COUNTS {
                let (width, islands) = geometry(cores, islands_requested);
                assert!(width >= 1 && islands >= 1);
                assert_eq!(width * islands, cores, "islands must tile the chip");
                assert!(islands <= islands_requested.max(cores));
                seen += 1;
            }
        }
        assert_eq!(seen, 20, "the study sweeps 20 points");
        // The one infeasible request degrades rather than disappears.
        assert_eq!(geometry(8, 16), (1, 8));
        assert_eq!(geometry(1024, 16), (64, 16));
    }

    #[test]
    fn one_quick_point_produces_sane_numbers() {
        let p = run_point(8, 2, true);
        assert_eq!((p.cores, p.islands, p.width), (8, 2, 4));
        assert!(p.step.median_ns > 0.0);
        assert!(p.step_ns_per_core() > 0.0);
        let f = p.step_fraction + p.pic_fraction + p.gpm_fraction;
        assert!((f - 1.0).abs() < 1e-9, "fractions must sum to 1: {f}");
        assert!(p.two_tier_decision.median_ns > 0.0);
        assert!(p.maxbips_decision.median_ns > 0.0);
    }

    #[test]
    fn scaling_json_has_the_artifact_shape() {
        let m = Measurement {
            median_ns: 1000.0,
            min_ns: 900.0,
            batch: 64,
        };
        let report = ScalingReport {
            points: vec![ScalingPoint {
                cores: 8,
                islands_requested: 16,
                islands: 8,
                width: 1,
                step: m,
                step_fraction: 0.8,
                pic_fraction: 0.15,
                gpm_fraction: 0.05,
                two_tier_decision: m,
                maxbips_decision: Measurement {
                    median_ns: 5000.0,
                    min_ns: 4500.0,
                    batch: 8,
                },
            }],
            quick: true,
            registry: cpm_obs::Registry::new(),
        };
        report.registry.gauge("scaling.c8.i16.step_ns").set(1000.0);
        let json = scaling_json(&report);
        for needle in [
            "\"schema\": \"cpm-scaling-v1\"",
            "\"quick\": true",
            "\"points\": [",
            "\"cores\": 8",
            "\"islands_requested\": 16",
            "\"islands\": 8",
            "\"step_median_ns\": 1000.000",
            "\"step_ns_per_core\": 125.000",
            "\"step_fraction\": 0.800",
            "\"pic_fraction\": 0.150",
            "\"gpm_fraction\": 0.050",
            "\"two_tier_decision_ns\": 1000.000",
            "\"maxbips_decision_ns\": 5000.000",
            "\"maxbips_vs_two_tier\": 5.000",
            "\"metrics\": {",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }
}
