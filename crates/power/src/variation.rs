//! Intra-die process-variation maps.
//!
//! §IV-B: "we assume that the leakage current in Island 1, Island 2 and
//! Island 3 is 1.2×, 1.5× and 2× respectively, of Island 4" (numbers taken
//! from Herbert & Marculescu's variation study). A [`VariationMap`] holds a
//! leakage multiplier per island; multiplier 1.0 everywhere models uniform
//! silicon.

use cpm_units::IslandId;

/// Per-island leakage multipliers.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationMap {
    multipliers: Vec<f64>,
}

impl VariationMap {
    /// A uniform (variation-free) map over `islands` islands.
    pub fn uniform(islands: usize) -> Self {
        Self::new(vec![1.0; islands])
    }

    /// The paper's §IV-B four-island scenario: islands 1–3 leak 1.2×, 1.5×,
    /// 2.0× relative to island 4.
    pub fn paper_four_island() -> Self {
        Self::new(vec![1.2, 1.5, 2.0, 1.0])
    }

    /// Builds a map from explicit multipliers (all must be positive).
    pub fn new(multipliers: Vec<f64>) -> Self {
        assert!(!multipliers.is_empty(), "variation map cannot be empty");
        assert!(
            multipliers.iter().all(|&m| m > 0.0 && m.is_finite()),
            "multipliers must be positive and finite"
        );
        Self { multipliers }
    }

    /// Number of islands covered.
    pub fn islands(&self) -> usize {
        self.multipliers.len()
    }

    /// The multiplier for an island. Panics on out-of-range ids.
    pub fn multiplier(&self, island: IslandId) -> f64 {
        self.multipliers[island.index()]
    }

    /// All multipliers in island order.
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// Islands sorted from least to most leaky — the variation-aware policy
    /// prefers running leakier islands at lower V/F.
    pub fn islands_by_leakiness(&self) -> Vec<IslandId> {
        let mut ids: Vec<IslandId> = (0..self.multipliers.len()).map(IslandId).collect();
        ids.sort_by(|a, b| {
            self.multipliers[a.index()]
                .partial_cmp(&self.multipliers[b.index()])
                .unwrap()
        });
        ids
    }

    /// True when every island has multiplier 1 (no variation).
    pub fn is_uniform(&self) -> bool {
        self.multipliers.iter().all(|&m| m == 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_map_matches_section_4b() {
        let m = VariationMap::paper_four_island();
        assert_eq!(m.islands(), 4);
        assert_eq!(m.multiplier(IslandId(0)), 1.2);
        assert_eq!(m.multiplier(IslandId(1)), 1.5);
        assert_eq!(m.multiplier(IslandId(2)), 2.0);
        assert_eq!(m.multiplier(IslandId(3)), 1.0);
        assert!(!m.is_uniform());
    }

    #[test]
    fn uniform_map() {
        let m = VariationMap::uniform(8);
        assert!(m.is_uniform());
        assert!(m.multipliers().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn leakiness_ordering() {
        let order = VariationMap::paper_four_island().islands_by_leakiness();
        assert_eq!(
            order,
            vec![IslandId(3), IslandId(0), IslandId(1), IslandId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_multiplier() {
        VariationMap::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_map() {
        VariationMap::new(vec![]);
    }
}
