//! Discrete voltage/frequency operating points.
//!
//! The paper assumes "each island supports 8 voltage-frequency pairs …
//! from 600 MHz to 2.0 GHz based on the Pentium-M datasheet" (§III) and a
//! DVFS transition overhead of 0.5 % of CPU time during which no
//! instructions execute.

use cpm_units::{Hertz, Seconds, Volts};

/// One voltage/frequency pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Supply voltage.
    pub voltage: Volts,
    /// Clock frequency.
    pub frequency: Hertz,
}

impl OperatingPoint {
    /// Creates an operating point.
    pub const fn new(voltage: Volts, frequency: Hertz) -> Self {
        Self { voltage, frequency }
    }

    /// `V²·f`, the quantity dynamic power is proportional to.
    pub fn v2f(&self) -> f64 {
        self.voltage.value() * self.voltage.value() * self.frequency.value()
    }
}

/// An ordered table of operating points (ascending frequency).
///
/// ```
/// use cpm_power::dvfs::DvfsTable;
/// use cpm_units::Hertz;
///
/// let table = DvfsTable::pentium_m();
/// assert_eq!(table.len(), 8);
/// // Quantizing a power-capping request rounds *down*.
/// let idx = table.quantize_down(Hertz::from_mhz(1_700.0));
/// assert_eq!(table.point(idx).frequency.mhz(), 1_600.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DvfsTable {
    points: Vec<OperatingPoint>,
    /// Fraction of an interval lost (no instructions retired) when the
    /// operating point changes.
    transition_overhead: f64,
}

impl DvfsTable {
    /// Fraction of the interval frozen by one V/F transition (paper §III:
    /// "The overhead of each DVFS interval is set to 0.5 % of the CPU
    /// time … during which we assume no instructions are executed").
    pub const PAPER_TRANSITION_OVERHEAD: f64 = 0.005;

    /// Builds a table from points, which must be strictly ascending in
    /// frequency and non-empty.
    pub fn new(points: Vec<OperatingPoint>, transition_overhead: f64) -> Self {
        assert!(!points.is_empty(), "DVFS table cannot be empty");
        assert!(
            points
                .windows(2)
                .all(|w| w[0].frequency < w[1].frequency && w[0].voltage <= w[1].voltage),
            "DVFS points must be ascending in frequency and non-decreasing in voltage"
        );
        assert!((0.0..1.0).contains(&transition_overhead));
        Self {
            points,
            transition_overhead,
        }
    }

    /// The paper's table: 8 Pentium-M (Dothan 755 class) SpeedStep pairs,
    /// 600 MHz / 0.988 V up to 2.0 GHz / 1.340 V.
    pub fn pentium_m() -> Self {
        let pts = [
            (600.0, 0.988),
            (800.0, 1.036),
            (1000.0, 1.084),
            (1200.0, 1.132),
            (1400.0, 1.180),
            (1600.0, 1.228),
            (1800.0, 1.276),
            (2000.0, 1.340),
        ];
        Self::new(
            pts.iter()
                .map(|&(mhz, v)| OperatingPoint::new(Volts::new(v), Hertz::from_mhz(mhz)))
                .collect(),
            Self::PAPER_TRANSITION_OVERHEAD,
        )
    }

    /// Builds an evenly spaced table of `n` points between
    /// `(f_min, v_min)` and `(f_max, v_max)` with the paper's transition
    /// overhead — for granularity studies ("what if the platform exposed
    /// 4 / 16 / 32 pairs?").
    pub fn linear(n: usize, f_min: Hertz, f_max: Hertz, v_min: Volts, v_max: Volts) -> Self {
        assert!(n >= 2, "need at least two operating points");
        assert!(f_max > f_min && v_max >= v_min);
        let points = (0..n)
            .map(|k| {
                let t = k as f64 / (n - 1) as f64;
                OperatingPoint::new(
                    Volts::new(v_min.value() + t * (v_max.value() - v_min.value())),
                    Hertz::new(f_min.value() + t * (f_max.value() - f_min.value())),
                )
            })
            .collect();
        Self::new(points, Self::PAPER_TRANSITION_OVERHEAD)
    }

    /// The Pentium-M voltage/frequency *envelope* re-sampled at `n` evenly
    /// spaced points — same span as [`DvfsTable::pentium_m`], different
    /// granularity.
    pub fn pentium_m_envelope(n: usize) -> Self {
        Self::linear(
            n,
            Hertz::from_mhz(600.0),
            Hertz::from_ghz(2.0),
            Volts::new(0.988),
            Volts::new(1.340),
        )
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false (construction forbids empty tables); provided for
    /// idiomatic completeness.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `idx`-th point (ascending frequency). Panics when out of range.
    pub fn point(&self, idx: usize) -> OperatingPoint {
        self.points[idx]
    }

    /// All points, ascending.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The lowest-frequency point.
    pub fn min_point(&self) -> OperatingPoint {
        self.points[0]
    }

    /// The highest-frequency point (the *nominal* configuration in
    /// Table I).
    pub fn max_point(&self) -> OperatingPoint {
        *self.points.last().unwrap()
    }

    /// Index of the highest point whose frequency does not exceed `f`;
    /// `None` when even the lowest point is above `f`.
    pub fn floor_index(&self, f: Hertz) -> Option<usize> {
        self.points.iter().rposition(|p| p.frequency <= f)
    }

    /// Quantizes a continuous frequency request downward onto the table
    /// (the PIC must not exceed its power allocation, so it rounds *down*),
    /// clamping below the table to the lowest point.
    pub fn quantize_down(&self, f: Hertz) -> usize {
        self.floor_index(f).unwrap_or(0)
    }

    /// Index of the point nearest to `f` in frequency.
    pub fn nearest_index(&self, f: Hertz) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            let d = (p.frequency.value() - f.value()).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Time lost to one V/F transition within a control interval of length
    /// `interval` (zero when `from == to`).
    pub fn transition_cost(&self, from: usize, to: usize, interval: Seconds) -> Seconds {
        if from == to {
            Seconds::ZERO
        } else {
            interval * self.transition_overhead
        }
    }

    /// The configured per-transition overhead fraction.
    pub fn transition_overhead(&self) -> f64 {
        self.transition_overhead
    }

    /// Frequency span of the table (max − min).
    pub fn frequency_span(&self) -> Hertz {
        self.max_point().frequency - self.min_point().frequency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pentium_m_has_8_ascending_points() {
        let t = DvfsTable::pentium_m();
        assert_eq!(t.len(), 8);
        assert_eq!(t.min_point().frequency, Hertz::from_mhz(600.0));
        assert_eq!(t.max_point().frequency, Hertz::from_ghz(2.0));
        assert!(t.points().windows(2).all(|w| w[0].v2f() < w[1].v2f()));
    }

    #[test]
    fn floor_index_semantics() {
        let t = DvfsTable::pentium_m();
        assert_eq!(t.floor_index(Hertz::from_mhz(599.0)), None);
        assert_eq!(t.floor_index(Hertz::from_mhz(600.0)), Some(0));
        assert_eq!(t.floor_index(Hertz::from_mhz(1399.0)), Some(3));
        assert_eq!(t.floor_index(Hertz::from_mhz(2500.0)), Some(7));
    }

    #[test]
    fn quantize_down_clamps_to_lowest() {
        let t = DvfsTable::pentium_m();
        assert_eq!(t.quantize_down(Hertz::from_mhz(100.0)), 0);
        assert_eq!(t.quantize_down(Hertz::from_mhz(1650.0)), 5);
    }

    #[test]
    fn nearest_index_rounds_both_ways() {
        let t = DvfsTable::pentium_m();
        assert_eq!(t.nearest_index(Hertz::from_mhz(690.0)), 0);
        assert_eq!(t.nearest_index(Hertz::from_mhz(710.0)), 1);
        assert_eq!(t.nearest_index(Hertz::from_mhz(5000.0)), 7);
    }

    #[test]
    fn transition_cost_only_on_change() {
        let t = DvfsTable::pentium_m();
        let iv = Seconds::from_ms(0.5);
        assert_eq!(t.transition_cost(3, 3, iv), Seconds::ZERO);
        let c = t.transition_cost(3, 4, iv);
        assert!((c.value() - 0.005 * iv.value()).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_table_rejected() {
        DvfsTable::new(
            vec![
                OperatingPoint::new(Volts::new(1.1), Hertz::from_mhz(1000.0)),
                OperatingPoint::new(Volts::new(1.0), Hertz::from_mhz(800.0)),
            ],
            0.005,
        );
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_table_rejected() {
        DvfsTable::new(vec![], 0.005);
    }

    #[test]
    fn linear_table_spans_the_requested_range() {
        let t = DvfsTable::linear(
            5,
            Hertz::from_mhz(600.0),
            Hertz::from_ghz(2.0),
            Volts::new(0.988),
            Volts::new(1.340),
        );
        assert_eq!(t.len(), 5);
        assert_eq!(t.min_point().frequency, Hertz::from_mhz(600.0));
        assert_eq!(t.max_point().frequency, Hertz::from_ghz(2.0));
        assert!((t.point(2).voltage.value() - 1.164).abs() < 1e-9);
    }

    #[test]
    fn envelope_matches_pentium_m_endpoints() {
        let e = DvfsTable::pentium_m_envelope(16);
        let p = DvfsTable::pentium_m();
        assert_eq!(e.min_point().frequency, p.min_point().frequency);
        assert_eq!(e.max_point().frequency, p.max_point().frequency);
        assert_eq!(e.min_point().voltage, p.min_point().voltage);
        assert_eq!(e.max_point().voltage, p.max_point().voltage);
        assert_eq!(e.len(), 16);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linear_table_needs_two_points() {
        DvfsTable::linear(
            1,
            Hertz::from_mhz(600.0),
            Hertz::from_ghz(2.0),
            Volts::new(1.0),
            Volts::new(1.3),
        );
    }

    #[test]
    fn v2f_is_v_squared_times_f() {
        let p = OperatingPoint::new(Volts::new(2.0), Hertz::new(10.0));
        assert!((p.v2f() - 40.0).abs() < 1e-12);
    }
}
