//! Energy and energy-per-instruction accounting.
//!
//! The variation-aware GPM policy (§IV-B) steers on *energy per
//! (non-spin) instruction*: each interval it "counts the number of non-spin
//! instructions retired and … approximates the energy consumed by the
//! voltage frequency island over the interval, allowing the computation of
//! energy per instruction". [`EnergyAccount`] performs that bookkeeping.

use cpm_units::{Joules, Seconds, Watts};

/// Accumulates energy and instruction counts over control intervals.
#[derive(Debug, Clone, Default)]
pub struct EnergyAccount {
    total_energy: Joules,
    total_instructions: f64,
    total_time: Seconds,
    // Most recent interval, for EPI-delta policies.
    last_energy: Joules,
    last_instructions: f64,
}

impl EnergyAccount {
    /// A fresh, empty account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one interval: average power `power` sustained for `dt`,
    /// retiring `instructions` instructions.
    pub fn record_interval(&mut self, power: Watts, dt: Seconds, instructions: f64) {
        assert!(instructions >= 0.0, "instruction count cannot be negative");
        assert!(dt.value() >= 0.0, "interval length cannot be negative");
        let e = power * dt;
        self.total_energy += e;
        self.total_instructions += instructions;
        self.total_time += dt;
        self.last_energy = e;
        self.last_instructions = instructions;
    }

    /// Total energy consumed so far.
    pub fn total_energy(&self) -> Joules {
        self.total_energy
    }

    /// Total instructions retired so far.
    pub fn total_instructions(&self) -> f64 {
        self.total_instructions
    }

    /// Total wall-clock time covered.
    pub fn total_time(&self) -> Seconds {
        self.total_time
    }

    /// Cumulative energy per instruction, in joules; `None` before any
    /// instruction retires.
    pub fn energy_per_instruction(&self) -> Option<Joules> {
        (self.total_instructions > 0.0).then(|| self.total_energy / self.total_instructions)
    }

    /// Energy per instruction over the most recent interval only — the
    /// signal the §IV-B greedy policy compares between intervals.
    pub fn last_interval_epi(&self) -> Option<Joules> {
        (self.last_instructions > 0.0).then(|| self.last_energy / self.last_instructions)
    }

    /// Average power over all recorded time.
    pub fn average_power(&self) -> Option<Watts> {
        (self.total_time.value() > 0.0).then(|| self.total_energy / self.total_time)
    }

    /// Throughput in billions of instructions per second (the paper's BIPS
    /// metric) over all recorded time.
    pub fn bips(&self) -> Option<f64> {
        (self.total_time.value() > 0.0)
            .then(|| self.total_instructions / self.total_time.value() / 1.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_energy_and_instructions() {
        let mut acc = EnergyAccount::new();
        acc.record_interval(Watts::new(10.0), Seconds::from_ms(1.0), 1.0e6);
        acc.record_interval(Watts::new(20.0), Seconds::from_ms(1.0), 3.0e6);
        assert!((acc.total_energy().value() - 0.03).abs() < 1e-12);
        assert_eq!(acc.total_instructions(), 4.0e6);
        assert!((acc.total_time().ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn epi_cumulative_vs_last_interval() {
        let mut acc = EnergyAccount::new();
        acc.record_interval(Watts::new(10.0), Seconds::new(1.0), 1.0e9);
        acc.record_interval(Watts::new(30.0), Seconds::new(1.0), 1.0e9);
        // Cumulative: 40 J / 2e9 instr = 20 nJ; last: 30 J / 1e9 = 30 nJ.
        assert!((acc.energy_per_instruction().unwrap().value() - 20.0e-9).abs() < 1e-15);
        assert!((acc.last_interval_epi().unwrap().value() - 30.0e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_account_yields_none() {
        let acc = EnergyAccount::new();
        assert!(acc.energy_per_instruction().is_none());
        assert!(acc.last_interval_epi().is_none());
        assert!(acc.average_power().is_none());
        assert!(acc.bips().is_none());
    }

    #[test]
    fn average_power_and_bips() {
        let mut acc = EnergyAccount::new();
        acc.record_interval(Watts::new(50.0), Seconds::new(2.0), 4.0e9);
        assert!((acc.average_power().unwrap().value() - 50.0).abs() < 1e-12);
        assert!((acc.bips().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_instruction_interval_keeps_epi_defined_cumulatively() {
        let mut acc = EnergyAccount::new();
        acc.record_interval(Watts::new(10.0), Seconds::new(1.0), 1.0e9);
        acc.record_interval(Watts::new(10.0), Seconds::new(1.0), 0.0);
        assert!(acc.energy_per_instruction().is_some());
        assert!(acc.last_interval_epi().is_none());
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative_instruction_count() {
        EnergyAccount::new().record_interval(Watts::new(1.0), Seconds::new(1.0), -5.0);
    }
}
