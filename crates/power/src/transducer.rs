//! The PIC's sensor/transducer: utilization → power.
//!
//! "In real CMP systems it would be hard to measure power of individual
//! islands directly. Hence, we need to look for other observable parameters
//! like processor utilization … we need a model establishing the
//! relationship between processor utilization and power" (§II-D). The paper
//! fits `P = k₀·U + k₁` per workload by linear regression (Fig. 6, avg
//! R² ≈ 0.96).
//!
//! [`UtilizationPowerTransducer`] is that model: it is *calibrated* online
//! from `(utilization, power)` observations gathered during a profiling
//! window (in a real system these would come from a one-time platform
//! characterization), then *queried* at control time with utilization alone.
//!
//! Substrate note: the paper's linear fit is kept — it is what Fig. 6
//! reports ([`UtilizationPowerTransducer::fit`]) — but the *sensing* path
//! uses a quadratic fit. Our DVFS table spans 0.99–1.34 V, which makes
//! P(U) visibly convex (P ∝ V²·f while capacity utilization ∝ f); a purely
//! linear sensor under-reads at the top of the range and the controller
//! would sit above its target at high budgets. The quadratic restores the
//! sensor fidelity (R² ≥ 0.96) the paper observed on its flatter-voltage
//! platform. See DESIGN.md.

use cpm_control::sysid::{LinearFit, LinearRegression, QuadraticFit, QuadraticRegression};
use cpm_units::{Ratio, Watts};

/// Online-calibrated utilization→power model for one island.
///
/// ```
/// use cpm_power::UtilizationPowerTransducer;
/// use cpm_units::{Ratio, Watts};
///
/// let mut sensor = UtilizationPowerTransducer::new();
/// for i in 0..=10 {
///     let u = i as f64 / 10.0;
///     sensor.observe(Ratio::new(u), Watts::new(30.0 * u + 5.0));
/// }
/// assert!(sensor.is_calibrated());
/// let p = sensor.estimate_power(Ratio::new(0.5));
/// assert!((p.value() - 20.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtilizationPowerTransducer {
    regression: LinearRegression,
    quadratic: QuadraticRegression,
    fit: Option<LinearFit>,
    qfit: Option<QuadraticFit>,
}

impl UtilizationPowerTransducer {
    /// Creates an uncalibrated transducer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a transducer pre-seeded with fixed coefficients
    /// `P = k0·U + k1` (useful for tests and for replaying the paper's
    /// published fits).
    pub fn from_coefficients(k0: f64, k1: f64) -> Self {
        Self {
            regression: LinearRegression::new(),
            quadratic: QuadraticRegression::new(),
            fit: Some(LinearFit {
                slope: k0,
                intercept: k1,
                r_squared: 1.0,
                n: 0,
            }),
            qfit: Some(QuadraticFit {
                a: 0.0,
                b: k0,
                c: k1,
                r_squared: 1.0,
                n: 0,
            }),
        }
    }

    /// Feeds one calibration observation and refreshes both fits.
    pub fn observe(&mut self, utilization: Ratio, power: Watts) {
        self.regression.add(utilization.value(), power.value());
        self.quadratic.add(utilization.value(), power.value());
        if let Some(f) = self.regression.fit() {
            self.fit = Some(f);
        }
        if let Some(q) = self.quadratic.fit() {
            self.qfit = Some(q);
        }
    }

    /// True once enough observations exist to produce the sensing fit.
    pub fn is_calibrated(&self) -> bool {
        self.qfit.is_some()
    }

    /// Number of calibration observations absorbed.
    pub fn observations(&self) -> usize {
        self.regression.len()
    }

    /// The current *linear* fit — the `P = k₀·U + k₁` model Fig. 6 reports.
    pub fn fit(&self) -> Option<LinearFit> {
        self.fit
    }

    /// The current quadratic fit, which the sensing path uses.
    pub fn quadratic_fit(&self) -> Option<QuadraticFit> {
        self.qfit
    }

    /// Converts a measured utilization into estimated island power.
    /// Panics when uncalibrated — sensing before calibration is a logic
    /// error in the control loop, not a recoverable condition.
    pub fn estimate_power(&self, utilization: Ratio) -> Watts {
        let fit = self
            .qfit
            .as_ref()
            .expect("transducer queried before calibration");
        Watts::new(fit.predict(utilization.value()).max(0.0))
    }

    /// Inverse query: the utilization at which the island would draw
    /// `power`. Used by actuators to translate a power target into an
    /// operating-point search.
    pub fn utilization_for_power(&self, power: Watts) -> Option<Ratio> {
        let fit = self.fit.as_ref()?;
        if fit.slope == 0.0 {
            return None;
        }
        Some(Ratio::new(fit.invert(power.value())))
    }

    /// Quality of the current fit (R²), if calibrated.
    pub fn r_squared(&self) -> Option<f64> {
        self.fit.as_ref().map(|f| f.r_squared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_from_clean_linear_data() {
        let mut t = UtilizationPowerTransducer::new();
        assert!(!t.is_calibrated());
        // P = 30·U + 5 (a 2-core island: ~35 W busy, 5 W idle floor).
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            t.observe(Ratio::new(u), Watts::new(30.0 * u + 5.0));
        }
        assert!(t.is_calibrated());
        let f = t.fit().unwrap();
        assert!((f.slope - 30.0).abs() < 1e-9);
        assert!((f.intercept - 5.0).abs() < 1e-9);
        assert!((t.r_squared().unwrap() - 1.0).abs() < 1e-12);
        let p = t.estimate_power(Ratio::new(0.5));
        assert!((p.value() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_data_gives_high_r2_like_fig6() {
        let mut t = UtilizationPowerTransducer::new();
        for i in 0..200usize {
            let u = (i % 100) as f64 / 100.0;
            // ±4 % deterministic wobble mimics phase noise.
            let wobble = (((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64
                / (1u64 << 24) as f64
                - 0.5)
                * 2.0;
            t.observe(Ratio::new(u), Watts::new(30.0 * u + 5.0 + wobble));
        }
        let r2 = t.r_squared().unwrap();
        assert!(r2 > 0.93 && r2 <= 1.0, "R² = {r2}");
    }

    #[test]
    fn estimate_clamps_to_non_negative() {
        let t = UtilizationPowerTransducer::from_coefficients(10.0, -2.0);
        assert_eq!(t.estimate_power(Ratio::ZERO), Watts::ZERO);
    }

    #[test]
    fn inverse_query_roundtrips() {
        let t = UtilizationPowerTransducer::from_coefficients(30.0, 5.0);
        let u = t.utilization_for_power(Watts::new(20.0)).unwrap();
        assert!((u.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flat_fit_has_no_inverse() {
        let t = UtilizationPowerTransducer::from_coefficients(0.0, 5.0);
        assert!(t.utilization_for_power(Watts::new(5.0)).is_none());
    }

    #[test]
    #[should_panic(expected = "before calibration")]
    fn query_before_calibration_panics() {
        UtilizationPowerTransducer::new().estimate_power(Ratio::new(0.5));
    }

    #[test]
    fn single_point_is_not_enough() {
        let mut t = UtilizationPowerTransducer::new();
        t.observe(Ratio::new(0.5), Watts::new(20.0));
        assert!(!t.is_calibrated());
        assert_eq!(t.observations(), 1);
    }
}
