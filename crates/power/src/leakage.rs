//! HotLeakage-style static (leakage) power.
//!
//! HotLeakage computes subthreshold leakage as a strong exponential function
//! of temperature and supply voltage. We use the standard reduced form
//!
//! ```text
//! P_leak(V, T) = m · P₀ · (V/V₀) · exp(β_V·(V − V₀)) · (T/T₀)² · exp(β_T·(T − T₀))
//! ```
//!
//! anchored at the nominal point `(V₀, T₀)`, where `m` is the per-island
//! process-variation multiplier of §IV-B. The coefficients are chosen so
//! leakage is ≈ 20 % of total core power at the 90 nm nominal point and
//! roughly doubles over a 40 °C rise — both standard figures for the
//! technology node the paper models.

use cpm_math::{exp_det, exp_lanes};
use cpm_units::{Celsius, Volts, Watts};

/// Static-power model anchored at a nominal voltage/temperature point.
#[derive(Debug, Clone)]
pub struct LeakageModel {
    /// Leakage at `(v_nominal, t_nominal)` with multiplier 1.
    p_nominal: Watts,
    /// Anchor voltage.
    v_nominal: Volts,
    /// Anchor temperature.
    t_nominal: Celsius,
    /// Voltage sensitivity (1/V) — DIBL-driven exponential dependence.
    beta_v: f64,
    /// Temperature sensitivity (1/°C) in the exponential term.
    beta_t: f64,
}

impl LeakageModel {
    /// Die temperature used when quoting "maximum chip power" (hot, fully
    /// loaded die).
    pub const HOT_REFERENCE: Celsius = Celsius::new(85.0);

    /// The calibration used by the reproduction: 1.8 W at 1.34 V / 60 °C,
    /// doubling roughly every 40 °C, with a moderate DIBL slope.
    pub fn paper_default() -> Self {
        Self::new(
            Watts::new(1.8),
            Volts::new(1.34),
            Celsius::new(60.0),
            1.2,
            0.0125,
        )
    }

    /// Creates a model anchored at `(v_nominal, t_nominal)`.
    pub fn new(
        p_nominal: Watts,
        v_nominal: Volts,
        t_nominal: Celsius,
        beta_v: f64,
        beta_t: f64,
    ) -> Self {
        assert!(p_nominal.value() > 0.0, "nominal leakage must be positive");
        assert!(v_nominal.value() > 0.0);
        Self {
            p_nominal,
            v_nominal,
            t_nominal,
            beta_v,
            beta_t,
        }
    }

    /// Leakage power at supply `v`, die temperature `t`, with
    /// process-variation multiplier `multiplier` (1.0 = nominal silicon;
    /// the paper's §IV-B islands use 1.2×, 1.5×, 2.0×).
    pub fn power(&self, v: Volts, t: Celsius, multiplier: f64) -> Watts {
        self.power_with_v_term(self.v_term(v), t, multiplier)
    }

    /// The voltage factor `(V/V₀)·exp(β_V·(V − V₀))` of the leakage model.
    /// It depends only on the supply voltage, which is island-constant
    /// within a PIC interval, so the chip stepper hoists it out of the
    /// per-core loop; `power_with_v_term(v_term(v), …)` is bit-identical
    /// to `power(v, …)`.
    #[inline]
    pub fn v_term(&self, v: Volts) -> f64 {
        let vr = v.value() / self.v_nominal.value();
        vr * exp_det((v.value() - self.v_nominal.value()) * self.beta_v)
    }

    /// Leakage power with the voltage factor precomputed by [`Self::v_term`].
    pub fn power_with_v_term(&self, v_term: f64, t: Celsius, multiplier: f64) -> Watts {
        assert!(multiplier > 0.0, "variation multiplier must be positive");
        // Temperature in Kelvin for the quadratic prefactor; the anchor
        // enters as a reciprocal so the hot per-core expression — and its
        // lane twin — multiplies instead of divides.
        let tk = t.value() + 273.15;
        let inv_tk0 = 1.0 / (self.t_nominal.value() + 273.15);
        let t_term =
            (tk * inv_tk0).powi(2) * exp_det((t.value() - self.t_nominal.value()) * self.beta_t);
        self.p_nominal * (multiplier * v_term * t_term)
    }

    /// The libm-backed accuracy twin of [`Self::power_with_v_term`]: the
    /// same expression with the host `exp`. Exists so the accuracy suite
    /// can bound the deterministic kernel against a libm build of the
    /// leakage model — never used by the simulator; its direct libm call
    /// carries the one `math-scope` lint waiver in this crate.
    pub fn power_with_v_term_reference(&self, v_term: f64, t: Celsius, multiplier: f64) -> Watts {
        assert!(multiplier > 0.0, "variation multiplier must be positive");
        let tk = t.value() + 273.15;
        let inv_tk0 = 1.0 / (self.t_nominal.value() + 273.15);
        let t_term =
            (tk * inv_tk0).powi(2) * ((t.value() - self.t_nominal.value()) * self.beta_t).exp();
        self.p_nominal * (multiplier * v_term * t_term)
    }

    /// Lane-chunked [`Self::power_with_v_term`]: leakage for `L` cores
    /// sharing one island's hoisted voltage factor and variation
    /// multiplier, with temperatures given in °C.
    ///
    /// Each lane evaluates the token-identical scalar expression, so
    /// `out[l]` is bit-identical to the scalar call on lane `l` — and
    /// with `exp` now the branch-free `cpm-math` kernel, every pass in
    /// here vectorizes, transcendental included.
    pub fn power_with_v_term_lanes<const L: usize>(
        &self,
        v_term: f64,
        temps_deg: &[f64; L],
        multiplier: f64,
        out: &mut [f64; L],
    ) {
        assert!(multiplier > 0.0, "variation multiplier must be positive");
        let t_nom = self.t_nominal.value();
        let inv_tk0 = 1.0 / (t_nom + 273.15);
        let p_nom = self.p_nominal.value();
        // Vector pass: the quadratic prefactor and the exp argument.
        // Evaluating each into a temp is the same rounding sequence as
        // the fused scalar expression, so the split is bit-identical.
        let mut quad = [0.0; L];
        let mut e_arg = [0.0; L];
        for l in 0..L {
            let tk = temps_deg[l] + 273.15;
            quad[l] = (tk * inv_tk0).powi(2);
            e_arg[l] = (temps_deg[l] - t_nom) * self.beta_t;
        }
        // Vector pass: the exp kernel over all lanes at once.
        let mut e = [0.0; L];
        exp_lanes(&e_arg, &mut e);
        for l in 0..L {
            let t_term = quad[l] * e[l];
            out[l] = p_nom * (multiplier * v_term * t_term);
        }
    }

    /// The anchor (nominal) leakage value.
    pub fn nominal_power(&self) -> Watts {
        self.p_nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LeakageModel {
        LeakageModel::paper_default()
    }

    #[test]
    fn anchored_at_nominal_point() {
        let m = model();
        let p = m.power(Volts::new(1.34), Celsius::new(60.0), 1.0);
        assert!((p.value() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn roughly_doubles_over_40_degrees() {
        let m = model();
        let cold = m.power(Volts::new(1.34), Celsius::new(60.0), 1.0);
        let hot = m.power(Volts::new(1.34), Celsius::new(100.0), 1.0);
        let ratio = hot.value() / cold.value();
        assert!(ratio > 1.7 && ratio < 2.3, "40°C ratio {ratio}");
    }

    #[test]
    fn decreases_with_lower_voltage() {
        let m = model();
        let hi = m.power(Volts::new(1.34), Celsius::new(60.0), 1.0);
        let lo = m.power(Volts::new(0.988), Celsius::new(60.0), 1.0);
        assert!(lo < hi);
        // DVFS down to the lowest point should cut leakage substantially
        // (voltage ratio × exponential DIBL factor).
        assert!(lo.value() / hi.value() < 0.55);
    }

    #[test]
    fn multiplier_is_linear() {
        let m = model();
        let base = m.power(Volts::new(1.2), Celsius::new(70.0), 1.0);
        let double = m.power(Volts::new(1.2), Celsius::new(70.0), 2.0);
        assert!((double.value() - 2.0 * base.value()).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_temperature() {
        let m = model();
        let mut prev = 0.0;
        for t in (30..=110).step_by(10) {
            let p = m
                .power(Volts::new(1.1), Celsius::new(t as f64), 1.0)
                .value();
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn rejects_non_positive_multiplier() {
        model().power(Volts::new(1.0), Celsius::new(50.0), 0.0);
    }

    #[test]
    fn deterministic_kernel_tracks_libm_reference() {
        // The exp kernel is within 1 ulp of libm, so the full leakage
        // expression must agree with its libm twin to near machine
        // precision at every reachable (V, T, m) point.
        let m = model();
        for vi in 0..=10 {
            let v = Volts::new(0.9 + 0.05 * vi as f64);
            let vt = m.v_term(v);
            for t in (30..=110).step_by(5) {
                for mult in [1.0, 1.2, 1.5, 2.0] {
                    let det = m.power_with_v_term(vt, Celsius::new(t as f64), mult);
                    let lib = m.power_with_v_term_reference(vt, Celsius::new(t as f64), mult);
                    let rel = (det.value() - lib.value()).abs() / lib.value();
                    assert!(rel < 1e-14, "V={v:?} T={t} m={mult}: rel err {rel}");
                }
            }
        }
    }
}
