//! Wattch-style dynamic (switching) power.
//!
//! Wattch models each micro-architectural unit as an effective switched
//! capacitance and charges `αᵤ·Cᵤ·V²·f` per unit, where `αᵤ` is the unit's
//! activity factor. We keep the same structure with the paper's clock-gating
//! convention: "we used the linear clock-gating scheme with 10 % power
//! utilization for unused components" — an idle unit still draws
//! [`DynamicPowerModel::GATING_FLOOR`] of its active power (Wattch's `cc3`
//! conditional-clocking style).

use crate::dvfs::OperatingPoint;
use cpm_units::{Ratio, Watts};

/// The micro-architectural units charged by the model, mirroring Wattch's
/// breakdown for an out-of-order core (Table I: 4-wide fetch/issue/commit,
/// 128-entry register file, 64-entry schedulers, 16 KB L1s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Fetch + branch prediction + I-TLB.
    Fetch,
    /// Rename + dispatch.
    Rename,
    /// Issue window / schedulers.
    Issue,
    /// Integer + FP register files.
    RegFile,
    /// Integer and FP execution units.
    Execute,
    /// L1 instruction cache.
    L1I,
    /// L1 data cache + D-TLB + LSQ.
    L1D,
    /// Clock distribution tree (never fully gated).
    ClockTree,
}

impl Unit {
    /// All units, in a fixed reporting order.
    pub const ALL: [Unit; 8] = [
        Unit::Fetch,
        Unit::Rename,
        Unit::Issue,
        Unit::RegFile,
        Unit::Execute,
        Unit::L1I,
        Unit::L1D,
        Unit::ClockTree,
    ];
}

/// Activity-based dynamic power: `P = Σᵤ Cᵤ·gate(αᵤ)·V²·f`.
#[derive(Debug, Clone)]
pub struct DynamicPowerModel {
    /// Effective capacitance per unit, in farads.
    capacitance: [f64; 8],
}

impl DynamicPowerModel {
    /// Idle units draw this fraction of their active power (paper §III /
    /// Wattch cc3 linear clock gating).
    pub const GATING_FLOOR: f64 = 0.10;

    /// Relative capacitance weights per unit (sum = 1.0). The split follows
    /// Wattch's published breakdown for a 4-wide OoO core: the clock tree
    /// and the wakeup/issue logic dominate.
    const WEIGHTS: [f64; 8] = [
        0.10, // Fetch
        0.06, // Rename
        0.15, // Issue
        0.08, // RegFile
        0.18, // Execute
        0.10, // L1I
        0.13, // L1D
        0.20, // ClockTree
    ];

    /// Total effective switched capacitance calibrated so one core peaks at
    /// ≈ 9 W dynamic at 2.0 GHz / 1.34 V (90 nm-class, Table I).
    const TOTAL_CAPACITANCE: f64 = 2.5e-9;

    /// The calibration used by the reproduction (see crate docs).
    pub fn paper_default() -> Self {
        Self::with_total_capacitance(Self::TOTAL_CAPACITANCE)
    }

    /// A model with a custom total effective capacitance, split across
    /// units by the standard weights.
    pub fn with_total_capacitance(total_farads: f64) -> Self {
        assert!(total_farads > 0.0, "capacitance must be positive");
        let mut capacitance = [0.0; 8];
        for (c, w) in capacitance.iter_mut().zip(Self::WEIGHTS) {
            *c = total_farads * w;
        }
        Self { capacitance }
    }

    /// Gated activity: a unit at activity `α` draws
    /// `floor + (1-floor)·α` of its peak power.
    #[inline]
    fn gate(activity: f64) -> f64 {
        Self::GATING_FLOOR + (1.0 - Self::GATING_FLOOR) * activity.clamp(0.0, 1.0)
    }

    /// Dynamic power with per-unit activity factors (indexed as
    /// [`Unit::ALL`]). The clock tree's activity is pinned at 1 whenever the
    /// core is clocked at all.
    pub fn power_per_unit(&self, op: OperatingPoint, activities: &[Ratio; 8]) -> [Watts; 8] {
        let v2f = op.v2f();
        let mut out = [Watts::ZERO; 8];
        for (i, (c, a)) in self.capacitance.iter().zip(activities).enumerate() {
            let act = if Unit::ALL[i] == Unit::ClockTree {
                1.0
            } else {
                a.value()
            };
            // `c · V²f` first: that product is activity-independent, so
            // the island-hoisted lane path can compute it once per unit
            // instead of once per core (bit-identical only if the scalar
            // paths associate the same way).
            out[i] = Watts::new(c * v2f * Self::gate(act));
        }
        out
    }

    /// Dynamic power with a single average activity factor applied to every
    /// functional unit (the common case in the interval simulator, where
    /// activity tracks IPC).
    pub fn power(&self, op: OperatingPoint, activity: Ratio) -> Watts {
        self.power_with_v2f(op.v2f(), activity)
    }

    /// Single-activity dynamic power with the island-constant `V²·f`
    /// product hoisted out by the caller. The gated activity is the same
    /// for every unit except the clock tree, so both factors are computed
    /// once; the per-unit products and their summation order match
    /// [`Self::power_per_unit`] exactly, keeping the result bit-identical
    /// to [`Self::power`].
    pub fn power_with_v2f(&self, v2f: f64, activity: Ratio) -> Watts {
        let g = Self::gate(activity.value());
        let g_clock = Self::gate(1.0);
        let mut total = 0.0;
        for (i, c) in self.capacitance.iter().enumerate() {
            let g_u = if Unit::ALL[i] == Unit::ClockTree {
                g_clock
            } else {
                g
            };
            total += c * v2f * g_u;
        }
        Watts::new(total)
    }

    /// Lane-chunked [`Self::power_with_v2f`]: gated dynamic power for `L`
    /// cores sharing one island's hoisted `V²·f` product, with activities
    /// given as plain (already clamped or clampable) values.
    ///
    /// The unit loop is interchanged to the outside so each pass over the
    /// lanes is elementwise (LLVM vectorizes it), but every lane's
    /// accumulator still receives its 8 unit contributions in exactly the
    /// order [`Self::power_with_v2f`] adds them — interchange moves work
    /// between lanes, never reassociates within one — so `out[l]` is
    /// bit-identical to the scalar call on lane `l`.
    pub fn power_with_v2f_lanes<const L: usize>(
        &self,
        v2f: f64,
        activities: &[f64; L],
        out: &mut [f64; L],
    ) {
        let g_clock = Self::gate(1.0);
        let mut g = [0.0; L];
        for l in 0..L {
            g[l] = Self::gate(activities[l]);
        }
        let mut total = [0.0; L];
        for (i, c) in self.capacitance.iter().enumerate() {
            // The unit's `c · V²f` product is lane-invariant — computed
            // once here, exactly as the scalar path associates it.
            let cv = c * v2f;
            if Unit::ALL[i] == Unit::ClockTree {
                let ct = cv * g_clock;
                for t in total.iter_mut() {
                    *t += ct;
                }
            } else {
                for l in 0..L {
                    total[l] += cv * g[l];
                }
            }
        }
        *out = total;
    }

    /// Peak dynamic power at `op` (all activities = 1).
    pub fn peak_power(&self, op: OperatingPoint) -> Watts {
        self.power(op, Ratio::ONE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::DvfsTable;

    fn top() -> OperatingPoint {
        DvfsTable::pentium_m().max_point()
    }

    #[test]
    fn peak_power_matches_calibration() {
        let m = DynamicPowerModel::paper_default();
        let p = m.peak_power(top());
        // 2.5 nF · 1.34² · 2 GHz = 8.978 W
        assert!((p.value() - 8.978).abs() < 0.01, "peak {p}");
    }

    #[test]
    fn power_is_linear_in_activity() {
        // With V, f fixed: P(α) = base + slope·α — the linearity behind the
        // paper's Fig. 6 transducer.
        let m = DynamicPowerModel::paper_default();
        let p0 = m.power(top(), Ratio::ZERO).value();
        let p5 = m.power(top(), Ratio::new(0.5)).value();
        let p1 = m.power(top(), Ratio::ONE).value();
        assert!((p5 - 0.5 * (p0 + p1)).abs() < 1e-9);
        assert!(p0 > 0.0, "gating floor keeps idle power nonzero");
    }

    #[test]
    fn idle_power_is_gating_floor_plus_clock_tree() {
        let m = DynamicPowerModel::paper_default();
        let p0 = m.power(top(), Ratio::ZERO).value();
        let peak = m.peak_power(top()).value();
        // Idle = 10 % of all units + 90 % of the clock tree's 20 % share.
        let expect = peak * (0.10 + 0.90 * 0.20);
        assert!((p0 - expect).abs() < 1e-9);
    }

    #[test]
    fn cubic_scaling_across_dvfs_range() {
        // P ∝ V²f; across the Pentium-M table from 600 MHz to 2 GHz the
        // ratio should be (1.34² · 2000) / (0.988² · 600) ≈ 6.13 — the
        // super-linear (≈ f³ under scaled voltage) relation the GPM policy
        // assumes in Eq. 1.
        let m = DynamicPowerModel::paper_default();
        let t = DvfsTable::pentium_m();
        let ratio = m.peak_power(t.max_point()).value() / m.peak_power(t.min_point()).value();
        assert!((ratio - 6.13).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn per_unit_breakdown_sums_to_total() {
        let m = DynamicPowerModel::paper_default();
        let acts = [Ratio::new(0.6); 8];
        let parts = m.power_per_unit(top(), &acts);
        let total: Watts = parts.into_iter().sum();
        assert!((total.value() - m.power(top(), Ratio::new(0.6)).value()).abs() < 1e-12);
    }

    #[test]
    fn clock_tree_is_never_gated_below_full() {
        let m = DynamicPowerModel::paper_default();
        let idle = [Ratio::ZERO; 8];
        let parts = m.power_per_unit(top(), &idle);
        let clock = parts[7].value();
        let peak_clock = m.power_per_unit(top(), &[Ratio::ONE; 8])[7].value();
        assert!((clock - peak_clock).abs() < 1e-12);
    }

    #[test]
    fn activity_clamped_to_unit_interval() {
        let m = DynamicPowerModel::paper_default();
        assert_eq!(m.power(top(), Ratio::new(1.7)), m.power(top(), Ratio::ONE));
        assert_eq!(
            m.power(top(), Ratio::new(-0.3)),
            m.power(top(), Ratio::ZERO)
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_capacitance_rejected() {
        DynamicPowerModel::with_total_capacitance(0.0);
    }
}
