//! Power modeling substrate: everything the paper obtained from Wattch
//! (dynamic power), HotLeakage (static power), and the Pentium-M datasheet
//! (DVFS operating points), rebuilt as analytic models.
//!
//! * [`dvfs`] — discrete V/F operating points (8 pairs, 600 MHz–2.0 GHz)
//!   with quantization and transition-overhead bookkeeping,
//! * [`dynamic`] — activity-based per-unit dynamic power `Σ αᵤ·Cᵤ·V²·f`
//!   with conditional clock gating (Wattch's cc3 style: idle units draw a
//!   fixed floor fraction),
//! * [`leakage`] — voltage- and temperature-sensitive static power with
//!   process-variation multipliers (HotLeakage's role),
//! * [`transducer`] — the PIC's sensor: an online linear regression from
//!   observed CPU utilization to island power (`P = k₀·U + k₁`, paper
//!   Fig. 6),
//! * [`variation`] — per-island leakage variation maps (§IV-B),
//! * [`energy`] — energy/EPI accounting used by the variation-aware policy.

pub mod dvfs;
pub mod dynamic;
pub mod energy;
pub mod leakage;
pub mod transducer;
pub mod variation;

pub use dvfs::{DvfsTable, OperatingPoint};
pub use dynamic::DynamicPowerModel;
pub use energy::EnergyAccount;
pub use leakage::LeakageModel;
pub use transducer::UtilizationPowerTransducer;
pub use variation::VariationMap;

use cpm_units::{Celsius, Ratio, Watts};

/// The island-constant factors of the per-core power model, hoisted once
/// per island per step by the chip stepper: every core in an island shares
/// one operating point, so the dynamic `V²·f` product and the leakage
/// voltage factor are the same for all of them. Both are computed by the
/// exact expressions the unhoisted paths use, so stepping through
/// [`CorePowerModel::total_power_with_terms`] is bit-identical to calling
/// [`CorePowerModel::total_power`] per core.
#[derive(Debug, Clone, Copy)]
pub struct IslandPowerTerms {
    /// `op.v2f()` — the dynamic-power voltage/frequency product.
    pub v2f: f64,
    /// [`LeakageModel::v_term`] at the island's supply voltage.
    pub leak_v_term: f64,
}

/// Complete per-core power model: dynamic + leakage.
#[derive(Debug, Clone)]
pub struct CorePowerModel {
    /// Dynamic (switching) power component.
    pub dynamic: DynamicPowerModel,
    /// Static (leakage) power component.
    pub leakage: LeakageModel,
}

impl CorePowerModel {
    /// The calibration used throughout the reproduction: a 90 nm-class core
    /// peaking at ≈ 9 W dynamic + ≈ 2.4 W leakage at the top operating
    /// point, matching the paper's Table I technology point.
    pub fn paper_default() -> Self {
        Self {
            dynamic: DynamicPowerModel::paper_default(),
            leakage: LeakageModel::paper_default(),
        }
    }

    /// Total core power at operating point `op`, with average activity
    /// `activity`, die temperature `temp`, and leakage process-variation
    /// multiplier `leak_mult`.
    pub fn total_power(
        &self,
        op: OperatingPoint,
        activity: Ratio,
        temp: Celsius,
        leak_mult: f64,
    ) -> Watts {
        self.total_power_with_terms(self.island_terms(op), activity, temp, leak_mult)
    }

    /// Precomputes the island-constant factors for `op` (see
    /// [`IslandPowerTerms`]).
    #[inline]
    pub fn island_terms(&self, op: OperatingPoint) -> IslandPowerTerms {
        IslandPowerTerms {
            v2f: op.v2f(),
            leak_v_term: self.leakage.v_term(op.voltage),
        }
    }

    /// [`Self::total_power`] with the island-constant factors hoisted out;
    /// bit-identical given `terms = island_terms(op)`.
    pub fn total_power_with_terms(
        &self,
        terms: IslandPowerTerms,
        activity: Ratio,
        temp: Celsius,
        leak_mult: f64,
    ) -> Watts {
        self.dynamic.power_with_v2f(terms.v2f, activity)
            + self
                .leakage
                .power_with_v_term(terms.leak_v_term, temp, leak_mult)
    }

    /// Lane-chunked [`Self::total_power_with_terms`]: total power for `L`
    /// cores of one island (shared hoisted terms and leakage multiplier),
    /// with activities as plain clamped values and temperatures in °C.
    ///
    /// Composes the dynamic lane pass
    /// ([`DynamicPowerModel::power_with_v2f_lanes`]) with the leakage lane
    /// pass ([`LeakageModel::power_with_v_term_lanes`]) and sums per lane
    /// in the scalar order (dynamic + leakage), so `out[l]` is
    /// bit-identical to the scalar call on lane `l`.
    pub fn total_power_with_terms_lanes<const L: usize>(
        &self,
        terms: IslandPowerTerms,
        activities: &[f64; L],
        temps_deg: &[f64; L],
        leak_mult: f64,
        out: &mut [Watts; L],
    ) {
        let mut dynamic = [0.0; L];
        self.dynamic
            .power_with_v2f_lanes(terms.v2f, activities, &mut dynamic);
        let mut leak = [0.0; L];
        self.leakage
            .power_with_v_term_lanes(terms.leak_v_term, temps_deg, leak_mult, &mut leak);
        for l in 0..L {
            out[l] = Watts::new(dynamic[l] + leak[l]);
        }
    }

    /// The maximum power this core can draw: top operating point, full
    /// activity, hottest plausible die temperature, given variation
    /// multiplier. This is the per-core contribution to the "maximum chip
    /// power" basis in which the paper expresses all percentages.
    pub fn max_power(&self, table: &DvfsTable, leak_mult: f64) -> Watts {
        self.total_power(
            table.max_point(),
            Ratio::ONE,
            LeakageModel::HOT_REFERENCE,
            leak_mult,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_core_peaks_near_11_5_watts() {
        let m = CorePowerModel::paper_default();
        let p = m.max_power(&DvfsTable::pentium_m(), 1.0);
        assert!(
            p.value() > 10.0 && p.value() < 13.0,
            "max core power {p} outside the calibrated 10–13 W band"
        );
    }

    #[test]
    fn power_monotone_in_activity_and_frequency() {
        let m = CorePowerModel::paper_default();
        let t = DvfsTable::pentium_m();
        let temp = Celsius::new(60.0);
        let lo = m.total_power(t.point(0), Ratio::new(0.4), temp, 1.0);
        let hi_act = m.total_power(t.point(0), Ratio::new(0.9), temp, 1.0);
        let hi_freq = m.total_power(t.point(5), Ratio::new(0.4), temp, 1.0);
        assert!(hi_act > lo);
        assert!(hi_freq > lo);
    }

    #[test]
    fn lane_kernel_is_bit_identical_to_scalar_total_power() {
        // The vectorizable lane pass must reproduce the scalar path to the
        // last bit at every operating point, including out-of-range
        // activities (the gate clamp is part of the contract).
        let m = CorePowerModel::paper_default();
        let table = DvfsTable::pentium_m();
        for idx in 0..table.len() {
            let op = table.point(idx);
            let terms = m.island_terms(op);
            for leak_mult in [1.0, 1.2, 2.0] {
                let activities = [0.0, 0.17, 0.5, 0.93, 1.0, 1.4, -0.2, 0.61];
                let temps = [45.0, 52.5, 60.0, 71.25, 85.0, 96.0, 47.3, 64.8];
                let mut out = [Watts::ZERO; 8];
                m.total_power_with_terms_lanes(terms, &activities, &temps, leak_mult, &mut out);
                for l in 0..8 {
                    let scalar = m.total_power_with_terms(
                        terms,
                        Ratio::new(activities[l]),
                        Celsius::new(temps[l]),
                        leak_mult,
                    );
                    assert_eq!(
                        out[l].value().to_bits(),
                        scalar.value().to_bits(),
                        "lane {l} at op {idx}, mult {leak_mult}"
                    );
                }
            }
        }
    }

    #[test]
    fn variation_multiplier_only_scales_leakage() {
        let m = CorePowerModel::paper_default();
        let t = DvfsTable::pentium_m();
        let temp = Celsius::new(60.0);
        let base = m.total_power(t.point(3), Ratio::new(0.5), temp, 1.0);
        let leaky = m.total_power(t.point(3), Ratio::new(0.5), temp, 2.0);
        let leak = m.leakage.power(t.point(3).voltage, temp, 1.0);
        assert!((leaky.value() - base.value() - leak.value()).abs() < 1e-9);
    }
}
