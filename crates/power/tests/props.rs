//! Property-based tests for the power models, on the in-tree
//! `cpm_rng::check` harness.

use cpm_power::dvfs::DvfsTable;
use cpm_power::{DynamicPowerModel, LeakageModel, UtilizationPowerTransducer};
use cpm_rng::check;
use cpm_units::{Celsius, Hertz, Ratio, Volts, Watts};

#[test]
fn quantize_down_never_exceeds_the_request() {
    check::forall("quantize down", |rng| {
        let mhz = rng.f64_in(600.0, 2500.0);
        let t = DvfsTable::pentium_m();
        let idx = t.quantize_down(Hertz::from_mhz(mhz));
        assert!(t.point(idx).frequency.mhz() <= mhz + 1e-9);
    });
}

#[test]
fn nearest_index_minimizes_distance() {
    check::forall("nearest index", |rng| {
        let mhz = rng.f64_in(0.0, 3000.0);
        let t = DvfsTable::pentium_m();
        let idx = t.nearest_index(Hertz::from_mhz(mhz));
        let d = (t.point(idx).frequency.mhz() - mhz).abs();
        for p in t.points() {
            assert!(d <= (p.frequency.mhz() - mhz).abs() + 1e-9);
        }
    });
}

#[test]
fn dynamic_power_monotone_in_each_argument() {
    check::forall("dynamic power monotone", |rng| {
        let idx_a = rng.usize_in(0, 8);
        let idx_b = rng.usize_in(0, 8);
        let act_a = rng.next_f64();
        let act_b = rng.next_f64();
        let t = DvfsTable::pentium_m();
        let m = DynamicPowerModel::paper_default();
        let (lo_i, hi_i) = (idx_a.min(idx_b), idx_a.max(idx_b));
        let (lo_a, hi_a) = (act_a.min(act_b), act_a.max(act_b));
        // Monotone in operating point at fixed activity.
        assert!(
            m.power(t.point(lo_i), Ratio::new(lo_a)) <= m.power(t.point(hi_i), Ratio::new(lo_a))
        );
        // Monotone in activity at fixed operating point.
        assert!(
            m.power(t.point(lo_i), Ratio::new(lo_a)) <= m.power(t.point(lo_i), Ratio::new(hi_a))
        );
    });
}

#[test]
fn leakage_monotone_in_temperature_and_linear_in_multiplier() {
    check::forall("leakage monotone/linear", |rng| {
        let t_a = rng.f64_in(30.0, 110.0);
        let t_b = rng.f64_in(30.0, 110.0);
        let v = rng.f64_in(0.9, 1.4);
        let mult = rng.f64_in(0.5, 3.0);
        let m = LeakageModel::paper_default();
        let (lo, hi) = (t_a.min(t_b), t_a.max(t_b));
        assert!(
            m.power(Volts::new(v), Celsius::new(lo), 1.0)
                <= m.power(Volts::new(v), Celsius::new(hi), 1.0)
        );
        let base = m.power(Volts::new(v), Celsius::new(lo), 1.0);
        let scaled = m.power(Volts::new(v), Celsius::new(lo), mult);
        assert!((scaled.value() - base.value() * mult).abs() < 1e-9 * mult);
    });
}

#[test]
fn transducer_recovers_any_affine_model() {
    check::forall("transducer affine recovery", |rng| {
        let k0 = rng.f64_in(1.0, 50.0);
        let k1 = rng.f64_in(0.0, 20.0);
        let mut tr = UtilizationPowerTransducer::new();
        for i in 0..=20 {
            let u = i as f64 / 20.0;
            tr.observe(Ratio::new(u), Watts::new(k0 * u + k1));
        }
        let fit = tr.fit().unwrap();
        assert!((fit.slope - k0).abs() < 1e-6);
        assert!((fit.intercept - k1).abs() < 1e-6);
        // The quadratic sensing path agrees on affine data.
        let sensed = tr.estimate_power(Ratio::new(0.35));
        assert!((sensed.value() - (k0 * 0.35 + k1)).abs() < 1e-6);
    });
}

#[test]
fn transition_cost_is_zero_iff_same_point() {
    check::forall("transition cost", |rng| {
        let from = rng.usize_in(0, 8);
        let to = rng.usize_in(0, 8);
        let t = DvfsTable::pentium_m();
        let c = t.transition_cost(from, to, cpm_units::Seconds::from_ms(0.5));
        if from == to {
            assert_eq!(c, cpm_units::Seconds::ZERO);
        } else {
            assert!(c.value() > 0.0);
        }
    });
}
