//! Fixture-corpus tests: one must-fire and one must-not-fire case per
//! rule of the catalogue, plus waiver/stale-waiver mechanics.
//!
//! Fixtures live under `tests/fixtures/` (excluded from the workspace
//! scan) and are linted under a synthetic [`FileContext`] so each case
//! lands in the crate/role the rule targets.

use cpm_lint::rules::{classify, RuleId};
use cpm_lint::{lint_source, lint_sources, reconcile, waivers, Waiver};
use std::path::Path;

/// Reads a fixture file from the corpus.
fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()))
}

/// Lints a fixture as if it lived at `rel_path` in the workspace and
/// returns only the firings of `rule`.
fn firings(name: &str, rel_path: &str, rule: RuleId) -> Vec<usize> {
    let ctx = classify(rel_path);
    lint_source(&ctx, &fixture(name))
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

/// Every rule: (rule, fire fixture, clean fixture, virtual path, expected
/// minimum firings in the fire fixture).
const CASES: [(&str, RuleId, &str, &str, usize); 12] = [
    (
        "crates/sim/src/fx.rs",
        RuleId::HashIteration,
        "hash_iteration_fire.rs",
        "hash_iteration_clean.rs",
        3,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::Timing,
        "timing_fire.rs",
        "timing_clean.rs",
        2,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::EnvRead,
        "env_read_fire.rs",
        "env_read_clean.rs",
        1,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::ThreadSpawn,
        "thread_spawn_fire.rs",
        "thread_spawn_clean.rs",
        2,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::RngScope,
        "rng_scope_fire.rs",
        "rng_scope_clean.rs",
        3,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::Output,
        "output_fire.rs",
        "output_clean.rs",
        2,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::UnsafeFile,
        "unsafe_file_fire.rs",
        "unsafe_file_clean.rs",
        1,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::PanicBare,
        "panic_bare_fire.rs",
        "panic_bare_clean.rs",
        1,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::LockUnwrap,
        "lock_unwrap_fire.rs",
        "lock_unwrap_clean.rs",
        2,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::AllowJustify,
        "allow_justify_fire.rs",
        "allow_justify_clean.rs",
        1,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::SimdStable,
        "simd_stable_fire.rs",
        "simd_stable_clean.rs",
        4,
    ),
    (
        "crates/sim/src/fx.rs",
        RuleId::MathScope,
        "math_scope_fire.rs",
        "math_scope_clean.rs",
        4,
    ),
];

#[test]
fn every_rule_fires_on_its_fire_fixture() {
    for (path, rule, fire, _clean, min) in CASES {
        let hits = firings(fire, path, rule);
        assert!(
            hits.len() >= min,
            "{}: expected ≥{min} firings of {}, got {:?}",
            fire,
            rule.name(),
            hits
        );
    }
}

#[test]
fn no_rule_fires_on_its_clean_fixture() {
    for (path, rule, _fire, clean, _min) in CASES {
        let hits = firings(clean, path, rule);
        assert!(
            hits.is_empty(),
            "{}: {} must not fire, but fired at lines {:?}",
            clean,
            rule.name(),
            hits
        );
    }
}

#[test]
fn clean_fixtures_are_fully_clean() {
    // No *other* rule may fire on a clean fixture either — a clean case
    // that trips a neighbouring rule is a corpus bug.
    for (path, _rule, _fire, clean, _min) in CASES {
        let ctx = classify(path);
        let all = lint_source(&ctx, &fixture(clean));
        assert!(
            all.is_empty(),
            "{clean}: expected no violations at all, got {all:?}"
        );
    }
}

#[test]
fn exempt_crates_do_not_fire_determinism_rules() {
    // The same timing/env/thread sources are legal inside their home
    // crates: cpm-bench and cpm-runtime own wall-clock and env reads,
    // cpm-runtime owns thread creation.
    assert!(firings("timing_fire.rs", "crates/bench/src/fx.rs", RuleId::Timing).is_empty());
    assert!(firings("timing_fire.rs", "crates/runtime/src/fx.rs", RuleId::Timing).is_empty());
    assert!(firings(
        "env_read_fire.rs",
        "crates/runtime/src/fx.rs",
        RuleId::EnvRead
    )
    .is_empty());
    assert!(firings(
        "thread_spawn_fire.rs",
        "crates/runtime/src/fx.rs",
        RuleId::ThreadSpawn
    )
    .is_empty());
    // RNG construction is legal in the crates that own a seed-derivation
    // contract — including the fault-injection layer's per-effect child
    // streams (cpm-scenario).
    assert!(firings(
        "rng_scope_fire.rs",
        "crates/rng/src/fx.rs",
        RuleId::RngScope
    )
    .is_empty());
    assert!(firings(
        "rng_scope_fire.rs",
        "crates/scenario/src/fx.rs",
        RuleId::RngScope
    )
    .is_empty());
    assert!(firings(
        "rng_scope_fire.rs",
        "crates/workloads/src/fx.rs",
        RuleId::RngScope
    )
    .is_empty());
    assert!(firings(
        "rng_scope_fire.rs",
        "crates/control/src/fx.rs",
        RuleId::RngScope
    )
    .is_empty());
    // cpm-math is the sanctioned libm gateway: its accuracy twins and
    // `reference` module call the host libm by design.
    assert!(firings(
        "math_scope_fire.rs",
        "crates/math/src/fx.rs",
        RuleId::MathScope
    )
    .is_empty());
    // Printing is the bench harness's job, and binaries may print.
    assert!(firings("output_fire.rs", "crates/bench/src/fx.rs", RuleId::Output).is_empty());
    assert!(firings("output_fire.rs", "crates/lint/src/main.rs", RuleId::Output).is_empty());
    // unsafe is allowed only in the allow-listed file.
    assert!(firings(
        "unsafe_file_fire.rs",
        "crates/sim/tests/alloc_free.rs",
        RuleId::UnsafeFile
    )
    .is_empty());
}

#[test]
fn test_role_files_skip_library_only_rules() {
    // Integration tests may print, panic, seed RNGs, and unwrap locks.
    assert!(firings(
        "rng_scope_fire.rs",
        "crates/sim/tests/fx.rs",
        RuleId::RngScope
    )
    .is_empty());
    assert!(firings("output_fire.rs", "crates/sim/tests/fx.rs", RuleId::Output).is_empty());
    assert!(firings(
        "panic_bare_fire.rs",
        "crates/sim/tests/fx.rs",
        RuleId::PanicBare
    )
    .is_empty());
    assert!(firings(
        "lock_unwrap_fire.rs",
        "crates/sim/tests/fx.rs",
        RuleId::LockUnwrap
    )
    .is_empty());
    // Tests compare kernels against libm; direct calls are their job.
    assert!(firings(
        "math_scope_fire.rs",
        "crates/sim/tests/fx.rs",
        RuleId::MathScope
    )
    .is_empty());
}

/// Lints a set of fixtures as one mini-workspace (the interprocedural
/// passes need the whole file set) and filters to one rule's firings.
fn workspace_firings(files: &[(&str, &str)], rule: RuleId) -> Vec<(String, usize)> {
    let inputs: Vec<_> = files
        .iter()
        .map(|(fx, rel)| (classify(rel), fixture(fx)))
        .collect();
    lint_sources(&inputs)
        .into_iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.path, v.line))
        .collect()
}

#[test]
fn taint_flow_fires_on_the_laundered_chain() {
    let hits = workspace_firings(
        &[
            ("taint_sink.rs", "crates/obs/src/recorder.rs"),
            ("taint_flow_fire.rs", "crates/core/src/fx.rs"),
        ],
        RuleId::TaintFlow,
    );
    assert_eq!(hits.len(), 1, "one join, one diagnostic: {hits:?}");
    assert_eq!(hits[0].0, "crates/core/src/fx.rs");
    // The diagnostic carries both witness chains.
    let inputs = vec![
        (
            classify("crates/obs/src/recorder.rs"),
            fixture("taint_sink.rs"),
        ),
        (
            classify("crates/core/src/fx.rs"),
            fixture("taint_flow_fire.rs"),
        ),
    ];
    let v = lint_sources(&inputs)
        .into_iter()
        .find(|v| v.rule == RuleId::TaintFlow)
        .unwrap();
    assert!(v.message.contains("source chain"), "{}", v.message);
    assert!(v.message.contains("sink chain"), "{}", v.message);
    assert!(
        v.message.contains("std::time::Instant"),
        "the rename must be resolved back to Instant: {}",
        v.message
    );
}

#[test]
fn taint_flow_stays_quiet_on_the_deterministic_twin() {
    let hits = workspace_firings(
        &[
            ("taint_sink.rs", "crates/obs/src/recorder.rs"),
            ("taint_flow_clean.rs", "crates/core/src/fx.rs"),
        ],
        RuleId::TaintFlow,
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn dim_consistency_fires_on_mixed_dimensions() {
    let hits = workspace_firings(
        &[("dim_consistency_fire.rs", "crates/thermal/src/fx.rs")],
        RuleId::DimConsistency,
    );
    assert!(
        hits.len() >= 4,
        "expected the 4 seeded dimension errors, got {hits:?}"
    );
}

#[test]
fn dim_consistency_stays_quiet_on_the_consistent_twin() {
    let hits = workspace_firings(
        &[("dim_consistency_clean.rs", "crates/thermal/src/fx.rs")],
        RuleId::DimConsistency,
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn dim_consistency_is_scoped_to_the_physics_crates() {
    // The same mixed-dimension code in a non-physics crate stays quiet.
    let hits = workspace_firings(
        &[("dim_consistency_fire.rs", "crates/obs/src/fx.rs")],
        RuleId::DimConsistency,
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn waiver_suppresses_a_matching_violation() {
    let ctx = classify("crates/sim/src/fx.rs");
    let violations = lint_source(&ctx, &fixture("panic_bare_fire.rs"));
    assert!(!violations.is_empty());
    let waiver = Waiver {
        rule: RuleId::PanicBare,
        path: "crates/sim/src/fx.rs".to_string(),
        reason: "fixture exercises the waiver path".to_string(),
    };
    let report = reconcile(violations, std::slice::from_ref(&waiver));
    assert!(report.active.is_empty(), "waiver must suppress the firing");
    assert_eq!(report.waived.len(), 1);
    assert!(report.stale.is_empty());
    assert!(!report.is_failure());
}

#[test]
fn stale_waiver_fails_after_the_violation_is_fixed() {
    // Lint the *clean* twin with the waiver that used to cover the fire
    // case: removing a violation without removing its waiver must fail.
    let ctx = classify("crates/sim/src/fx.rs");
    let violations = lint_source(&ctx, &fixture("panic_bare_clean.rs"));
    assert!(violations.is_empty());
    let waiver = Waiver {
        rule: RuleId::PanicBare,
        path: "crates/sim/src/fx.rs".to_string(),
        reason: "covered a panic that no longer exists".to_string(),
    };
    let report = reconcile(violations, std::slice::from_ref(&waiver));
    assert_eq!(report.stale.len(), 1);
    assert!(report.is_failure(), "a stale waiver must fail the run");
    assert!(report.render().contains("stale-waiver"));
}

#[test]
fn waiver_file_round_trips_through_the_parser() {
    let text = r#"
[[waiver]]
rule = "lock-unwrap"
path = "crates/sim/src/fx.rs"
reason = "fixture"
"#;
    let set = waivers::parse(text).unwrap();
    let ctx = classify("crates/sim/src/fx.rs");
    let report = reconcile(lint_source(&ctx, &fixture("lock_unwrap_fire.rs")), &set);
    assert!(report.active.is_empty());
    assert_eq!(report.waived.len(), 2);
}
