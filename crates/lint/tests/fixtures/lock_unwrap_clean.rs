//! must-not-fire: poisoned-lock recovery via `PoisonError::into_inner`
//! keeps the cache usable after a panicking holder; unwraps in unit
//! tests are legal.
use std::sync::{Mutex, PoisonError};

pub fn bump(counter: &Mutex<u64>) -> u64 {
    let mut g = counter.lock().unwrap_or_else(PoisonError::into_inner);
    *g += 1;
    *g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_increments() {
        let c = Mutex::new(0);
        bump(&c);
        assert_eq!(*c.lock().unwrap(), 1);
    }
}
