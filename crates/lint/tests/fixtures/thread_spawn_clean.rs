//! must-not-fire: tests may spawn threads to exercise concurrency, and
//! non-spawning thread API (yield/sleep-free determinism helpers) is fine.
pub fn work(x: u64) -> u64 {
    x + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_calls_agree() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| assert_eq!(work(1), 2));
            }
        });
    }
}
