//! must-not-fire: library code that *consumes* an RNG handed in by the
//! caller is fine; only constructing one outside the RNG-owning crates
//! is a violation. (Xoshiro256pp::seed_from_u64 in a comment is words,
//! not code.)
use cpm_rng::Xoshiro256pp;

pub fn jitter(rng: &mut Xoshiro256pp) -> f64 {
    rng.f64_in(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_seed_streams() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        assert!((0.0..1.0).contains(&jitter(&mut rng)));
    }
}
