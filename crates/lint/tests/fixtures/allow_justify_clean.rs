//! must-not-fire: the allow carries its reason on the same line.
#[allow(clippy::too_many_arguments)] // mirrors the paper's 8-operand table row
pub fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) -> u64 {
    [a, b, c, d, e, f, g, h].iter().map(|&x| x as u64).sum()
}
