// Companion fixture for the taint-flow cases: defines the golden sink
// the fire/clean twins call. Linted as crates/obs/src/recorder.rs so the
// sink table's (cpm-obs, Recorder, record) entry matches it.

pub struct Recorder;

impl Recorder {
    pub fn record(&self) {}
}
