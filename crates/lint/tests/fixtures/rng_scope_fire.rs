//! must-fire: ad-hoc RNG construction in a crate that does not own a
//! seed-derivation contract.
use cpm_rng::{SplitMix64, Xoshiro256pp};

pub fn jitter(seed: u64) -> f64 {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    rng.f64_in(0.0, 1.0)
}

pub fn stream(seed: u64, index: u64) -> Xoshiro256pp {
    Xoshiro256pp::child(seed, index)
}

pub fn mix(seed: u64) -> u64 {
    SplitMix64::new(seed).next_u64()
}
