//! must-fire: nightly SIMD gates and per-arch escapes.
#![feature(portable_simd)]

use std::simd::f64x8;

#[target_feature(enable = "avx2")]
unsafe fn lanes_sum(x: f64x8) -> f64 {
    x.reduce_sum()
}

pub fn pick_kernel() -> bool {
    is_x86_feature_detected!("avx2")
}

pub fn arch_path() {
    core::arch::x86_64::_mm_pause();
}
