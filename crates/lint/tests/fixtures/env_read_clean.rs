//! must-not-fire: no ambient state consulted; an identifier merely
//! *named* env is not a read, and `env!` is a compile-time constant.
pub fn manifest_dir() -> &'static str {
    env!("CARGO_MANIFEST_DIR")
}

pub fn with_config(env: &str) -> String {
    format!("profile-{env}")
}
