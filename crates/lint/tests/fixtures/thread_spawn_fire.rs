//! must-fire: ad-hoc thread creation outside cpm-runtime.
use std::thread;

pub fn fan_out(n: usize) {
    let handles: Vec<_> = (0..n).map(|_| thread::spawn(|| 1 + 1)).collect();
    for h in handles {
        let _ = h.join();
    }
}

pub fn scoped(xs: &[u64]) -> u64 {
    let mut acc = 0;
    std::thread::scope(|s| {
        s.spawn(|| acc += xs.len() as u64);
    });
    acc
}
