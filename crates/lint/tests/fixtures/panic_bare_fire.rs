//! must-fire: a bare panic in library code.
pub fn pick(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        panic!("no candidates");
    }
    xs[0]
}
