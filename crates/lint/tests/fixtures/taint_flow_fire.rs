// MUST-FIRE: nondeterminism laundered through helpers into a golden
// sink. No token rule sees the whole flow — `Clock` hides the Instant
// rename from the timing rule's sequence match at the call site, and
// the sink call is three frames from the source. Linted as
// crates/core/src/fx.rs alongside taint_sink.rs.

use cpm_obs::Recorder;
use std::time::Instant as Clock;

fn read_wall_clock() -> f64 {
    let t = Clock::now();
    let _ = t;
    0.0
}

fn jitter() -> f64 {
    read_wall_clock() * 0.5
}

pub fn emit_trace(r: &Recorder) {
    let x = jitter();
    let _ = x;
    r.record();
}
