//! must-fire: an environment read in a deterministic crate.
pub fn threads() -> usize {
    std::env::var("CPM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
