//! must-not-fire: safe code; `unsafe_code` inside a forbid attribute and
//! the word unsafe in comments/strings are not the keyword.
#![forbid(unsafe_code)]

pub fn describe() -> &'static str {
    "this crate contains no unsafe blocks"
}
