//! must-fire: iterating hash containers leaks nondeterministic order.
use std::collections::{HashMap, HashSet};

pub struct Scores {
    table: HashMap<String, f64>,
}

pub fn sum_by_method(m: &HashMap<u64, f64>) -> f64 {
    m.values().sum()
}

pub fn walk_by_for(set: HashSet<u64>) -> u64 {
    let mut acc = 0;
    for v in &set {
        acc += v;
    }
    acc
}

impl Scores {
    pub fn names(&self) -> Vec<&String> {
        self.table.keys().collect()
    }
}
