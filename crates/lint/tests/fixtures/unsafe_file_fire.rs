//! must-fire: `unsafe` outside the allow-listed file set.
pub fn transmute_free(x: u64) -> f64 {
    unsafe { std::mem::transmute(x) }
}
