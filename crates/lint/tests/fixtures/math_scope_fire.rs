// math-scope fire corpus: direct libm-backed transcendental method calls
// in a library crate outside cpm-math.

pub fn periodic_term(elapsed: f64, tau: f64, offset: f64) -> f64 {
    (elapsed * tau + offset).sin()
}

pub fn leakage_term(t: f64, t_nom: f64, beta: f64) -> f64 {
    ((t - t_nom) * beta).exp()
}

pub fn bips_curve(p: f64, p_full: f64) -> f64 {
    (p / p_full).powf(0.45)
}

pub fn log_spacing(omega: f64) -> f64 {
    omega.ln()
}
