//! must-not-fire: writing into a caller-supplied buffer and printing
//! from unit tests are both legal; `writeln!` is not a stdout macro.
use std::fmt::Write as _;

pub fn render(x: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "value = {x}");
    s
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("render = {}", super::render(1.0));
    }
}
