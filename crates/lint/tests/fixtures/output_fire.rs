//! must-fire: printing from a library crate corrupts the stdout
//! byte-identity contract.
pub fn report(x: f64) {
    println!("value = {x}");
    eprintln!("debug = {x}");
}
