//! must-not-fire: asserts with invariant messages, Results, and panics
//! inside unit tests are all legal.
pub fn pick(xs: &[f64]) -> Result<f64, String> {
    assert!(xs.len() < 1_000_000, "roster width is bounded by config");
    xs.first().copied().ok_or_else(|| "no candidates".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn empty_roster_errors() {
        if super::pick(&[]).is_ok() {
            panic!("expected an error");
        }
    }
}
