// MUST-NOT-FIRE twin of dim_consistency_fire.rs: dimensionally
// consistent arithmetic, sanctioned composites, an annotation override,
// and a `// dim: allow` waiver on a deliberate oddity.

pub struct Watts(pub f64);
pub struct Seconds(pub f64);
pub struct Celsius(pub f64);

// Same dimension on both sides of +/comparison.
pub fn add_same(a: Watts, b: Watts) -> f64 {
    a.value() + b.value()
}

// W · s = J is a legal composite (|exponents| stay small).
pub fn energy(p: Watts, dt: Seconds) -> f64 {
    p.value() * dt.value()
}

// Unknown operands never fire: silence over speculation.
pub fn untyped(a: f64, b: f64) -> f64 {
    a + b
}

// An annotation gives a raw f64 a dimension; consistent use stays clean.
pub fn annotated(total_watts: f64) -> f64 {
    let headroom = 5.0; // dim: W
    total_watts + headroom
}

// A deliberate cross-dimension comparison, waived at the site.
pub fn waived(t: Celsius, p: Watts) -> bool {
    t.value() < p.value() // dim: allow — sensor plausibility check compares raw magnitudes
}

impl Watts {
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Seconds {
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Celsius {
    pub fn value(&self) -> f64 {
        self.0
    }
}
