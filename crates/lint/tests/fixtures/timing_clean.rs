//! must-not-fire: simulated time and Durations are deterministic; the
//! words in comments ("Instant::now() is banned") don't count as code.
use std::time::Duration;

pub fn simulated_elapsed(steps: u64, dt: Duration) -> Duration {
    // Instant::now() would be a violation here; multiplying a step count
    // by a fixed dt is not.
    dt * steps as u32
}
