// math-scope clean corpus: the sanctioned ways to compute
// transcendentals — the deterministic kernels on hot paths, the
// `cpm_math::reference` free functions on cold analysis paths, and
// IEEE-exact f64 methods (which round identically on every platform).

pub fn periodic_term(elapsed: f64, tau: f64, offset: f64) -> f64 {
    cpm_math::sin_det(elapsed * tau + offset)
}

pub fn leakage_term(t: f64, t_nom: f64, beta: f64) -> f64 {
    cpm_math::exp_det((t - t_nom) * beta)
}

pub fn log_spacing(omega: f64) -> f64 {
    cpm_math::reference::ln(omega)
}

pub fn exact_ops(x: f64) -> f64 {
    // sqrt and powi are IEEE-exact; they are not libm surfaces.
    x.sqrt() + x.powi(2) + x.abs()
}

#[cfg(test)]
mod tests {
    // Unit tests may compare against libm freely.
    #[test]
    fn accuracy_twin() {
        assert!((cpm_math::sin_det(0.5) - 0.5f64.sin()).abs() < 1e-15);
    }
}
