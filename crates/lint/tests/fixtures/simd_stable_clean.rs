//! must-not-fire: a plain lane-chunked loop with a scalar tail — the
//! shape LLVM autovectorizes on stable, no nightly gates or per-arch
//! intrinsics anywhere. Mentions of simd in comments are not code.

const LANES: usize = 8;

/// Scales a slice in fixed-width lane chunks (autovectorized) with a
/// scalar tail.
pub fn scale(xs: &mut [f64], k: f64) {
    let mut base = 0;
    while base + LANES <= xs.len() {
        for l in 0..LANES {
            xs[base + l] *= k;
        }
        base += LANES;
    }
    while base < xs.len() {
        xs[base] *= k;
        base += 1;
    }
}
