// MUST-NOT-FIRE twin of taint_flow_fire.rs: the same call shape into
// the same golden sink, but every helper is deterministic — reaching a
// sink is not a violation, reaching it *from a source* is.

use cpm_obs::Recorder;

fn deterministic_value() -> f64 {
    42.0
}

fn scaled() -> f64 {
    deterministic_value() * 0.5
}

pub fn emit_trace(r: &Recorder) {
    let x = scaled();
    let _ = x;
    r.record();
}
