//! must-fire: wall-clock reads in a deterministic crate.
use std::time::{Instant, SystemTime};

pub fn stamp() -> f64 {
    let t0 = Instant::now();
    let _epoch = SystemTime::now();
    t0.elapsed().as_secs_f64()
}
