//! must-not-fire: keyed lookup on a hash container is order-free and
//! legal; iteration over a BTreeMap is ordered and legal.
use std::collections::{BTreeMap, HashMap};

pub fn memo_lookup(memo: &mut HashMap<String, f64>, key: &str) -> f64 {
    if let Some(&v) = memo.get(key) {
        return v;
    }
    let v = key.len() as f64;
    memo.insert(key.to_string(), v);
    v
}

pub fn ordered_walk(m: &BTreeMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for (_k, v) in m.iter() {
        acc += v;
    }
    acc
}

pub fn vec_iteration_is_fine(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
