// MUST-FIRE: physical-dimension errors in a physics crate. Linted as
// crates/thermal/src/fx.rs (one of the four dimension-checked crates).

pub struct Watts(pub f64);
pub struct Celsius(pub f64);
pub struct Hertz(pub f64);

// Mixed-dimension addition: °C + W.
pub fn add_mixed(t: Celsius, p: Watts) -> f64 {
    t.value() + p.value()
}

// Mixed-dimension comparison: W < Hz.
pub fn cmp_mixed(p: Watts, f: Hertz) -> bool {
    p.value() < f.value()
}

// Suspicious product: °C · °C has no physical meaning here.
pub fn celsius_squared(a: Celsius, b: Celsius) -> f64 {
    a.value() * b.value()
}

// Name-suffix heuristic: raw f64s with full-word unit suffixes.
pub fn suffix_mixed(power_watts: f64, temp_celsius: f64) -> f64 {
    power_watts - temp_celsius
}

impl Watts {
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Celsius {
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl Hertz {
    pub fn value(&self) -> f64 {
        self.0
    }
}
