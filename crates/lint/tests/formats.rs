//! Byte-pins the machine-readable report formats (`--format json` /
//! `--format sarif`) against committed expected-output fixtures.
//!
//! The renderers promise deterministic bytes — no timestamps, no
//! absolute paths, stable ordering — so these tests compare the full
//! rendered string against `tests/fixtures/expected_report.{json,sarif}`
//! byte-for-byte. Any intentional format change must re-bless the
//! fixtures (`CPM_BLESS=1 cargo test -p cpm-lint --test formats`) and
//! show up in review as a fixture diff.

use cpm_lint::output::{render_json, render_sarif};
use cpm_lint::rules::{RuleId, Violation};
use cpm_lint::{Report, Waiver};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `CPM_BLESS` is set.
fn assert_pinned(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("CPM_BLESS").is_some() {
        std::fs::write(&path, actual).expect("bless fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {} ({e}) — bless with CPM_BLESS=1", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from its byte-pinned fixture — if the change is \
         intentional, re-bless with CPM_BLESS=1 and review the diff"
    );
}

/// A fixed report exercising every section: active violations (with
/// characters needing JSON escapes), a waived violation, a stale waiver,
/// and a budget overrun.
fn pinned_report() -> Report {
    Report {
        active: vec![
            Violation {
                rule: RuleId::Timing,
                path: "crates/sim/src/engine.rs".to_string(),
                line: 42,
                message: "Instant::now() in a library crate".to_string(),
            },
            Violation {
                rule: RuleId::DimConsistency,
                path: "crates/thermal/src/grid.rs".to_string(),
                line: 7,
                message: "`+` mixes dimensions °C vs W".to_string(),
            },
        ],
        waived: vec![Violation {
            rule: RuleId::PanicBare,
            path: "crates/rng/src/check.rs".to_string(),
            line: 19,
            message: "bare panic! outside test code".to_string(),
        }],
        stale: vec![Waiver {
            rule: RuleId::Output,
            path: "crates/bench/src/gone.rs".to_string(),
            reason: "said \"temporary\" in 2025".to_string(),
        }],
        over_budget: Some("2 waivers exceed the budget of 1".to_string()),
        files_scanned: 147,
    }
}

#[test]
fn json_output_is_byte_pinned() {
    assert_pinned("expected_report.json", &render_json(&pinned_report()));
}

#[test]
fn sarif_output_is_byte_pinned() {
    assert_pinned("expected_report.sarif", &render_sarif(&pinned_report()));
}

#[test]
fn clean_report_round_trips_both_formats() {
    let clean = Report {
        files_scanned: 3,
        ..Report::default()
    };
    let j = render_json(&clean);
    assert!(j.contains("\"failure\": false"));
    let s = render_sarif(&clean);
    assert!(s.contains("\"results\": [\n      ]"));
}
