//! The workspace gate: `cargo test -p cpm-lint` (and therefore tier-1
//! `cargo test`) fails if any rule of the invariant catalogue fires
//! un-waived anywhere in the tree, or if a committed waiver has gone
//! stale. Hermetic: reads only files inside the repository.

#[test]
fn workspace_is_clean_under_the_invariant_catalogue() {
    let root = cpm_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let report = cpm_lint::lint_workspace(&root).expect("lint run must succeed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root {}?",
        report.files_scanned,
        root.display()
    );
    assert!(
        !report.is_failure(),
        "cpm-lint found problems:\n{}",
        report.render()
    );
    // Every waiver in lint-waivers.toml is exercised (non-stale) and the
    // file documents real, current exceptions only.
    assert!(
        report.waived.len() >= report.stale.len(),
        "internal consistency"
    );
}

/// The waiver-budget ratchet (DESIGN.md §3k): `[budget] max` must equal
/// the *exact* waiver count. Adding a waiver forces a deliberate bump of
/// the budget (with its justification updated); removing one forces the
/// budget down. Either direction is a reviewed diff of lint-waivers.toml.
#[test]
fn waiver_budget_is_a_ratchet_pinned_to_the_exact_count() {
    let root = cpm_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(root.join(cpm_lint::WAIVER_FILE))
        .expect("lint-waivers.toml must exist at the workspace root");
    let file = cpm_lint::waivers::parse_file(&text).expect("waiver file must parse");
    let budget = file
        .budget
        .expect("lint-waivers.toml must carry a [budget] table");
    assert!(
        !budget.justification.trim().is_empty(),
        "budget justification must be written out"
    );
    assert_eq!(
        budget.max,
        file.waivers.len(),
        "[budget] max ({}) must equal the exact current waiver count ({}) — \
         bump or shrink it deliberately, with the justification updated",
        budget.max,
        file.waivers.len()
    );
}

/// Parser coverage floor over the real tree: the tolerant parser must
/// recover nearly every `fn` item the tokenizer sees. The known residue
/// is fns generated inside `macro_rules!` bodies (skipped as opaque
/// token trees) and `fn`-pointer types; if this ratio drops, the parser
/// regressed and the taint/dimension passes are silently blind to the
/// lost functions.
#[test]
fn parser_recovers_nearly_all_fns_across_the_workspace() {
    let root = cpm_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let files = cpm_lint::collect_rs_files(&root).expect("walk workspace");
    let mut fn_tokens = 0usize;
    let mut fn_defs = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path).expect("read source");
        let toks = cpm_lint::tokenizer::tokenize(&source);
        fn_tokens += toks.iter().filter(|t| t.is("fn")).count();
        let parsed = cpm_lint::parser::parse_file(&cpm_lint::classify(&rel), &toks);
        fn_defs += parsed.fns.len();
    }
    assert!(fn_tokens > 1000, "suspiciously few fn tokens: {fn_tokens}");
    let ratio = fn_defs as f64 / fn_tokens as f64;
    assert!(
        ratio >= 0.95,
        "parser recovered only {fn_defs}/{fn_tokens} fns ({ratio:.3}) — coverage regressed"
    );
}

/// Self-consistency (DESIGN.md §3f): every rule id in the catalogue must
/// appear in the DESIGN.md rule table, so the documented catalogue and
/// the enforced one cannot drift apart.
#[test]
fn every_rule_id_is_documented_in_design_md() {
    let root = cpm_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md must exist");
    for rule in cpm_lint::ALL_RULES {
        assert!(
            design.contains(&format!("`{}`", rule.name())),
            "rule `{}` is enforced but missing from the DESIGN.md rule table",
            rule.name()
        );
    }
}
