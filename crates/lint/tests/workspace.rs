//! The workspace gate: `cargo test -p cpm-lint` (and therefore tier-1
//! `cargo test`) fails if any rule of the invariant catalogue fires
//! un-waived anywhere in the tree, or if a committed waiver has gone
//! stale. Hermetic: reads only files inside the repository.

#[test]
fn workspace_is_clean_under_the_invariant_catalogue() {
    let root = cpm_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR"));
    let report = cpm_lint::lint_workspace(&root).expect("lint run must succeed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root {}?",
        report.files_scanned,
        root.display()
    );
    assert!(
        !report.is_failure(),
        "cpm-lint found problems:\n{}",
        report.render()
    );
    // Every waiver in lint-waivers.toml is exercised (non-stale) and the
    // file documents real, current exceptions only.
    assert!(
        report.waived.len() >= report.stale.len(),
        "internal consistency"
    );
}
