//! The `cpm-lint` binary: `cargo run -p cpm-lint -- --deny`.
//!
//! Scans the workspace, reconciles against `lint-waivers.toml`, prints a
//! report, and (with `--deny`) exits non-zero on any active violation or
//! stale waiver. Without `--deny` it reports but always exits 0, which is
//! occasionally useful while sweeping a new rule through the tree.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: cpm-lint [--deny] [--root <dir>] [--format <fmt>] [--list-rules]\n\
     \n\
     --deny          exit 1 on active violations or stale waivers\n\
     --root <dir>    workspace root to scan (default: the linter's own workspace)\n\
     --format <fmt>  report format: text (default), json, or sarif\n\
     --list-rules    print the rule catalogue and exit\n"
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut deny = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!(
                        "--format needs one of text|json|sarif, got `{}`\n{}",
                        other.unwrap_or("<nothing>"),
                        usage()
                    );
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in cpm_lint::ALL_RULES {
                    println!("{}", rule.name());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    let root =
        root.unwrap_or_else(|| cpm_lint::workspace_root_from_manifest(env!("CARGO_MANIFEST_DIR")));
    match cpm_lint::lint_workspace(&root) {
        Ok(report) => {
            match format {
                Format::Text => print!("{}", report.render()),
                Format::Json => print!("{}", cpm_lint::output::render_json(&report)),
                Format::Sarif => print!("{}", cpm_lint::output::render_sarif(&report)),
            }
            if deny && report.is_failure() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("cpm-lint: {e}");
            ExitCode::from(2)
        }
    }
}
