//! A tolerant recursive-descent Rust parser over the [`crate::tokenizer`]
//! stream, producing the [`crate::ast`] the workspace passes consume.
//!
//! Design rules, in priority order:
//!
//! 1. **Never panic, never hang.** Every loop provably advances or burns
//!    shared fuel; running out of fuel degrades the current node to
//!    [`ExprKind::Unknown`] instead of failing the file.
//! 2. **Recover, don't reject.** Anything outside the recognized grammar
//!    (complex patterns, where-clauses, trait objects, …) is skipped with
//!    balanced-delimiter scanning; the surrounding structure survives.
//! 3. **Preserve what the analyses need.** Calls, method calls, field
//!    accesses, binary operators, `use` aliases, `#[cfg(test)]`
//!    attribution, and struct fields must come out right; everything
//!    else may be approximated.
//!
//! The classic struct-literal ambiguity (`if x { … }`) is handled the
//! way rustc does: condition/scrutinee positions parse in a no-struct-
//! literal mode.

use crate::ast::*;
use crate::rules::FileContext;
use crate::tokenizer::{Tok, TokKind};

/// Parses one tokenized file into the analysis AST.
pub fn parse_file(ctx: &FileContext, toks: &[Tok<'_>]) -> ParsedFile {
    let mut p = P {
        t: toks,
        i: 0,
        fuel: toks.len().saturating_mul(8) + 1024,
        out: ParsedFile {
            ctx: ctx.clone(),
            uses: Vec::new(),
            fns: Vec::new(),
            structs: Vec::new(),
        },
    };
    p.items(None, None, false, usize::MAX);
    p.out
}

struct P<'a, 'b> {
    t: &'a [Tok<'b>],
    i: usize,
    fuel: usize,
    out: ParsedFile,
}

impl<'a, 'b> P<'a, 'b> {
    // ---- token helpers -------------------------------------------------

    fn peek(&self, k: usize) -> Option<&Tok<'b>> {
        self.t.get(self.i + k)
    }

    fn at(&self, s: &str) -> bool {
        self.peek(0).map(|t| t.is(s)).unwrap_or(false)
    }

    fn at2(&self, a: &str, b: &str) -> bool {
        self.at(a) && self.peek(1).map(|t| t.is(b)).unwrap_or(false)
    }

    fn line(&self) -> usize {
        self.peek(0).map(|t| t.line).unwrap_or(0)
    }

    fn bump(&mut self) {
        self.i += 1;
        self.fuel = self.fuel.saturating_sub(1);
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn done(&self) -> bool {
        self.i >= self.t.len() || self.fuel == 0
    }

    fn ident(&self) -> Option<&'b str> {
        match self.peek(0) {
            Some(t) if t.kind == TokKind::Ident => Some(t.text),
            _ => None,
        }
    }

    /// Skips a balanced delimiter region starting at the current opener
    /// (`(`, `[`, `{`, or `<`). For `<`, `->` arrows are skipped so
    /// `Fn() -> T` bounds don't unbalance the angles.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.at(open) {
            return;
        }
        let mut depth = 0usize;
        while !self.done() {
            if open == "<" && self.at2("-", ">") {
                self.bump();
                self.bump();
                continue;
            }
            if self.at(open) {
                depth += 1;
            } else if self.at(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            } else if open == "<" && (self.at(";") || self.at("{")) {
                // An unclosed angle run (comparison mis-scan); bail.
                return;
            }
            self.bump();
        }
    }

    /// Skips one attribute `#[…]` / `#![…]`; returns its rendered inner
    /// text (idents and puncts joined) for cfg/test detection.
    fn skip_attr(&mut self) -> String {
        let mut text = String::new();
        if !self.at("#") {
            return text;
        }
        self.bump();
        self.eat("!");
        if !self.at("[") {
            return text;
        }
        let mut depth = 0usize;
        while !self.done() {
            if self.at("[") {
                depth += 1;
            } else if self.at("]") {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return text;
                }
            }
            if let Some(t) = self.peek(0) {
                if !t.text.is_empty() && !t.is("[") {
                    text.push_str(t.text);
                }
            }
            self.bump();
        }
        text
    }

    /// Consumes tokens as a type, rendering them compactly (`Vec<Watts>`,
    /// `&mut [f64; 8]`). Stops at any of `stops` seen at depth 0.
    fn render_type(&mut self, stops: &[&str]) -> String {
        let mut s = String::new();
        let mut angle = 0i32;
        let mut paren = 0i32;
        while !self.done() {
            if self.at2("-", ">") {
                s.push_str("->");
                self.bump();
                self.bump();
                continue;
            }
            let t = match self.peek(0) {
                Some(t) => t,
                None => break,
            };
            if angle == 0 && paren == 0 && stops.iter().any(|x| t.is(x)) {
                break;
            }
            match t.text {
                "<" => angle += 1,
                ">" => {
                    if angle == 0 {
                        break;
                    }
                    angle -= 1;
                }
                "(" | "[" => paren += 1,
                ")" | "]" => {
                    if paren == 0 {
                        break;
                    }
                    paren -= 1;
                }
                _ => {}
            }
            if !t.text.is_empty() {
                s.push_str(t.text);
            } else if t.kind == TokKind::Lifetime {
                s.push('\'');
            }
            self.bump();
        }
        s
    }

    // ---- items ---------------------------------------------------------

    /// Parses items until `}` at depth 0 (or EOF). `qual`/`trait_name`
    /// attribute methods to their impl; `in_test` marks `#[cfg(test)]`
    /// regions; `end_brace` items stop at a closing brace.
    fn items(
        &mut self,
        qual: Option<&str>,
        trait_name: Option<&str>,
        in_test: bool,
        mut budget: usize,
    ) {
        let mut pending_test = false;
        let mut pending_attr_test;
        while !self.done() && budget > 0 {
            budget -= 1;
            if self.at("}") {
                return;
            }
            // Attributes: remember cfg(test) / #[test] for the next item.
            pending_attr_test = false;
            while self.at("#") {
                let a = self.skip_attr();
                if a.contains("cfg(test") || a == "test" || a.starts_with("test)") {
                    pending_attr_test = true;
                }
            }
            pending_test |= pending_attr_test;
            // Visibility.
            if self.eat("pub") {
                if self.at("(") {
                    self.skip_balanced("(", ")");
                }
                continue;
            }
            match self.ident() {
                Some("use") => {
                    self.bump();
                    self.parse_use(in_test || pending_test);
                    pending_test = false;
                }
                Some("fn") => {
                    self.parse_fn(qual, trait_name, in_test || pending_test);
                    pending_test = false;
                }
                Some("unsafe") | Some("async") | Some("const") | Some("extern") if matches!(self.peek(1), Some(t) if t.is("fn")) =>
                {
                    self.bump();
                    self.parse_fn(qual, trait_name, in_test || pending_test);
                    pending_test = false;
                }
                Some("impl") => {
                    self.bump();
                    self.parse_impl(in_test || pending_test);
                    pending_test = false;
                }
                Some("trait") => {
                    self.bump();
                    let name = self.ident().unwrap_or("").to_string();
                    if !name.is_empty() {
                        self.bump();
                    }
                    self.skip_balanced("<", ">");
                    // Supertraits / where clause: skip to the body.
                    while !self.done() && !self.at("{") && !self.at(";") {
                        self.bump();
                    }
                    if self.at("{") {
                        self.bump();
                        self.items(Some(&name), Some(&name), in_test || pending_test, budget);
                        self.eat("}");
                    } else {
                        self.eat(";");
                    }
                    pending_test = false;
                }
                Some("mod") => {
                    self.bump();
                    if self.ident().is_some() {
                        self.bump();
                    }
                    if self.at("{") {
                        self.bump();
                        self.items(qual, trait_name, in_test || pending_test, budget);
                        self.eat("}");
                    } else {
                        self.eat(";");
                    }
                    pending_test = false;
                }
                Some("struct") => {
                    self.bump();
                    self.parse_struct();
                    pending_test = false;
                }
                Some("enum") | Some("union") => {
                    self.bump();
                    if self.ident().is_some() {
                        self.bump();
                    }
                    self.skip_balanced("<", ">");
                    while !self.done() && !self.at("{") && !self.at(";") {
                        self.bump();
                    }
                    if self.at("{") {
                        self.skip_balanced("{", "}");
                    } else {
                        self.eat(";");
                    }
                    pending_test = false;
                }
                Some("macro_rules") => {
                    self.bump();
                    self.eat("!");
                    if self.ident().is_some() {
                        self.bump();
                    }
                    if self.at("{") {
                        self.skip_balanced("{", "}");
                    } else if self.at("(") {
                        self.skip_balanced("(", ")");
                        self.eat(";");
                    }
                    pending_test = false;
                }
                Some("type") | Some("static") | Some("const") => {
                    // `type X = …;`, `static X: T = …;`, `const X: T = …;`
                    while !self.done() && !self.at(";") && !self.at("}") {
                        if self.at("{") {
                            self.skip_balanced("{", "}");
                            continue;
                        }
                        self.bump();
                    }
                    self.eat(";");
                    pending_test = false;
                }
                Some(_) if matches!(self.peek(1), Some(t) if t.is("!")) => {
                    // Item-level macro invocation (`thread_local! { … }`,
                    // `quantity!(…)`); skip its delimited body wholesale so
                    // a brace inside doesn't close the enclosing scope.
                    self.bump();
                    self.bump();
                    if self.at("(") {
                        self.skip_balanced("(", ")");
                    } else if self.at("[") {
                        self.skip_balanced("[", "]");
                    } else if self.at("{") {
                        self.skip_balanced("{", "}");
                    }
                    self.eat(";");
                    pending_test = false;
                }
                _ => {
                    if self.at("{") {
                        // A stray block at item level: skip it whole.
                        self.skip_balanced("{", "}");
                    } else {
                        self.bump();
                    }
                }
            }
        }
    }

    fn parse_use(&mut self, in_test: bool) {
        // Collect the tree: prefix segments, then either a leaf (with
        // optional `as`), a `*`, or a brace group (recursively flattened).
        fn tree(p: &mut P<'_, '_>, prefix: &[String], in_test: bool) {
            let mut segs: Vec<String> = prefix.to_vec();
            loop {
                if p.done() {
                    return;
                }
                if p.at("*") {
                    p.bump();
                    p.out.uses.push(UseDecl {
                        segs,
                        alias: String::new(),
                        glob: true,
                        in_test,
                    });
                    return;
                }
                if p.at("{") {
                    p.bump();
                    while !p.done() && !p.at("}") {
                        tree(p, &segs, in_test);
                        if !p.eat(",") {
                            break;
                        }
                    }
                    p.eat("}");
                    return;
                }
                let Some(id) = p.ident() else { return };
                let seg = id.to_string();
                p.bump();
                if p.at2(":", ":") {
                    segs.push(seg);
                    p.bump();
                    p.bump();
                    continue;
                }
                // Leaf: optional rename.
                let mut alias = seg.clone();
                segs.push(seg);
                if p.at("as") {
                    p.bump();
                    if let Some(a) = p.ident() {
                        alias = a.to_string();
                        p.bump();
                    }
                }
                p.out.uses.push(UseDecl {
                    segs,
                    alias,
                    glob: false,
                    in_test,
                });
                return;
            }
        }
        tree(self, &[], in_test);
        // Consume to the terminating semicolon.
        while !self.done() && !self.at(";") && !self.at("}") {
            self.bump();
        }
        self.eat(";");
    }

    fn parse_struct(&mut self) {
        let name = self.ident().unwrap_or("").to_string();
        if !name.is_empty() {
            self.bump();
        }
        self.skip_balanced("<", ">");
        while !self.done() && !self.at("{") && !self.at(";") && !self.at("(") {
            self.bump();
        }
        if self.at("(") {
            // Tuple struct: skip.
            self.skip_balanced("(", ")");
            self.eat(";");
            return;
        }
        if !self.at("{") {
            self.eat(";");
            return;
        }
        self.bump();
        let mut fields = Vec::new();
        while !self.done() && !self.at("}") {
            while self.at("#") {
                self.skip_attr();
            }
            if self.eat("pub") && self.at("(") {
                self.skip_balanced("(", ")");
            }
            let line = self.line();
            let Some(fname) = self.ident() else {
                self.bump();
                continue;
            };
            let fname = fname.to_string();
            self.bump();
            if !self.eat(":") {
                continue;
            }
            let ty = self.render_type(&[",", "}"]);
            fields.push((fname, ty, line));
            self.eat(",");
        }
        self.eat("}");
        self.out.structs.push(StructDef { name, fields });
    }

    fn parse_impl(&mut self, in_test: bool) {
        self.skip_balanced("<", ">");
        // Scan the header up to `{`, remembering the path idents before
        // and after `for` — `impl Trait for Type` vs `impl Type`.
        let mut before: Vec<String> = Vec::new();
        let mut after: Vec<String> = Vec::new();
        let mut saw_for = false;
        while !self.done() && !self.at("{") && !self.at(";") {
            if self.at("for") {
                saw_for = true;
                self.bump();
                continue;
            }
            if self.at("where") {
                // Skip the where clause tokens wholesale.
                while !self.done() && !self.at("{") && !self.at(";") {
                    self.bump();
                }
                break;
            }
            if self.at("<") {
                self.skip_balanced("<", ">");
                continue;
            }
            if let Some(id) = self.ident() {
                if saw_for {
                    after.push(id.to_string());
                } else {
                    before.push(id.to_string());
                }
            }
            self.bump();
        }
        let (type_name, trait_name) = if saw_for {
            (after.last().cloned(), before.last().cloned())
        } else {
            (before.last().cloned(), None)
        };
        if self.at("{") {
            self.bump();
            self.items(
                type_name.as_deref(),
                trait_name.as_deref(),
                in_test,
                usize::MAX - 2,
            );
            self.eat("}");
        } else {
            self.eat(";");
        }
    }

    fn parse_fn(&mut self, qual: Option<&str>, trait_name: Option<&str>, in_test: bool) {
        let line = self.line();
        self.bump(); // `fn`
        let name = self.ident().unwrap_or("").to_string();
        if !name.is_empty() {
            self.bump();
        }
        self.skip_balanced("<", ">");
        // Parameters.
        let mut params = Vec::new();
        if self.at("(") {
            self.bump();
            let mut depth = 0usize;
            while !self.done() {
                if self.at(")") && depth == 0 {
                    self.bump();
                    break;
                }
                // `self` receiver forms: self, &self, &mut self, mut self.
                while self.at("&")
                    || self.at("mut")
                    || self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime)
                {
                    self.bump();
                }
                if self.at("self") {
                    self.bump();
                    params.push(("self".to_string(), "Self".to_string()));
                    self.eat(",");
                    continue;
                }
                // `name: Type` (simple) or a pattern we skip to `:`.
                let pname = match self.ident() {
                    Some(id) if self.peek(1).is_some_and(|t| t.is(":")) => {
                        let s = id.to_string();
                        self.bump();
                        s
                    }
                    _ => {
                        // Skip pattern tokens to the `:` at depth 0.
                        let mut d = 0i32;
                        while !self.done() {
                            if self.at("(") || self.at("[") {
                                d += 1;
                            } else if self.at(")") || self.at("]") {
                                if d == 0 {
                                    break;
                                }
                                d -= 1;
                            } else if d == 0 && (self.at(":") || self.at(",")) {
                                break;
                            }
                            self.bump();
                        }
                        String::new()
                    }
                };
                if !self.eat(":") {
                    // Malformed; resync at `,` or `)`.
                    while !self.done() && !self.at(",") && !self.at(")") {
                        if self.at("(") {
                            self.skip_balanced("(", ")");
                            continue;
                        }
                        self.bump();
                    }
                    self.eat(",");
                    continue;
                }
                let ty = self.render_type(&[",", ")"]);
                params.push((pname, ty));
                if self.at(")") {
                    depth = depth.saturating_sub(0);
                    continue;
                }
                self.eat(",");
            }
        }
        // Return type.
        let ret = if self.at2("-", ">") {
            self.bump();
            self.bump();
            let r = self.render_type(&["{", ";", "where"]);
            Some(r)
        } else {
            None
        };
        // Where clause.
        if self.at("where") {
            while !self.done() && !self.at("{") && !self.at(";") {
                if self.at("<") {
                    self.skip_balanced("<", ">");
                    continue;
                }
                self.bump();
            }
        }
        let body = if self.at("{") {
            Some(self.parse_block())
        } else {
            self.eat(";");
            None
        };
        self.out.fns.push(FnDef {
            name,
            qual: qual.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            params,
            ret,
            body,
            in_test,
            line,
        });
    }

    // ---- statements and expressions ------------------------------------

    /// Parses a `{ … }` block (current token must be `{`).
    fn parse_block(&mut self) -> Block {
        let mut stmts = Vec::new();
        if !self.eat("{") {
            return Block { stmts };
        }
        let mut pending_test = false;
        while !self.done() {
            if self.at("}") {
                self.bump();
                break;
            }
            if self.eat(";") {
                continue;
            }
            while self.at("#") {
                let a = self.skip_attr();
                if a.contains("cfg(test") || a == "test" {
                    pending_test = true;
                }
            }
            // Nested items inside the block.
            match self.ident() {
                Some("let") => {
                    stmts.push(self.parse_let());
                    continue;
                }
                Some("fn") => {
                    self.parse_fn(None, None, pending_test);
                    pending_test = false;
                    continue;
                }
                Some("use") => {
                    self.bump();
                    self.parse_use(pending_test);
                    pending_test = false;
                    continue;
                }
                Some("struct") => {
                    self.bump();
                    self.parse_struct();
                    continue;
                }
                Some("impl") => {
                    self.bump();
                    self.parse_impl(pending_test);
                    pending_test = false;
                    continue;
                }
                Some("mod") | Some("trait") | Some("enum") | Some("macro_rules")
                | Some("static") | Some("type") => {
                    // Rare inside fns; reuse the item machinery for one item.
                    let before = self.i;
                    self.items(None, None, pending_test, 1);
                    pending_test = false;
                    if self.i == before {
                        self.bump();
                    }
                    continue;
                }
                Some("const") if matches!(self.peek(1), Some(t) if t.kind == TokKind::Ident && t.text != "fn") =>
                {
                    let before = self.i;
                    self.items(None, None, pending_test, 1);
                    if self.i == before {
                        self.bump();
                    }
                    continue;
                }
                _ => {}
            }
            let e = self.expr(true);
            stmts.push(Stmt::Expr(e));
            self.eat(";");
        }
        Block { stmts }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // `let`
        self.eat("mut");
        let name = match self.ident() {
            Some(id)
                if self
                    .peek(1)
                    .map_or(true, |t| t.is(":") || t.is("=") || t.is(";")) =>
            {
                let s = id.to_string();
                self.bump();
                Some(s)
            }
            _ => {
                // Destructuring pattern: skip to `:`/`=`/`;` at depth 0.
                let mut d = 0i32;
                while !self.done() {
                    if self.at("(") || self.at("[") || self.at("<") {
                        d += 1;
                    } else if self.at(")") || self.at("]") || self.at(">") {
                        d -= 1;
                    } else if d <= 0 && (self.at(":") || self.at("=") || self.at(";")) {
                        break;
                    }
                    self.bump();
                }
                None
            }
        };
        let ty = if self.eat(":") {
            Some(self.render_type(&["=", ";"]))
        } else {
            None
        };
        let init = if self.eat("=") {
            Some(self.expr(true))
        } else {
            None
        };
        // `let … else { … }`.
        if self.at("else") {
            self.bump();
            if self.at("{") {
                let b = self.parse_block();
                let _ = b;
            }
        }
        self.eat(";");
        Stmt::Let {
            name,
            ty,
            init,
            line,
        }
    }

    /// Pratt expression parser. `structs_ok` gates struct-literal
    /// parsing (off inside `if`/`while`/`match`/`for` heads).
    fn expr(&mut self, structs_ok: bool) -> Expr {
        self.expr_bp(0, structs_ok)
    }

    fn expr_bp(&mut self, min_bp: u8, structs_ok: bool) -> Expr {
        let mut lhs = self.prefix(structs_ok);
        loop {
            if self.done() {
                break;
            }
            // Postfix: handled inside prefix() via postfix(); here binary.
            let Some((op, lbp, rbp, width)) = self.binop() else {
                break;
            };
            if lbp < min_bp {
                break;
            }
            let line = self.line();
            for _ in 0..width {
                self.bump();
            }
            // `as` cast: right side is a type, not an expression.
            if op == BinOp::Other && width == 0 {
                break;
            }
            let rhs = self.expr_bp(rbp, structs_ok);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                line,
            };
        }
        lhs
    }

    /// Looks at the current tokens for a binary operator; returns
    /// `(op, left-bp, right-bp, token width)`.
    fn binop(&self) -> Option<(BinOp, u8, u8, usize)> {
        let a = self.peek(0)?;
        let b = self.peek(1).map(|t| t.text).unwrap_or("");
        let c = self.peek(2).map(|t| t.text).unwrap_or("");
        let two = |x: &str, y: &str| -> bool { a.is(x) && b == y };
        // Order matters: longest match first.
        Some(match a.text {
            "=" if b == "=" => (BinOp::Eq, 5, 6, 2),
            "!" if b == "=" => (BinOp::Eq, 5, 6, 2),
            "<" if b == "=" => (BinOp::Cmp, 5, 6, 2),
            ">" if b == "=" => (BinOp::Cmp, 5, 6, 2),
            "&" if b == "&" => (BinOp::Other, 3, 4, 2),
            "|" if b == "|" => (BinOp::Other, 2, 3, 2),
            "<" if b == "<" && c != "=" => (BinOp::Other, 9, 10, 2),
            ">" if b == ">" && c != "=" => (BinOp::Other, 9, 10, 2),
            "<" if b == "<" => (BinOp::Other, 1, 2, 3),
            ">" if b == ">" => (BinOp::Other, 1, 2, 3),
            "+" if b == "=" => (BinOp::Add, 1, 2, 2),
            "-" if b == "=" => (BinOp::Sub, 1, 2, 2),
            "*" if b == "=" => (BinOp::Mul, 1, 2, 2),
            "/" if b == "=" => (BinOp::Div, 1, 2, 2),
            "%" if b == "=" => (BinOp::Rem, 1, 2, 2),
            "^" if b == "=" => (BinOp::Other, 1, 2, 2),
            "&" if b == "=" => (BinOp::Other, 1, 2, 2),
            "|" if b == "=" => (BinOp::Other, 1, 2, 2),
            "=" => (BinOp::Other, 1, 2, 1),
            "<" => (BinOp::Cmp, 5, 6, 1),
            ">" => (BinOp::Cmp, 5, 6, 1),
            "+" => (BinOp::Add, 11, 12, 1),
            "-" => (BinOp::Sub, 11, 12, 1),
            "*" => (BinOp::Mul, 13, 14, 1),
            "/" => (BinOp::Div, 13, 14, 1),
            "%" => (BinOp::Rem, 13, 14, 1),
            "^" => (BinOp::Other, 7, 8, 1),
            "&" => (BinOp::Other, 8, 9, 1),
            "|" => (BinOp::Other, 6, 7, 1),
            "." if b == "." => {
                // Range `..` / `..=`.
                let w = if c == "=" { 3 } else { 2 };
                (BinOp::Other, 1, 2, w)
            }
            _ => {
                if two("a", "b") {
                    // unreachable, keeps `two` used
                }
                return None;
            }
        })
    }

    fn prefix(&mut self, structs_ok: bool) -> Expr {
        let line = self.line();
        if self.done() {
            return Expr {
                kind: ExprKind::Unknown(Vec::new()),
                line,
            };
        }
        let t = &self.t[self.i];
        // Literals.
        match t.kind {
            TokKind::Number => {
                self.bump();
                return self.postfix(
                    Expr {
                        kind: ExprKind::Num,
                        line,
                    },
                    structs_ok,
                );
            }
            TokKind::Literal | TokKind::Lifetime => {
                self.bump();
                // Loop labels: `'outer: loop { … }`.
                if t.kind == TokKind::Lifetime && self.at(":") {
                    self.bump();
                    return self.prefix(structs_ok);
                }
                return self.postfix(
                    Expr {
                        kind: ExprKind::Lit,
                        line,
                    },
                    structs_ok,
                );
            }
            _ => {}
        }
        // Unary / sigils.
        if self.at("-") || self.at("!") || self.at("*") {
            self.bump();
            let e = self.expr_bp(15, structs_ok);
            return Expr {
                kind: ExprKind::Unary(Box::new(e)),
                line,
            };
        }
        if self.at("&") {
            self.bump();
            self.eat("&");
            self.eat("mut");
            let e = self.expr_bp(15, structs_ok);
            return Expr {
                kind: ExprKind::Unary(Box::new(e)),
                line,
            };
        }
        // Closures.
        if self.at("move") {
            self.bump();
            return self.prefix(structs_ok);
        }
        if self.at("|") {
            // `|params| body` — skip params to the closing `|`.
            self.bump();
            let mut d = 0i32;
            while !self.done() {
                if self.at("(") || self.at("[") || self.at("<") {
                    d += 1;
                } else if self.at(")") || self.at("]") || self.at(">") {
                    d -= 1;
                } else if d <= 0 && self.at("|") {
                    self.bump();
                    break;
                }
                self.bump();
            }
            let body = self.expr(structs_ok);
            return Expr {
                kind: ExprKind::Closure(Box::new(body)),
                line,
            };
        }
        // Grouping / tuples / arrays / blocks.
        if self.at("(") {
            self.bump();
            let mut items = Vec::new();
            while !self.done() && !self.at(")") {
                items.push(self.expr(true));
                if !self.eat(",") {
                    break;
                }
            }
            self.eat(")");
            let e = if items.len() == 1 {
                items.pop().unwrap_or(Expr {
                    kind: ExprKind::Unknown(Vec::new()),
                    line,
                })
            } else {
                Expr {
                    kind: ExprKind::Seq(items),
                    line,
                }
            };
            return self.postfix(e, structs_ok);
        }
        if self.at("[") {
            self.bump();
            let mut items = Vec::new();
            while !self.done() && !self.at("]") {
                items.push(self.expr(true));
                if !self.eat(",") && !self.eat(";") {
                    break;
                }
            }
            self.eat("]");
            return self.postfix(
                Expr {
                    kind: ExprKind::Seq(items),
                    line,
                },
                structs_ok,
            );
        }
        if self.at("{") {
            let b = self.parse_block();
            return self.postfix(
                Expr {
                    kind: ExprKind::Block(b),
                    line,
                },
                structs_ok,
            );
        }
        // Control flow.
        if self.at("if") {
            self.bump();
            let cond = if self.at("let") {
                // `if let pat = expr` — skip pattern, keep the matched expr.
                self.bump();
                self.skip_pattern_to("=");
                self.eat("=");
                Some(Box::new(self.expr(false)))
            } else {
                Some(Box::new(self.expr(false)))
            };
            let then_b = self.parse_block();
            let else_b = if self.at("else") {
                self.bump();
                if self.at("if") {
                    Some(Box::new(self.prefix(structs_ok)))
                } else {
                    let b = self.parse_block();
                    Some(Box::new(Expr {
                        kind: ExprKind::Block(b),
                        line,
                    }))
                }
            } else {
                None
            };
            return Expr {
                kind: ExprKind::If {
                    cond,
                    then_b,
                    else_b,
                },
                line,
            };
        }
        if self.at("match") {
            self.bump();
            let scrutinee = Box::new(self.expr(false));
            let mut arms = Vec::new();
            if self.eat("{") {
                while !self.done() && !self.at("}") {
                    while self.at("#") {
                        self.skip_attr();
                    }
                    self.skip_pattern_to("=>");
                    if self.at2("=", ">") {
                        self.bump();
                        self.bump();
                        arms.push(self.expr(true));
                        self.eat(",");
                    } else {
                        break;
                    }
                }
                self.eat("}");
            }
            return Expr {
                kind: ExprKind::Match { scrutinee, arms },
                line,
            };
        }
        if self.at("while") {
            self.bump();
            let cond = if self.at("let") {
                self.bump();
                self.skip_pattern_to("=");
                self.eat("=");
                Some(Box::new(self.expr(false)))
            } else {
                Some(Box::new(self.expr(false)))
            };
            let body = self.parse_block();
            return Expr {
                kind: ExprKind::While { cond, body },
                line,
            };
        }
        if self.at("for") {
            self.bump();
            self.skip_pattern_to("in");
            self.eat("in");
            let iter = Box::new(self.expr(false));
            let body = self.parse_block();
            return Expr {
                kind: ExprKind::For { iter, body },
                line,
            };
        }
        if self.at("loop") || self.at("unsafe") || self.at("async") {
            self.bump();
            if self.at("{") {
                let b = self.parse_block();
                return Expr {
                    kind: ExprKind::Block(b),
                    line,
                };
            }
            return self.prefix(structs_ok);
        }
        if self.at("return") || self.at("break") {
            self.bump();
            let arg = if self.at(";") || self.at("}") || self.at(",") || self.at(")") {
                None
            } else {
                Some(Box::new(self.expr(structs_ok)))
            };
            return Expr {
                kind: ExprKind::Jump(arg),
                line,
            };
        }
        if self.at("continue") {
            self.bump();
            return Expr {
                kind: ExprKind::Jump(None),
                line,
            };
        }
        if self.at("..") {
            // Never produced (tokenizer yields single chars); kept for
            // completeness.
            self.bump();
        }
        // `.` leading ranges `..expr` / stray punctuation → Unknown.
        if self.at(".") {
            self.bump();
            self.eat(".");
            self.eat("=");
            if self.at(";") || self.at(")") || self.at("]") || self.at("}") || self.at(",") {
                return Expr {
                    kind: ExprKind::Unknown(Vec::new()),
                    line,
                };
            }
            let e = self.expr_bp(2, structs_ok);
            return Expr {
                kind: ExprKind::Unknown(vec![e]),
                line,
            };
        }
        // Paths, calls, struct literals, macros.
        if self.ident().is_some() {
            let mut segs: Vec<String> = Vec::new();
            while let Some(id) = self.ident() {
                segs.push(id.to_string());
                self.bump();
                if self.at2(":", ":") {
                    self.bump();
                    self.bump();
                    if self.at("<") {
                        // Turbofish: skip and keep pathing if `::` follows.
                        self.skip_balanced("<", ">");
                        if self.at2(":", ":") {
                            self.bump();
                            self.bump();
                            continue;
                        }
                        break;
                    }
                    continue;
                }
                break;
            }
            // Macro invocation.
            if self.at("!") {
                self.bump();
                let name = segs.last().cloned().unwrap_or_default();
                let args = self.macro_args();
                return self.postfix(
                    Expr {
                        kind: ExprKind::Macro { name, args },
                        line,
                    },
                    structs_ok,
                );
            }
            // Call.
            if self.at("(") {
                self.bump();
                let mut args = Vec::new();
                while !self.done() && !self.at(")") {
                    args.push(self.expr(true));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat(")");
                return self.postfix(
                    Expr {
                        kind: ExprKind::Call { path: segs, args },
                        line,
                    },
                    structs_ok,
                );
            }
            // Struct literal.
            if structs_ok && self.at("{") && self.struct_literal_ahead() {
                self.bump();
                let mut fields = Vec::new();
                while !self.done() && !self.at("}") {
                    if self.at2(".", ".") {
                        // `..base`
                        self.bump();
                        self.bump();
                        let base = self.expr(true);
                        fields.push(("..".to_string(), base));
                        break;
                    }
                    let Some(fname) = self.ident() else {
                        self.bump();
                        continue;
                    };
                    let fname = fname.to_string();
                    let fline = self.line();
                    self.bump();
                    if self.eat(":") {
                        let v = self.expr(true);
                        fields.push((fname, v));
                    } else {
                        // Shorthand `Struct { field }`.
                        fields.push((
                            fname.clone(),
                            Expr {
                                kind: ExprKind::Path(vec![fname]),
                                line: fline,
                            },
                        ));
                    }
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat("}");
                return self.postfix(
                    Expr {
                        kind: ExprKind::Struct { path: segs, fields },
                        line,
                    },
                    structs_ok,
                );
            }
            return self.postfix(
                Expr {
                    kind: ExprKind::Path(segs),
                    line,
                },
                structs_ok,
            );
        }
        // Anything else: consume one token so the parser advances.
        self.bump();
        Expr {
            kind: ExprKind::Unknown(Vec::new()),
            line,
        }
    }

    /// After a path, decides whether `{` starts a struct literal: yes if
    /// the brace is followed by `ident:` / `ident,` / `ident}` / `..`.
    fn struct_literal_ahead(&self) -> bool {
        let Some(n1) = self.peek(1) else { return false };
        if n1.is("}") {
            return true;
        }
        if n1.kind != TokKind::Ident {
            return n1.is(".");
        }
        match self.peek(2) {
            Some(n2) => {
                (n2.is(":") && !self.peek(3).is_some_and(|t| t.is(":"))) || n2.is(",") || n2.is("}")
            }
            None => false,
        }
    }

    /// Best-effort macro arguments: parses a comma-separated expression
    /// list inside `(…)`/`[…]`/`{…}`; on anything weird, falls back to a
    /// loose scan that still recovers call-shaped subsequences.
    fn macro_args(&mut self) -> Vec<Expr> {
        let (open, close) = if self.at("(") {
            ("(", ")")
        } else if self.at("[") {
            ("[", "]")
        } else if self.at("{") {
            ("{", "}")
        } else {
            return Vec::new();
        };
        self.bump();
        let mut args = Vec::new();
        let mut guard = 0usize;
        while !self.done() && !self.at(close) {
            let before = self.i;
            args.push(self.expr(true));
            self.eat(",");
            // Format-macro tails (`{x:.3}` inside the literal are dropped
            // by the tokenizer, but named args `x = expr` parse fine).
            if self.i == before {
                self.bump();
            }
            guard += 1;
            if guard > 4096 {
                break;
            }
        }
        // Resync: we may be deep in unparsed macro soup; skip to close.
        let mut depth = 1i32;
        while !self.done() {
            if self.at(open) {
                depth += 1;
            } else if self.at(close) {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    break;
                }
            }
            self.bump();
        }
        args
    }

    /// Skips pattern tokens up to `stop` (`=>`, `=`, or `in`) at depth 0.
    fn skip_pattern_to(&mut self, stop: &str) {
        let mut d = 0i32;
        while !self.done() {
            if self.at("(") || self.at("[") || self.at("{") {
                d += 1;
            } else if self.at(")") || self.at("]") || self.at("}") {
                if d == 0 {
                    return;
                }
                d -= 1;
            } else if d == 0 {
                match stop {
                    "=>" if self.at2("=", ">") => {
                        return;
                    }
                    "=" if self.at("=") && !self.peek(1).is_some_and(|t| t.is("=")) => {
                        return;
                    }
                    "in" if self.at("in") => {
                        return;
                    }
                    _ => {}
                }
            }
            self.bump();
        }
    }

    /// Postfix chain: method calls, field access, indexing, `?`, `.await`,
    /// `as` casts, and call-on-expression.
    fn postfix(&mut self, mut e: Expr, structs_ok: bool) -> Expr {
        loop {
            if self.done() {
                return e;
            }
            if self.at("?") {
                self.bump();
                continue;
            }
            if self.at("as") {
                let line = self.line();
                self.bump();
                // Consume the cast target type.
                let _ = self.render_type(&[
                    ";", ",", ")", "]", "}", "{", "+", "-", "*", "/", "%", "=", "<", ">", "?", ".",
                    "&", "|",
                ]);
                e = Expr {
                    kind: ExprKind::Cast(Box::new(e)),
                    line,
                };
                continue;
            }
            if self.at(".") && !self.peek(1).is_some_and(|t| t.is(".")) {
                let line = self.line();
                self.bump();
                if self.at("await") {
                    self.bump();
                    continue;
                }
                if let Some(t) = self.peek(0) {
                    if t.kind == TokKind::Number {
                        let name = t.text.to_string();
                        self.bump();
                        e = Expr {
                            kind: ExprKind::Field {
                                base: Box::new(e),
                                name,
                            },
                            line,
                        };
                        continue;
                    }
                }
                let Some(id) = self.ident() else {
                    // `.` followed by something unexpected; stop the chain.
                    return e;
                };
                let name = id.to_string();
                self.bump();
                // Turbofish on methods: `.collect::<Vec<_>>()`.
                if self.at2(":", ":") {
                    self.bump();
                    self.bump();
                    self.skip_balanced("<", ">");
                }
                if self.at("(") {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.done() && !self.at(")") {
                        args.push(self.expr(true));
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat(")");
                    e = Expr {
                        kind: ExprKind::Method {
                            recv: Box::new(e),
                            name,
                            args,
                        },
                        line,
                    };
                } else {
                    e = Expr {
                        kind: ExprKind::Field {
                            base: Box::new(e),
                            name,
                        },
                        line,
                    };
                }
                continue;
            }
            if self.at("(") {
                // Call-on-expression `(f)(x)`: keep args, drop callee shape.
                let line = self.line();
                self.bump();
                let mut args = Vec::new();
                while !self.done() && !self.at(")") {
                    args.push(self.expr(true));
                    if !self.eat(",") {
                        break;
                    }
                }
                self.eat(")");
                let mut children = vec![e];
                children.extend(args);
                e = Expr {
                    kind: ExprKind::Unknown(children),
                    line,
                };
                continue;
            }
            if self.at("[") {
                let line = self.line();
                self.bump();
                let idx = self.expr(true);
                self.eat("]");
                e = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(idx),
                    },
                    line,
                };
                continue;
            }
            let _ = structs_ok;
            return e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::classify;
    use crate::tokenizer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        let toks = tokenize(src);
        parse_file(&classify("crates/sim/src/fx.rs"), &toks)
    }

    #[test]
    fn fn_items_and_methods_are_found() {
        let p = parse(
            "fn free() {}\n\
             struct S { x: f64 }\n\
             impl S { fn m(&self, y: f64) -> f64 { self.x + y } }\n\
             impl Clone for S { fn clone(&self) -> S { S { x: self.x } } }",
        );
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "free");
        assert_eq!(p.fns[1].qual.as_deref(), Some("S"));
        assert_eq!(p.fns[2].trait_name.as_deref(), Some("Clone"));
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields[0].0, "x");
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let p = parse(
            "use std::time::Instant as Clock;\n\
             use std::collections::{HashMap, BTreeMap as Sorted};\n\
             use cpm_rng::*;",
        );
        assert_eq!(p.uses.len(), 4);
        assert_eq!(p.uses[0].alias, "Clock");
        assert_eq!(p.uses[0].segs, vec!["std", "time", "Instant"]);
        assert_eq!(p.uses[1].alias, "HashMap");
        assert_eq!(p.uses[2].alias, "Sorted");
        assert_eq!(p.uses[2].segs, vec!["std", "collections", "BTreeMap"]);
        assert!(p.uses[3].glob);
        assert_eq!(p.uses[3].segs, vec!["cpm_rng"]);
    }

    #[test]
    fn calls_and_method_chains_parse() {
        let p = parse("fn f() -> f64 { let a = helper(1.0); a.step(2.0).value() + g::h(a) }");
        let mut calls = Vec::new();
        let mut methods = Vec::new();
        p.fns[0].walk(&mut |e| match &e.kind {
            ExprKind::Call { path, .. } => calls.push(path.join("::")),
            ExprKind::Method { name, .. } => methods.push(name.clone()),
            _ => {}
        });
        assert_eq!(calls, vec!["helper", "g::h"]);
        // Pre-order walk: the outer call of a chain is visited first.
        assert_eq!(methods, vec!["value", "step"]);
    }

    #[test]
    fn binary_precedence_and_dims_shape() {
        let p = parse("fn f(a: f64, b: f64) -> f64 { a + b * 2.0 }");
        let Some(Stmt::Expr(e)) = p.fns[0].body.as_ref().and_then(|b| b.stmts.first()) else {
            panic!("no body expr");
        };
        let ExprKind::Binary { op, rhs, .. } = &e.kind else {
            panic!("expected binary, got {e:?}");
        };
        assert_eq!(*op, BinOp::Add);
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn cfg_test_marks_fns() {
        let p = parse(
            "fn lib() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { lib(); }\n}",
        );
        assert!(!p.fns[0].in_test);
        assert!(p.fns[1].in_test, "{:?}", p.fns[1]);
    }

    #[test]
    fn struct_literal_vs_block_disambiguates() {
        let p = parse("fn f(c: bool, v: f64) -> S { if c { S { x: v } } else { S { x: 0.0 } } }");
        let mut structs = 0;
        p.fns[0].walk(&mut |e| {
            if matches!(e.kind, ExprKind::Struct { .. }) {
                structs += 1;
            }
        });
        assert_eq!(structs, 2);
    }

    #[test]
    fn match_arms_keep_bodies() {
        let p = parse(
            "fn f(x: Option<f64>) -> f64 { match x { Some(v) => v + 1.0, None => fallback(), } }",
        );
        let mut calls = Vec::new();
        p.fns[0].walk(&mut |e| {
            if let ExprKind::Call { path, .. } = &e.kind {
                calls.push(path.join("::"));
            }
        });
        assert_eq!(calls, vec!["fallback"]);
    }

    #[test]
    fn closures_and_macros_expose_calls() {
        let p = parse(
            "fn f(v: &[f64]) -> f64 { let s: f64 = v.iter().map(|x| scale(*x)).sum(); \
             assert!(s > lower_bound(), \"bad {s}\"); s }",
        );
        let mut calls = Vec::new();
        p.fns[0].walk(&mut |e| {
            if let ExprKind::Call { path, .. } = &e.kind {
                calls.push(path.join("::"));
            }
        });
        assert!(calls.contains(&"scale".to_string()));
        assert!(calls.contains(&"lower_bound".to_string()));
    }

    #[test]
    fn let_bindings_carry_types_and_inits() {
        let p = parse("fn f() { let w: Watts = Watts::new(3.0); let (a, b) = pair(); }");
        let body = p.fns[0].body.as_ref().unwrap();
        let Stmt::Let { name, ty, init, .. } = &body.stmts[0] else {
            panic!("expected let");
        };
        assert_eq!(name.as_deref(), Some("w"));
        assert_eq!(ty.as_deref(), Some("Watts"));
        assert!(matches!(
            init.as_ref().map(|e| &e.kind),
            Some(ExprKind::Call { .. })
        ));
        let Stmt::Let {
            name: n2, init: i2, ..
        } = &body.stmts[1]
        else {
            panic!("expected let");
        };
        assert!(n2.is_none());
        assert!(i2.is_some());
    }

    #[test]
    fn pathological_input_terminates() {
        // Unbalanced everything; the fuel guard must keep this finite.
        let src = "fn f( { ) [ } < impl :: => if let { { { \"x";
        let _ = parse(src);
        let src2 = "fn f() { ((((((((((((((((((((((((((((((()))))))))))))))))))))))))))))))) }";
        let _ = parse(src2);
    }

    #[test]
    fn nested_fns_and_trait_decls() {
        let p = parse(
            "trait T { fn decl(&self) -> f64; fn dflt(&self) -> f64 { self.decl() * 2.0 } }\n\
             fn outer() { fn inner() {} inner(); }",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"decl"));
        assert!(names.contains(&"dflt"));
        assert!(names.contains(&"inner"));
        assert!(names.contains(&"outer"));
        let decl = p.fns.iter().find(|f| f.name == "decl").unwrap();
        assert!(decl.body.is_none());
        assert_eq!(decl.qual.as_deref(), Some("T"));
    }
}
