//! Cross-crate call-graph construction over parsed files.
//!
//! The graph is a deliberate **over-approximation** — edges may exist
//! that no execution takes, but no real call is missing:
//!
//! * Path calls resolve through the file's `use` aliases (including
//!   renames and glob imports). `use cpm_obs::Recorder as R; R::record()`
//!   lands on `cpm-obs::Recorder::record`.
//! * A bare call `f()` resolves to every free function `f` in the same
//!   crate, plus free `f` in any glob-imported workspace crate — module
//!   paths inside a crate are not tracked.
//! * A method call `.m()` resolves to **every** workspace method named
//!   `m` (inherent or trait), in any crate. Receiver types are unknown,
//!   so this is the sound choice; the taint pass inherits the
//!   conservatism.
//! * `use` declarations inside `#[cfg(test)]` only resolve calls made
//!   from test code, so test-only imports cannot create library edges.
//!
//! Resolution also renders each path call's *absolute* path (through
//! aliases, with `crate`/`self` normalized), which the taint pass
//! pattern-matches against external nondeterminism sources like
//! `std::time::Instant::now`.

use crate::ast::{ExprKind, FnDef, ParsedFile, UseDecl};
use crate::rules::Role;

/// Identity of one function in the workspace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnKey {
    /// Crate name (`cpm-sim` style, `cpm` for the root package).
    pub krate: String,
    /// The impl/trait type the fn is a method of, if any.
    pub qual: Option<String>,
    /// Function name.
    pub name: String,
}

impl FnKey {
    /// Renders `crate::Type::name` / `crate::name` for diagnostics.
    pub fn render(&self) -> String {
        match &self.qual {
            Some(q) => format!("{}::{}::{}", self.krate, q, self.name),
            None => format!("{}::{}", self.krate, self.name),
        }
    }
}

/// One function node of the graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Who this is.
    pub key: FnKey,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Last source line the body touches (== `line` for bodyless decls).
    pub end_line: usize,
    /// True for test-role files, `#[cfg(test)]` regions, and `#[test]`s.
    pub in_test: bool,
}

/// One resolved path call inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based line of the call.
    pub line: usize,
    /// Absolute path after alias expansion (`["std","time","Instant","now"]`).
    pub resolved: Vec<String>,
    /// Workspace node indices this call may land on (empty for externals).
    pub targets: Vec<usize>,
}

/// One method call inside a function body.
#[derive(Debug, Clone)]
pub struct MethodSite {
    /// 1-based line of the call.
    pub line: usize,
    /// Method name.
    pub name: String,
    /// Workspace node indices this call may land on.
    pub targets: Vec<usize>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every function found, in deterministic (file, line) order.
    pub nodes: Vec<FnNode>,
    /// Per-node resolved path calls.
    pub calls: Vec<Vec<CallSite>>,
    /// Per-node method calls.
    pub methods: Vec<Vec<MethodSite>>,
}

impl CallGraph {
    /// All callee node indices of `n`, path calls and method calls
    /// together, deduplicated, in ascending order.
    pub fn callees(&self, n: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.calls[n]
            .iter()
            .flat_map(|c| c.targets.iter().copied())
            .chain(
                self.methods[n]
                    .iter()
                    .flat_map(|m| m.targets.iter().copied()),
            )
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Finds the innermost node whose span contains `file:line` — the
    /// one with the greatest start line at or before `line`.
    pub fn enclosing_fn(&self, file: &str, line: usize) -> Option<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.file == file && n.line <= line && line <= n.end_line)
            .max_by_key(|(_, n)| n.line)
            .map(|(i, _)| i)
    }

    /// Nodes matching a `(crate, qual, name)` pattern; `qual` of `None`
    /// in the pattern means "free function", `Some("*")` any method.
    pub fn find(&self, krate: &str, qual: Option<&str>, name: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.key.krate == krate
                    && n.key.name == name
                    && match qual {
                        None => n.key.qual.is_none(),
                        Some("*") => n.key.qual.is_some(),
                        Some(q) => n.key.qual.as_deref() == Some(q),
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Maps a path's first segment to a workspace crate name: `cpm_sim` →
/// `cpm-sim`, `crate`/`self`/`super` → the current crate. Returns `None`
/// for `std`/`core`/`alloc` and unknown roots.
fn seg_to_crate(seg: &str, current: &str) -> Option<String> {
    match seg {
        "crate" | "self" | "super" => Some(current.to_string()),
        "std" | "core" | "alloc" => None,
        s if s.starts_with("cpm_") => Some(s.replace('_', "-")),
        "cpm" => Some("cpm".to_string()),
        _ => None,
    }
}

/// Expands `path` through the file's `use` aliases. Only uses visible to
/// the caller apply: test-only uses resolve test-only calls.
fn expand_path(path: &[String], uses: &[UseDecl], from_test: bool) -> Vec<String> {
    let Some(first) = path.first() else {
        return path.to_vec();
    };
    for u in uses {
        if u.glob || (u.in_test && !from_test) {
            continue;
        }
        if &u.alias == first {
            let mut out = u.segs.clone();
            out.extend(path.iter().skip(1).cloned());
            return out;
        }
    }
    path.to_vec()
}

/// Builds the call graph for a set of parsed files.
pub fn build(files: &[ParsedFile]) -> CallGraph {
    // Pass 1: nodes.
    let mut nodes = Vec::new();
    let mut fn_refs: Vec<(&ParsedFile, &FnDef)> = Vec::new();
    for pf in files {
        let file_is_test = pf.ctx.role == Role::Test;
        for f in &pf.fns {
            let mut end_line = f.line;
            f.walk(&mut |e| end_line = end_line.max(e.line));
            nodes.push(FnNode {
                key: FnKey {
                    krate: pf.ctx.crate_name.clone(),
                    qual: f.qual.clone(),
                    name: f.name.clone(),
                },
                file: pf.ctx.rel_path.clone(),
                line: f.line,
                end_line,
                in_test: f.in_test || file_is_test,
            });
            fn_refs.push((pf, f));
        }
    }
    // Index: name → node indices, split free vs method, for resolution.
    let find_free = |krate: &str, name: &str| -> Vec<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.key.krate == krate && n.key.qual.is_none() && n.key.name == name)
            .map(|(i, _)| i)
            .collect()
    };
    let find_method = |krate: Option<&str>, qual: &str, name: &str| -> Vec<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.key.name == name
                    && n.key.qual.as_deref() == Some(qual)
                    && krate.map_or(true, |k| n.key.krate == k)
            })
            .map(|(i, _)| i)
            .collect()
    };
    let find_any_method = |name: &str| -> Vec<usize> {
        nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.key.qual.is_some() && n.key.name == name)
            .map(|(i, _)| i)
            .collect()
    };

    // Pass 2: resolve call sites per node.
    let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); nodes.len()];
    let mut methods: Vec<Vec<MethodSite>> = vec![Vec::new(); nodes.len()];
    for (n, (pf, f)) in fn_refs.iter().enumerate() {
        let from_test = nodes[n].in_test;
        let current = pf.ctx.crate_name.as_str();
        f.walk(&mut |e| match &e.kind {
            ExprKind::Call { path, .. } => {
                let resolved = expand_path(path, &pf.uses, from_test);
                let mut targets = Vec::new();
                if resolved.len() == 1 {
                    // Bare `f()`: same crate, then glob-imported crates.
                    targets.extend(find_free(current, &resolved[0]));
                    for u in &pf.uses {
                        if !u.glob || (u.in_test && !from_test) {
                            continue;
                        }
                        if let Some(k) = u.segs.first().and_then(|s| seg_to_crate(s, current)) {
                            if k != current {
                                targets.extend(find_free(&k, &resolved[0]));
                            }
                        }
                    }
                } else {
                    let name = resolved.last().cloned().unwrap_or_default();
                    let prev = &resolved[resolved.len() - 2];
                    let krate = seg_to_crate(&resolved[0], current);
                    let type_like = prev.chars().next().is_some_and(|c| c.is_uppercase());
                    if type_like {
                        // `Type::assoc()` — an inherent/trait method. When
                        // the path carries no crate root (`Recorder::new`
                        // after `use cpm_obs::Recorder`), `expand_path`
                        // already inserted it; a still-unrooted path means
                        // a crate-local type.
                        targets.extend(find_method(
                            krate.as_deref().or(Some(current)),
                            prev,
                            &name,
                        ));
                        if targets.is_empty() && krate.is_none() && resolved.len() == 2 {
                            // Unimported capitalized path: could be a glob
                            // import of the type. Over-approximate across
                            // glob-imported crates.
                            for u in &pf.uses {
                                if !u.glob || (u.in_test && !from_test) {
                                    continue;
                                }
                                if let Some(k) =
                                    u.segs.first().and_then(|s| seg_to_crate(s, current))
                                {
                                    targets.extend(find_method(Some(&k), prev, &name));
                                }
                            }
                        }
                    } else {
                        // Module path: `module::f()` / `cpm_x::module::f()`.
                        let k = krate.unwrap_or_else(|| current.to_string());
                        targets.extend(find_free(&k, &name));
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                calls[n].push(CallSite {
                    line: e.line,
                    resolved,
                    targets,
                });
            }
            ExprKind::Method { name, .. } => {
                let mut targets = find_any_method(name);
                targets.sort_unstable();
                targets.dedup();
                methods[n].push(MethodSite {
                    line: e.line,
                    name: name.clone(),
                    targets,
                });
            }
            _ => {}
        });
    }
    CallGraph {
        nodes,
        calls,
        methods,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::rules::classify;
    use crate::tokenizer::tokenize;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<_> = files
            .iter()
            .map(|(path, src)| parse_file(&classify(path), &tokenize(src)))
            .collect();
        build(&parsed)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.key.name == name)
            .unwrap_or_else(|| panic!("no node {name}"))
    }

    #[test]
    fn same_crate_bare_calls_resolve() {
        let g = graph(&[("crates/sim/src/lib.rs", "fn a() { b(); }\nfn b() {}")]);
        let a = node(&g, "a");
        let b = node(&g, "b");
        assert_eq!(g.callees(a), vec![b]);
        assert!(g.callees(b).is_empty());
    }

    #[test]
    fn cross_crate_alias_calls_resolve() {
        let g = graph(&[
            (
                "crates/core/src/lib.rs",
                "use cpm_obs::Recorder as R;\nfn drive() { R::record_all(); }",
            ),
            (
                "crates/obs/src/lib.rs",
                "pub struct Recorder;\nimpl Recorder { pub fn record_all() {} }",
            ),
        ]);
        let d = node(&g, "drive");
        let r = node(&g, "record_all");
        assert_eq!(g.callees(d), vec![r]);
        assert_eq!(g.nodes[r].key.render(), "cpm-obs::Recorder::record_all");
    }

    #[test]
    fn bare_calls_do_not_cross_crates_without_imports() {
        let g = graph(&[
            ("crates/sim/src/lib.rs", "fn step() { helper(); }"),
            ("crates/power/src/lib.rs", "pub fn helper() {}"),
        ]);
        let s = node(&g, "step");
        assert!(
            g.callees(s).is_empty(),
            "un-imported cross-crate bare call must not resolve"
        );
    }

    #[test]
    fn glob_imports_do_resolve() {
        let g = graph(&[
            (
                "crates/sim/src/lib.rs",
                "use cpm_power::*;\nfn step() { helper(); }",
            ),
            ("crates/power/src/lib.rs", "pub fn helper() {}"),
        ]);
        let s = node(&g, "step");
        let h = node(&g, "helper");
        assert_eq!(g.callees(s), vec![h]);
    }

    #[test]
    fn method_calls_over_approximate_across_types() {
        let g = graph(&[
            (
                "crates/sim/src/lib.rs",
                "struct A; impl A { fn go(&self) {} }\nstruct B; impl B { fn go(&self) {} }\nfn f(a: A) { a.go(); }",
            ),
        ]);
        let f = node(&g, "f");
        // Both `go`s: the receiver type is unknown, so both edges exist.
        assert_eq!(g.callees(f).len(), 2);
    }

    #[test]
    fn trait_vs_inherent_collision_keeps_both() {
        let g = graph(&[(
            "crates/sim/src/lib.rs",
            "struct S;\n\
             impl S { fn tick(&self) {} }\n\
             trait Clocked { fn tick(&self); }\n\
             impl Clocked for S { fn tick(&self) { nested(); } }\n\
             fn nested() {}\n\
             fn drive(s: S) { s.tick(); }",
        )]);
        let d = node(&g, "drive");
        let callees = g.callees(d);
        // Inherent S::tick, trait-decl Clocked::tick, impl Clocked-for-S
        // tick: all named `tick` with a qual.
        assert_eq!(callees.len(), 3, "{:?}", g.nodes);
    }

    #[test]
    fn cfg_test_only_imports_do_not_create_library_edges() {
        let g = graph(&[
            (
                "crates/sim/src/lib.rs",
                "fn lib_f() { helper(); }\n\
                 #[cfg(test)]\nmod tests {\n  use cpm_power::*;\n  fn test_f() { helper(); }\n}",
            ),
            ("crates/power/src/lib.rs", "pub fn helper() {}"),
        ]);
        let lib_f = node(&g, "lib_f");
        let test_f = node(&g, "test_f");
        let h = node(&g, "helper");
        assert!(
            g.callees(lib_f).is_empty(),
            "library fn must not see the test-only glob import"
        );
        assert_eq!(g.callees(test_f), vec![h]);
        assert!(g.nodes[test_f].in_test);
        assert!(!g.nodes[lib_f].in_test);
    }

    #[test]
    fn use_rename_chain_resolves_absolute_path() {
        let g = graph(&[(
            "crates/sim/src/lib.rs",
            "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }",
        )]);
        let f = node(&g, "f");
        assert_eq!(g.calls[f].len(), 1);
        assert_eq!(
            g.calls[f][0].resolved,
            vec!["std", "time", "Instant", "now"]
        );
        assert!(g.calls[f][0].targets.is_empty(), "std is external");
    }

    #[test]
    fn crate_and_module_paths_resolve_within_crate() {
        let g = graph(&[(
            "crates/sim/src/lib.rs",
            "mod inner { pub fn deep() {} }\n\
             fn f() { crate::deep(); inner::deep(); self::deep(); }",
        )]);
        let f = node(&g, "f");
        let d = node(&g, "deep");
        assert_eq!(g.callees(f), vec![d]);
    }

    #[test]
    fn enclosing_fn_maps_lines_to_innermost() {
        let g = graph(&[(
            "crates/sim/src/lib.rs",
            "fn outer() {\n  let x = 1;\n  step(x);\n}\nfn step(x: i32) {}",
        )]);
        let o = node(&g, "outer");
        assert_eq!(g.enclosing_fn("crates/sim/src/lib.rs", 3), Some(o));
        assert_eq!(g.enclosing_fn("crates/sim/src/lib.rs", 99), None);
    }

    #[test]
    fn must_not_resolve_unknown_method() {
        let g = graph(&[(
            "crates/sim/src/lib.rs",
            "fn f(v: Vec<f64>) { v.no_such_method_anywhere(); }",
        )]);
        let f = node(&g, "f");
        assert!(g.callees(f).is_empty());
    }
}
