//! A lossy-but-honest Rust tokenizer for static analysis.
//!
//! The linter's whole credibility rests on never matching text inside
//! comments, string literals, or raw strings — a regex over source text
//! would flag `// don't call Instant::now here` as a violation. This
//! tokenizer produces a stream of identifier/punctuation/literal tokens
//! with line numbers, dropping comment and literal *content* entirely,
//! so rule patterns match only executable source structure.
//!
//! It is not a full lexer: numeric literal grammar is approximate and
//! tokens carry no spans beyond the line. Both are fine for pattern
//! matching; neither can cause a false positive inside skipped text.

/// What a token is, as far as rule matching cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`let`, `HashMap`, `unsafe`, …).
    Ident,
    /// A single punctuation character (`.`, `:`, `!`, `<`, …).
    Punct,
    /// A string/char/byte literal; `text` is empty, content is dropped.
    Literal,
    /// A numeric literal.
    Number,
    /// A lifetime (`'a`); content is dropped.
    Lifetime,
}

/// One token of the source file.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Source text for idents and puncts; empty for literals/lifetimes.
    pub text: &'a str,
    /// 1-based source line the token starts on.
    pub line: usize,
}

impl<'a> Tok<'a> {
    /// True when the token is the identifier or punctuation `s`.
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Tokenizes `src`, skipping whitespace, `//` and nested `/* */`
/// comments, and the contents of every string/char/byte/raw literal.
pub fn tokenize(src: &str) -> Vec<Tok<'_>> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    // Advances `line` for every newline in `b[from..to]`.
    fn count_lines(b: &[u8], from: usize, to: usize, line: &mut usize) {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count();
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_ascii_whitespace() {
            if c == b'\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` docs).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment, nesting like Rust's.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            count_lines(b, start, i, &mut line);
            continue;
        }
        // Raw strings and byte/raw-byte prefixes: r"", r#""#, b"", br"", b''.
        if c == b'r' || c == b'b' {
            if let Some(end) = raw_or_byte_literal_end(b, i) {
                toks.push(Tok {
                    kind: TokKind::Literal,
                    text: "",
                    line,
                });
                count_lines(b, i, end, &mut line);
                i = end;
                continue;
            }
        }
        // Plain string literal.
        if c == b'"' {
            let end = quoted_end(b, i + 1, b'"');
            toks.push(Tok {
                kind: TokKind::Literal,
                text: "",
                line,
            });
            count_lines(b, i, end, &mut line);
            i = end;
            continue;
        }
        // `'`: lifetime or char literal. A lifetime is `'` + ident NOT
        // closed by another `'` (so `'a'` is a char, `'a` a lifetime).
        if c == b'\'' {
            let mut j = i + 1;
            if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') && b[j] != b'\\' {
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                if j < b.len() && b[j] == b'\'' {
                    // Char literal like 'a'.
                    toks.push(Tok {
                        kind: TokKind::Literal,
                        text: "",
                        line,
                    });
                    i = j + 1;
                } else {
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: "",
                        line,
                    });
                    i = j;
                }
                continue;
            }
            // Escaped or non-alphabetic char literal: '\n', '0', ' ', etc.
            let end = quoted_end(b, i + 1, b'\'');
            toks.push(Tok {
                kind: TokKind::Literal,
                text: "",
                line,
            });
            count_lines(b, i, end, &mut line);
            i = end;
            continue;
        }
        // Identifier / keyword. A raw identifier (`r#match`) is one
        // token whose text keeps the `r#` prefix, so it can never be
        // confused with the bare keyword during parsing or rule
        // matching. (Raw *strings* `r#"…"#` were already consumed
        // above: they require a `"` after the hashes.)
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            if c == b'r'
                && i + 2 < b.len()
                && b[i + 1] == b'#'
                && (b[i + 2].is_ascii_alphabetic() || b[i + 2] == b'_')
            {
                i += 2;
            }
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: &src[start..i],
                line,
            });
            continue;
        }
        // Numeric literal (approximate: consumes digits, `_`, `.`, and
        // alphanumeric suffixes like `0xff`, `1e-3`, `1.5f64`).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                let continues = d.is_ascii_alphanumeric()
                    || d == b'_'
                    || (d == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit())
                    || ((d == b'+' || d == b'-')
                        && matches!(b[i - 1], b'e' | b'E')
                        && i + 1 < b.len()
                        && b[i + 1].is_ascii_digit());
                if !continues {
                    break;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: &src[start..i],
                line,
            });
            continue;
        }
        // Anything else: one punctuation character.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: &src[i..i + 1],
            line,
        });
        i += 1;
    }
    toks
}

/// End index (exclusive) of a quoted run starting *inside* the quotes at
/// `from`, honoring backslash escapes; saturates at EOF for unterminated
/// literals.
fn quoted_end(b: &[u8], mut from: usize, quote: u8) -> usize {
    while from < b.len() {
        match b[from] {
            c if c == quote => return from + 1,
            b'\\' => from = (from + 2).min(b.len()),
            _ => from += 1,
        }
    }
    b.len()
}

/// If `b[i..]` starts a raw string (`r"`, `r#"`), byte string (`b"`),
/// raw byte string (`br#"`), or byte char (`b'`), returns its end index.
fn raw_or_byte_literal_end(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            return Some(quoted_end(b, j + 1, b'\''));
        }
        if j < b.len() && b[j] == b'"' {
            return Some(quoted_end(b, j + 1, b'"'));
        }
        if j < b.len() && b[j] == b'r' {
            raw = true;
            j += 1;
        }
    } else if b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if !raw {
        return None;
    }
    // Count the `#`s of r#*" and find the matching "#*.
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return None; // An identifier starting with r/br, e.g. `raw`.
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < b.len() && b[k] == b'#' && seen < hashes {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return Some(k);
            }
        }
        j += 1;
    }
    Some(b.len())
}

/// True when tokens starting at `i` match `pat` textually (idents and
/// puncts compare by text; literals/lifetimes never match).
pub fn seq_is(toks: &[Tok<'_>], i: usize, pat: &[&str]) -> bool {
    pat.len() <= toks.len().saturating_sub(i)
        && pat.iter().enumerate().all(|(k, p)| toks[i + k].is(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .map(|t| {
                if t.text.is_empty() {
                    format!("<{:?}>", t.kind)
                } else {
                    t.text.to_string()
                }
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_dropped() {
        let src = r###"
            // Instant::now() in a comment
            /* HashMap.iter() in a block /* nested */ comment */
            let s = "println!(\"not code\")";
            let r = r#"Instant::now() "quoted" raw"#;
        "###;
        let t = texts(src);
        assert!(!t
            .iter()
            .any(|x| x == "Instant" || x == "println" || x == "iter"));
        assert_eq!(t.iter().filter(|x| x.as_str() == "let").count(), 2);
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let t = tokenize("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = t.iter().filter(|k| k.kind == TokKind::Lifetime).count();
        let chars = t.iter().filter(|k| k.kind == TokKind::Literal).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let toks = tokenize(src);
        let b = toks.iter().find(|t| t.is("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let t = texts("let x = b\"abc\"; let y = br#\"d\"ef\"#; let z = b'q';");
        assert!(!t.iter().any(|x| x.contains("abc") || x.contains("def")));
        assert_eq!(t.iter().filter(|x| x.as_str() == "let").count(), 3);
    }

    #[test]
    fn seq_matching_ignores_whitespace() {
        let toks = tokenize("m .\n lock( ) . unwrap ()");
        assert!(seq_is(&toks, 1, &[".", "lock", "(", ")", ".", "unwrap"]));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let t = tokenize(r"let q = '\''; let after = 2;");
        assert!(t.iter().any(|x| x.is("after")));
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        // `r#match` must not split into `r`, `#`, `match` — the bare
        // keyword appearing from nowhere would confuse the parser.
        let t = texts("let r#match = r#fn + other;");
        assert!(t.contains(&"r#match".to_string()));
        assert!(t.contains(&"r#fn".to_string()));
        assert!(!t.contains(&"match".to_string()));
        assert!(!t.contains(&"fn".to_string()));
        assert!(!t.contains(&"#".to_string()));
    }

    #[test]
    fn raw_identifier_does_not_swallow_raw_strings() {
        // `r#"…"#` is a raw string (quote after the hash), not a raw
        // identifier; `r#x` is an identifier, not a truncated string.
        let t = texts("let a = r#\"Instant::now()\"#; let r#b = 1;");
        assert!(!t.iter().any(|x| x.contains("Instant")));
        assert!(t.contains(&"r#b".to_string()));
        assert_eq!(t.iter().filter(|x| x.as_str() == "let").count(), 2);
    }

    #[test]
    fn byte_string_escapes_and_multiline_raw_byte_strings() {
        // An escaped quote inside b"…" must not terminate the literal
        // early, and a multi-line br#"…"# must keep line numbers right.
        let src = "let a = b\"x\\\"y\";\nlet b = br#\"l1\nl2\"#;\nlet after = 3;";
        let toks = tokenize(src);
        let after = toks.iter().find(|t| t.is("after")).unwrap();
        assert_eq!(after.line, 4, "the raw byte string spans lines 2-3");
        assert!(!toks.iter().any(|t| t.is("y") || t.is("l2")));
    }

    #[test]
    fn underscore_lifetime_and_loop_labels() {
        let t = tokenize("fn f(x: &'_ u8) { 'outer: loop { break 'outer; } }");
        let lifetimes = t.iter().filter(|k| k.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3, "'_ plus the label at both sites");
        assert!(!t.iter().any(|k| k.kind == TokKind::Literal));
    }

    #[test]
    fn doc_comment_edge_cases() {
        // Empty block comment, inner block doc, doc comment that itself
        // contains `*/`-adjacent stars, and a doc comment holding what
        // looks like a rule trigger.
        let src =
            "/**/ /*! inner */ /*** stars ***/\n/// Instant::now()\n//! SystemTime\nlet x = 1;";
        let t = texts(src);
        assert_eq!(t, vec!["let", "x", "=", "1", ";"]);
        let toks = tokenize(src);
        assert_eq!(toks[0].line, 4, "comment lines still counted");
    }

    #[test]
    fn unterminated_literals_do_not_hang_or_panic() {
        for src in ["let s = \"abc", "let s = r#\"abc", "let c = '\\", "/* open"] {
            let _ = tokenize(src); // must terminate without panicking
        }
    }
}
