//! Physical-dimension consistency analysis for the modeling crates.
//!
//! The power/thermal/control math is exactly where a unit slip (adding
//! watts to hertz, comparing joules against seconds) corrupts results
//! without failing a single test — the trajectories stay plausible,
//! just wrong. This pass assigns a dimension to every expression it can
//! prove one for and flags:
//!
//! * `+`, `-`, `<`, `<=`, `>`, `>=`, `==`, `!=` between two *known,
//!   different* dimensions, and
//! * `*`//` results that no physical model here should produce: any
//!   °C² term, or any exponent of magnitude ≥ 3.
//!
//! Dimensions are an exponent vector over the basis (W, V, s, °C);
//! Hz = s⁻¹ and J = W·s are derived. Inference sources, strongest first:
//!
//! 1. `// dim: <unit>` annotations on a `let` line (`// dim: W`,
//!    `// dim: W/s`, `// dim: C*C`), and `// dim: allow` to accept a
//!    flagged line;
//! 2. `cpm-units` types in parameter/`let` annotations, constructors
//!    (`Watts::new`, `Hertz::from_mhz`), dimension-preserving methods
//!    (`.value()`, `.abs()`, `.clamp()`), and converters (`.period()` →
//!    s, `.ratio_of()` → dimensionless);
//! 3. struct fields whose declared type is a unit type (looked up by
//!    field name, only when every field of that name agrees);
//! 4. full-word name suffixes (`_watts`, `_volts`, `_hertz`, `_joules`,
//!    `_seconds`, `_celsius`) on otherwise untyped bindings.
//!
//! Everything else is Unknown, and Unknown never fires — the pass is
//! deliberately quiet on raw-`f64` code it cannot prove anything about.

use crate::ast::{BinOp, Block, Expr, ExprKind, ParsedFile, Stmt};
use crate::rules::{Role, RuleId, Violation};
use std::collections::BTreeMap;

/// Crates the pass runs on: the physical-modeling surface.
pub(crate) const DIM_CRATES: [&str; 4] = ["cpm-power", "cpm-thermal", "cpm-sim", "cpm-control"];

/// Exponents over the basis (W, V, s, °C).
pub type Dim = [i8; 4];

/// A fully-known dimension or no information. `Known([0;4])` is
/// dimensionless (ratios, counts) and *does* participate in checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimVal {
    /// Proven dimension.
    Known(Dim),
    /// No information; never fires.
    Unknown,
}

use DimVal::{Known, Unknown};

const DIMENSIONLESS: Dim = [0, 0, 0, 0];
const W: Dim = [1, 0, 0, 0];
const V: Dim = [0, 1, 0, 0];
const S: Dim = [0, 0, 1, 0];
const C: Dim = [0, 0, 0, 1];
const HZ: Dim = [0, 0, -1, 0];
const J: Dim = [1, 0, 1, 0];

/// Renders a dimension for diagnostics: `W`, `Hz`, `W·s`, `W/s²`, `1`.
pub fn render_dim(d: Dim) -> String {
    if d == DIMENSIONLESS {
        return "1".to_string();
    }
    if d == HZ {
        return "Hz".to_string();
    }
    if d == J {
        return "J".to_string();
    }
    let names = ["W", "V", "s", "°C"];
    let mut num = String::new();
    let mut den = String::new();
    for (i, &e) in d.iter().enumerate() {
        let target = if e > 0 { &mut num } else { &mut den };
        let mag = e.unsigned_abs();
        if mag == 0 {
            continue;
        }
        if !target.is_empty() {
            target.push('·');
        }
        target.push_str(names[i]);
        if mag > 1 {
            target.push_str(&format!("^{mag}"));
        }
    }
    match (num.is_empty(), den.is_empty()) {
        (false, true) => num,
        (false, false) => format!("{num}/{den}"),
        (true, false) => format!("1/{den}"),
        (true, true) => "1".to_string(),
    }
}

/// Maps a cpm-units type name (possibly `&`-prefixed) to its dimension.
fn type_dim(ty: &str) -> DimVal {
    let t = ty.trim_start_matches('&').trim_start_matches("mut");
    match t {
        "Watts" => Known(W),
        "Volts" => Known(V),
        "Hertz" => Known(HZ),
        "Joules" => Known(J),
        "Seconds" => Known(S),
        "Celsius" => Known(C),
        "Ratio" => Known(DIMENSIONLESS),
        _ => Unknown,
    }
}

/// Conservative full-word name-suffix conventions for raw `f64`s.
fn name_dim(name: &str) -> DimVal {
    for (suffix, d) in [
        ("_watts", W),
        ("_volts", V),
        ("_hertz", HZ),
        ("_joules", J),
        ("_seconds", S),
        ("_celsius", C),
    ] {
        if name.ends_with(suffix) {
            return Known(d);
        }
    }
    Unknown
}

/// Parses a `// dim:` annotation body: unit atoms (`W`, `V`, `Hz`, `J`,
/// `s`, `C`, `1`) combined with `*` and `/`, e.g. `W/s`, `C*C`, `J`.
/// Returns `None` for `allow` or anything unparseable.
fn parse_dim_expr(txt: &str) -> Option<Dim> {
    let txt = txt.trim();
    let mut result = DIMENSIONLESS;
    let mut sign = 1i8;
    for part in txt.split(['*', '/']).zip_longest_ops(txt) {
        let (atom, next_sign) = part;
        let d = match atom.trim() {
            "W" => W,
            "V" => V,
            "Hz" => HZ,
            "J" => J,
            "s" => S,
            "C" | "°C" => C,
            "1" => DIMENSIONLESS,
            _ => return None,
        };
        for i in 0..4 {
            result[i] = result[i].checked_add(sign * d[i])?;
        }
        sign = next_sign;
    }
    Some(result)
}

/// Helper: iterate atoms of a `*`/`/` expression together with the sign
/// the *next* atom should get (`*` keeps, `/` flips).
trait ZipOps<'a>: Sized {
    fn zip_longest_ops(self, src: &'a str) -> Vec<(&'a str, i8)>;
}

impl<'a, I: Iterator<Item = &'a str>> ZipOps<'a> for I {
    fn zip_longest_ops(self, src: &'a str) -> Vec<(&'a str, i8)> {
        let atoms: Vec<&str> = self.collect();
        let ops: Vec<i8> = src
            .chars()
            .filter_map(|c| match c {
                '*' => Some(1),
                '/' => Some(-1),
                _ => None,
            })
            .collect();
        atoms
            .into_iter()
            .enumerate()
            .map(|(i, a)| (a, ops.get(i).copied().unwrap_or(1)))
            .collect()
    }
}

/// Per-line `// dim:` directives of one file.
struct Annotations {
    /// line → dimension assigned to the `let` on that line.
    dims: BTreeMap<usize, Dim>,
    /// Lines carrying `// dim: allow` — no diagnostics there.
    allows: Vec<usize>,
}

fn annotations(source: &str) -> Annotations {
    let mut dims = BTreeMap::new();
    let mut allows = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let Some(pos) = raw.find("// dim:") else {
            continue;
        };
        let body = raw[pos + "// dim:".len()..].trim();
        // `allow` may (and should) carry a justification after it:
        // `// dim: allow — comparing raw magnitudes for plausibility`.
        if body == "allow" || body.starts_with("allow ") || body.starts_with("allow —") {
            allows.push(line);
        } else if let Some(d) = parse_dim_expr(body) {
            dims.insert(line, d);
        }
    }
    Annotations { dims, allows }
}

/// Methods that preserve their receiver's dimension.
const PRESERVING_METHODS: [&str; 7] = ["value", "abs", "max", "min", "clamp", "is_finite", "get"];

/// The dimension checker for one function body.
struct Checker<'a> {
    ann: &'a Annotations,
    fields: &'a BTreeMap<String, DimVal>,
    env: BTreeMap<String, DimVal>,
    file: &'a str,
    out: &'a mut Vec<Violation>,
}

impl<'a> Checker<'a> {
    fn allowed(&self, line: usize) -> bool {
        self.ann.allows.contains(&line)
    }

    fn bind(&mut self, name: &str, d: DimVal) {
        match (self.env.get(name), d) {
            // Conflicting rebinds poison the name: branches may disagree.
            (Some(&Known(old)), Known(new)) if old != new => {
                self.env.insert(name.to_string(), Unknown);
            }
            _ => {
                self.env.insert(name.to_string(), d);
            }
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Let {
                    name,
                    ty,
                    init,
                    line,
                } => {
                    let mut d = Unknown;
                    if let Some(e) = init {
                        d = self.eval(e);
                    }
                    if let Some(t) = ty {
                        if let Known(td) = type_dim(t) {
                            d = Known(td);
                        }
                    }
                    if let Some(n) = name {
                        if d == Unknown {
                            d = name_dim(n);
                        }
                        if let Some(&ad) = self.ann.dims.get(line) {
                            d = Known(ad);
                        }
                        self.bind(n, d);
                    }
                }
                Stmt::Expr(e) => {
                    self.eval(e);
                }
            }
        }
    }

    /// Evaluates an expression's dimension, reporting violations found
    /// in its subtree along the way.
    fn eval(&mut self, e: &Expr) -> DimVal {
        match &e.kind {
            ExprKind::Num | ExprKind::Lit => Unknown,
            ExprKind::Path(segs) => {
                if segs.len() == 1 {
                    if let Some(&d) = self.env.get(&segs[0]) {
                        return d;
                    }
                    return name_dim(&segs[0]);
                }
                Unknown
            }
            ExprKind::Field { base, name } => {
                self.eval(base);
                if let Some(&d) = self.fields.get(name) {
                    return d;
                }
                name_dim(name)
            }
            ExprKind::Index { base, index } => {
                let d = self.eval(base);
                self.eval(index);
                d
            }
            ExprKind::Call { path, args } => {
                for a in args {
                    self.eval(a);
                }
                let name = path.last().map(String::as_str).unwrap_or("");
                let qual = path
                    .len()
                    .checked_sub(2)
                    .map(|i| path[i].as_str())
                    .unwrap_or("");
                match (qual, name) {
                    (q, "new") => type_dim(q),
                    ("Hertz", "from_mhz") | ("Hertz", "from_ghz") => Known(HZ),
                    ("Seconds", "from_ms") | ("Seconds", "from_us") => Known(S),
                    ("Ratio", "from_percent") | ("Ratio", "clamped") => Known(DIMENSIONLESS),
                    _ => Unknown,
                }
            }
            ExprKind::Method { recv, name, args } => {
                let rd = self.eval(recv);
                for a in args {
                    self.eval(a);
                }
                match name.as_str() {
                    n if PRESERVING_METHODS.contains(&n) => rd,
                    "ratio_of" | "percent" | "cycles_in" | "clamped" => Known(DIMENSIONLESS),
                    "period" => Known(S),
                    "ms" => {
                        // `Seconds::ms` rescales time; on anything else we
                        // know nothing.
                        if rd == Known(S) {
                            Known(S)
                        } else {
                            Unknown
                        }
                    }
                    "mhz" | "ghz" => {
                        if rd == Known(HZ) {
                            Known(HZ)
                        } else {
                            Unknown
                        }
                    }
                    _ => Unknown,
                }
            }
            ExprKind::Unary(inner) => self.eval(inner),
            ExprKind::Cast(inner) => self.eval(inner),
            ExprKind::Closure(inner) => {
                self.eval(inner);
                Unknown
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let ld = self.eval(lhs);
                let rd = self.eval(rhs);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Cmp | BinOp::Eq => {
                        if let (Known(a), Known(b)) = (ld, rd) {
                            if a != b && !self.allowed(e.line) {
                                self.out.push(Violation {
                                    rule: RuleId::DimConsistency,
                                    path: self.file.to_string(),
                                    line: e.line,
                                    message: format!(
                                        "`{}` mixes dimensions: left is {}, right is {}; \
                                         convert explicitly or annotate `// dim: allow`",
                                        op_sym(*op),
                                        render_dim(a),
                                        render_dim(b)
                                    ),
                                });
                            }
                        }
                        if matches!(op, BinOp::Cmp | BinOp::Eq) {
                            Unknown
                        } else if ld != Unknown {
                            ld
                        } else {
                            rd
                        }
                    }
                    BinOp::Mul | BinOp::Div => {
                        if let (Known(a), Known(b)) = (ld, rd) {
                            let sign: i8 = if *op == BinOp::Mul { 1 } else { -1 };
                            let mut r = DIMENSIONLESS;
                            let mut overflow = false;
                            for i in 0..4 {
                                match a[i].checked_add(sign * b[i]) {
                                    Some(x) => r[i] = x,
                                    None => overflow = true,
                                }
                            }
                            let suspicious =
                                overflow || r[3] >= 2 || r.iter().any(|&x| x.unsigned_abs() >= 3);
                            if suspicious && !self.allowed(e.line) {
                                self.out.push(Violation {
                                    rule: RuleId::DimConsistency,
                                    path: self.file.to_string(),
                                    line: e.line,
                                    message: format!(
                                        "suspicious `{}` result: {} {} {} gives {} — no \
                                         physical quantity here has that shape",
                                        op_sym(*op),
                                        render_dim(a),
                                        op_sym(*op),
                                        render_dim(b),
                                        render_dim(r)
                                    ),
                                });
                            }
                            Known(r)
                        } else {
                            Unknown
                        }
                    }
                    BinOp::Rem => {
                        // `a % b` has a's dimension.
                        ld
                    }
                    BinOp::Other => {
                        // Plain assignment rebinds the target name; a
                        // conflicting dimension poisons it (see `bind`).
                        if let ExprKind::Path(segs) = &lhs.kind {
                            if segs.len() == 1 {
                                self.bind(&segs[0], rd);
                            }
                        }
                        Unknown
                    }
                }
            }
            ExprKind::Struct { fields, .. } => {
                for (_, v) in fields {
                    self.eval(v);
                }
                Unknown
            }
            ExprKind::Macro { args, .. } | ExprKind::Seq(args) | ExprKind::Unknown(args) => {
                for a in args {
                    self.eval(a);
                }
                Unknown
            }
            ExprKind::Block(b) => {
                self.block(b);
                Unknown
            }
            ExprKind::If {
                cond,
                then_b,
                else_b,
            } => {
                if let Some(c) = cond {
                    self.eval(c);
                }
                self.block(then_b);
                if let Some(e) = else_b {
                    self.eval(e);
                }
                Unknown
            }
            ExprKind::Match { scrutinee, arms } => {
                self.eval(scrutinee);
                for a in arms {
                    self.eval(a);
                }
                Unknown
            }
            ExprKind::While { cond, body } => {
                if let Some(c) = cond {
                    self.eval(c);
                }
                self.block(body);
                Unknown
            }
            ExprKind::For { iter, body } => {
                self.eval(iter);
                self.block(body);
                Unknown
            }
            ExprKind::Jump(inner) => {
                if let Some(e) = inner {
                    self.eval(e);
                }
                Unknown
            }
        }
    }
}

fn op_sym(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Cmp => "compare",
        BinOp::Eq => "==",
        BinOp::Other => "?",
    }
}

/// Builds the workspace field-name → dimension map: a field name maps to
/// a dimension only when *every* struct field of that name, across all
/// files, has the same unit type; disagreement poisons it to Unknown.
fn field_dims(files: &[ParsedFile]) -> BTreeMap<String, DimVal> {
    let mut map: BTreeMap<String, DimVal> = BTreeMap::new();
    for pf in files {
        for st in &pf.structs {
            for (name, ty, _) in &st.fields {
                let d = type_dim(ty);
                match map.get(name) {
                    None => {
                        map.insert(name.clone(), d);
                    }
                    Some(&prev) if prev != d => {
                        map.insert(name.clone(), Unknown);
                    }
                    _ => {}
                }
            }
        }
    }
    map.retain(|_, v| *v != Unknown);
    map
}

/// Runs the dimension pass over all parsed files (`sources[i]` is the
/// raw text of `parsed[i]`, needed for annotations). Only library code
/// of the modeling crates is checked; the field map is built
/// workspace-wide.
pub fn check(parsed: &[ParsedFile], sources: &[&str]) -> Vec<Violation> {
    let fields = field_dims(parsed);
    let mut out = Vec::new();
    for (pf, source) in parsed.iter().zip(sources) {
        if !DIM_CRATES.contains(&pf.ctx.crate_name.as_str()) || pf.ctx.role != Role::Library {
            continue;
        }
        let ann = annotations(source);
        for f in &pf.fns {
            if f.in_test {
                continue;
            }
            let Some(body) = &f.body else { continue };
            let mut env: BTreeMap<String, DimVal> = BTreeMap::new();
            for (pname, pty) in &f.params {
                let mut d = type_dim(pty);
                if d == Unknown {
                    d = name_dim(pname);
                }
                env.insert(pname.clone(), d);
            }
            let mut checker = Checker {
                ann: &ann,
                fields: &fields,
                env,
                file: &pf.ctx.rel_path,
                out: &mut out,
            };
            checker.block(body);
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Convenience for fixtures: run the pass on in-memory sources.
#[cfg(test)]
fn run_on(files: &[(&str, &str)]) -> Vec<Violation> {
    use crate::rules::classify;
    let parsed: Vec<ParsedFile> = files
        .iter()
        .map(|(p, s)| crate::parser::parse_file(&classify(p), &crate::tokenizer::tokenize(s)))
        .collect();
    let sources: Vec<&str> = files.iter().map(|(_, s)| *s).collect();
    check(&parsed, &sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adding_watts_to_hertz_fires() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "use cpm_units::{Watts, Hertz};\n\
             fn f(p: Watts, clk: Hertz) -> f64 { p.value() + clk.value() }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::DimConsistency);
        assert!(v[0].message.contains("left is W"), "{}", v[0].message);
        assert!(v[0].message.contains("right is Hz"), "{}", v[0].message);
    }

    #[test]
    fn same_dimension_arithmetic_is_clean() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "use cpm_units::Watts;\n\
             fn f(a: Watts, b: Watts) -> f64 { let gap = a.value() - b.value(); gap }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn energy_over_time_is_watts() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "use cpm_units::{Joules, Seconds, Watts};\n\
             fn f(e: Joules, dt: Seconds, cap: Watts) -> bool {\n\
               let avg = e.value() / dt.value();\n\
               avg > cap.value()\n\
             }",
        )]);
        assert!(v.is_empty(), "J/s = W must compare clean against W: {v:?}");
    }

    #[test]
    fn comparing_joules_to_seconds_fires() {
        let v = run_on(&[(
            "crates/control/src/gov.rs",
            "use cpm_units::{Joules, Seconds};\n\
             fn f(e: Joules, dt: Seconds) -> bool { e.value() > dt.value() }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("left is J"), "{}", v[0].message);
    }

    #[test]
    fn celsius_squared_is_suspicious() {
        let v = run_on(&[(
            "crates/thermal/src/model.rs",
            "use cpm_units::Celsius;\n\
             fn f(t: Celsius) -> f64 { t.value() * t.value() }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("suspicious"), "{}", v[0].message);
    }

    #[test]
    fn dim_allow_annotation_accepts_a_site() {
        let v = run_on(&[(
            "crates/thermal/src/model.rs",
            "use cpm_units::Celsius;\n\
             fn variance(t: Celsius) -> f64 {\n\
               t.value() * t.value() // dim: allow\n\
             }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dim_annotation_assigns_raw_f64() {
        let fire = run_on(&[(
            "crates/power/src/model.rs",
            "fn f(p: f64, f_clk: f64) -> f64 {\n\
               let power = p; // dim: W\n\
               let freq = f_clk; // dim: Hz\n\
               power + freq\n\
             }",
        )]);
        assert_eq!(fire.len(), 1, "{fire:?}");
        let quiet = run_on(&[(
            "crates/power/src/model.rs",
            "fn f(p: f64, f_clk: f64) -> f64 {\n\
               let power = p; // dim: W\n\
               let energy = power * 0.5; \n\
               power + energy\n\
             }",
        )]);
        // `energy` is W·Unknown = Unknown, so the add stays quiet.
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn compound_dim_annotations_parse() {
        assert_eq!(parse_dim_expr("W"), Some(super::W));
        assert_eq!(parse_dim_expr("W/s"), Some([1, 0, -1, 0]));
        assert_eq!(parse_dim_expr("C*C"), Some([0, 0, 0, 2]));
        assert_eq!(parse_dim_expr("J"), Some(super::J));
        assert_eq!(parse_dim_expr("1"), Some(super::DIMENSIONLESS));
        assert_eq!(parse_dim_expr("allow"), None);
        assert_eq!(parse_dim_expr("furlongs"), None);
    }

    #[test]
    fn struct_fields_carry_unit_types() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "use cpm_units::{Watts, Hertz};\n\
             struct Core { budget: Watts, clock: Hertz }\n\
             fn f(c: &Core) -> bool { c.budget.value() < c.clock.value() }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
    }

    #[test]
    fn ambiguous_field_names_stay_unknown() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "use cpm_units::{Watts, Hertz};\n\
             struct A { x: Watts }\nstruct B { x: Hertz }\n\
             fn f(a: &A, b: &B) -> bool { a.x.value() < b.x.value() }",
        )]);
        assert!(v.is_empty(), "conflicting field dims must poison: {v:?}");
    }

    #[test]
    fn outside_modeling_crates_is_quiet() {
        let v = run_on(&[(
            "crates/obs/src/lib.rs",
            "use cpm_units::{Watts, Hertz};\n\
             fn f(p: Watts, h: Hertz) -> f64 { p.value() + h.value() }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_code_in_modeling_crates_is_quiet() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "#[cfg(test)]\nmod tests {\n  use cpm_units::{Watts, Hertz};\n\
             fn f(p: Watts, h: Hertz) -> f64 { p.value() + h.value() }\n}",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn name_suffix_conventions_apply() {
        let v = run_on(&[(
            "crates/sim/src/model.rs",
            "fn f(idle_watts: f64, settle_seconds: f64) -> f64 { idle_watts - settle_seconds }",
        )]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("left is W"), "{}", v[0].message);
    }

    #[test]
    fn ratio_times_watts_is_watts() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "use cpm_units::{Ratio, Watts};\n\
             fn f(u: Ratio, cap: Watts, floor: Watts) -> bool {\n\
               let used = u.clamped() * cap.value();\n\
               used < floor.value()\n\
             }",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn conflicting_rebinding_poisons_the_name() {
        let v = run_on(&[(
            "crates/power/src/model.rs",
            "use cpm_units::{Watts, Seconds};\n\
             fn f(p: Watts, t: Seconds, q: Watts) -> f64 {\n\
               let mut x = p.value();\n\
               x = t.value();\n\
               x + q.value()\n\
             }",
        )]);
        // `x` was W then s: poisoned, no firing either way.
        assert!(v.is_empty(), "{v:?}");
    }
}
