//! `lint-waivers.toml`: the committed list of intended violations.
//!
//! Each waiver names one (rule, file) pair and carries a one-line reason;
//! it suppresses every firing of that rule in that file. A waiver that
//! suppresses nothing is *stale* and is itself an error — so the waiver
//! file can only shrink as violations are fixed, never rot.
//!
//! The format is a strict subset of TOML (array-of-tables with string
//! values plus one `[budget]` table), parsed by hand because the
//! workspace builds with zero external crates:
//!
//! ```toml
//! [budget]
//! max = 5
//! justification = "why the budget sits where it does"
//!
//! [[waiver]]
//! rule = "panic-bare"
//! path = "crates/rng/src/check.rs"
//! reason = "the property harness reports failures by panicking"
//! ```
//!
//! The budget is a **ratchet**: the engine fails when the waiver count
//! exceeds `max`, and the tier-1 budget test pins `max` to the *exact*
//! current count — so adding a waiver forces a deliberate budget bump
//! (with its justification updated), and removing one forces the budget
//! down. The file can only shrink silently, never grow.

use crate::rules::RuleId;

/// One committed, justified exception to the catalogue.
#[derive(Debug, Clone, PartialEq)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: RuleId,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// The written justification (must be non-empty).
    pub reason: String,
}

/// The ratchet: a hard ceiling on how many waivers may exist, with a
/// written justification for the current level.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Maximum number of `[[waiver]]` entries permitted.
    pub max: usize,
    /// Why the budget sits at this level (must be non-empty).
    pub justification: String,
}

/// The fully parsed waiver file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WaiverFile {
    /// Every `[[waiver]]` entry, in file order.
    pub waivers: Vec<Waiver>,
    /// The `[budget]` table, when present.
    pub budget: Option<Budget>,
}

/// A parse/validation failure, with the offending line number.
#[derive(Debug, Clone, PartialEq)]
pub struct WaiverError {
    /// 1-based line in the waiver file (0 for end-of-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for WaiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-waivers.toml:{}: {}", self.line, self.message)
    }
}

/// Backward-compatible entry: parses and returns just the waivers.
pub fn parse(text: &str) -> Result<Vec<Waiver>, WaiverError> {
    parse_file(text).map(|f| f.waivers)
}

/// Parses and validates the waiver file. Unknown keys, unknown rules,
/// missing fields, and empty reasons/justifications are all hard errors:
/// a waiver that cannot be read precisely must not silently suppress
/// anything.
pub fn parse_file(text: &str) -> Result<WaiverFile, WaiverError> {
    struct Partial {
        line: usize,
        rule: Option<RuleId>,
        path: Option<String>,
        reason: Option<String>,
    }
    struct BudgetPartial {
        line: usize,
        max: Option<usize>,
        justification: Option<String>,
    }
    let mut out = Vec::new();
    let mut cur: Option<Partial> = None;
    let mut budget: Option<BudgetPartial> = None;
    let mut in_budget = false;
    let finish = |p: Partial| -> Result<Waiver, WaiverError> {
        let missing = |k: &str| WaiverError {
            line: p.line,
            message: format!("waiver is missing `{k}`"),
        };
        let w = Waiver {
            rule: p.rule.ok_or_else(|| missing("rule"))?,
            path: p.path.ok_or_else(|| missing("path"))?,
            reason: p.reason.ok_or_else(|| missing("reason"))?,
        };
        if w.reason.trim().is_empty() {
            return Err(WaiverError {
                line: p.line,
                message: "waiver reason must be non-empty".to_string(),
            });
        }
        Ok(w)
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(p) = cur.take() {
                out.push(finish(p)?);
            }
            in_budget = false;
            cur = Some(Partial {
                line: lineno,
                rule: None,
                path: None,
                reason: None,
            });
            continue;
        }
        if line == "[budget]" {
            if let Some(p) = cur.take() {
                out.push(finish(p)?);
            }
            if budget.is_some() {
                return Err(WaiverError {
                    line: lineno,
                    message: "duplicate [budget] table".to_string(),
                });
            }
            in_budget = true;
            budget = Some(BudgetPartial {
                line: lineno,
                max: None,
                justification: None,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(WaiverError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        if in_budget && cur.is_none() {
            let Some(b) = budget.as_mut() else {
                return Err(WaiverError {
                    line: lineno,
                    message: "internal: budget key without [budget]".to_string(),
                });
            };
            match key {
                "max" => {
                    b.max = Some(value.parse().map_err(|_| WaiverError {
                        line: lineno,
                        message: format!("`max` must be a non-negative integer, got `{value}`"),
                    })?);
                }
                "justification" => {
                    let j = value
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| WaiverError {
                            line: lineno,
                            message: "`justification` must be a double-quoted string".to_string(),
                        })?;
                    b.justification = Some(j.to_string());
                }
                other => {
                    return Err(WaiverError {
                        line: lineno,
                        message: format!("unknown [budget] key `{other}`"),
                    });
                }
            }
            continue;
        }
        let unquoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| WaiverError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            })?;
        let Some(p) = cur.as_mut() else {
            return Err(WaiverError {
                line: lineno,
                message: "key outside a [[waiver]] table".to_string(),
            });
        };
        match key {
            "rule" => {
                p.rule = Some(RuleId::parse(unquoted).ok_or_else(|| WaiverError {
                    line: lineno,
                    message: format!("unknown rule `{unquoted}`"),
                })?);
            }
            "path" => p.path = Some(unquoted.to_string()),
            "reason" => p.reason = Some(unquoted.to_string()),
            other => {
                return Err(WaiverError {
                    line: lineno,
                    message: format!("unknown key `{other}`"),
                });
            }
        }
    }
    if let Some(p) = cur.take() {
        out.push(finish(p)?);
    }
    let budget = match budget {
        Some(b) => {
            let missing = |k: &str| WaiverError {
                line: b.line,
                message: format!("[budget] is missing `{k}`"),
            };
            let max = b.max.ok_or_else(|| missing("max"))?;
            let justification = b.justification.ok_or_else(|| missing("justification"))?;
            if justification.trim().is_empty() {
                return Err(WaiverError {
                    line: b.line,
                    message: "[budget] justification must be non-empty".to_string(),
                });
            }
            Some(Budget { max, justification })
        }
        None => None,
    };
    Ok(WaiverFile {
        waivers: out,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_valid_file() {
        let text = r#"
# header comment
[[waiver]]
rule = "panic-bare"
path = "crates/rng/src/check.rs"
reason = "the harness panics on purpose"

[[waiver]]
rule = "timing"
path = "crates/sim/src/x.rs"
reason = "why not"
"#;
        let ws = parse(text).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, RuleId::PanicBare);
        assert_eq!(ws[1].path, "crates/sim/src/x.rs");
    }

    #[test]
    fn rejects_unknown_rule_and_empty_reason() {
        let bad_rule = "[[waiver]]\nrule = \"no-such-rule\"\npath = \"x\"\nreason = \"r\"\n";
        assert!(parse(bad_rule).is_err());
        let empty_reason = "[[waiver]]\nrule = \"timing\"\npath = \"x\"\nreason = \"  \"\n";
        assert!(parse(empty_reason).is_err());
    }

    #[test]
    fn rejects_missing_fields_and_unknown_keys() {
        assert!(parse("[[waiver]]\nrule = \"timing\"\nreason = \"r\"\n").is_err());
        assert!(parse(
            "[[waiver]]\nrule = \"timing\"\npath = \"x\"\nreason = \"r\"\nseverity = \"low\"\n"
        )
        .is_err());
        assert!(parse("rule = \"timing\"\n").is_err());
    }

    #[test]
    fn empty_file_is_no_waivers() {
        assert_eq!(parse("# nothing here\n").unwrap(), Vec::new());
        assert_eq!(parse_file("").unwrap().budget, None);
    }

    #[test]
    fn budget_table_parses() {
        let text = "[budget]\nmax = 5\njustification = \"legacy accuracy twins\"\n\n\
                    [[waiver]]\nrule = \"timing\"\npath = \"x\"\nreason = \"r\"\n";
        let f = parse_file(text).unwrap();
        assert_eq!(
            f.budget,
            Some(Budget {
                max: 5,
                justification: "legacy accuracy twins".to_string()
            })
        );
        assert_eq!(f.waivers.len(), 1);
    }

    #[test]
    fn budget_rejects_bad_shapes() {
        assert!(
            parse_file("[budget]\nmax = 5\n").is_err(),
            "missing justification"
        );
        assert!(
            parse_file("[budget]\njustification = \"j\"\n").is_err(),
            "missing max"
        );
        assert!(parse_file("[budget]\nmax = \"five\"\njustification = \"j\"\n").is_err());
        assert!(parse_file("[budget]\nmax = 1\njustification = \" \"\n").is_err());
        assert!(parse_file(
            "[budget]\nmax = 1\njustification = \"j\"\n[budget]\nmax = 2\njustification = \"j\"\n"
        )
        .is_err());
        assert!(
            parse_file("[budget]\nmax = 1\nceiling = \"j\"\n").is_err(),
            "unknown budget key"
        );
    }

    #[test]
    fn budget_after_waiver_is_accepted() {
        let text = "[[waiver]]\nrule = \"timing\"\npath = \"x\"\nreason = \"r\"\n\n\
                    [budget]\nmax = 1\njustification = \"one known site\"\n";
        let f = parse_file(text).unwrap();
        assert_eq!(f.waivers.len(), 1);
        assert_eq!(f.budget.as_ref().map(|b| b.max), Some(1));
    }
}
