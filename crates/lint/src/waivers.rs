//! `lint-waivers.toml`: the committed list of intended violations.
//!
//! Each waiver names one (rule, file) pair and carries a one-line reason;
//! it suppresses every firing of that rule in that file. A waiver that
//! suppresses nothing is *stale* and is itself an error — so the waiver
//! file can only shrink as violations are fixed, never rot.
//!
//! The format is a strict subset of TOML (array-of-tables with string
//! values), parsed by hand because the workspace builds with zero
//! external crates:
//!
//! ```toml
//! [[waiver]]
//! rule = "panic-bare"
//! path = "crates/rng/src/check.rs"
//! reason = "the property harness reports failures by panicking"
//! ```

use crate::rules::RuleId;

/// One committed, justified exception to the catalogue.
#[derive(Debug, Clone, PartialEq)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: RuleId,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// The written justification (must be non-empty).
    pub reason: String,
}

/// A parse/validation failure, with the offending line number.
#[derive(Debug, Clone, PartialEq)]
pub struct WaiverError {
    /// 1-based line in the waiver file (0 for end-of-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for WaiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint-waivers.toml:{}: {}", self.line, self.message)
    }
}

/// Parses and validates the waiver file. Unknown keys, unknown rules,
/// missing fields, and empty reasons are all hard errors: a waiver that
/// cannot be read precisely must not silently suppress anything.
pub fn parse(text: &str) -> Result<Vec<Waiver>, WaiverError> {
    struct Partial {
        line: usize,
        rule: Option<RuleId>,
        path: Option<String>,
        reason: Option<String>,
    }
    let mut out = Vec::new();
    let mut cur: Option<Partial> = None;
    let finish = |p: Partial| -> Result<Waiver, WaiverError> {
        let missing = |k: &str| WaiverError {
            line: p.line,
            message: format!("waiver is missing `{k}`"),
        };
        let w = Waiver {
            rule: p.rule.ok_or_else(|| missing("rule"))?,
            path: p.path.ok_or_else(|| missing("path"))?,
            reason: p.reason.ok_or_else(|| missing("reason"))?,
        };
        if w.reason.trim().is_empty() {
            return Err(WaiverError {
                line: p.line,
                message: "waiver reason must be non-empty".to_string(),
            });
        }
        Ok(w)
    };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Some(p) = cur.take() {
                out.push(finish(p)?);
            }
            cur = Some(Partial {
                line: lineno,
                rule: None,
                path: None,
                reason: None,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(WaiverError {
                line: lineno,
                message: format!("expected `key = \"value\"`, got `{line}`"),
            });
        };
        let key = key.trim();
        let value = value.trim();
        let unquoted = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| WaiverError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            })?;
        let Some(p) = cur.as_mut() else {
            return Err(WaiverError {
                line: lineno,
                message: "key outside a [[waiver]] table".to_string(),
            });
        };
        match key {
            "rule" => {
                p.rule = Some(RuleId::parse(unquoted).ok_or_else(|| WaiverError {
                    line: lineno,
                    message: format!("unknown rule `{unquoted}`"),
                })?);
            }
            "path" => p.path = Some(unquoted.to_string()),
            "reason" => p.reason = Some(unquoted.to_string()),
            other => {
                return Err(WaiverError {
                    line: lineno,
                    message: format!("unknown key `{other}`"),
                });
            }
        }
    }
    if let Some(p) = cur.take() {
        out.push(finish(p)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_valid_file() {
        let text = r#"
# header comment
[[waiver]]
rule = "panic-bare"
path = "crates/rng/src/check.rs"
reason = "the harness panics on purpose"

[[waiver]]
rule = "timing"
path = "crates/sim/src/x.rs"
reason = "why not"
"#;
        let ws = parse(text).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, RuleId::PanicBare);
        assert_eq!(ws[1].path, "crates/sim/src/x.rs");
    }

    #[test]
    fn rejects_unknown_rule_and_empty_reason() {
        let bad_rule = "[[waiver]]\nrule = \"no-such-rule\"\npath = \"x\"\nreason = \"r\"\n";
        assert!(parse(bad_rule).is_err());
        let empty_reason = "[[waiver]]\nrule = \"timing\"\npath = \"x\"\nreason = \"  \"\n";
        assert!(parse(empty_reason).is_err());
    }

    #[test]
    fn rejects_missing_fields_and_unknown_keys() {
        assert!(parse("[[waiver]]\nrule = \"timing\"\nreason = \"r\"\n").is_err());
        assert!(parse(
            "[[waiver]]\nrule = \"timing\"\npath = \"x\"\nreason = \"r\"\nseverity = \"low\"\n"
        )
        .is_err());
        assert!(parse("rule = \"timing\"\n").is_err());
    }

    #[test]
    fn empty_file_is_no_waivers() {
        assert_eq!(parse("# nothing here\n").unwrap(), Vec::new());
    }
}
