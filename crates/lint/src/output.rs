//! Machine-readable report renderers: `--format json` and `--format sarif`.
//!
//! Both renderers are deterministic: they emit no timestamps, no absolute
//! paths, and no environment-dependent fields, and they serialize the
//! report in its already-sorted order — so the same tree produces the
//! same bytes on every run and the fixture test can pin the output
//! byte-for-byte. The JSON is hand-built (the workspace has zero
//! external crates) with a full string escaper, so arbitrary diagnostic
//! messages round-trip.
//!
//! The SARIF output targets SARIF 2.1.0 with the minimal property set
//! GitHub code scanning ingests: one run, a `tool.driver` carrying the
//! full rule catalogue, and one `result` per violation with a physical
//! location. Active violations and budget/stale-waiver failures are
//! `error`-level; waived violations are included at `note` level with a
//! `suppressions` entry so viewers show them struck through rather than
//! hiding them.

use crate::rules::ALL_RULES;
use crate::Report;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a flat JSON document mirroring [`Report`]'s
/// fields. Stable key order, two-space indent, trailing newline.
pub fn render_json(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"files_scanned\": {},", report.files_scanned);
    for (key, list) in [("active", &report.active), ("waived", &report.waived)] {
        let _ = writeln!(s, "  \"{key}\": [");
        for (i, v) in list.iter().enumerate() {
            let comma = if i + 1 < list.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{comma}",
                v.rule.name(),
                esc(&v.path),
                v.line,
                esc(&v.message)
            );
        }
        s.push_str("  ],\n");
    }
    s.push_str("  \"stale_waivers\": [\n");
    for (i, w) in report.stale.iter().enumerate() {
        let comma = if i + 1 < report.stale.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"reason\": \"{}\"}}{comma}",
            w.rule.name(),
            esc(&w.path),
            esc(&w.reason)
        );
    }
    s.push_str("  ],\n");
    match &report.over_budget {
        Some(msg) => {
            let _ = writeln!(s, "  \"over_budget\": \"{}\",", esc(msg));
        }
        None => s.push_str("  \"over_budget\": null,\n"),
    }
    let _ = writeln!(s, "  \"failure\": {}", report.is_failure());
    s.push_str("}\n");
    s
}

/// Renders the report as a SARIF 2.1.0 log.
pub fn render_sarif(report: &Report) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n");
    s.push_str("    {\n");
    s.push_str("      \"tool\": {\n");
    s.push_str("        \"driver\": {\n");
    s.push_str("          \"name\": \"cpm-lint\",\n");
    s.push_str("          \"rules\": [\n");
    // The catalogue plus the two reconciliation-level failure kinds,
    // which are not per-file rules but do appear as results.
    let mut rule_ids: Vec<&str> = ALL_RULES.iter().map(|r| r.name()).collect();
    rule_ids.push("stale-waiver");
    rule_ids.push("waiver-budget");
    for (i, id) in rule_ids.iter().enumerate() {
        let comma = if i + 1 < rule_ids.len() { "," } else { "" };
        let _ = writeln!(s, "            {{\"id\": \"{id}\"}}{comma}");
    }
    s.push_str("          ]\n");
    s.push_str("        }\n");
    s.push_str("      },\n");
    s.push_str("      \"results\": [\n");
    struct R<'a> {
        rule: String,
        level: &'a str,
        message: String,
        path: Option<&'a str>,
        line: usize,
        suppressed: bool,
    }
    let mut results = Vec::new();
    for v in &report.active {
        results.push(R {
            rule: v.rule.name().to_string(),
            level: "error",
            message: v.message.clone(),
            path: Some(&v.path),
            line: v.line,
            suppressed: false,
        });
    }
    for v in &report.waived {
        results.push(R {
            rule: v.rule.name().to_string(),
            level: "note",
            message: v.message.clone(),
            path: Some(&v.path),
            line: v.line,
            suppressed: true,
        });
    }
    for w in &report.stale {
        results.push(R {
            rule: "stale-waiver".to_string(),
            level: "error",
            message: format!(
                "{} no longer fires `{}` — remove its waiver ({})",
                w.path,
                w.rule.name(),
                w.reason
            ),
            path: Some(&w.path),
            line: 1,
            suppressed: false,
        });
    }
    if let Some(msg) = &report.over_budget {
        results.push(R {
            rule: "waiver-budget".to_string(),
            level: "error",
            message: msg.clone(),
            path: None,
            line: 0,
            suppressed: false,
        });
    }
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        s.push_str("        {\n");
        let _ = writeln!(s, "          \"ruleId\": \"{}\",", esc(&r.rule));
        let _ = writeln!(s, "          \"level\": \"{}\",", r.level);
        let _ = writeln!(
            s,
            "          \"message\": {{\"text\": \"{}\"}}",
            esc(&r.message)
        );
        if let Some(path) = r.path {
            s.push_str(",          \"locations\": [\n");
            s.push_str("            {\n");
            s.push_str("              \"physicalLocation\": {\n");
            let _ = writeln!(
                s,
                "                \"artifactLocation\": {{\"uri\": \"{}\"}},",
                esc(path)
            );
            let _ = writeln!(
                s,
                "                \"region\": {{\"startLine\": {}}}",
                r.line.max(1)
            );
            s.push_str("              }\n");
            s.push_str("            }\n");
            s.push_str("          ]\n");
        }
        if r.suppressed {
            s.push_str(",          \"suppressions\": [{\"kind\": \"external\"}]\n");
        }
        let _ = writeln!(s, "        }}{comma}");
    }
    s.push_str("      ]\n");
    s.push_str("    }\n");
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleId, Violation};
    use crate::waivers::Waiver;

    fn sample_report() -> Report {
        Report {
            active: vec![Violation {
                rule: RuleId::Timing,
                path: "crates/sim/src/engine.rs".to_string(),
                line: 42,
                message: "Instant::now() in a library crate".to_string(),
            }],
            waived: vec![Violation {
                rule: RuleId::PanicBare,
                path: "crates/rng/src/check.rs".to_string(),
                line: 7,
                message: "bare panic!".to_string(),
            }],
            stale: vec![Waiver {
                rule: RuleId::Output,
                path: "gone.rs".to_string(),
                reason: "was needed \"once\"".to_string(),
            }],
            over_budget: Some("6 waivers exceed the budget of 5".to_string()),
            files_scanned: 147,
        }
    }

    #[test]
    fn escapes_json_special_characters() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
        assert_eq!(esc("°C → W"), "°C → W");
    }

    #[test]
    fn json_report_carries_every_section() {
        let j = render_json(&sample_report());
        assert!(j.contains("\"files_scanned\": 147"));
        assert!(j.contains("\"rule\": \"timing\""));
        assert!(j.contains("\"line\": 42"));
        assert!(j.contains("\"rule\": \"panic-bare\""));
        assert!(j.contains("was needed \\\"once\\\""));
        assert!(j.contains("\"over_budget\": \"6 waivers"));
        assert!(j.contains("\"failure\": true"));
    }

    #[test]
    fn json_clean_report_is_success_shaped() {
        let j = render_json(&Report::default());
        assert!(j.contains("\"active\": [\n  ]"));
        assert!(j.contains("\"over_budget\": null"));
        assert!(j.contains("\"failure\": false"));
    }

    #[test]
    fn sarif_lists_full_rule_catalogue_and_results() {
        let s = render_sarif(&sample_report());
        assert!(s.contains("\"version\": \"2.1.0\""));
        for rule in ALL_RULES {
            assert!(
                s.contains(&format!("{{\"id\": \"{}\"}}", rule.name())),
                "rule {} missing from driver catalogue",
                rule.name()
            );
        }
        assert!(s.contains("\"ruleId\": \"timing\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\"ruleId\": \"stale-waiver\""));
        assert!(s.contains("\"ruleId\": \"waiver-budget\""));
        assert!(s.contains("\"suppressions\": [{\"kind\": \"external\"}]"));
        // Waived results are notes, not errors.
        assert!(s.contains("\"level\": \"note\""));
    }

    #[test]
    fn sarif_output_is_deterministic() {
        let r = sample_report();
        assert_eq!(render_sarif(&r), render_sarif(&r));
        assert_eq!(render_json(&r), render_json(&r));
    }
}
