//! Token rules re-expressed on the AST, where structure closes a
//! false-negative class the flat token stream cannot see:
//!
//! * **`lock-unwrap` split across a local alias.** The token rule
//!   matches the direct chain `.lock().unwrap()`; it is blind to
//!   `let guard = m.lock(); guard.unwrap()`, which wedges callers just
//!   the same. Here we track `let` bindings whose initializer ends in a
//!   `.lock()` call and flag `.unwrap()`/`.expect()` on that binding.
//! * **`panic-bare` spelled through a panic-family macro.** `todo!` and
//!   `unimplemented!` are placeholder panics with no invariant message
//!   and never belong in library code; a bare `unreachable!()` (no
//!   message) panics without documenting the invariant it guards. An
//!   `unreachable!("why")` carries its invariant like `assert!` and
//!   stays legal.
//!
//! Both rules report under the existing rule ids, so one waiver policy
//! covers a violation however it is spelled. Neither overlaps the token
//! rule's firings: the token rule needs the literal chain / the literal
//! `panic!` token, these need the structure it lacks.

use crate::ast::{Block, Expr, ExprKind, ParsedFile, Stmt};
use crate::rules::{Role, RuleId, Violation};
use std::collections::BTreeSet;

/// True when `e`'s outermost node is a `.lock()` method call (possibly
/// behind `?`/`as`/unary, which the parser folds transparently).
fn ends_in_lock(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Method { name, .. } => name == "lock",
        ExprKind::Unary(inner) | ExprKind::Cast(inner) => ends_in_lock(inner),
        _ => false,
    }
}

/// Runs the AST-level re-expressions over every library, non-test
/// function of the parsed workspace.
pub fn check(parsed: &[ParsedFile]) -> Vec<Violation> {
    let mut out = Vec::new();
    for file in parsed {
        if file.ctx.role != Role::Library {
            continue;
        }
        for f in &file.fns {
            if f.in_test {
                continue;
            }
            if let Some(body) = &f.body {
                let mut guards = BTreeSet::new();
                check_block(body, &mut guards, &file.ctx.rel_path, &mut out);
            }
        }
    }
    out
}

/// Walks one block, threading the set of live lock-guard aliases.
/// Scoping is approximate (a guard bound in an inner block stays live
/// for the rest of the function) — that can only widen detection of a
/// pattern that is wrong wherever it appears, never false-positive on a
/// name that was not bound to a `.lock()` result.
fn check_block(b: &Block, guards: &mut BTreeSet<String>, rel_path: &str, out: &mut Vec<Violation>) {
    for s in &b.stmts {
        match s {
            Stmt::Let { name, init, .. } => {
                if let Some(e) = init {
                    check_expr(e, guards, rel_path, out);
                }
                if let Some(n) = name {
                    match init {
                        Some(e) if ends_in_lock(e) => {
                            guards.insert(n.clone());
                        }
                        // Rebinding the name to anything else kills the
                        // alias — `let g = g.unwrap_or_else(…);` is the
                        // sanctioned recovery and must not taint `g`.
                        _ => {
                            guards.remove(n);
                        }
                    }
                }
            }
            Stmt::Expr(e) => check_expr(e, guards, rel_path, out),
        }
    }
}

/// Flags violations inside one expression tree.
fn check_expr(e: &Expr, guards: &BTreeSet<String>, rel_path: &str, out: &mut Vec<Violation>) {
    e.walk(&mut |node| match &node.kind {
        ExprKind::Method { recv, name, .. } if name == "unwrap" || name == "expect" => {
            if let ExprKind::Path(segs) = &recv.kind {
                if let [single] = segs.as_slice() {
                    if guards.contains(single) {
                        out.push(Violation {
                            rule: RuleId::LockUnwrap,
                            path: rel_path.to_string(),
                            line: node.line,
                            message: format!(
                                "`.{name}()` on `{single}`, a `.lock()` result bound above — \
                                 the alias wedges every later caller after one panic exactly \
                                 like the direct chain; recover with \
                                 `.unwrap_or_else(PoisonError::into_inner)`"
                            ),
                        });
                    }
                }
            }
        }
        ExprKind::Macro { name, args } => {
            let bare = match name.as_str() {
                "todo" | "unimplemented" => true,
                "unreachable" => args.is_empty(),
                _ => false,
            };
            if bare {
                out.push(Violation {
                    rule: RuleId::PanicBare,
                    path: rel_path.to_string(),
                    line: node.line,
                    message: format!(
                        "`{name}!` panics in library code without an invariant message; \
                         return an error, or use `unreachable!(\"why\")` / `assert!` with \
                         the invariant written out"
                    ),
                });
            }
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::classify;
    use crate::{parser, tokenizer};

    fn run_on(rel_path: &str, src: &str) -> Vec<(RuleId, usize)> {
        let ctx = classify(rel_path);
        let toks = tokenizer::tokenize(src);
        let parsed = vec![parser::parse_file(&ctx, &toks)];
        check(&parsed)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn lock_unwrap_through_alias_fires() {
        let src = "fn f(m: &std::sync::Mutex<u8>) -> u8 {\n\
                   \u{20}   let guard = m.lock();\n\
                   \u{20}   *guard.unwrap()\n\
                   }\n";
        let v = run_on("crates/sim/src/x.rs", src);
        assert_eq!(v, vec![(RuleId::LockUnwrap, 3)]);
    }

    #[test]
    fn sanctioned_recovery_rebind_does_not_fire() {
        let src = "fn f(m: &std::sync::Mutex<u8>) -> u8 {\n\
                   \u{20}   let g = m.lock();\n\
                   \u{20}   let g = g.unwrap_or_else(std::sync::PoisonError::into_inner);\n\
                   \u{20}   let g = g;\n\
                   \u{20}   g.expect(\"no longer a lock result\")\n\
                   }\n";
        assert_eq!(run_on("crates/sim/src/x.rs", src), vec![]);
    }

    #[test]
    fn alias_expect_fires_and_tests_are_exempt() {
        let fire = "fn f(m: &std::sync::Mutex<u8>) { let g = m.lock(); g.expect(\"held\"); }";
        assert_eq!(
            run_on("crates/sim/src/x.rs", fire),
            vec![(RuleId::LockUnwrap, 1)]
        );
        let in_test =
            "#[cfg(test)]\nmod tests {\n fn f(m: &M) { let g = m.lock(); g.unwrap(); }\n}\n";
        assert_eq!(run_on("crates/sim/src/x.rs", in_test), vec![]);
        // Binaries and tests are out of scope entirely.
        assert_eq!(run_on("crates/sim/tests/t.rs", fire), vec![]);
    }

    #[test]
    fn panic_family_macros_fire_only_when_bare() {
        let src = "fn a() { todo!() }\n\
                   fn b() { unimplemented!() }\n\
                   fn c() -> u8 { match 1 { 1 => 0, _ => unreachable!() } }\n\
                   fn d() -> u8 { match 1 { 1 => 0, _ => unreachable!(\"one-armed\") } }\n";
        let v = run_on("crates/sim/src/x.rs", src);
        assert_eq!(
            v,
            vec![
                (RuleId::PanicBare, 1),
                (RuleId::PanicBare, 2),
                (RuleId::PanicBare, 3),
            ],
            "messaged unreachable! documents its invariant and stays legal"
        );
    }

    #[test]
    fn unrelated_unwraps_do_not_fire() {
        let src = "fn f(o: Option<u8>, m: &std::sync::Mutex<u8>) -> u8 {\n\
                   \u{20}   let v = o.unwrap();\n\
                   \u{20}   let not_a_guard = v + 1;\n\
                   \u{20}   not_a_guard.unwrap()\n\
                   }\n";
        assert_eq!(run_on("crates/sim/src/x.rs", src), vec![]);
    }
}
