//! The invariant catalogue: every rule `cpm-lint` enforces, and the
//! token-pattern checks that implement them.
//!
//! Rules fall into three families (see DESIGN.md §3f for the rationale):
//!
//! * **Determinism** — the sweep's byte-identity gates only hold if no
//!   library code consults wall-clock time, the environment, ambient
//!   threads, or hash-iteration order.
//! * **Output discipline** — `experiments all` stdout is a contract
//!   surface diffed byte-for-byte in CI; library crates must not print.
//! * **Safety/robustness** — `unsafe` stays in an allow-listed file set,
//!   library code must recover poisoned locks instead of unwrapping, and
//!   every `#[allow(...)]` carries a same-line justification.
//!
//! Genuinely intended violations are waived in `lint-waivers.toml` with a
//! written reason; see [`crate::waivers`].

use crate::tokenizer::{seq_is, Tok, TokKind};

/// Identifies one rule of the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Iteration over `HashMap`/`HashSet` (order is nondeterministic).
    HashIteration,
    /// `Instant::now` / `SystemTime` outside the timing crates.
    Timing,
    /// `std::env` reads outside the worker-count / harness plumbing.
    EnvRead,
    /// Thread creation outside `cpm-runtime`.
    ThreadSpawn,
    /// RNG construction in library code outside the crates that own a
    /// seed-derivation contract.
    RngScope,
    /// `println!`-family macros in library crates.
    Output,
    /// `unsafe` outside the allow-listed file set.
    UnsafeFile,
    /// Bare `panic!` in library code.
    PanicBare,
    /// `.lock().unwrap()` / `.lock().expect(...)` in library code.
    LockUnwrap,
    /// `#[allow(...)]` without a same-line justification comment.
    AllowJustify,
    /// Nightly SIMD gates (`#![feature(...)]`, `std::simd`) or per-arch
    /// `target_feature`/intrinsic escapes. The vectorized kernels are
    /// plain lane-chunked loops LLVM autovectorizes — std-only stable
    /// stays enforced.
    SimdStable,
    /// Direct libm-backed transcendental method calls (`.sin()`, `.exp()`,
    /// `.powf()`, `.ln()`, …) in library crates outside `cpm-math`. Host
    /// libm results differ across platforms bit-for-bit, so any such call
    /// on a hot path silently forks the golden trajectories per OS.
    /// Simulation code uses the deterministic `cpm_math` kernels; cold
    /// analysis paths route through `cpm_math::reference::*`; the
    /// documented `*_reference` accuracy twins carry waivers.
    MathScope,
    /// Interprocedural determinism taint: a nondeterminism source
    /// (wall-clock, env read, bare libm, ad-hoc RNG seeding, hash
    /// iteration — including ones laundered through `use` aliases the
    /// token rules can't see) reaches, through any call chain, a sink
    /// that feeds golden-pinned output (Recorder emission, scenario
    /// goldens, bench stdout). The diagnostic prints both chains.
    TaintFlow,
    /// Physical-dimension consistency: `+`/`-`/comparison between
    /// quantities of different dimensions (W vs Hz, J vs s, …) or a
    /// suspicious `*`/`/` result (°C², |exponent| ≥ 3) in the modeling
    /// crates. Dimensions come from cpm-units types, `// dim: <unit>`
    /// annotations, and conservative naming conventions.
    DimConsistency,
}

/// Every rule, in reporting order.
pub const ALL_RULES: [RuleId; 14] = [
    RuleId::HashIteration,
    RuleId::Timing,
    RuleId::EnvRead,
    RuleId::ThreadSpawn,
    RuleId::RngScope,
    RuleId::Output,
    RuleId::UnsafeFile,
    RuleId::PanicBare,
    RuleId::LockUnwrap,
    RuleId::AllowJustify,
    RuleId::SimdStable,
    RuleId::MathScope,
    RuleId::TaintFlow,
    RuleId::DimConsistency,
];

impl RuleId {
    /// The stable kebab-case name used in reports and `lint-waivers.toml`.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::HashIteration => "hash-iteration",
            RuleId::Timing => "timing",
            RuleId::EnvRead => "env-read",
            RuleId::ThreadSpawn => "thread-spawn",
            RuleId::RngScope => "rng-scope",
            RuleId::Output => "output",
            RuleId::UnsafeFile => "unsafe-file",
            RuleId::PanicBare => "panic-bare",
            RuleId::LockUnwrap => "lock-unwrap",
            RuleId::AllowJustify => "allow-justify",
            RuleId::SimdStable => "simd-stable",
            RuleId::MathScope => "math-scope",
            RuleId::TaintFlow => "taint-flow",
            RuleId::DimConsistency => "dim-consistency",
        }
    }

    /// Parses a rule name as written in the waiver file.
    pub fn parse(name: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

/// How a file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Part of a crate's library (`src/`, not `src/bin/`).
    Library,
    /// A binary target (`src/main.rs`, `src/bin/*`).
    Binary,
    /// Integration tests and benches (`tests/`, `benches/`).
    Test,
    /// `examples/`.
    Example,
}

/// Where a file sits: which crate, and in what role.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Package name (`cpm-sim`, `cpm-bench`, …; the root package is `cpm`).
    pub crate_name: String,
    /// Build role of the file.
    pub role: Role,
}

/// Classifies a workspace-relative path into crate + role.
pub fn classify(rel_path: &str) -> FileContext {
    let crate_name = match rel_path.strip_prefix("crates/") {
        Some(rest) => match rest.split('/').next() {
            Some(dir) => format!("cpm-{dir}"),
            None => "cpm".to_string(),
        },
        None => "cpm".to_string(),
    };
    let in_crate = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split_once('/'))
        .map(|(_, tail)| tail)
        .unwrap_or(rel_path);
    let role = if in_crate.starts_with("tests/") || in_crate.starts_with("benches/") {
        Role::Test
    } else if in_crate.starts_with("examples/") {
        Role::Example
    } else if in_crate.starts_with("src/bin/") || in_crate == "src/main.rs" {
        Role::Binary
    } else {
        Role::Library
    };
    FileContext {
        rel_path: rel_path.to_string(),
        crate_name,
        role,
    }
}

/// One rule firing at one place.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the specific firing.
    pub message: String,
}

/// Crates whose whole purpose is timing/benchmarking: `Instant::now` and
/// `SystemTime` are their trade.
pub(crate) const TIMING_CRATES: [&str; 2] = ["cpm-bench", "cpm-runtime"];
/// Crates allowed to read the environment: the pool's `CPM_WORKERS`
/// plumbing, the experiment harness's artifact paths, and the linter's
/// own CLI.
pub(crate) const ENV_CRATES: [&str; 3] = ["cpm-bench", "cpm-runtime", "cpm-lint"];
/// The only crate that may create threads; everything else borrows its
/// pool (or `scoped_map`) so the race surface stays in one audited place.
pub(crate) const THREAD_CRATES: [&str; 1] = ["cpm-runtime"];
/// Library crates that own a seed-derivation contract and may construct
/// RNG streams: the RNG crate itself, workload synthesis (per-cell child
/// streams), transducer noise models, and fault injection (per-effect
/// child streams). Everywhere else, library code takes an `impl Rng` or
/// a derived child stream from its caller — ad-hoc seeding in the middle
/// of the stack silently decouples a component from the experiment seed.
pub(crate) const RNG_CRATES: [&str; 4] =
    ["cpm-rng", "cpm-workloads", "cpm-control", "cpm-scenario"];
/// Library crates exempt from the output rule: the bench harness *is*
/// the stdout producer the byte-gates diff.
pub(crate) const OUTPUT_CRATES: [&str; 1] = ["cpm-bench"];
/// The complete set of files allowed to contain `unsafe`. Everything
/// here exists to implement a test-only `GlobalAlloc` counting
/// allocator; production code is 100 % safe Rust.
pub const UNSAFE_ALLOWED_FILES: [&str; 1] = ["crates/sim/tests/alloc_free.rs"];

/// The only library crate that may call host-libm transcendentals: the
/// deterministic kernel crate itself (whose accuracy twins and
/// `reference` module are the sanctioned gateway).
pub(crate) const MATH_CRATES: [&str; 1] = ["cpm-math"];

/// `f64` methods backed by the host libm, whose results differ across
/// platforms bit-for-bit. IEEE-exact operations (`sqrt`, `powi`, `abs`,
/// `mul_add` aside — that one is banned by golden identity anyway) are
/// deliberately absent: they round identically everywhere.
pub(crate) const LIBM_METHODS: [&str; 13] = [
    "sin", "cos", "sin_cos", "tan", "exp", "exp2", "exp_m1", "ln", "ln_1p", "log", "log2", "log10",
    "powf",
];

/// Methods that iterate a hash container in nondeterministic order.
pub(crate) const HASH_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Marks every token inside a `#[cfg(test)] mod … { … }` region, so rules
/// can exempt unit-test code embedded in library files.
fn test_regions(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if seq_is(toks, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            // Skip over any further attributes to the item keyword.
            let mut j = i + 7;
            while seq_is(toks, j, &["#", "["]) {
                let mut depth = 0usize;
                j += 1; // at '['
                loop {
                    if j >= toks.len() {
                        break;
                    }
                    if toks[j].is("[") {
                        depth += 1;
                    } else if toks[j].is("]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if j < toks.len() && toks[j].is("mod") {
                // Find the opening brace, then its match.
                while j < toks.len() && !toks[j].is("{") && !toks[j].is(";") {
                    j += 1;
                }
                if j < toks.len() && toks[j].is("{") {
                    let mut depth = 0usize;
                    let start = i;
                    while j < toks.len() {
                        if toks[j].is("{") {
                            depth += 1;
                        } else if toks[j].is("}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    let end = j.min(toks.len().saturating_sub(1));
                    for flag in &mut in_test[start..=end] {
                        *flag = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    in_test
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file: `let`
/// bindings with hash-typed annotations or constructors, `static`s,
/// struct fields, and function parameters. Tracking is per-file and
/// name-based — coarse, but hash-typed names are rare and specific in
/// this workspace, and anything genuinely intended is waivable.
fn hash_idents(toks: &[Tok<'_>]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    let mut track = |name: &str| {
        if !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    };
    for i in 0..toks.len() {
        // `name : …HashMap…` — covers annotated lets, statics, struct
        // fields, and fn params. Scan the type expression at angle-depth
        // 0 until a terminator.
        if toks[i].kind == TokKind::Ident
            && seq_is(toks, i + 1, &[":"])
            && !seq_is(toks, i + 2, &[":"])
        {
            let mut depth = 0i32;
            let mut j = i + 2;
            let limit = (i + 60).min(toks.len());
            while j < limit {
                let t = &toks[j];
                if t.is("<") {
                    depth += 1;
                } else if t.is(">") {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0
                    && (t.is(",") || t.is(";") || t.is(")") || t.is("{") || t.is("="))
                {
                    break;
                } else if t.is("HashMap") || t.is("HashSet") {
                    track(toks[i].text);
                    break;
                }
                j += 1;
            }
        }
        // `let [mut] name = HashMap::…` / `HashSet::…` (possibly behind a
        // `std::collections::` path).
        if toks[i].is("let") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is("mut") {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident && seq_is(toks, j + 1, &["="]) {
                let name = toks[j].text;
                let limit = (j + 12).min(toks.len());
                let mut k = j + 2;
                while k < limit {
                    let t = &toks[k];
                    if t.is("HashMap") || t.is("HashSet") {
                        if seq_is(toks, k + 1, &[":", ":"]) {
                            track(name);
                        }
                        break;
                    }
                    // Allow only path tokens before the constructor.
                    if !(t.is(":") || t.is("std") || t.is("collections")) {
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names
}

/// Runs the whole catalogue over one tokenized file. `raw_lines` is the
/// unprocessed source split by line, used only for the same-line
/// justification-comment check of `allow-justify`.
pub fn check_file(ctx: &FileContext, toks: &[Tok<'_>], raw_lines: &[&str]) -> Vec<Violation> {
    let mut out = Vec::new();
    let in_test = test_regions(toks);
    let tracked = hash_idents(toks);
    let is_test_code = |i: usize| ctx.role == Role::Test || in_test[i];
    let mut push = |rule: RuleId, line: usize, message: String| {
        out.push(Violation {
            rule,
            path: ctx.rel_path.clone(),
            line,
            message,
        });
    };

    for i in 0..toks.len() {
        let t = &toks[i];

        // determinism: hash iteration (applies everywhere, tests included
        // — order-dependent assertions are flaky by construction).
        if t.kind == TokKind::Ident && tracked.iter().any(|n| n == t.text) {
            let receiver_start = !seq_is(toks, i.wrapping_sub(1), &["."])
                || seq_is(toks, i.wrapping_sub(2), &["self", "."]);
            if i >= 1 && receiver_start && seq_is(toks, i + 1, &["."]) {
                if let Some(m) = toks.get(i + 2) {
                    if HASH_ITER_METHODS.contains(&m.text) && seq_is(toks, i + 3, &["("]) {
                        push(
                            RuleId::HashIteration,
                            t.line,
                            format!(
                                "`.{}()` iterates hash container `{}` in nondeterministic order; \
                                 use a BTreeMap/BTreeSet or sort before iterating",
                                m.text, t.text
                            ),
                        );
                    }
                }
            }
        }
        if t.is("for") {
            // `for pat in [&][mut] [self.]name …` over a tracked container.
            let limit = (i + 24).min(toks.len());
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < limit {
                if toks[j].is("(") || toks[j].is("[") {
                    depth += 1;
                } else if toks[j].is(")") || toks[j].is("]") {
                    depth -= 1;
                } else if depth == 0 && toks[j].is("in") {
                    let mut k = j + 1;
                    while k < toks.len() && (toks[k].is("&") || toks[k].is("mut")) {
                        k += 1;
                    }
                    if seq_is(toks, k, &["self", "."]) {
                        k += 2;
                    }
                    if k < toks.len() && tracked.iter().any(|n| n == toks[k].text) {
                        push(
                            RuleId::HashIteration,
                            toks[k].line,
                            format!(
                                "`for … in` over hash container `{}` visits entries in \
                                 nondeterministic order",
                                toks[k].text
                            ),
                        );
                    }
                    break;
                }
                j += 1;
            }
        }

        // determinism: wall-clock time.
        if !TIMING_CRATES.contains(&ctx.crate_name.as_str()) {
            if seq_is(toks, i, &["Instant", ":", ":", "now"]) {
                push(
                    RuleId::Timing,
                    t.line,
                    "`Instant::now()` outside the timing crates breaks replay determinism"
                        .to_string(),
                );
            }
            if t.is("SystemTime") {
                push(
                    RuleId::Timing,
                    t.line,
                    "`SystemTime` outside the timing crates breaks replay determinism".to_string(),
                );
            }
        }

        // determinism: environment reads.
        if !ENV_CRATES.contains(&ctx.crate_name.as_str()) && seq_is(toks, i, &["env", ":", ":"]) {
            if let Some(f) = toks.get(i + 3) {
                if matches!(
                    f.text,
                    "var"
                        | "vars"
                        | "var_os"
                        | "vars_os"
                        | "args"
                        | "args_os"
                        | "set_var"
                        | "remove_var"
                ) {
                    push(
                        RuleId::EnvRead,
                        t.line,
                        format!(
                            "`env::{}` outside the worker-count/harness plumbing makes results \
                             depend on ambient state",
                            f.text
                        ),
                    );
                }
            }
        }

        // determinism: thread creation stays in cpm-runtime. Tests may
        // spawn threads to *exercise* concurrency.
        if !THREAD_CRATES.contains(&ctx.crate_name.as_str())
            && !is_test_code(i)
            && seq_is(toks, i, &["thread", ":", ":"])
        {
            if let Some(f) = toks.get(i + 3) {
                if matches!(f.text, "spawn" | "scope" | "Builder") {
                    push(
                        RuleId::ThreadSpawn,
                        t.line,
                        format!(
                            "`thread::{}` outside cpm-runtime; use the pool or `scoped_map`",
                            f.text
                        ),
                    );
                }
            }
        }

        // determinism: RNG construction stays in the crates that own a
        // seed-derivation contract. Tests may seed streams freely.
        if ctx.role == Role::Library
            && !RNG_CRATES.contains(&ctx.crate_name.as_str())
            && !is_test_code(i)
        {
            if seq_is(toks, i, &["Xoshiro256pp", ":", ":"]) {
                if let Some(f) = toks.get(i + 3) {
                    if matches!(f.text, "seed_from_u64" | "child") {
                        push(
                            RuleId::RngScope,
                            t.line,
                            format!(
                                "`Xoshiro256pp::{}` outside the RNG-owning crates; take an RNG \
                                 (or a derived child stream) from the caller so every stream \
                                 traces back to the experiment seed",
                                f.text
                            ),
                        );
                    }
                }
            }
            if seq_is(toks, i, &["SplitMix64", ":", ":", "new"]) {
                push(
                    RuleId::RngScope,
                    t.line,
                    "`SplitMix64::new` outside the RNG-owning crates; derive streams via \
                     `Xoshiro256pp::child` in a crate that owns seeding"
                        .to_string(),
                );
            }
        }

        // output discipline: library crates never print.
        if ctx.role == Role::Library
            && !OUTPUT_CRATES.contains(&ctx.crate_name.as_str())
            && !is_test_code(i)
            && matches!(t.text, "println" | "print" | "eprintln" | "eprint" | "dbg")
            && seq_is(toks, i + 1, &["!"])
        {
            push(
                RuleId::Output,
                t.line,
                format!(
                    "`{}!` in a library crate; stdout/stderr are contract surfaces — route \
                     telemetry through cpm-obs",
                    t.text
                ),
            );
        }

        // safety: unsafe stays in the allow-listed file set.
        if t.is("unsafe") && !UNSAFE_ALLOWED_FILES.contains(&ctx.rel_path.as_str()) {
            push(
                RuleId::UnsafeFile,
                t.line,
                "`unsafe` outside the allow-listed file set (see UNSAFE_ALLOWED_FILES)".to_string(),
            );
        }

        // safety: no bare panic! in library code.
        if ctx.role == Role::Library
            && !is_test_code(i)
            && t.is("panic")
            && seq_is(toks, i + 1, &["!"])
            && !seq_is(toks, i.wrapping_sub(2), &["core", ":"])
            && !seq_is(toks, i.wrapping_sub(2), &["std", ":"])
        {
            push(
                RuleId::PanicBare,
                t.line,
                "bare `panic!` in library code; return an error or use an `assert!` with an \
                 invariant message"
                    .to_string(),
            );
        }

        // safety: poisoned-lock recovery instead of unwrap/expect.
        if ctx.role == Role::Library && !is_test_code(i) {
            let unwrap_seq = ["lock", "(", ")", ".", "unwrap", "("];
            let expect_seq = ["lock", "(", ")", ".", "expect", "("];
            if seq_is(toks, i, &["."])
                && (seq_is(toks, i + 1, &unwrap_seq) || seq_is(toks, i + 1, &expect_seq))
            {
                push(
                    RuleId::LockUnwrap,
                    t.line,
                    "`.lock().unwrap()` in library code wedges every later caller after one \
                     panic; recover with `.unwrap_or_else(PoisonError::into_inner)`"
                        .to_string(),
                );
            }
        }

        // std-only stable: no nightly gates, no per-arch SIMD escapes.
        // The vectorized kernels are lane-chunked loops LLVM
        // autovectorizes portably; a `#![feature(portable_simd)]` or
        // `#[target_feature] unsafe` shortcut would silently fork the
        // numeric contract per architecture.
        if t.is("#") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is("!") {
                j += 1;
            }
            if seq_is(toks, j, &["[", "feature"]) {
                push(
                    RuleId::SimdStable,
                    t.line,
                    "`#![feature(...)]` nightly gate; the workspace builds std-only on stable"
                        .to_string(),
                );
            }
            if seq_is(toks, j, &["[", "target_feature"]) {
                push(
                    RuleId::SimdStable,
                    t.line,
                    "`#[target_feature(...)]` per-arch escape; lane-chunked loops must \
                     autovectorize portably"
                        .to_string(),
                );
            }
        }
        if (t.is("std") || t.is("core")) && seq_is(toks, i + 1, &[":", ":"]) {
            if let Some(m) = toks.get(i + 3) {
                if m.is("simd") || m.is("arch") {
                    push(
                        RuleId::SimdStable,
                        t.line,
                        format!(
                            "`{}::{}` is a nightly/per-arch SIMD surface; write lane-chunked \
                             loops the autovectorizer handles on stable",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        if t.is("is_x86_feature_detected") {
            push(
                RuleId::SimdStable,
                t.line,
                "runtime feature detection forks the numeric contract per host; keep kernels \
                 portable"
                    .to_string(),
            );
        }

        // determinism: libm transcendentals stay inside cpm-math. A
        // `.sin()` on a hot path silently re-introduces the per-platform
        // bit drift the deterministic kernels exist to remove; cold paths
        // route through `cpm_math::reference::*` (free functions, so this
        // method-call pattern does not fire), and the documented
        // `*_reference` accuracy twins carry the only waivers.
        if ctx.role == Role::Library
            && !MATH_CRATES.contains(&ctx.crate_name.as_str())
            && !is_test_code(i)
            && t.is(".")
        {
            if let Some(m) = toks.get(i + 1) {
                if m.kind == TokKind::Ident
                    && LIBM_METHODS.contains(&m.text)
                    && seq_is(toks, i + 2, &["("])
                {
                    push(
                        RuleId::MathScope,
                        m.line,
                        format!(
                            "`.{}()` calls the host libm, whose bits differ per platform; use \
                             the deterministic `cpm_math` kernels (hot paths) or \
                             `cpm_math::reference::*` (cold analysis paths)",
                            m.text
                        ),
                    );
                }
            }
        }

        // hygiene: every allow carries a same-line justification.
        if t.is("#") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is("!") {
                j += 1;
            }
            if seq_is(toks, j, &["[", "allow"]) {
                // Find the attribute's closing bracket.
                let mut depth = 0usize;
                let mut k = j;
                while k < toks.len() {
                    if toks[k].is("[") {
                        depth += 1;
                    } else if toks[k].is("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let close_line = toks.get(k).map(|c| c.line).unwrap_or(t.line);
                // A line comment runs to end of line, so any `//` with a
                // `]` before it sits after the attribute closed. (Do NOT
                // anchor on the *last* `]`: the justification text itself
                // may contain brackets, e.g. `// dp[b-cost] is ...`.)
                let justified = raw_lines
                    .get(close_line - 1)
                    .map(|l| match l.find("//") {
                        Some(pos) => l[..pos].contains(']'),
                        None => false,
                    })
                    .unwrap_or(false);
                if !justified {
                    push(
                        RuleId::AllowJustify,
                        t.line,
                        "`#[allow(...)]` without a same-line `// why` justification".to_string(),
                    );
                }
            }
        }
    }
    out
}
