//! The lightweight AST the recursive-descent parser ([`crate::parser`])
//! produces, and that the workspace passes ([`crate::callgraph`],
//! [`crate::taint`], [`crate::dims`]) consume.
//!
//! This is deliberately not a full Rust grammar: it models exactly the
//! structure the analyses need — items (fns, impls, use-trees, structs),
//! expression trees with calls/method-calls/field-accesses/binary ops,
//! and `#[cfg(test)]` attribution — and collapses everything else into
//! [`ExprKind::Unknown`]. Every node carries the 1-based source line it
//! starts on, so diagnostics stay clickable.

use crate::rules::FileContext;

/// Binary operators the analyses distinguish. Arithmetic and comparison
/// matter to the dimension pass; everything else is carried so operand
/// subtrees stay visible to the taint walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (and `+=`, which dimension-checks identically).
    Add,
    /// `-` (and `-=`).
    Sub,
    /// `*` (and `*=`).
    Mul,
    /// `/` (and `/=`).
    Div,
    /// `%` (and `%=`).
    Rem,
    /// `<`, `<=`, `>`, `>=` — ordered comparison of two quantities.
    Cmp,
    /// `==`, `!=`.
    Eq,
    /// `=` and every other assignment/logical/bit operator.
    Other,
}

impl BinOp {
    /// True for the operators whose operands must share a dimension.
    pub fn requires_same_dim(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Cmp | BinOp::Eq)
    }
}

/// One expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    /// What kind of expression this is.
    pub kind: ExprKind,
    /// 1-based line the expression starts on.
    pub line: usize,
}

/// The expression forms the analyses distinguish.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// A (possibly multi-segment) path: `x`, `self`, `a::b::c`.
    Path(Vec<String>),
    /// A numeric literal (dimensionless unless annotated).
    Num,
    /// A string/char/byte literal.
    Lit,
    /// A path call: `f(a)`, `Type::method(a)`, `krate::module::f(a)`.
    Call {
        /// The callee path segments.
        path: Vec<String>,
        /// Parsed argument expressions.
        args: Vec<Expr>,
    },
    /// A method call: `recv.name(args)`.
    Method {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Parsed argument expressions.
        args: Vec<Expr>,
    },
    /// Field access: `base.name` (tuple indices use the digits as name).
    Field {
        /// The accessed value.
        base: Box<Expr>,
        /// Field name.
        name: String,
    },
    /// Indexing: `base[index]`.
    Index {
        /// The indexed value.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// A macro invocation `name!(…)` with best-effort parsed arguments.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Arguments we managed to parse as expressions.
        args: Vec<Expr>,
    },
    /// A struct literal `Path { field: expr, .. }`.
    Struct {
        /// The struct path.
        path: Vec<String>,
        /// `(field, value)` pairs (shorthand fields get a Path value).
        fields: Vec<(String, Expr)>,
    },
    /// Unary `-`, `!`, `*`, `&` — dimension-transparent.
    Unary(Box<Expr>),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr as Type` — the cast target is dropped.
    Cast(Box<Expr>),
    /// A block `{ … }`, or the desugared body of `loop`/`unsafe`/labels.
    Block(Block),
    /// `if cond { … } else …` (the else arm is an expr: block or `if`).
    If {
        /// Condition (absent for `if let`, whose pattern is skipped).
        cond: Option<Box<Expr>>,
        /// The then-block.
        then_b: Block,
        /// The else arm, when present.
        else_b: Option<Box<Expr>>,
    },
    /// `match scrutinee { pat => arm, … }` — patterns are skipped, arm
    /// bodies kept.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// Arm body expressions in source order.
        arms: Vec<Expr>,
    },
    /// `while cond { … }` / `while let … { … }`.
    While {
        /// Condition (absent for `while let`).
        cond: Option<Box<Expr>>,
        /// Loop body.
        body: Block,
    },
    /// `for pat in iter { … }` — the pattern is skipped.
    For {
        /// The iterated expression.
        iter: Box<Expr>,
        /// Loop body.
        body: Block,
    },
    /// A closure `|args| body` (parameter patterns are skipped).
    Closure(Box<Expr>),
    /// `return expr?` / `break expr?`.
    Jump(Option<Box<Expr>>),
    /// A tuple `(a, b)` or array `[a, b]` literal.
    Seq(Vec<Expr>),
    /// Anything the tolerant parser gave up on. Child expressions that
    /// were recognized before bailing are preserved for the walks.
    Unknown(Vec<Expr>),
}

/// A `{ … }` block: statements plus a trailing-expression flag folded
/// into the last statement.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// One statement of a block.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `let name[: ty] = init;` — destructuring patterns get `name: None`.
    Let {
        /// Bound name for simple `let [mut] name` patterns.
        name: Option<String>,
        /// Type annotation rendered as a compact string (`Vec<Watts>`).
        ty: Option<String>,
        /// Initializer expression.
        init: Option<Expr>,
        /// 1-based line of the `let`.
        line: usize,
    },
    /// An expression statement.
    Expr(Expr),
}

/// One `use` declaration, flattened: `use a::{b, c as d};` becomes two
/// entries. The alias is what the importing file sees.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Full path segments (`["std", "time", "Instant"]`).
    pub segs: Vec<String>,
    /// Local name: the `as` rename or the last segment.
    pub alias: String,
    /// True for `use path::*`.
    pub glob: bool,
    /// True when the use sits inside `#[cfg(test)]` code.
    pub in_test: bool,
}

/// One function (or method) definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `impl`/`trait` type name this is a method of, if any.
    pub qual: Option<String>,
    /// The trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// Parameters as `(name, rendered type)`; `self` receivers included
    /// with type `Self`.
    pub params: Vec<(String, String)>,
    /// Rendered return type, when present.
    pub ret: Option<String>,
    /// The body; `None` for trait method declarations.
    pub body: Option<Block>,
    /// True when under `#[cfg(test)]` or marked `#[test]`.
    pub in_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One struct definition (named fields only; tuple structs are skipped).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// `(field name, rendered type, line)` triples.
    pub fields: Vec<(String, String, usize)>,
}

/// A fully parsed source file.
#[derive(Debug, Clone)]
pub struct ParsedFile {
    /// Where the file sits in the workspace.
    pub ctx: FileContext,
    /// Every flattened `use` declaration.
    pub uses: Vec<UseDecl>,
    /// Every function, including nested ones and impl/trait methods.
    pub fns: Vec<FnDef>,
    /// Every named-field struct.
    pub structs: Vec<StructDef>,
}

impl Expr {
    /// Walks this expression tree depth-first, calling `f` on every node.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match &self.kind {
            ExprKind::Path(_) | ExprKind::Num | ExprKind::Lit => {}
            ExprKind::Call { args, .. } | ExprKind::Macro { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Method { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Field { base, .. } => base.walk(f),
            ExprKind::Index { base, index } => {
                base.walk(f);
                index.walk(f);
            }
            ExprKind::Struct { fields, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
            ExprKind::Unary(e) | ExprKind::Cast(e) | ExprKind::Closure(e) => e.walk(f),
            ExprKind::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            ExprKind::Block(b) => b.walk(f),
            ExprKind::If {
                cond,
                then_b,
                else_b,
            } => {
                if let Some(c) = cond {
                    c.walk(f);
                }
                then_b.walk(f);
                if let Some(e) = else_b {
                    e.walk(f);
                }
            }
            ExprKind::Match { scrutinee, arms } => {
                scrutinee.walk(f);
                for a in arms {
                    a.walk(f);
                }
            }
            ExprKind::While { cond, body } => {
                if let Some(c) = cond {
                    c.walk(f);
                }
                body.walk(f);
            }
            ExprKind::For { iter, body } => {
                iter.walk(f);
                body.walk(f);
            }
            ExprKind::Jump(e) => {
                if let Some(e) = e {
                    e.walk(f);
                }
            }
            ExprKind::Seq(es) | ExprKind::Unknown(es) => {
                for e in es {
                    e.walk(f);
                }
            }
        }
    }
}

impl Block {
    /// Walks every expression in the block depth-first.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        for s in &self.stmts {
            match s {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        e.walk(f);
                    }
                }
                Stmt::Expr(e) => e.walk(f),
            }
        }
    }
}

impl FnDef {
    /// Walks every expression in the body, if there is one.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        if let Some(b) = &self.body {
            b.walk(f);
        }
    }
}
