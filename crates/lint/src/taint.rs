//! Interprocedural determinism-taint analysis.
//!
//! The token rules in [`crate::rules`] catch a *direct* `Instant::now()`
//! or `.sin()` at its line. What they cannot see is the same
//! nondeterminism laundered through a call — a helper that reads the
//! wall clock, renamed through `use std::time::Instant as Clock`, called
//! three frames above the code that writes a golden artifact. This pass
//! closes that gap over the call graph:
//!
//! 1. **Seed sources.** A function's body is a source when it contains a
//!    determinism-family token-rule firing (timing, env-read, rng-scope,
//!    math-scope, thread-spawn, hash-iteration — waived or not: a waiver
//!    documents intent at the site, it does not make the value
//!    deterministic), or an alias-resolved call the token rules miss
//!    (`Clock::now()`, `f64::sin(x)`, a renamed `std::env::var`). Source
//!    seeding uses the *same* crate/role scoping as the token rules, so
//!    the sanctioned uses (bench timing, runtime's `CPM_WORKERS` read,
//!    seed-owning RNG construction) stay clean.
//! 2. **Propagate.** `reaches_source(F)` = F contains a source or any
//!    callee does; `reaches_sink(F)` = F is a golden sink or any callee
//!    is. Both are downward closures over the (over-approximated) graph.
//! 3. **Report joins.** A violation fires at every *join* function — one
//!    that reaches both a source and a sink while no single callee does
//!    (deeper joins win, so one laundering chain yields one diagnostic).
//!    The message prints both witness chains, shortest-first.
//!
//! Data flow through arguments is out of scope: a function that receives
//! already-nondeterministic data is invisible here, but the construction
//! site of that data is not, and the token rules remain the backstop.

use crate::ast::ParsedFile;
use crate::callgraph::CallGraph;
use crate::rules::{
    classify, Role, RuleId, Violation, ENV_CRATES, LIBM_METHODS, MATH_CRATES, RNG_CRATES,
    THREAD_CRATES, TIMING_CRATES,
};

/// Token-rule families whose firings seed taint. Output/safety/hygiene
/// rules are not determinism sources.
const SOURCE_RULES: [RuleId; 6] = [
    RuleId::HashIteration,
    RuleId::Timing,
    RuleId::EnvRead,
    RuleId::ThreadSpawn,
    RuleId::RngScope,
    RuleId::MathScope,
];

/// The functions whose output is byte-pinned by goldens: trace emission,
/// golden-document rendering, and the bench tables the stdout gate diffs.
/// `(crate, qual, name)`; qual `Some("*")` matches any method.
const SINKS: [(&str, Option<&str>, &str); 6] = [
    ("cpm-obs", Some("Recorder"), "record"),
    ("cpm-scenario", Some("GoldenDoc"), "render"),
    ("cpm-scenario", None, "differential_report"),
    ("cpm-bench", None, "table1"),
    ("cpm-bench", None, "table2"),
    ("cpm-bench", None, "table3"),
];

/// One seeded nondeterminism source inside a function.
#[derive(Debug, Clone)]
struct Source {
    /// What it is, rendered for the diagnostic (`std::time::Instant::now`).
    what: String,
    /// 1-based line of the source site.
    line: usize,
}

/// `std::env` functions that read or mutate ambient process state.
const ENV_FNS: [&str; 8] = [
    "var",
    "vars",
    "var_os",
    "vars_os",
    "args",
    "args_os",
    "set_var",
    "remove_var",
];

/// Detects alias-resolved sources in one node's call sites, applying the
/// same scoping as the corresponding token rule.
fn ast_sources(graph: &CallGraph, n: usize) -> Vec<Source> {
    let node = &graph.nodes[n];
    let ctx = classify(&node.file);
    let krate = ctx.crate_name.as_str();
    let lib_scoped = ctx.role == Role::Library && !node.in_test;
    let mut out = Vec::new();
    for c in &graph.calls[n] {
        let segs: Vec<&str> = c.resolved.iter().map(String::as_str).collect();
        let source = match segs.as_slice() {
            // Wall clock, however renamed. Same scope as the timing token
            // rule: crate-wide, tests included.
            ["std", "time", "Instant", ..] | ["std", "time", "SystemTime", ..]
                if !TIMING_CRATES.contains(&krate) =>
            {
                true
            }
            // Environment reads.
            ["std", "env", f, ..] if ENV_FNS.contains(f) && !ENV_CRATES.contains(&krate) => true,
            // Ambient threads (tests may exercise concurrency).
            ["std", "thread", f, ..]
                if matches!(*f, "spawn" | "scope" | "Builder")
                    && !THREAD_CRATES.contains(&krate)
                    && !node.in_test =>
            {
                true
            }
            // Bare libm through the UFCS spelling the method-call token
            // rule can't see: `f64::sin(x)`.
            ["f64", m] | ["f32", m]
                if LIBM_METHODS.contains(m) && lib_scoped && !MATH_CRATES.contains(&krate) =>
            {
                true
            }
            // Ad-hoc RNG construction, however renamed.
            [.., "Xoshiro256pp", m]
                if matches!(*m, "seed_from_u64" | "child")
                    && lib_scoped
                    && !RNG_CRATES.contains(&krate) =>
            {
                true
            }
            [.., "SplitMix64", "new"] if lib_scoped && !RNG_CRATES.contains(&krate) => true,
            _ => false,
        };
        if source {
            out.push(Source {
                what: c.resolved.join("::"),
                line: c.line,
            });
        }
    }
    out
}

/// Downward closure: `true[n]` iff `n` is in `seed` or any callee is.
/// Iterates to a fixpoint (the graph may be cyclic through recursion).
fn closure(graph: &CallGraph, mut flag: Vec<bool>) -> Vec<bool> {
    loop {
        let mut changed = false;
        for n in 0..graph.nodes.len() {
            if flag[n] {
                continue;
            }
            if graph.callees(n).iter().any(|&c| flag[c]) {
                flag[n] = true;
                changed = true;
            }
        }
        if !changed {
            return flag;
        }
    }
}

/// BFS from `start` through callees restricted to `allowed`, stopping at
/// the first node satisfying `hit`. Returns the node path including both
/// endpoints. Deterministic: callees are visited in ascending order.
fn chain_to(
    graph: &CallGraph,
    start: usize,
    allowed: &[bool],
    hit: &dyn Fn(usize) -> bool,
) -> Vec<usize> {
    if hit(start) {
        return vec![start];
    }
    let mut prev: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; graph.nodes.len()];
    seen[start] = true;
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for c in graph.callees(n) {
            if seen[c] || !allowed[c] {
                continue;
            }
            seen[c] = true;
            prev[c] = Some(n);
            if hit(c) {
                let mut path = vec![c];
                let mut cur = c;
                while let Some(p) = prev[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return path;
            }
            queue.push_back(c);
        }
    }
    vec![start]
}

/// Renders a node path as `a → b → c`.
fn render_chain(graph: &CallGraph, path: &[usize]) -> String {
    path.iter()
        .map(|&n| graph.nodes[n].key.render())
        .collect::<Vec<_>>()
        .join(" → ")
}

/// Runs the taint pass. `token_violations` are the per-file rule firings
/// (pre-waiver: waived sources still taint).
pub fn check(
    _files: &[ParsedFile],
    graph: &CallGraph,
    token_violations: &[Violation],
) -> Vec<Violation> {
    let n_nodes = graph.nodes.len();
    // Seed sources: token-rule firings mapped into their enclosing fn…
    let mut sources: Vec<Vec<Source>> = vec![Vec::new(); n_nodes];
    for v in token_violations {
        if !SOURCE_RULES.contains(&v.rule) {
            continue;
        }
        if let Some(n) = graph.enclosing_fn(&v.path, v.line) {
            sources[n].push(Source {
                what: format!("[{}]", v.rule.name()),
                line: v.line,
            });
        }
    }
    // …plus the alias-resolved sites the token rules cannot see.
    for (n, node_sources) in sources.iter_mut().enumerate() {
        for s in ast_sources(graph, n) {
            if !node_sources.iter().any(|x| x.line == s.line) {
                node_sources.push(s);
            }
        }
    }
    for s in &mut sources {
        s.sort_by_key(|x| x.line);
    }

    // Sinks.
    let mut is_sink = vec![false; n_nodes];
    for (krate, qual, name) in SINKS {
        for n in graph.find(krate, qual, name) {
            is_sink[n] = true;
        }
    }

    // Closures.
    let reaches_source = closure(graph, sources.iter().map(|s| !s.is_empty()).collect());
    let reaches_sink = closure(graph, is_sink.clone());

    // Joins: in both closures, with no callee in both.
    let mut out = Vec::new();
    for n in 0..n_nodes {
        if !(reaches_source[n] && reaches_sink[n]) {
            continue;
        }
        if graph
            .callees(n)
            .iter()
            .any(|&c| reaches_source[c] && reaches_sink[c])
        {
            continue;
        }
        let node = &graph.nodes[n];
        let src_path = chain_to(graph, n, &reaches_source, &|m| !sources[m].is_empty());
        let src_node = *src_path.last().unwrap_or(&n);
        let site = sources[src_node].first();
        let sink_path = chain_to(graph, n, &reaches_sink, &|m| is_sink[m]);
        let (what, src_file, src_line) = match site {
            Some(s) => (s.what.clone(), graph.nodes[src_node].file.clone(), s.line),
            None => ("<unknown>".to_string(), node.file.clone(), node.line),
        };
        out.push(Violation {
            rule: RuleId::TaintFlow,
            path: node.file.clone(),
            line: node.line,
            message: format!(
                "nondeterminism reaches a golden sink through `{}`: source chain {} → {} ({}:{}); sink chain {}",
                node.key.render(),
                render_chain(graph, &src_path),
                what,
                src_file,
                src_line,
                render_chain(graph, &sink_path),
            ),
        });
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::tokenizer::tokenize;

    /// Parses sources, runs token rules, builds the graph, runs taint.
    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(p, s)| parse_file(&classify(p), &tokenize(s)))
            .collect();
        let graph = crate::callgraph::build(&parsed);
        let mut token = Vec::new();
        for (p, s) in files {
            token.extend(crate::lint_source(&classify(p), s));
        }
        check(&parsed, &graph, &token)
    }

    const SINK_FILE: (&str, &str) = (
        "crates/obs/src/recorder.rs",
        "pub struct Recorder;\nimpl Recorder { pub fn record(&self) {} }",
    );

    #[test]
    fn laundered_instant_reaching_recorder_fires_with_chain() {
        let v = run(&[
            SINK_FILE,
            (
                "crates/core/src/coordinator.rs",
                "use cpm_obs::Recorder;\n\
                 use std::time::Instant as Clock;\n\
                 fn stamp() -> f64 { let t = Clock::now(); 0.0 }\n\
                 fn emit(r: &Recorder) { let x = stamp(); r.record(); }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, RuleId::TaintFlow);
        assert!(
            v[0].message.contains("std::time::Instant::now"),
            "{}",
            v[0].message
        );
        assert!(v[0].message.contains("cpm-core::emit"), "{}", v[0].message);
        assert!(v[0].message.contains("cpm-core::stamp"), "{}", v[0].message);
        assert!(
            v[0].message.contains("cpm-obs::Recorder::record"),
            "{}",
            v[0].message
        );
    }

    #[test]
    fn source_without_sink_path_stays_quiet() {
        let v = run(&[
            SINK_FILE,
            (
                "crates/core/src/coordinator.rs",
                "use std::time::Instant as Clock;\n\
                 fn stamp() -> f64 { let t = Clock::now(); 0.0 }",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn sink_without_source_stays_quiet() {
        let v = run(&[
            SINK_FILE,
            (
                "crates/core/src/coordinator.rs",
                "use cpm_obs::Recorder;\nfn emit(r: &Recorder) { r.record(); }",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn exempt_crate_sources_do_not_taint() {
        // Instant in cpm-runtime is sanctioned pool telemetry; a caller
        // that also reaches a sink must stay clean.
        let v = run(&[
            SINK_FILE,
            (
                "crates/runtime/src/lib.rs",
                "use std::time::Instant;\npub fn parallel_map() { let t = Instant::now(); }",
            ),
            (
                "crates/core/src/coordinator.rs",
                "use cpm_obs::Recorder;\nuse cpm_runtime::parallel_map;\n\
                 fn emit(r: &Recorder) { parallel_map(); r.record(); }",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn multi_hop_chain_is_printed_in_order() {
        let v = run(&[
            SINK_FILE,
            (
                "crates/power/src/model.rs",
                "fn leaf() -> f64 { f64::exp(1.0) }\npub fn mid() -> f64 { leaf() }",
            ),
            (
                "crates/core/src/coordinator.rs",
                "use cpm_obs::Recorder;\nuse cpm_power::mid;\n\
                 fn emit(r: &Recorder) { let x = mid(); r.record(); }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        let m = &v[0].message;
        assert!(
            m.contains("cpm-core::emit → cpm-power::mid → cpm-power::leaf → f64::exp"),
            "{m}"
        );
        assert!(m.contains("crates/power/src/model.rs:1"), "{m}");
    }

    #[test]
    fn token_rule_sources_also_seed() {
        // A direct (un-aliased) Instant::now is a token-rule firing; the
        // taint pass must still chain it to the sink.
        let v = run(&[
            SINK_FILE,
            (
                "crates/core/src/coordinator.rs",
                "use cpm_obs::Recorder;\nuse std::time::Instant;\n\
                 fn stamp() -> f64 { let t = Instant::now(); 0.0 }\n\
                 fn emit(r: &Recorder) { let x = stamp(); r.record(); }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("source chain"), "{}", v[0].message);
    }

    #[test]
    fn test_code_sources_do_not_taint_library_paths() {
        let v = run(&[
            SINK_FILE,
            (
                "crates/control/src/lib.rs",
                "use cpm_obs::Recorder;\n\
                 pub fn emit(r: &Recorder) { r.record(); }\n\
                 #[cfg(test)]\nmod tests {\n\
                   use std::thread;\n\
                   fn spawny() { thread::spawn(|| {}); }\n}",
            ),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn deepest_join_wins_single_diagnostic() {
        // caller → join → {source, sink}: only `join` reports, not caller.
        let v = run(&[
            SINK_FILE,
            (
                "crates/core/src/coordinator.rs",
                "use cpm_obs::Recorder;\nuse std::time::SystemTime;\n\
                 fn join(r: &Recorder) { let t = SystemTime::now(); r.record(); }\n\
                 pub fn caller(r: &Recorder) { join(r); }",
            ),
        ]);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(
            v[0].message.contains("`cpm-core::join`"),
            "{}",
            v[0].message
        );
    }
}
