//! `cpm-lint`: the workspace's determinism/safety static-analysis pass.
//!
//! The reproduction's evaluation rests on contracts the end-to-end gates
//! can only spot-check: deterministic GPM/PIC decision traces, stdout
//! byte-identity across worker counts, bit-identical kernel pairs, a
//! 0-alloc steady state. One stray `HashMap` iteration or `Instant::now()`
//! in a library crate silently re-introduces nondeterminism until an
//! end-to-end gate happens to catch it. This crate makes the invariant
//! catalogue machine-checked on every `cargo test`:
//!
//! * tokenizes every `.rs` file in the workspace (comment/string/raw-
//!   string aware — see [`tokenizer`]; no regex-over-source false
//!   positives),
//! * enforces the rule catalogue in [`rules`] (see DESIGN.md §3f for the
//!   full table),
//! * reconciles firings against the committed `lint-waivers.toml`
//!   ([`waivers`]) — a waived violation is intended and documented, a
//!   stale waiver is itself an error, so the file can only shrink.
//!
//! It runs three ways: as a binary (`cargo run -p cpm-lint -- --deny`),
//! as a workspace test (`crates/lint/tests/workspace.rs`, so tier-1
//! `cargo test` gates it hermetically), and as a CI lane. It is std-only
//! with zero external dependencies, like everything else here.

#![forbid(unsafe_code)]

pub mod ast;
pub mod ast_rules;
pub mod callgraph;
pub mod dims;
pub mod output;
pub mod parser;
pub mod rules;
pub mod taint;
pub mod tokenizer;
pub mod waivers;

pub use rules::{classify, FileContext, RuleId, Violation, ALL_RULES};
pub use waivers::{Budget, Waiver, WaiverError, WaiverFile};

use std::path::{Path, PathBuf};

/// Directories never scanned: build output, VCS, and the linter's own
/// fixture corpus (which exists to contain violations).
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// Name of the waiver file at the workspace root.
pub const WAIVER_FILE: &str = "lint-waivers.toml";

/// Outcome of a full run: what fired, what was waived, what went stale.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not covered by any waiver — these fail the build.
    pub active: Vec<Violation>,
    /// Violations suppressed by a waiver (kept for reporting).
    pub waived: Vec<Violation>,
    /// Waivers that suppressed nothing — these also fail the build.
    pub stale: Vec<Waiver>,
    /// Set when the waiver count exceeds the `[budget]` ratchet; the
    /// message explains the overrun. Also fails the build.
    pub over_budget: Option<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run should fail: any active violation, stale
    /// waiver, or budget overrun.
    pub fn is_failure(&self) -> bool {
        !self.active.is_empty() || !self.stale.is_empty() || self.over_budget.is_some()
    }

    /// Renders the report as the text the binary prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for v in &self.active {
            let _ = writeln!(
                s,
                "error[{}]: {}:{}: {}",
                v.rule.name(),
                v.path,
                v.line,
                v.message
            );
        }
        for w in &self.stale {
            let _ = writeln!(
                s,
                "error[stale-waiver]: {} no longer fires `{}` — remove its waiver ({})",
                w.path,
                w.rule.name(),
                w.reason
            );
        }
        if let Some(msg) = &self.over_budget {
            let _ = writeln!(s, "error[waiver-budget]: {msg}");
        }
        let _ = writeln!(
            s,
            "cpm-lint: {} files scanned, {} active violations, {} waived, {} stale waivers",
            self.files_scanned,
            self.active.len(),
            self.waived.len(),
            self.stale.len()
        );
        s
    }
}

/// Lints one in-memory source file under an explicit [`FileContext`]
/// with the **token rules only** — the workspace passes (taint,
/// dimensions) need the whole file set and run in [`lint_sources`].
/// This is the unit most of the fixture corpus drives directly.
pub fn lint_source(ctx: &FileContext, source: &str) -> Vec<Violation> {
    let toks = tokenizer::tokenize(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    rules::check_file(ctx, &toks, &raw_lines)
}

/// Lints a set of in-memory source files as one workspace: per-file
/// token rules, then the interprocedural taint pass over the cross-file
/// call graph, then the dimension pass. This is what [`lint_workspace`]
/// runs on the real tree and what multi-file fixtures drive directly.
pub fn lint_sources(files: &[(FileContext, String)]) -> Vec<Violation> {
    let mut token = Vec::new();
    let mut parsed = Vec::new();
    for (ctx, source) in files {
        token.extend(lint_source(ctx, source));
        let toks = tokenizer::tokenize(source);
        parsed.push(parser::parse_file(ctx, &toks));
    }
    let graph = callgraph::build(&parsed);
    let mut all = taint::check(&parsed, &graph, &token);
    all.extend(ast_rules::check(&parsed));
    let sources: Vec<&str> = files.iter().map(|(_, s)| s.as_str()).collect();
    all.extend(dims::check(&parsed, &sources));
    all.extend(token);
    all.sort_by(|a, b| (&a.path, a.line, a.rule.name()).cmp(&(&b.path, b.line, b.rule.name())));
    all
}

/// Reconciles raw violations against a waiver set: splits them into
/// active/waived and reports stale waivers (those that matched nothing).
pub fn reconcile(violations: Vec<Violation>, waiver_set: &[Waiver]) -> Report {
    let mut matched = vec![false; waiver_set.len()];
    let mut active = Vec::new();
    let mut waived = Vec::new();
    for v in violations {
        match waiver_set
            .iter()
            .position(|w| w.rule == v.rule && w.path == v.path)
        {
            Some(k) => {
                matched[k] = true;
                waived.push(v);
            }
            None => active.push(v),
        }
    }
    let stale = waiver_set
        .iter()
        .zip(&matched)
        .filter(|(_, &m)| !m)
        .map(|(w, _)| w.clone())
        .collect();
    Report {
        active,
        waived,
        stale,
        over_budget: None,
        files_scanned: 0,
    }
}

/// Recursively collects every `.rs` file under `root`, skipping
/// `target`/`.git`/`fixtures` dirs, sorted by path so reports are
/// deterministic.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<Result<_, _>>()?;
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                    continue;
                }
                walk(&path, out)?;
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut out = Vec::new();
    walk(root, &mut out)?;
    Ok(out)
}

/// Lints the whole workspace at `root` against its committed waiver
/// file: token rules, taint pass, dimension pass, waiver reconciliation,
/// and the budget ratchet. Purely local and offline: reads only files
/// under `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let waiver_path = root.join(WAIVER_FILE);
    let waiver_file = if waiver_path.exists() {
        let text = std::fs::read_to_string(&waiver_path)
            .map_err(|e| format!("reading {}: {e}", waiver_path.display()))?;
        waivers::parse_file(&text).map_err(|e| e.to_string())?
    } else {
        WaiverFile::default()
    };
    let files = collect_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut inputs = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        inputs.push((classify(&rel), source));
    }
    let violations = lint_sources(&inputs);
    let mut report = reconcile(violations, &waiver_file.waivers);
    report.files_scanned = inputs.len();
    if let Some(b) = &waiver_file.budget {
        if waiver_file.waivers.len() > b.max {
            report.over_budget = Some(format!(
                "{} waivers exceed the budget of {} — fix a violation or deliberately bump \
                 [budget] max with an updated justification ({})",
                waiver_file.waivers.len(),
                b.max,
                b.justification
            ));
        }
    }
    Ok(report)
}

/// Locates the workspace root from the linter's own manifest directory
/// (`crates/lint` → two levels up). Used by the workspace test and the
/// binary's default.
pub fn workspace_root_from_manifest(manifest_dir: &str) -> PathBuf {
    let p = Path::new(manifest_dir);
    p.parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| p.to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Role;

    #[test]
    fn classify_maps_paths_to_crates_and_roles() {
        let c = classify("crates/sim/src/calibration.rs");
        assert_eq!(c.crate_name, "cpm-sim");
        assert_eq!(c.role, Role::Library);
        assert_eq!(
            classify("crates/bench/src/bin/experiments.rs").role,
            Role::Binary
        );
        assert_eq!(classify("crates/lint/src/main.rs").role, Role::Binary);
        assert_eq!(classify("crates/core/tests/props.rs").role, Role::Test);
        assert_eq!(classify("crates/bench/benches/maxbips.rs").role, Role::Test);
        assert_eq!(classify("examples/quickstart.rs").role, Role::Example);
        assert_eq!(classify("src/lib.rs").crate_name, "cpm");
        assert_eq!(classify("tests/end_to_end.rs").role, Role::Test);
    }

    #[test]
    fn reconcile_waives_and_detects_stale() {
        let v = |rule, path: &str| Violation {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
        };
        let w = |rule, path: &str| Waiver {
            rule,
            path: path.to_string(),
            reason: "r".to_string(),
        };
        let report = reconcile(
            vec![v(RuleId::Timing, "a.rs"), v(RuleId::Output, "b.rs")],
            &[w(RuleId::Timing, "a.rs"), w(RuleId::PanicBare, "gone.rs")],
        );
        assert_eq!(report.active.len(), 1);
        assert_eq!(report.active[0].rule, RuleId::Output);
        assert_eq!(report.waived.len(), 1);
        assert_eq!(report.stale.len(), 1);
        assert_eq!(report.stale[0].path, "gone.rs");
        assert!(report.is_failure());
    }

    #[test]
    fn clean_report_is_success() {
        let report = reconcile(Vec::new(), &[]);
        assert!(!report.is_failure());
        assert!(report.render().contains("0 active violations"));
    }
}
