//! Parallel experiment engine: a std-only worker pool with work-stealing
//! over a sharded job queue.
//!
//! The evaluation harness replays every table and figure of the paper
//! across (workload-mix × budget × island-count) grids; the cells are
//! independent simulations, so the sweep is embarrassingly parallel. This
//! crate supplies the execution substrate without pulling in any external
//! dependency:
//!
//! * [`Pool`] — a persistent pool of worker threads. Jobs are pushed
//!   round-robin onto per-worker sharded deques; idle workers pop their
//!   own shard LIFO-front and **steal** from the back of sibling shards,
//!   so imbalanced cells (a 32-core simulation next to an 8-core one)
//!   still keep every worker busy.
//! * [`Pool::parallel_map`] — the deterministic fan-out/fan-in primitive:
//!   results land in input order, so reductions are bit-identical no
//!   matter how many workers ran the cells or in what order they
//!   finished. Callers *help execute* queued jobs while they wait, which
//!   makes nested `parallel_map` calls deadlock-free (an experiment job
//!   can fan out its own cells on the same pool).
//! * [`scoped_map`] — a scoped-thread variant for borrowing closures,
//!   used where cells naturally reference caller-owned data.
//!
//! The worker count comes from the `CPM_WORKERS` environment variable
//! (default: all hardware threads). `CPM_WORKERS=1` runs every job inline
//! on the caller's thread — the exact serial semantics the determinism
//! gate in CI diffs against.
//!
//! Determinism contract: a job must derive all randomness from its own
//! input (see `cpm-rng`'s child streams) and must not read global mutable
//! state. Under that contract, `parallel_map(items, f)[i] == f(items[i])`
//! holds for every worker count by construction.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send>;

/// Locks `m`, recovering a poisoned lock instead of propagating the
/// panic. Every mutex here guards either a job queue or a result slot;
/// a panicking job is already trapped by `catch_unwind` and re-raised on
/// the collecting caller, so the guarded data is never left half-written
/// and later callers must not be wedged by the poison flag.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Distinguishes pools so a thread's home context can't be misread by a
/// different pool (a worker of pool A helping on pool B is a *caller*
/// there, not worker `i`).
static POOL_IDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `(pool id, context index)` this thread belongs to; workers set it
    /// once at startup. Other threads fall back to the caller slot.
    static HOME: Cell<(u64, usize)> = const { Cell::new((u64::MAX, usize::MAX)) };
    /// Job-nesting depth on this thread. Only depth-0 jobs accrue busy
    /// time: a job that fans out its own cells and helps execute them
    /// already owns that wall-clock, so counting the nested cells again
    /// would double-book it.
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Per-worker counters, updated by whichever thread executes a job.
#[derive(Debug, Default)]
struct WorkerCounters {
    jobs: AtomicU64,
    steals: AtomicU64,
    busy_nanos: AtomicU64,
}

/// A snapshot of one execution context's accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSnapshot {
    /// Jobs this context executed (nested cells included).
    pub jobs: u64,
    /// Jobs it obtained by stealing from another shard.
    pub steals: u64,
    /// Wall-clock spent inside top-level job bodies. Cells a job executes
    /// while helping a nested fan-out are *not* added again — the
    /// enclosing job's time already covers them — so `busy` never exceeds
    /// the context's lifetime.
    pub busy: Duration,
}

/// Pool-wide utilization snapshot (workers plus one synthetic "caller"
/// slot for jobs executed by threads helping from `parallel_map`).
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// Configured worker-thread count (0 in serial mode).
    pub workers: usize,
    /// Wall-clock since the pool started.
    pub elapsed: Duration,
    /// Accounting per context; `per_context[workers]` is the caller slot.
    pub per_context: Vec<WorkerSnapshot>,
}

impl PoolStats {
    /// Fraction of a context's lifetime spent executing jobs.
    pub fn utilization(&self, context: usize) -> f64 {
        let e = self.elapsed.as_secs_f64();
        if e <= 0.0 {
            return 0.0;
        }
        self.per_context[context].busy.as_secs_f64() / e
    }

    /// Total jobs executed across all contexts.
    pub fn total_jobs(&self) -> u64 {
        self.per_context.iter().map(|c| c.jobs).sum()
    }

    /// Total steals across all contexts.
    pub fn total_steals(&self) -> u64 {
        self.per_context.iter().map(|c| c.steals).sum()
    }

    /// The lowest per-context utilization — the load-balance floor. A
    /// healthy pool keeps this near the siblings' figure; a context left
    /// idle by skewed injection drags it down.
    pub fn utilization_min(&self) -> f64 {
        (0..self.per_context.len())
            .map(|k| self.utilization(k))
            .fold(f64::INFINITY, f64::min)
    }

    /// Publishes this snapshot onto a `cpm-obs` metrics registry,
    /// replacing the ad-hoc jobs/steals/busy plumbing callers used to
    /// hand-roll. Snapshot values land on **gauges** (set, not add), so
    /// re-exporting after more work simply refreshes them. The last
    /// per-context slot is the synthetic caller context.
    pub fn export(&self, registry: &cpm_obs::Registry) {
        registry.gauge("pool.workers").set(self.workers as f64);
        registry
            .gauge("pool.elapsed_seconds")
            .set(self.elapsed.as_secs_f64());
        registry
            .gauge("pool.jobs_total")
            .set(self.total_jobs() as f64);
        registry
            .gauge("pool.steals_total")
            .set(self.total_steals() as f64);
        registry
            .gauge("pool.utilization_min")
            .set(self.utilization_min());
        for (k, c) in self.per_context.iter().enumerate() {
            let name = if k == self.per_context.len() - 1 {
                "caller".to_string()
            } else {
                format!("worker{k}")
            };
            registry
                .gauge(&format!("pool.{name}.jobs"))
                .set(c.jobs as f64);
            registry
                .gauge(&format!("pool.{name}.steals"))
                .set(c.steals as f64);
            registry
                .gauge(&format!("pool.{name}.busy_seconds"))
                .set(c.busy.as_secs_f64());
            registry
                .gauge(&format!("pool.{name}.utilization"))
                .set(self.utilization(k));
        }
    }
}

struct PoolInner {
    id: u64,
    shards: Vec<Mutex<VecDeque<Job>>>,
    gate: Mutex<()>,
    signal: Condvar,
    live: AtomicBool,
    queued: AtomicUsize,
    rr: AtomicUsize,
    counters: Vec<WorkerCounters>,
    started: Instant,
}

impl PoolInner {
    /// The accounting context of the current thread *on this pool*: a
    /// worker's own slot on its home pool, the shared caller slot for
    /// every other thread.
    fn context(&self) -> usize {
        let (pool, ctx) = HOME.with(Cell::get);
        if pool == self.id {
            ctx
        } else {
            self.counters.len() - 1
        }
    }
    fn push(&self, job: Job) {
        let slot = self.rr.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        lock_recover(&self.shards[slot]).push_back(job);
        self.queued.fetch_add(1, Ordering::Release);
        self.signal.notify_one();
    }

    /// Pops for context `home`: own shard from the front, then steals from
    /// the back of sibling shards. Returns the job and whether it was
    /// stolen.
    fn pop(&self, home: usize) -> Option<(Job, bool)> {
        if self.queued.load(Ordering::Acquire) == 0 {
            return None;
        }
        let n = self.shards.len();
        let own = home % n;
        if let Some(job) = lock_recover(&self.shards[own]).pop_front() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
            return Some((job, false));
        }
        for k in 1..n {
            let victim = (own + k) % n;
            if let Some(job) = lock_recover(&self.shards[victim]).pop_back() {
                self.queued.fetch_sub(1, Ordering::AcqRel);
                return Some((job, true));
            }
        }
        None
    }

    /// Runs `body` with job/steal/busy accounting on `context`; busy time
    /// accrues only at nesting depth 0 (see [`DEPTH`]).
    fn run_counted<R>(&self, context: usize, stolen: bool, body: impl FnOnce() -> R) -> R {
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        let t0 = Instant::now();
        let r = body();
        DEPTH.with(|d| d.set(depth));
        let c = &self.counters[context];
        c.jobs.fetch_add(1, Ordering::Relaxed);
        if stolen {
            c.steals.fetch_add(1, Ordering::Relaxed);
        }
        if depth == 0 {
            c.busy_nanos
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        r
    }

    fn execute(&self, context: usize, job: Job, stolen: bool) {
        self.run_counted(context, stolen, job);
    }

    fn worker_loop(&self, id: usize) {
        HOME.with(|h| h.set((self.id, id)));
        loop {
            match self.pop(id) {
                Some((job, stolen)) => self.execute(id, job, stolen),
                None => {
                    if !self.live.load(Ordering::Acquire) {
                        return;
                    }
                    let guard = lock_recover(&self.gate);
                    // Re-check under the lock so a push between pop() and
                    // park cannot strand the job until the timeout.
                    if self.queued.load(Ordering::Acquire) == 0 && self.live.load(Ordering::Acquire)
                    {
                        let _ = self
                            .signal
                            .wait_timeout(guard, Duration::from_millis(5))
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
    }
}

/// A work-stealing worker pool. See the crate docs for the execution
/// model; `Pool::new(1)` (or fewer) creates a **serial** pool that runs
/// every job inline on the calling thread.
pub struct Pool {
    inner: Arc<PoolInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl Pool {
    /// Creates a pool with `workers` worker threads (clamped to ≥ 1;
    /// 1 means serial/inline execution with no threads spawned).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let thread_count = if workers == 1 { 0 } else { workers };
        let id = POOL_IDS.fetch_add(1, Ordering::Relaxed);
        let shard_count = thread_count.max(1);
        // Seed the injection round-robin from the pool id (SplitMix64
        // finalizer) so successive pools start their rotation on different
        // shards: a fixed start pins every short batch's first — and under
        // work stealing often only — cells onto the same worker, which is
        // how one context ends up visibly under-utilized in the exported
        // stats while its siblings stay busy.
        let mut mix = id.wrapping_add(0x9E3779B97F4A7C15);
        mix = (mix ^ (mix >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        mix = (mix ^ (mix >> 27)).wrapping_mul(0x94D049BB133111EB);
        mix ^= mix >> 31;
        let inner = Arc::new(PoolInner {
            id,
            shards: (0..shard_count)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            gate: Mutex::new(()),
            signal: Condvar::new(),
            live: AtomicBool::new(true),
            queued: AtomicUsize::new(0),
            rr: AtomicUsize::new((mix % shard_count as u64) as usize),
            // One counter slot per worker plus the caller slot.
            counters: (0..thread_count + 1)
                .map(|_| WorkerCounters::default())
                .collect(),
            started: Instant::now(),
        });
        let threads = (0..thread_count)
            .map(|id| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("cpm-worker-{id}"))
                    .spawn(move || inner.worker_loop(id))
                    .expect("spawn worker")
            })
            .collect();
        Self {
            inner,
            threads,
            workers,
        }
    }

    /// The configured degree of parallelism (≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The process-wide pool, sized by `CPM_WORKERS` (default: available
    /// hardware parallelism) at first use.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(workers_from_env()))
    }

    /// Maps `f` over `items` on the pool, returning results in **input
    /// order**. The calling thread helps execute queued jobs while it
    /// waits, so nested calls from inside a job are deadlock-free.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        // Serial pool, or nothing to overlap: run inline, still through
        // the accounting path so stats stay meaningful.
        if self.workers == 1 || n == 1 {
            let ctx = self.inner.context();
            return items
                .into_iter()
                .map(|item| self.inner.run_counted(ctx, false, || f(item)))
                .collect();
        }

        type Slot<R> = Option<std::thread::Result<R>>;
        let f = Arc::new(f);
        let results: Arc<Mutex<Vec<Slot<R>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let remaining = Arc::new(AtomicUsize::new(n));
        for (i, item) in items.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let remaining = Arc::clone(&remaining);
            self.inner.push(Box::new(move || {
                // Trap panics so a failing cell neither kills its worker
                // thread nor strands the waiting caller; the panic is
                // re-raised on the caller's thread at collection time.
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)));
                lock_recover(&results)[i] = Some(r);
                remaining.fetch_sub(1, Ordering::AcqRel);
            }));
        }
        // Help until every slot of *this* call is filled. Helping may pick
        // up unrelated jobs (other callers' cells); that only means this
        // thread does useful work instead of spinning. A worker helping a
        // nested fan-out accounts on its own slot, not the caller slot.
        let ctx = self.inner.context();
        while remaining.load(Ordering::Acquire) > 0 {
            match self.inner.pop(ctx) {
                Some((job, stolen)) => self.inner.execute(ctx, job, stolen),
                None => std::thread::yield_now(),
            }
        }
        let mut slots = lock_recover(&results);
        slots
            .iter_mut()
            .map(|s| match s.take().expect("every job filled its slot") {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    }

    /// Runs a batch of heterogeneous closures, returning their results in
    /// input order.
    pub fn run_jobs<R: Send + 'static>(&self, jobs: Vec<Box<dyn FnOnce() -> R + Send>>) -> Vec<R> {
        // FnOnce can't go through Fn-based parallel_map; wrap each job in
        // an Option and take it exactly once.
        type OnceJob<R> = Box<dyn FnOnce() -> R + Send>;
        let jobs: Vec<Mutex<Option<OnceJob<R>>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        self.parallel_map((0..jobs.len()).collect::<Vec<_>>(), move |i| {
            let job = lock_recover(&jobs[i]).take().expect("job taken once");
            job()
        })
    }

    /// Publishes the current utilization snapshot onto a metrics
    /// registry; see [`PoolStats::export`].
    pub fn export_metrics(&self, registry: &cpm_obs::Registry) {
        self.stats().export(registry);
    }

    /// Utilization snapshot since the pool started.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.threads.len(),
            elapsed: self.inner.started.elapsed(),
            per_context: self
                .inner
                .counters
                .iter()
                .map(|c| WorkerSnapshot {
                    jobs: c.jobs.load(Ordering::Relaxed),
                    steals: c.steals.load(Ordering::Relaxed),
                    busy: Duration::from_nanos(c.busy_nanos.load(Ordering::Relaxed)),
                })
                .collect(),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.live.store(false, Ordering::Release);
        self.inner.signal.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Degree of parallelism requested via `CPM_WORKERS`, defaulting to the
/// machine's available parallelism. Invalid or zero values fall back to
/// the default.
pub fn workers_from_env() -> usize {
    std::env::var("CPM_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&w| w > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// `parallel_map` on the global pool.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    Pool::global().parallel_map(items, f)
}

/// Scoped-thread map for borrowing closures: runs `f` over `items` with
/// dynamic load balancing (an atomic cursor over the item list) and
/// returns results in input order. Spawns at most `min(workers, len)`
/// scoped threads; with one worker it runs inline and serially.
pub fn scoped_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = Pool::global().workers().min(items.len()).max(1);
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    return;
                }
                *lock_recover(&slots[i]) = Some(f(&items[i]));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("slot filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let pool = Pool::new(4);
        let out = pool.parallel_map((0..257u64).collect(), |x| x * x);
        assert_eq!(out, (0..257u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let work = |x: u64| {
            // Unequal cell costs exercise stealing.
            let spins = (x % 7) * 1000;
            let mut acc = x;
            for _ in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let serial = Pool::new(1).parallel_map((0..200u64).collect(), work);
        let parallel = Pool::new(4).parallel_map((0..200u64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn nested_parallel_map_does_not_deadlock() {
        let pool = Arc::new(Pool::new(2));
        let p2 = Arc::clone(&pool);
        let out = pool.parallel_map((0..8u64).collect(), move |outer| {
            p2.parallel_map((0..8u64).collect(), move |inner| outer * 10 + inner)
                .into_iter()
                .sum::<u64>()
        });
        let expected: Vec<u64> = (0..8u64)
            .map(|o| (0..8).map(|i| o * 10 + i).sum())
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn run_jobs_handles_heterogeneous_closures() {
        let pool = Pool::new(3);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "a".to_string()),
            Box::new(|| format!("{}", 6 * 7)),
            Box::new(|| "c".repeat(3)),
        ];
        assert_eq!(pool.run_jobs(jobs), vec!["a", "42", "ccc"]);
    }

    #[test]
    fn stats_account_for_every_job() {
        let pool = Pool::new(3);
        pool.parallel_map((0..100u32).collect(), |x| x + 1);
        let stats = pool.stats();
        assert_eq!(stats.total_jobs(), 100);
        assert_eq!(stats.per_context.len(), 4); // 3 workers + caller
    }

    #[test]
    fn serial_pool_spawns_no_threads_and_still_accounts() {
        let pool = Pool::new(1);
        let out = pool.parallel_map(vec![1, 2, 3], |x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        let stats = pool.stats();
        assert_eq!(stats.workers, 0);
        assert_eq!(stats.total_jobs(), 3);
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = Pool::new(2);
        let out: Vec<u32> = pool.parallel_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_drop_joins_workers() {
        let pool = Pool::new(4);
        pool.parallel_map((0..10u32).collect(), |x| x);
        drop(pool); // must not hang
    }

    #[test]
    fn scoped_map_borrows_and_orders() {
        let data: Vec<String> = (0..50).map(|i| format!("s{i}")).collect();
        let lens = scoped_map(&data, |s| s.len());
        assert_eq!(lens, data.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn panics_in_jobs_propagate_not_hang() {
        // A panicking cell must neither kill its worker thread nor strand
        // the waiting caller: the captured payload re-raises verbatim via
        // `resume_unwind` at collection time (so a failing sweep cell
        // surfaces its real message, not a generic one) and the pool
        // keeps working afterwards.
        let pool = Pool::new(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_map((0..16u32).collect(), |x| {
                if x == 7 {
                    panic!("cell 7 diverged: budget {} W unsatisfiable", 80);
                }
                x
            });
        }));
        let payload = r.expect_err("the cell's panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert_eq!(
            msg, "cell 7 diverged: budget 80 W unsatisfiable",
            "the original payload must survive propagation untouched"
        );
        // Pool survives and still executes jobs correctly.
        assert_eq!(pool.parallel_map(vec![1u32, 2], |x| x + 1), vec![2, 3]);
    }

    #[test]
    fn panicking_job_does_not_wedge_the_shard_locks() {
        // Even after a cell panics, every queue/result mutex stays
        // usable: the pool's lock discipline recovers poisoned locks
        // instead of unwrapping, so later sweeps proceed normally.
        let pool = Pool::new(2);
        for round in 0..3 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.parallel_map((0..8u32).collect(), |x| {
                    if x == 3 {
                        panic!("round failure");
                    }
                    x * 2
                });
            }));
            assert!(r.is_err(), "round {round} must propagate the panic");
            let ok = pool.parallel_map((0..8u32).collect(), |x| x * 2);
            assert_eq!(ok, (0..8u32).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_helping_does_not_double_count_busy() {
        let pool = Arc::new(Pool::new(2));
        let p2 = Arc::clone(&pool);
        pool.parallel_map((0..6u64).collect(), move |outer| {
            p2.parallel_map((0..6u64).collect(), move |inner| {
                let mut acc = outer * 10 + inner;
                for _ in 0..20_000 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                acc
            })
            .len()
        });
        let stats = pool.stats();
        // Every context is a single thread, and nested cells don't accrue
        // busy on top of their enclosing job — so busy can't exceed the
        // pool's lifetime (small slop for clock-read ordering).
        let elapsed = stats.elapsed.as_secs_f64();
        for (k, c) in stats.per_context.iter().enumerate() {
            assert!(
                c.busy.as_secs_f64() <= elapsed * 1.05 + 0.001,
                "context {k} busy {:?} exceeds pool lifetime {:?}",
                c.busy,
                stats.elapsed
            );
        }
        assert_eq!(stats.total_jobs(), 6 + 36);
    }

    #[test]
    fn export_metrics_publishes_pool_gauges() {
        let pool = Pool::new(2);
        pool.parallel_map((0..40u32).collect(), |x| x + 1);
        let registry = cpm_obs::Registry::new();
        pool.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.gauges["pool.jobs_total"], 40.0);
        assert_eq!(snap.gauges["pool.workers"], 2.0);
        // 2 workers + caller slot, 4 gauges each, plus 5 pool-wide ones.
        assert_eq!(snap.gauges.len(), 5 + 3 * 4);
        assert!(snap.gauges.contains_key("pool.caller.busy_seconds"));
        assert!(snap.gauges.contains_key("pool.worker1.utilization"));
        let util_min = snap.gauges["pool.utilization_min"];
        let utils = [
            snap.gauges["pool.worker0.utilization"],
            snap.gauges["pool.worker1.utilization"],
            snap.gauges["pool.caller.utilization"],
        ];
        let expect = utils.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(util_min, expect, "utilization_min must be the floor");
        // Re-export refreshes rather than double-counts.
        pool.parallel_map((0..10u32).collect(), |x| x);
        pool.export_metrics(&registry);
        assert_eq!(registry.snapshot().gauges["pool.jobs_total"], 50.0);
    }

    #[test]
    fn workers_from_env_parses_and_falls_back() {
        // Can't mutate the environment safely in-process across tests;
        // just assert the default path yields something sane.
        assert!(workers_from_env() >= 1);
    }
}
