//! The analytic per-benchmark model.
//!
//! A profile captures the handful of parameters that determine a workload's
//! power/performance signature on the interval simulator:
//!
//! * `base_cpi` — cycles per instruction with a perfect memory hierarchy
//!   (core-bound component; frequency-independent in cycles),
//! * `l1_mpki` / `l2_mpki` — misses per kilo-instruction at each level
//!   (the L2 figure drives off-chip stalls, whose *cycle* cost grows with
//!   core frequency since DRAM latency is fixed in nanoseconds),
//! * `activity` — average functional-unit activity factor when unstalled
//!   (drives dynamic power),
//! * working-set / locality parameters for the address-stream generator,
//! * phase parameters (period + variability) for time-varying demand.
//!
//! The *input set* matters: the paper runs CPU-intensive benchmarks with
//! `sim-large` and memory-intensive ones with `native` inputs, noting that
//! "when we use the native input set, the benchmarks become memory
//! intensive" (§III). [`BenchmarkProfile::with_input`] applies that shift.

use cpm_units::Hertz;

/// Which input set the benchmark runs (paper §III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSet {
    /// `sim-large`: fits mostly in cache → CPU-bound behaviour.
    SimLarge,
    /// `native`: working set blows out the cache → memory-bound behaviour.
    Native,
}

/// The paper's C/M classification (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// CPU-bound: performance scales ~linearly with frequency.
    CpuBound,
    /// Memory-bound: performance largely insensitive to frequency.
    MemoryBound,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadClass::CpuBound => write!(f, "C"),
            WorkloadClass::MemoryBound => write!(f, "M"),
        }
    }
}

/// Analytic model of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkProfile {
    /// Full benchmark name (e.g. `blackscholes`).
    pub name: &'static str,
    /// The paper's abbreviation (e.g. `bschls`).
    pub short: &'static str,
    /// One-line description from Table II.
    pub description: &'static str,
    /// Input set in effect.
    pub input: InputSet,
    /// Core-bound cycles per instruction.
    pub base_cpi: f64,
    /// L1 misses per kilo-instruction (hit in L2).
    pub l1_mpki: f64,
    /// L2 misses per kilo-instruction (go to DRAM).
    pub l2_mpki: f64,
    /// Average functional-unit activity when unstalled, in `[0, 1]`.
    pub activity: f64,
    /// Working-set size in bytes (address-stream generation).
    pub working_set: u64,
    /// Fraction of sequential (streaming) references in the address stream.
    pub stream_fraction: f64,
    /// Dominant phase period in seconds (0 disables the periodic
    /// component — e.g. x264's frame loop gives a strong period).
    pub phase_period: f64,
    /// Relative amplitude of demand variation across phases, in `[0, 1)`.
    pub variability: f64,
}

impl BenchmarkProfile {
    /// L2 hit latency seen by an L1 miss, in *core cycles* (on-chip, same
    /// clock domain → frequency-independent in cycles; Table I's L2 access
    /// delay).
    pub const L2_HIT_CYCLES: f64 = 12.0;

    /// DRAM access latency in seconds (fixed in wall-clock time — this is
    /// what makes low frequencies cheap for memory-bound code). 100 ns is
    /// 200 cycles at the 2 GHz nominal clock, matching Table I's memory
    /// access delay.
    pub const DRAM_LATENCY_S: f64 = 100.0e-9;

    /// Switches the profile to the given input set. Native inputs scale the
    /// miss rates up (×5 at L2, ×2.5 at L1) and the working set up ×8,
    /// reproducing the paper's observation that native inputs turn the
    /// benchmarks memory-intensive — with native inputs the working set
    /// blows out the shared L2 and DRAM stalls dominate, making performance
    /// largely frequency-insensitive.
    pub fn with_input(mut self, input: InputSet) -> Self {
        if self.input == input {
            return self;
        }
        match input {
            InputSet::Native => {
                self.l1_mpki *= 2.5;
                self.l2_mpki *= 5.0;
                self.working_set = self.working_set.saturating_mul(8);
                // Native runs traverse real data sets: memory intensity
                // swings phase to phase far more than on the small, cache-
                // resident sim inputs.
                self.variability = (self.variability + 0.18).min(0.45);
            }
            InputSet::SimLarge => {
                self.l1_mpki /= 2.5;
                self.l2_mpki /= 5.0;
                self.working_set /= 8;
                self.variability = (self.variability - 0.18).max(0.05);
            }
        }
        self.input = input;
        self
    }

    /// Effective CPI at core frequency `f` (no phase modulation):
    ///
    /// ```text
    /// CPI(f) = base_cpi + l1_mpki/1000·L2_HIT + l2_mpki/1000·(DRAM_s · f)
    /// ```
    pub fn cpi_at(&self, f: Hertz) -> f64 {
        self.base_cpi
            + self.l1_mpki / 1000.0 * Self::L2_HIT_CYCLES
            + self.l2_mpki / 1000.0 * (Self::DRAM_LATENCY_S * f.value())
    }

    /// Instructions per second at frequency `f`.
    pub fn ips_at(&self, f: Hertz) -> f64 {
        f.value() / self.cpi_at(f)
    }

    /// Fraction of cycles the core is doing useful (non-DRAM-stall) work at
    /// frequency `f` — the "CPU utilization" the PIC's sensor observes.
    pub fn utilization_at(&self, f: Hertz) -> f64 {
        let on_chip = self.base_cpi + self.l1_mpki / 1000.0 * Self::L2_HIT_CYCLES;
        on_chip / self.cpi_at(f)
    }

    /// The C/M classification at the nominal 2 GHz clock: memory-bound when
    /// DRAM stalls eat more than 30 % of cycles.
    pub fn class(&self) -> WorkloadClass {
        if self.utilization_at(Hertz::from_ghz(2.0)) < 0.70 {
            WorkloadClass::MemoryBound
        } else {
            WorkloadClass::CpuBound
        }
    }

    /// Frequency sensitivity: ratio of IPS at the top vs bottom of the
    /// paper's DVFS range. CPU-bound ≈ 3.3 (pure frequency ratio), strongly
    /// memory-bound → closer to 1.
    pub fn frequency_sensitivity(&self) -> f64 {
        self.ips_at(Hertz::from_ghz(2.0)) / self.ips_at(Hertz::from_mhz(600.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu_bound() -> BenchmarkProfile {
        BenchmarkProfile {
            name: "synthetic-cpu",
            short: "scpu",
            description: "test profile",
            input: InputSet::SimLarge,
            base_cpi: 0.9,
            l1_mpki: 5.0,
            l2_mpki: 0.2,
            activity: 0.8,
            working_set: 1 << 20,
            stream_fraction: 0.2,
            phase_period: 0.05,
            variability: 0.1,
        }
    }

    fn mem_bound() -> BenchmarkProfile {
        BenchmarkProfile {
            l2_mpki: 8.0,
            l1_mpki: 20.0,
            name: "synthetic-mem",
            ..cpu_bound()
        }
    }

    #[test]
    fn cpi_grows_with_frequency_only_via_dram() {
        let p = cpu_bound();
        let low = p.cpi_at(Hertz::from_mhz(600.0));
        let high = p.cpi_at(Hertz::from_ghz(2.0));
        assert!(high > low);
        // The delta is exactly the DRAM term growth.
        let expect = p.l2_mpki / 1000.0 * BenchmarkProfile::DRAM_LATENCY_S * 1.4e9;
        assert!((high - low - expect).abs() < 1e-12);
    }

    #[test]
    fn classification_by_memory_intensity() {
        assert_eq!(cpu_bound().class(), WorkloadClass::CpuBound);
        assert_eq!(mem_bound().class(), WorkloadClass::MemoryBound);
    }

    #[test]
    fn cpu_bound_is_frequency_sensitive_mem_bound_is_not() {
        let c = cpu_bound().frequency_sensitivity();
        let m = mem_bound().frequency_sensitivity();
        assert!(c > 3.0, "cpu-bound sensitivity {c}");
        assert!(m < 2.2, "mem-bound sensitivity {m}");
        assert!(c > m);
    }

    #[test]
    fn utilization_falls_with_frequency() {
        // Higher clock → DRAM stalls cost more cycles → lower utilization.
        let p = mem_bound();
        let u_low = p.utilization_at(Hertz::from_mhz(600.0));
        let u_high = p.utilization_at(Hertz::from_ghz(2.0));
        assert!(u_low > u_high);
        assert!(u_high > 0.0 && u_low <= 1.0);
    }

    #[test]
    fn native_input_shifts_class_to_memory_bound() {
        // The §III observation: native inputs make benchmarks memory
        // intensive. A borderline CPU profile must flip.
        let p = BenchmarkProfile {
            l2_mpki: 1.2,
            ..cpu_bound()
        };
        assert_eq!(p.class(), WorkloadClass::CpuBound);
        let native = p.with_input(InputSet::Native);
        assert_eq!(native.class(), WorkloadClass::MemoryBound);
        assert_eq!(native.input, InputSet::Native);
    }

    #[test]
    fn input_switch_roundtrips() {
        let p = cpu_bound();
        let rt = p
            .clone()
            .with_input(InputSet::Native)
            .with_input(InputSet::SimLarge);
        assert!((rt.l2_mpki - p.l2_mpki).abs() < 1e-12);
        assert_eq!(rt.working_set, p.working_set);
    }

    #[test]
    fn same_input_is_identity() {
        let p = cpu_bound();
        assert_eq!(p.clone().with_input(InputSet::SimLarge), p);
    }

    #[test]
    fn ips_equals_f_over_cpi() {
        let p = cpu_bound();
        let f = Hertz::from_mhz(1400.0);
        assert!((p.ips_at(f) - f.value() / p.cpi_at(f)).abs() < 1e-6);
    }
}
