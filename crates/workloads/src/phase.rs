//! Time-varying workload phases.
//!
//! The GPM exists because workload demand *varies over time* — Fig. 7/8
//! show island power demand wandering between ~12 % and ~26 % of chip power
//! as applications move through phases. The generator combines three
//! standard components of program phase behaviour:
//!
//! 1. a **periodic** term (period/amplitude from the profile — video
//!    encoding frames, solver iterations),
//! 2. a **Markov-modulated** intensity level (low/nominal/high dwell
//!    phases, geometric dwell times),
//! 3. small white **jitter**.
//!
//! Each `(seed, stream)` pair produces an independent, reproducible
//! sequence; the simulator gives every core its own stream id.

use crate::profile::BenchmarkProfile;
use cpm_math::{sin_det, sin_into};
use cpm_rng::{Xoshiro256pp, XoshiroBank};
use cpm_units::Seconds;

/// Instantaneous phase multipliers applied to a profile's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSample {
    /// Multiplier on the core-bound CPI (≥ `1-var`, ≤ `1+var`):
    /// higher = less ILP available this phase.
    pub cpi_scale: f64,
    /// Multiplier on memory intensity (L1/L2 miss rates).
    pub mem_scale: f64,
    /// Multiplier on the functional-unit activity factor.
    pub activity_scale: f64,
}

impl PhaseSample {
    /// The neutral sample (no modulation).
    pub const NEUTRAL: Self = Self {
        cpi_scale: 1.0,
        mem_scale: 1.0,
        activity_scale: 1.0,
    };
}

/// Markov intensity levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    Low,
    Nominal,
    High,
}

impl Level {
    fn intensity(self) -> f64 {
        match self {
            Level::Low => -1.0,
            Level::Nominal => 0.0,
            Level::High => 1.0,
        }
    }
}

/// A seeded per-core phase sequence for one benchmark.
#[derive(Debug, Clone)]
pub struct PhaseGenerator {
    rng: Xoshiro256pp,
    /// `2π / phase_period`, or `0` for profiles with no periodic term.
    /// Stored as the reciprocal product so the hot path multiplies
    /// instead of dividing (division is the one f64 op with multi-cycle
    /// reciprocal throughput even vectorized).
    tau_over_period: f64,
    variability: f64,
    /// Phase offset so co-scheduled copies of one benchmark don't move in
    /// lock-step.
    phase_offset: f64,
    level: Level,
    /// Reciprocal of the mean dwell time in one Markov level (1/s).
    inv_mean_dwell: f64,
    elapsed: f64,
}

impl PhaseGenerator {
    /// Creates a generator for `profile`, deterministically derived from
    /// `seed` and a per-core `stream` id.
    pub fn new(profile: &BenchmarkProfile, seed: u64, stream: u64) -> Self {
        // SplitMix-style mixing keeps streams decorrelated.
        let mixed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58476D1CE4E5B9))
            ^ (profile.name.len() as u64).wrapping_mul(0x94D049BB133111EB);
        let mut rng = Xoshiro256pp::seed_from_u64(mixed);
        let phase_offset = rng.next_f64() * std::f64::consts::TAU;
        Self {
            rng,
            tau_over_period: if profile.phase_period > 0.0 {
                std::f64::consts::TAU / profile.phase_period
            } else {
                0.0
            },
            variability: profile.variability,
            phase_offset,
            level: Level::Nominal,
            inv_mean_dwell: 1.0 / (profile.phase_period * 2.0).max(0.01),
            elapsed: 0.0,
        }
    }

    /// Advances time by `dt` and returns the sample governing the elapsed
    /// interval.
    pub fn advance(&mut self, dt: Seconds) -> PhaseSample {
        let dt = dt.value();
        assert!(dt >= 0.0, "time cannot run backwards");
        self.elapsed += dt;

        // Markov level switching: geometric dwell with mean dwell time
        // `1/inv_mean_dwell`.
        let p_switch = (dt * self.inv_mean_dwell).min(1.0);
        if self.rng.next_f64() < p_switch {
            self.level = match self.rng.below(3) {
                0 => Level::Low,
                1 => Level::Nominal,
                _ => Level::High,
            };
        }

        // Periodic component, through the deterministic repo-owned sin
        // kernel (cpm-math) — never libm, whose bits vary by host.
        let periodic = if self.tau_over_period > 0.0 {
            sin_det(self.elapsed * self.tau_over_period + self.phase_offset)
        } else {
            0.0
        };

        // Jitter.
        let jitter = self.rng.signed_unit() * 0.15;

        // Blend: periodic 50 %, Markov 35 %, jitter 15 %, scaled to the
        // profile's variability.
        let x = (0.50 * periodic + 0.35 * self.level.intensity() + jitter) * self.variability;

        // Intensity x > 0 = "hot" phase: more ILP (lower CPI), more memory
        // traffic, higher activity. Keep multipliers positive.
        PhaseSample {
            cpi_scale: (1.0 - 0.6 * x).max(0.2),
            mem_scale: (1.0 + x).max(0.05),
            activity_scale: (1.0 + 0.5 * x).clamp(0.2, 1.25),
        }
    }

    /// The libm-backed accuracy twin of [`Self::advance`]: the same
    /// trajectory, expression for expression, except the periodic term
    /// calls the host `sin`. Exists so the accuracy suite can bound how
    /// far the deterministic kernel bends a whole *trajectory* (not just
    /// one call) away from a libm build — it is never used by the
    /// simulator, and its direct libm call carries the one `math-scope`
    /// lint waiver in this crate.
    pub fn advance_reference(&mut self, dt: Seconds) -> PhaseSample {
        let dt = dt.value();
        assert!(dt >= 0.0, "time cannot run backwards");
        self.elapsed += dt;
        let p_switch = (dt * self.inv_mean_dwell).min(1.0);
        if self.rng.next_f64() < p_switch {
            self.level = match self.rng.below(3) {
                0 => Level::Low,
                1 => Level::Nominal,
                _ => Level::High,
            };
        }
        let periodic = if self.tau_over_period > 0.0 {
            (self.elapsed * self.tau_over_period + self.phase_offset).sin()
        } else {
            0.0
        };
        let jitter = self.rng.signed_unit() * 0.15;
        let x = (0.50 * periodic + 0.35 * self.level.intensity() + jitter) * self.variability;
        PhaseSample {
            cpi_scale: (1.0 - 0.6 * x).max(0.2),
            mem_scale: (1.0 + x).max(0.05),
            activity_scale: (1.0 + 0.5 * x).clamp(0.2, 1.25),
        }
    }

    /// Total simulated time this generator has covered.
    pub fn elapsed(&self) -> Seconds {
        Seconds::new(self.elapsed)
    }
}

/// A structure-of-arrays batch of phase generators: one entry per core,
/// with every hot scalar in its own contiguous `Vec` so the simulator can
/// advance all cores in one pass instead of chasing per-core structs.
///
/// Each entry replicates [`PhaseGenerator`] state-for-state (the Markov
/// level is stored directly as its intensity, which `Level::intensity`
/// maps 1:1; the RNG streams live in a column-wise [`XoshiroBank`]), and
/// [`PhaseBank::advance_into`] evaluates the exact expressions of
/// [`PhaseGenerator::advance`] — as whole-column elementwise passes,
/// which preserves bit-identity because no pass has a cross-lane
/// reduction to reassociate and each lane's RNG draw order (switch draw
/// → optional level redraw → jitter draw) is untouched. So a bank built
/// by pushing `(profile, seed, stream)` triples is bit-identical to a
/// `Vec<PhaseGenerator>` built from the same triples, at any length.
#[derive(Debug, Clone, Default)]
pub struct PhaseBank {
    rng: XoshiroBank,
    /// `2π / period` per entry, `0` when the profile has no periodic term
    /// (the same reciprocal hoist as the scalar generator).
    tau_over_period: Vec<f64>,
    variability: Vec<f64>,
    phase_offset: Vec<f64>,
    /// The current Markov level as its intensity: −1 (low), 0 (nominal),
    /// +1 (high).
    level_intensity: Vec<f64>,
    inv_mean_dwell: Vec<f64>,
    elapsed: Vec<f64>,
    scratch: PhaseScratch,
}

/// Persistent whole-column temporaries of [`PhaseBank::advance_into`],
/// sized at push time so the steady-state step allocates nothing. Taken
/// out of the bank for the duration of a step (`std::mem::take`, O(1))
/// so the passes can read state columns while writing scratch columns.
#[derive(Debug, Clone, Default)]
struct PhaseScratch {
    /// Per-entry Markov switch probability this step.
    p_switch: Vec<f64>,
    /// RNG draw column — the switch draws, then reused for the jitter.
    draw: Vec<f64>,
    /// Argument column of the periodic term.
    arg: Vec<f64>,
    /// `sin` of the argument column.
    per: Vec<f64>,
}

impl PhaseBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of per-core sequences in the bank.
    pub fn len(&self) -> usize {
        self.rng.len()
    }

    /// Whether the bank holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.rng.is_empty()
    }

    /// Appends the sequence [`PhaseGenerator::new`] would produce for
    /// `(profile, seed, stream)`.
    pub fn push(&mut self, profile: &BenchmarkProfile, seed: u64, stream: u64) {
        // Same SplitMix-style stream mixing as `PhaseGenerator::new`.
        let mixed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58476D1CE4E5B9))
            ^ (profile.name.len() as u64).wrapping_mul(0x94D049BB133111EB);
        let mut rng = Xoshiro256pp::seed_from_u64(mixed);
        self.phase_offset
            .push(rng.next_f64() * std::f64::consts::TAU);
        self.rng.push(rng);
        self.tau_over_period.push(if profile.phase_period > 0.0 {
            std::f64::consts::TAU / profile.phase_period
        } else {
            0.0
        });
        self.variability.push(profile.variability);
        self.level_intensity.push(Level::Nominal.intensity());
        self.inv_mean_dwell
            .push(1.0 / (profile.phase_period * 2.0).max(0.01));
        self.elapsed.push(0.0);
        self.scratch.p_switch.push(0.0);
        self.scratch.draw.push(0.0);
        self.scratch.arg.push(0.0);
        self.scratch.per.push(0.0);
    }

    /// Advances every sequence by `dt`, writing the governing samples into
    /// the three scale slices (core order). Entry `i` is bit-identical to
    /// `PhaseGenerator::advance` on generator `i`.
    ///
    /// The step is a handful of whole-column elementwise passes (no chunking, no
    /// tail path): the arithmetic passes autovectorize over the full
    /// column, the RNG draws batch through the column-wise bank, and the
    /// periodic term goes through the deterministic `cpm-math` sin kernel
    /// — itself branch-free and vectorized. The only remaining scalar
    /// work is the conditional Markov redraw, whose draw must stay
    /// per-lane-conditional to keep non-switching streams in sync.
    pub fn advance_into(
        &mut self,
        dt: Seconds,
        cpi_scale: &mut [f64],
        mem_scale: &mut [f64],
        activity_scale: &mut [f64],
    ) {
        let n = self.rng.len();
        assert!(
            cpi_scale.len() == n && mem_scale.len() == n && activity_scale.len() == n,
            "one output slot per sequence required"
        );
        let dt = dt.value();
        assert!(dt >= 0.0, "time cannot run backwards");
        let mut s = std::mem::take(&mut self.scratch);

        // Columns are bound as length-`n` slices up front so every pass
        // below is a bounds-check-free loop over equal-length slices —
        // the shape LLVM's autovectorizer recognizes.
        let elapsed = &mut self.elapsed[..n];
        let inv_mean_dwell = &self.inv_mean_dwell[..n];
        let tau_over_period = &self.tau_over_period[..n];
        let phase_offset = &self.phase_offset[..n];
        let variability = &self.variability[..n];

        // Pass 1 (vector): elapsed update, switch probability, and the
        // periodic-term argument. The argument only depends on the
        // updated elapsed time — not on any draw — so it can be computed
        // here and handed to the sin kernel later without perturbing the
        // RNG call order. Entries with no periodic term have
        // tau_over_period = 0, so their arg collapses to the offset and
        // stays finite; the gate is applied as a select in the blend
        // pass. Evaluating the argument into a column is the same
        // rounding sequence as the fused scalar expression, so the
        // kernel result is bit-identical to the scalar `sin_det` call.
        {
            let p_switch = &mut s.p_switch[..n];
            let arg = &mut s.arg[..n];
            for i in 0..n {
                elapsed[i] += dt;
                p_switch[i] = (dt * inv_mean_dwell[i]).min(1.0);
                arg[i] = elapsed[i] * tau_over_period[i] + phase_offset[i];
            }
        }

        // Pass 2 (vector): the switch draw — every lane's first draw of
        // this step, batched through the column-wise RNG bank.
        self.rng.fill_next_f64(0, &mut s.draw);

        // Pass 3 (scalar): Markov level redraw on switching lanes only —
        // the draw is conditional, so batching it would desynchronize
        // non-switching lanes' streams.
        for i in 0..n {
            if s.draw[i] < s.p_switch[i] {
                self.level_intensity[i] = match self.rng.below_at(i, 3) {
                    0 => Level::Low.intensity(),
                    1 => Level::Nominal.intensity(),
                    _ => Level::High.intensity(),
                };
            }
        }

        // Pass 4 (vector): the jitter draw — batched through the
        // column-wise bank; the signed_unit map is fused into the blend.
        self.rng.fill_next_f64(0, &mut s.draw);

        // Pass 5 (vector): the periodic term over the whole column,
        // unconditionally, through the deterministic sin kernel.
        sin_into(&s.arg, &mut s.per);

        // Pass 6 (vector): blend — periodic 50 %, Markov 35 %, jitter
        // 15 %, scaled to the profile's variability. The jitter term
        // applies the signed_unit map `lo + f·(hi−lo)` with (lo, hi) =
        // (−1, 1) constant-folded — exactly the ops `signed_unit() *
        // 0.15` performs.
        {
            let per_col = &s.per[..n];
            let draw = &s.draw[..n];
            let level_intensity = &self.level_intensity[..n];
            let cpi_scale = &mut cpi_scale[..n];
            let mem_scale = &mut mem_scale[..n];
            let activity_scale = &mut activity_scale[..n];
            for i in 0..n {
                let per = if tau_over_period[i] > 0.0 {
                    per_col[i]
                } else {
                    0.0
                };
                let jitter = (-1.0 + draw[i] * 2.0) * 0.15;
                let x = (0.50 * per + 0.35 * level_intensity[i] + jitter) * variability[i];
                cpi_scale[i] = (1.0 - 0.6 * x).max(0.2);
                mem_scale[i] = (1.0 + x).max(0.05);
                activity_scale[i] = (1.0 + 0.5 * x).clamp(0.2, 1.25);
            }
        }

        self.scratch = s;
    }

    /// Total simulated time sequence `i` has covered.
    pub fn elapsed(&self, i: usize) -> Seconds {
        Seconds::new(self.elapsed[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec;

    fn gen_for(seed: u64, stream: u64) -> PhaseGenerator {
        PhaseGenerator::new(&parsec::x264(), seed, stream)
    }

    fn run(generator: &mut PhaseGenerator, n: usize) -> Vec<PhaseSample> {
        (0..n)
            .map(|_| generator.advance(Seconds::from_ms(0.5)))
            .collect()
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = run(&mut gen_for(7, 0), 200);
        let b = run(&mut gen_for(7, 0), 200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_decorrelate() {
        let a = run(&mut gen_for(7, 0), 200);
        let b = run(&mut gen_for(7, 1), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn samples_stay_positive_and_bounded() {
        let samples = run(&mut gen_for(3, 5), 2000);
        for s in samples {
            assert!(s.cpi_scale > 0.0 && s.cpi_scale < 2.0);
            assert!(s.mem_scale > 0.0 && s.mem_scale < 2.0);
            assert!((0.2..=1.25).contains(&s.activity_scale));
        }
    }

    #[test]
    fn variability_controls_spread() {
        // x264 (var 0.30) must wander more than blackscholes (var 0.08).
        let spread = |p: &BenchmarkProfile| {
            let mut g = PhaseGenerator::new(p, 11, 0);
            let xs: Vec<f64> = (0..2000)
                .map(|_| g.advance(Seconds::from_ms(0.5)).mem_scale)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let hi = spread(&parsec::x264());
        let lo = spread(&parsec::blackscholes());
        assert!(hi > 2.0 * lo, "x264 σ={hi} vs blackscholes σ={lo}");
    }

    #[test]
    fn mean_stays_near_neutral() {
        let mut g = gen_for(13, 2);
        let xs: Vec<f64> = (0..4000)
            .map(|_| g.advance(Seconds::from_ms(0.5)).mem_scale)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.0).abs() < 0.08, "mean mem_scale {mean}");
    }

    #[test]
    fn elapsed_tracks_time() {
        let mut g = gen_for(1, 0);
        run(&mut g, 100);
        assert!((g.elapsed().ms() - 50.0).abs() < 1e-9);
    }

    fn assert_bank_matches_generators(cores: usize, steps: usize) {
        let profiles = parsec::all();
        let seed = 0xC0FFEE;
        let mut generators: Vec<PhaseGenerator> = Vec::new();
        let mut bank = PhaseBank::new();
        for (stream, p) in profiles.iter().cycle().take(cores).enumerate() {
            generators.push(PhaseGenerator::new(p, seed, stream as u64));
            bank.push(p, seed, stream as u64);
        }
        assert_eq!(bank.len(), generators.len());
        let mut cpi = vec![0.0; cores];
        let mut mem = vec![0.0; cores];
        let mut act = vec![0.0; cores];
        for step in 0..steps {
            let dt = Seconds::from_ms(0.5);
            bank.advance_into(dt, &mut cpi, &mut mem, &mut act);
            for (i, g) in generators.iter_mut().enumerate() {
                let s = g.advance(dt);
                assert!(
                    s.cpi_scale.to_bits() == cpi[i].to_bits()
                        && s.mem_scale.to_bits() == mem[i].to_bits()
                        && s.activity_scale.to_bits() == act[i].to_bits(),
                    "core {i} of {cores} diverged at step {step}"
                );
                assert_eq!(g.elapsed(), bank.elapsed(i));
            }
        }
    }

    #[test]
    fn bank_is_bit_identical_to_generators() {
        // The SoA bank must replay every scalar generator exactly — the
        // chip's determinism contract rides on this.
        assert_bank_matches_generators(32, 500);
    }

    #[test]
    fn bank_is_bit_identical_at_non_lane_multiple_sizes() {
        // Tail handling is where chunked kernels break: exercise sizes
        // below, at, just past, and far past the lane width — including
        // the 1-core degenerate where *only* the scalar tail runs.
        for cores in [1usize, 5, 7, 8, 9, 13, 16, 33] {
            assert_bank_matches_generators(cores, 120);
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per sequence")]
    fn bank_rejects_short_output_slices() {
        let mut bank = PhaseBank::new();
        bank.push(&parsec::x264(), 1, 0);
        bank.advance_into(Seconds::from_ms(0.5), &mut [], &mut [], &mut []);
    }

    #[test]
    fn deterministic_kernel_tracks_libm_reference_trajectory() {
        // The ≤ 1 ulp kernel difference must stay negligible when
        // compounded through a whole trajectory: both twins draw the
        // same RNG stream (the Markov branch takes probabilities far
        // from the ulp boundary), so divergence can only enter through
        // the periodic term, bounded per step.
        for (stream, p) in parsec::all().iter().enumerate() {
            let mut det = PhaseGenerator::new(p, 21, stream as u64);
            let mut libm = PhaseGenerator::new(p, 21, stream as u64);
            for _ in 0..2000 {
                let a = det.advance(Seconds::from_ms(0.5));
                let b = libm.advance_reference(Seconds::from_ms(0.5));
                assert!(
                    (a.cpi_scale - b.cpi_scale).abs() < 1e-12
                        && (a.mem_scale - b.mem_scale).abs() < 1e-12
                        && (a.activity_scale - b.activity_scale).abs() < 1e-12,
                    "kernel vs libm trajectory diverged on {}",
                    p.name
                );
            }
        }
    }

    #[test]
    fn phases_actually_vary_over_time() {
        let samples = run(&mut gen_for(5, 3), 500);
        let distinct: std::collections::BTreeSet<u64> =
            samples.iter().map(|s| (s.mem_scale * 1e6) as u64).collect();
        assert!(distinct.len() > 100, "phases should not be constant");
    }
}
