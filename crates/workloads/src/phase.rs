//! Time-varying workload phases.
//!
//! The GPM exists because workload demand *varies over time* — Fig. 7/8
//! show island power demand wandering between ~12 % and ~26 % of chip power
//! as applications move through phases. The generator combines three
//! standard components of program phase behaviour:
//!
//! 1. a **periodic** term (period/amplitude from the profile — video
//!    encoding frames, solver iterations),
//! 2. a **Markov-modulated** intensity level (low/nominal/high dwell
//!    phases, geometric dwell times),
//! 3. small white **jitter**.
//!
//! Each `(seed, stream)` pair produces an independent, reproducible
//! sequence; the simulator gives every core its own stream id.

use crate::profile::BenchmarkProfile;
use cpm_rng::{Xoshiro256pp, XoshiroBank};
use cpm_units::Seconds;

/// Fixed chunk width of the bank's lane-structured advance pass. Eight
/// f64 lanes = two 4-wide (AVX2) or four 2-wide (SSE2/NEON) vectors —
/// wide enough to fill any current f64 vector unit, small enough that
/// per-chunk stack arrays stay register-resident.
const LANES: usize = 8;

/// Instantaneous phase multipliers applied to a profile's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSample {
    /// Multiplier on the core-bound CPI (≥ `1-var`, ≤ `1+var`):
    /// higher = less ILP available this phase.
    pub cpi_scale: f64,
    /// Multiplier on memory intensity (L1/L2 miss rates).
    pub mem_scale: f64,
    /// Multiplier on the functional-unit activity factor.
    pub activity_scale: f64,
}

impl PhaseSample {
    /// The neutral sample (no modulation).
    pub const NEUTRAL: Self = Self {
        cpi_scale: 1.0,
        mem_scale: 1.0,
        activity_scale: 1.0,
    };
}

/// Markov intensity levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Level {
    Low,
    Nominal,
    High,
}

impl Level {
    fn intensity(self) -> f64 {
        match self {
            Level::Low => -1.0,
            Level::Nominal => 0.0,
            Level::High => 1.0,
        }
    }
}

/// A seeded per-core phase sequence for one benchmark.
#[derive(Debug, Clone)]
pub struct PhaseGenerator {
    rng: Xoshiro256pp,
    period: f64,
    variability: f64,
    /// Phase offset so co-scheduled copies of one benchmark don't move in
    /// lock-step.
    phase_offset: f64,
    level: Level,
    /// Mean dwell time in one Markov level, seconds.
    mean_dwell: f64,
    elapsed: f64,
}

impl PhaseGenerator {
    /// Creates a generator for `profile`, deterministically derived from
    /// `seed` and a per-core `stream` id.
    pub fn new(profile: &BenchmarkProfile, seed: u64, stream: u64) -> Self {
        // SplitMix-style mixing keeps streams decorrelated.
        let mixed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58476D1CE4E5B9))
            ^ (profile.name.len() as u64).wrapping_mul(0x94D049BB133111EB);
        let mut rng = Xoshiro256pp::seed_from_u64(mixed);
        let phase_offset = rng.next_f64() * std::f64::consts::TAU;
        Self {
            rng,
            period: profile.phase_period,
            variability: profile.variability,
            phase_offset,
            level: Level::Nominal,
            mean_dwell: (profile.phase_period * 2.0).max(0.01),
            elapsed: 0.0,
        }
    }

    /// Advances time by `dt` and returns the sample governing the elapsed
    /// interval.
    pub fn advance(&mut self, dt: Seconds) -> PhaseSample {
        let dt = dt.value();
        assert!(dt >= 0.0, "time cannot run backwards");
        self.elapsed += dt;

        // Markov level switching: geometric dwell with mean `mean_dwell`.
        let p_switch = (dt / self.mean_dwell).min(1.0);
        if self.rng.next_f64() < p_switch {
            self.level = match self.rng.below(3) {
                0 => Level::Low,
                1 => Level::Nominal,
                _ => Level::High,
            };
        }

        // Periodic component.
        let periodic = if self.period > 0.0 {
            (std::f64::consts::TAU * self.elapsed / self.period + self.phase_offset).sin()
        } else {
            0.0
        };

        // Jitter.
        let jitter = self.rng.signed_unit() * 0.15;

        // Blend: periodic 50 %, Markov 35 %, jitter 15 %, scaled to the
        // profile's variability.
        let x = (0.50 * periodic + 0.35 * self.level.intensity() + jitter) * self.variability;

        // Intensity x > 0 = "hot" phase: more ILP (lower CPI), more memory
        // traffic, higher activity. Keep multipliers positive.
        PhaseSample {
            cpi_scale: (1.0 - 0.6 * x).max(0.2),
            mem_scale: (1.0 + x).max(0.05),
            activity_scale: (1.0 + 0.5 * x).clamp(0.2, 1.25),
        }
    }

    /// Total simulated time this generator has covered.
    pub fn elapsed(&self) -> Seconds {
        Seconds::new(self.elapsed)
    }
}

/// A structure-of-arrays batch of phase generators: one entry per core,
/// with every hot scalar in its own contiguous `Vec` so the simulator can
/// advance all cores in one pass instead of chasing per-core structs.
///
/// Each entry replicates [`PhaseGenerator`] state-for-state (the Markov
/// level is stored directly as its intensity, which `Level::intensity`
/// maps 1:1; the RNG streams live in a column-wise [`XoshiroBank`]), and
/// [`PhaseBank::advance_into`] evaluates the exact expressions of
/// [`PhaseGenerator::advance`] — chunked into `LANES`-wide passes with
/// a scalar tail, which preserves bit-identity because every pass is
/// elementwise (no cross-lane reduction exists to reassociate) and each
/// lane's RNG draw order (switch draw → optional level redraw → jitter
/// draw) is untouched. So a bank built by pushing `(profile, seed,
/// stream)` triples is bit-identical to a `Vec<PhaseGenerator>` built
/// from the same triples, at any length.
#[derive(Debug, Clone, Default)]
pub struct PhaseBank {
    rng: XoshiroBank,
    period: Vec<f64>,
    variability: Vec<f64>,
    phase_offset: Vec<f64>,
    /// The current Markov level as its intensity: −1 (low), 0 (nominal),
    /// +1 (high).
    level_intensity: Vec<f64>,
    mean_dwell: Vec<f64>,
    elapsed: Vec<f64>,
}

impl PhaseBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of per-core sequences in the bank.
    pub fn len(&self) -> usize {
        self.rng.len()
    }

    /// Whether the bank holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.rng.is_empty()
    }

    /// Appends the sequence [`PhaseGenerator::new`] would produce for
    /// `(profile, seed, stream)`.
    pub fn push(&mut self, profile: &BenchmarkProfile, seed: u64, stream: u64) {
        // Same SplitMix-style stream mixing as `PhaseGenerator::new`.
        let mixed = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(stream.wrapping_mul(0xBF58476D1CE4E5B9))
            ^ (profile.name.len() as u64).wrapping_mul(0x94D049BB133111EB);
        let mut rng = Xoshiro256pp::seed_from_u64(mixed);
        self.phase_offset
            .push(rng.next_f64() * std::f64::consts::TAU);
        self.rng.push(rng);
        self.period.push(profile.phase_period);
        self.variability.push(profile.variability);
        self.level_intensity.push(Level::Nominal.intensity());
        self.mean_dwell.push((profile.phase_period * 2.0).max(0.01));
        self.elapsed.push(0.0);
    }

    /// Advances every sequence by `dt`, writing the governing samples into
    /// the three scale slices (core order). Entry `i` is bit-identical to
    /// `PhaseGenerator::advance` on generator `i`.
    ///
    /// Full `LANES`-wide chunks go through the vectorizable multi-pass
    /// kernel (`Self::advance_chunk`); the remainder takes the scalar
    /// per-sequence path (`Self::advance_one`). The split is purely a
    /// codegen concern — both paths evaluate the same expressions per
    /// lane, so results do not depend on where the chunk boundary falls.
    pub fn advance_into(
        &mut self,
        dt: Seconds,
        cpi_scale: &mut [f64],
        mem_scale: &mut [f64],
        activity_scale: &mut [f64],
    ) {
        let n = self.rng.len();
        assert!(
            cpi_scale.len() == n && mem_scale.len() == n && activity_scale.len() == n,
            "one output slot per sequence required"
        );
        let dt = dt.value();
        assert!(dt >= 0.0, "time cannot run backwards");
        let mut base = 0;
        while base + LANES <= n {
            let cpi = (&mut cpi_scale[base..base + LANES]).try_into().unwrap();
            let mem = (&mut mem_scale[base..base + LANES]).try_into().unwrap();
            let act = (&mut activity_scale[base..base + LANES])
                .try_into()
                .unwrap();
            self.advance_chunk(base, dt, cpi, mem, act);
            base += LANES;
        }
        for i in base..n {
            let (c, m, a) = self.advance_one(i, dt);
            cpi_scale[i] = c;
            mem_scale[i] = m;
            activity_scale[i] = a;
        }
    }

    /// One full lane chunk of the advance, structured as elementwise
    /// passes over `[f64; LANES]` stack arrays so LLVM autovectorizes
    /// them. Each pass applies the token-identical expression of the
    /// scalar path to every lane; the only serial work left is the
    /// conditional Markov redraw (data-dependent per lane) and the `sin`
    /// of the periodic term (libm call, not vectorizable std-only).
    /// Per-lane RNG draw order is the scalar order: switch draw, then
    /// the level redraw only on switching lanes, then the jitter draw.
    fn advance_chunk(
        &mut self,
        base: usize,
        dt: f64,
        cpi: &mut [f64; LANES],
        mem: &mut [f64; LANES],
        act: &mut [f64; LANES],
    ) {
        // Pass 1 (vector): elapsed update + switch probability.
        let mut p_sw = [0.0; LANES];
        for (l, p) in p_sw.iter_mut().enumerate() {
            let i = base + l;
            self.elapsed[i] += dt;
            *p = (dt / self.mean_dwell[i]).min(1.0);
        }

        // Pass 2 (vector): the switch draw — every lane's first draw of
        // this step, batched through the column-wise RNG bank.
        let mut draw = [0.0; LANES];
        self.rng.fill_next_f64(base, &mut draw);

        // Pass 3 (scalar): Markov level redraw on switching lanes only —
        // the draw is conditional, so batching it would desynchronize
        // non-switching lanes' streams.
        for l in 0..LANES {
            let i = base + l;
            if draw[l] < p_sw[l] {
                self.level_intensity[i] = match self.rng.below_at(i, 3) {
                    0 => Level::Low.intensity(),
                    1 => Level::Nominal.intensity(),
                    _ => Level::High.intensity(),
                };
            }
        }

        // Pass 4 (vector): jitter — batched draw, then the signed_unit
        // map `lo + f·(hi−lo)` with (lo, hi) = (−1, 1) constant-folded,
        // exactly the ops `signed_unit() * 0.15` performs.
        let mut jit = [0.0; LANES];
        self.rng.fill_next_f64(base, &mut jit);
        for j in jit.iter_mut() {
            *j = (-1.0 + *j * 2.0) * 0.15;
        }

        // Pass 5a (vector): the sin argument. Evaluating
        // `TAU·elapsed/period + offset` into a temp is the same rounding
        // sequence as the fused scalar expression, so handing the temp to
        // `sin` is bit-identical — and it keeps the divides out of the
        // serial libm pass below.
        let mut arg = [0.0; LANES];
        let mut periodic_on = [false; LANES];
        for l in 0..LANES {
            let i = base + l;
            arg[l] =
                std::f64::consts::TAU * self.elapsed[i] / self.period[i] + self.phase_offset[i];
            periodic_on[l] = self.period[i] > 0.0;
        }

        // Pass 5b (scalar): `sin` stays a libm call — the measured floor
        // of this kernel (see EXPERIMENTS.md); lanes with no periodic
        // term skip it (their `arg` may be inf/nan from the divide, which
        // is fine because it is never consumed).
        let mut per = [0.0; LANES];
        for l in 0..LANES {
            per[l] = if periodic_on[l] { arg[l].sin() } else { 0.0 };
        }

        // Pass 6 (vector): blend — periodic 50 %, Markov 35 %, jitter
        // 15 %, scaled to the profile's variability.
        for l in 0..LANES {
            let i = base + l;
            let x = (0.50 * per[l] + 0.35 * self.level_intensity[i] + jit[l]) * self.variability[i];
            cpi[l] = (1.0 - 0.6 * x).max(0.2);
            mem[l] = (1.0 + x).max(0.05);
            act[l] = (1.0 + 0.5 * x).clamp(0.2, 1.25);
        }
    }

    /// The scalar per-sequence advance (tail lanes): the original
    /// [`PhaseGenerator::advance`] body, expression for expression.
    fn advance_one(&mut self, i: usize, dt: f64) -> (f64, f64, f64) {
        self.elapsed[i] += dt;

        // Markov level switching: geometric dwell with mean `mean_dwell`.
        let p_switch = (dt / self.mean_dwell[i]).min(1.0);
        if self.rng.next_f64_at(i) < p_switch {
            self.level_intensity[i] = match self.rng.below_at(i, 3) {
                0 => Level::Low.intensity(),
                1 => Level::Nominal.intensity(),
                _ => Level::High.intensity(),
            };
        }

        // Periodic component.
        let periodic = if self.period[i] > 0.0 {
            (std::f64::consts::TAU * self.elapsed[i] / self.period[i] + self.phase_offset[i]).sin()
        } else {
            0.0
        };

        // Jitter.
        let jitter = self.rng.signed_unit_at(i) * 0.15;

        // Blend: periodic 50 %, Markov 35 %, jitter 15 %, scaled to the
        // profile's variability.
        let x = (0.50 * periodic + 0.35 * self.level_intensity[i] + jitter) * self.variability[i];

        (
            (1.0 - 0.6 * x).max(0.2),
            (1.0 + x).max(0.05),
            (1.0 + 0.5 * x).clamp(0.2, 1.25),
        )
    }

    /// Total simulated time sequence `i` has covered.
    pub fn elapsed(&self, i: usize) -> Seconds {
        Seconds::new(self.elapsed[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec;

    fn gen_for(seed: u64, stream: u64) -> PhaseGenerator {
        PhaseGenerator::new(&parsec::x264(), seed, stream)
    }

    fn run(generator: &mut PhaseGenerator, n: usize) -> Vec<PhaseSample> {
        (0..n)
            .map(|_| generator.advance(Seconds::from_ms(0.5)))
            .collect()
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = run(&mut gen_for(7, 0), 200);
        let b = run(&mut gen_for(7, 0), 200);
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_decorrelate() {
        let a = run(&mut gen_for(7, 0), 200);
        let b = run(&mut gen_for(7, 1), 200);
        assert_ne!(a, b);
    }

    #[test]
    fn samples_stay_positive_and_bounded() {
        let samples = run(&mut gen_for(3, 5), 2000);
        for s in samples {
            assert!(s.cpi_scale > 0.0 && s.cpi_scale < 2.0);
            assert!(s.mem_scale > 0.0 && s.mem_scale < 2.0);
            assert!((0.2..=1.25).contains(&s.activity_scale));
        }
    }

    #[test]
    fn variability_controls_spread() {
        // x264 (var 0.30) must wander more than blackscholes (var 0.08).
        let spread = |p: &BenchmarkProfile| {
            let mut g = PhaseGenerator::new(p, 11, 0);
            let xs: Vec<f64> = (0..2000)
                .map(|_| g.advance(Seconds::from_ms(0.5)).mem_scale)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let hi = spread(&parsec::x264());
        let lo = spread(&parsec::blackscholes());
        assert!(hi > 2.0 * lo, "x264 σ={hi} vs blackscholes σ={lo}");
    }

    #[test]
    fn mean_stays_near_neutral() {
        let mut g = gen_for(13, 2);
        let xs: Vec<f64> = (0..4000)
            .map(|_| g.advance(Seconds::from_ms(0.5)).mem_scale)
            .collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 1.0).abs() < 0.08, "mean mem_scale {mean}");
    }

    #[test]
    fn elapsed_tracks_time() {
        let mut g = gen_for(1, 0);
        run(&mut g, 100);
        assert!((g.elapsed().ms() - 50.0).abs() < 1e-9);
    }

    fn assert_bank_matches_generators(cores: usize, steps: usize) {
        let profiles = parsec::all();
        let seed = 0xC0FFEE;
        let mut generators: Vec<PhaseGenerator> = Vec::new();
        let mut bank = PhaseBank::new();
        for (stream, p) in profiles.iter().cycle().take(cores).enumerate() {
            generators.push(PhaseGenerator::new(p, seed, stream as u64));
            bank.push(p, seed, stream as u64);
        }
        assert_eq!(bank.len(), generators.len());
        let mut cpi = vec![0.0; cores];
        let mut mem = vec![0.0; cores];
        let mut act = vec![0.0; cores];
        for step in 0..steps {
            let dt = Seconds::from_ms(0.5);
            bank.advance_into(dt, &mut cpi, &mut mem, &mut act);
            for (i, g) in generators.iter_mut().enumerate() {
                let s = g.advance(dt);
                assert!(
                    s.cpi_scale.to_bits() == cpi[i].to_bits()
                        && s.mem_scale.to_bits() == mem[i].to_bits()
                        && s.activity_scale.to_bits() == act[i].to_bits(),
                    "core {i} of {cores} diverged at step {step}"
                );
                assert_eq!(g.elapsed(), bank.elapsed(i));
            }
        }
    }

    #[test]
    fn bank_is_bit_identical_to_generators() {
        // The SoA bank must replay every scalar generator exactly — the
        // chip's determinism contract rides on this.
        assert_bank_matches_generators(32, 500);
    }

    #[test]
    fn bank_is_bit_identical_at_non_lane_multiple_sizes() {
        // Tail handling is where chunked kernels break: exercise sizes
        // below, at, just past, and far past the lane width — including
        // the 1-core degenerate where *only* the scalar tail runs.
        for cores in [1usize, 5, 7, 8, 9, 13, 16, 33] {
            assert_bank_matches_generators(cores, 120);
        }
    }

    #[test]
    #[should_panic(expected = "one output slot per sequence")]
    fn bank_rejects_short_output_slices() {
        let mut bank = PhaseBank::new();
        bank.push(&parsec::x264(), 1, 0);
        bank.advance_into(Seconds::from_ms(0.5), &mut [], &mut [], &mut []);
    }

    #[test]
    fn phases_actually_vary_over_time() {
        let samples = run(&mut gen_for(5, 3), 500);
        let distinct: std::collections::BTreeSet<u64> =
            samples.iter().map(|s| (s.mem_scale * 1e6) as u64).collect();
        assert!(distinct.len() > 100, "phases should not be constant");
    }
}
