//! Synthetic workload models standing in for the paper's PARSEC and SPEC
//! benchmarks.
//!
//! The controllers under study never see instructions — they observe
//! per-interval *signatures*: utilization, BIPS, and power. Each benchmark
//! is therefore modeled by an analytic [`profile::BenchmarkProfile`]
//! (base CPI, memory intensity, working set, activity factor, phase
//! structure) whose signature reproduces the published CPU-bound /
//! memory-bound behaviour of the real application (Table II/III), plus a
//! seeded [`phase::PhaseGenerator`] that supplies the time-varying demand
//! the GPM provisions against, and an [`address_stream::AddressStream`]
//! that exercises the real cache simulator for miss-rate calibration.
//!
//! * [`profile`] — the analytic per-benchmark model,
//! * [`parsec`] — the paper's 8 PARSEC applications/kernels (Table II),
//! * [`spec`] — mesa/bzip2/gcc/sixtrack used by the thermal study (§IV-A),
//! * [`phase`] — Markov + periodic phase generation,
//! * [`mixes`] — Mix-1/2/3 island assignments (Table III) and the thermal
//!   mix of Fig. 18(a),
//! * [`address_stream`] — synthetic memory reference streams.

pub mod address_stream;
pub mod mixes;
pub mod parsec;
pub mod phase;
pub mod profile;
pub mod spec;

pub use address_stream::AddressStream;
pub use mixes::{Mix, WorkloadAssignment};
pub use phase::{PhaseBank, PhaseGenerator, PhaseSample};
pub use profile::{BenchmarkProfile, InputSet, WorkloadClass};
