//! The four SPEC CPU2000 benchmarks used by the thermal-aware study.
//!
//! §IV-A evaluates the thermal policy "using only cpu-bound applications
//! i.e., mesa, bzip, gcc and sixtrack, with each core running an
//! application" on an 8-core, one-core-per-island CMP (Fig. 18(a)). All
//! four are CPU-bound — exactly the workloads that create hotspots when
//! provisioned greedily.

use crate::profile::{BenchmarkProfile, InputSet};

const MB: u64 = 1 << 20;

/// `mesa` — software 3-D rendering (FP, regular).
pub fn mesa() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "mesa",
        short: "mesa",
        description: "software OpenGL rendering (SPEC CPU2000 FP)",
        input: InputSet::SimLarge,
        base_cpi: 0.85,
        l1_mpki: 6.0,
        l2_mpki: 0.30,
        activity: 0.85,
        working_set: 8 * MB,
        stream_fraction: 0.45,
        phase_period: 0.050,
        variability: 0.12,
    }
}

/// `bzip2` — compression (integer, moderate memory pressure).
pub fn bzip2() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "bzip2",
        short: "bzip",
        description: "Burrows-Wheeler compression (SPEC CPU2000 INT)",
        input: InputSet::SimLarge,
        base_cpi: 1.0,
        l1_mpki: 9.0,
        l2_mpki: 0.90,
        activity: 0.80,
        working_set: 16 * MB,
        stream_fraction: 0.35,
        phase_period: 0.070,
        variability: 0.18,
    }
}

/// `gcc` — compiler (integer, branchy).
pub fn gcc() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "gcc",
        short: "gcc",
        description: "C compiler (SPEC CPU2000 INT)",
        input: InputSet::SimLarge,
        base_cpi: 1.10,
        l1_mpki: 11.0,
        l2_mpki: 1.00,
        activity: 0.75,
        working_set: 24 * MB,
        stream_fraction: 0.20,
        phase_period: 0.060,
        variability: 0.25,
    }
}

/// `sixtrack` — particle tracking (FP, very core-bound).
pub fn sixtrack() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "sixtrack",
        short: "sixtrack",
        description: "particle accelerator tracking (SPEC CPU2000 FP)",
        input: InputSet::SimLarge,
        base_cpi: 0.75,
        l1_mpki: 3.0,
        l2_mpki: 0.10,
        activity: 0.90,
        working_set: 2 * MB,
        stream_fraction: 0.50,
        phase_period: 0.045,
        variability: 0.06,
    }
}

/// The Fig. 18(a) roster in core order: mesa, bzip, gcc, sixtrack repeated
/// across the 8 cores.
pub fn thermal_roster() -> Vec<BenchmarkProfile> {
    vec![
        mesa(),
        bzip2(),
        gcc(),
        sixtrack(),
        mesa(),
        bzip2(),
        gcc(),
        sixtrack(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadClass;

    #[test]
    fn all_four_are_cpu_bound() {
        for p in [mesa(), bzip2(), gcc(), sixtrack()] {
            assert_eq!(p.class(), WorkloadClass::CpuBound, "{}", p.name);
        }
    }

    #[test]
    fn thermal_roster_matches_fig18a() {
        let r = thermal_roster();
        assert_eq!(r.len(), 8);
        assert_eq!(r[0].short, "mesa");
        assert_eq!(r[1].short, "bzip");
        assert_eq!(r[2].short, "gcc");
        assert_eq!(r[3].short, "sixtrack");
        // Second half mirrors the first.
        for i in 0..4 {
            assert_eq!(r[i].short, r[i + 4].short);
        }
    }

    #[test]
    fn sixtrack_is_the_most_core_bound() {
        let min = thermal_roster()
            .into_iter()
            .min_by(|a, b| a.l2_mpki.partial_cmp(&b.l2_mpki).unwrap())
            .unwrap();
        assert_eq!(min.short, "sixtrack");
    }
}
