//! Synthetic memory reference streams.
//!
//! The paper drives GEMS `g-cache` models with real PARSEC address traces;
//! we generate per-benchmark synthetic streams with a three-tier locality
//! structure that reproduces how real programs exercise a cache hierarchy:
//!
//! 1. an **L1-resident set** (stack, hot locals — a few KB) absorbing the
//!    majority of references,
//! 2. a **hot region** (the active fraction of the working set) touched by
//!    streaming walks and scattered reuse — this is the tier whose size
//!    relative to the L2 decides whether a benchmark is memory-bound,
//! 3. **cold references** over the full working set (capacity pressure).
//!
//! References are *word*-granular (8 B), so sequential walks hit the same
//! 64 B line 8 times before crossing — matching how streaming code really
//! filters through an L1. `cpm-sim`'s set-associative cache simulator
//! consumes these streams to calibrate per-benchmark miss rates.

use crate::profile::BenchmarkProfile;
use cpm_rng::Xoshiro256pp;

/// Cache-line size matching the chip configuration (64 B, Table I).
pub const LINE_BYTES: u64 = 64;
/// Word granularity of generated references.
pub const WORD_BYTES: u64 = 8;
/// Size of the L1-resident tier (8 KB of stack/locals).
pub const L1_SET_BYTES: u64 = 8 * 1024;
/// The hot region is `working_set / HOT_DIVISOR`, floored at 16 KB.
pub const HOT_DIVISOR: u64 = 32;

/// A deterministic, seeded address generator for one benchmark.
#[derive(Debug, Clone)]
pub struct AddressStream {
    rng: Xoshiro256pp,
    /// Total words in the working set.
    working_words: u64,
    /// Words in the L1-resident tier.
    l1_words: u64,
    /// Words in the hot region.
    hot_words: u64,
    /// Probability of a sequential (streaming) reference.
    p_stream: f64,
    /// Sequential-walk cursor (word index within the hot region).
    cursor: u64,
}

impl AddressStream {
    /// Probability of a hot-region scattered reference.
    const P_HOT: f64 = 0.15;
    /// Probability of a cold full-working-set reference.
    const P_COLD: f64 = 0.05;

    /// Creates a stream for `profile`, deterministically seeded.
    pub fn new(profile: &BenchmarkProfile, seed: u64) -> Self {
        let working_words = (profile.working_set / WORD_BYTES).max(1);
        let l1_words = (L1_SET_BYTES / WORD_BYTES).min(working_words);
        let hot_words = (working_words / HOT_DIVISOR)
            .max(16 * 1024 / WORD_BYTES)
            .min(working_words);
        Self {
            rng: Xoshiro256pp::seed_from_u64(
                seed ^ profile.working_set.wrapping_mul(0x2545F4914F6CDD1D),
            ),
            working_words,
            l1_words,
            hot_words,
            p_stream: 0.30 * profile.stream_fraction,
            cursor: 0,
        }
    }

    /// Number of distinct cache lines this stream can touch.
    pub fn working_lines(&self) -> u64 {
        (self.working_words * WORD_BYTES).div_ceil(LINE_BYTES)
    }

    /// Size of the hot region in bytes.
    pub fn hot_bytes(&self) -> u64 {
        self.hot_words * WORD_BYTES
    }

    /// The next byte address (word-aligned).
    pub fn next_address(&mut self) -> u64 {
        let p: f64 = self.rng.next_f64();
        let word = if p < self.p_stream {
            // Streaming walk through the hot region, word by word.
            self.cursor = (self.cursor + 1) % self.hot_words;
            self.cursor
        } else if p < self.p_stream + Self::P_HOT {
            // Scattered reuse within the hot region.
            self.rng.below(self.hot_words)
        } else if p < self.p_stream + Self::P_HOT + Self::P_COLD {
            // Cold capacity reference anywhere in the working set.
            self.rng.below(self.working_words)
        } else {
            // L1-resident tier (stack/locals).
            self.rng.below(self.l1_words)
        };
        word * WORD_BYTES
    }

    /// Generates `n` addresses.
    pub fn take(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_address()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsec;
    use crate::profile::InputSet;

    #[test]
    fn addresses_are_word_aligned_and_in_working_set() {
        let p = parsec::bodytrack();
        let mut s = AddressStream::new(&p, 42);
        for a in s.take(10_000) {
            assert_eq!(a % WORD_BYTES, 0);
            assert!(a < p.working_set);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = parsec::canneal();
        let a = AddressStream::new(&p, 7).take(1000);
        let b = AddressStream::new(&p, 7).take(1000);
        assert_eq!(a, b);
        let c = AddressStream::new(&p, 8).take(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_profile_produces_sequential_word_steps() {
        // streamcluster (stream_fraction 0.8) emits many +1-word steps;
        // canneal (0.05) almost none.
        let step_fraction = |p: &BenchmarkProfile| {
            let mut s = AddressStream::new(p, 3);
            let addrs = s.take(40_000);
            let seq = addrs
                .windows(2)
                .filter(|w| w[1] == w[0] + WORD_BYTES)
                .count();
            seq as f64 / addrs.len() as f64
        };
        let streaming = step_fraction(&parsec::streamcluster());
        let chasing = step_fraction(&parsec::canneal());
        assert!(streaming > 0.04, "streamcluster sequential {streaming}");
        assert!(chasing < 0.01, "canneal sequential {chasing}");
        assert!(streaming > 4.0 * chasing);
    }

    #[test]
    fn l1_tier_dominates_references() {
        // The majority of references must land in the 8 KB resident tier —
        // that is what gives real programs their ~95 % L1 hit rates.
        let p = parsec::freqmine();
        let mut s = AddressStream::new(&p, 11);
        let addrs = s.take(50_000);
        let in_l1_tier = addrs.iter().filter(|&&a| a < L1_SET_BYTES).count();
        assert!(
            in_l1_tier as f64 / addrs.len() as f64 > 0.6,
            "L1 tier fraction {}",
            in_l1_tier as f64 / addrs.len() as f64
        );
    }

    #[test]
    fn temporal_locality_revisits_lines() {
        let p = parsec::freqmine();
        let mut s = AddressStream::new(&p, 11);
        let addrs = s.take(50_000);
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a / LINE_BYTES).collect();
        assert!(
            distinct.len() < addrs.len() / 4,
            "{} distinct",
            distinct.len()
        );
    }

    #[test]
    fn hot_region_scales_with_input_set() {
        let sim = AddressStream::new(&parsec::facesim(), 1);
        let native = AddressStream::new(&parsec::facesim().with_input(InputSet::Native), 1);
        assert!(native.hot_bytes() > 4 * sim.hot_bytes());
        assert!(native.working_lines() > 4 * sim.working_lines());
    }

    #[test]
    fn small_working_set_is_respected() {
        let p = BenchmarkProfile {
            working_set: 64 * LINE_BYTES,
            ..parsec::blackscholes()
        };
        let mut s = AddressStream::new(&p, 1);
        assert_eq!(s.working_lines(), 64);
        for a in s.take(1000) {
            assert!(a < 64 * LINE_BYTES);
        }
    }
}
