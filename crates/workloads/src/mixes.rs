//! Application mixes and island assignments (Table III).
//!
//! * **Mix-1** (8 cores, 2 per island): each island pairs one CPU-bound
//!   benchmark (sim-large input) with one memory-bound benchmark (native
//!   input) — the paper's default.
//! * **Mix-2** (8 cores): islands are homogeneous — C,C / M,M / C,C / M,M.
//! * **Mix-3** (16/32 cores, 4 per island): all-C and all-M islands,
//!   replicated once more for 32 cores.
//! * **Thermal mix** (8 cores, 1 per island): the SPEC roster of
//!   Fig. 18(a).

use crate::parsec;
use crate::profile::{BenchmarkProfile, InputSet, WorkloadClass};
use crate::spec;
use cpm_units::{CoreId, IslandId};

/// A named benchmark→core assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// Table III(a): C+M per island, 8 cores.
    Mix1,
    /// Table III(b): homogeneous islands, 8 cores.
    Mix2,
    /// Table III(c): 16 cores, 4 per island (replicate for 32).
    Mix3,
    /// Fig. 18(a): SPEC roster, 8 single-core islands.
    Thermal,
}

/// Fully resolved workload placement: which profile runs on which core, and
/// which island each core belongs to.
#[derive(Debug, Clone)]
pub struct WorkloadAssignment {
    profiles: Vec<BenchmarkProfile>,
    cores_per_island: usize,
}

impl WorkloadAssignment {
    /// Builds an assignment from per-core profiles with uniform island
    /// width. The core count must be an exact multiple of the width.
    pub fn new(profiles: Vec<BenchmarkProfile>, cores_per_island: usize) -> Self {
        assert!(cores_per_island > 0);
        assert!(!profiles.is_empty());
        assert_eq!(
            profiles.len() % cores_per_island,
            0,
            "core count must divide evenly into islands"
        );
        Self {
            profiles,
            cores_per_island,
        }
    }

    /// Resolves a named paper mix for the given total core count.
    ///
    /// `Mix1`/`Mix2`/`Thermal` require 8 cores; `Mix3` accepts 16 or 32.
    pub fn paper_mix(mix: Mix, cores: usize) -> Self {
        // C-role benchmarks keep sim-large; M-role get native input (§III).
        let c = |p: BenchmarkProfile| p.with_input(InputSet::SimLarge);
        let m = |p: BenchmarkProfile| p.with_input(InputSet::Native);
        match mix {
            Mix::Mix1 => {
                assert_eq!(cores, 8, "Mix-1 is defined for 8 cores");
                Self::new(
                    vec![
                        c(parsec::blackscholes()),
                        m(parsec::streamcluster()),
                        c(parsec::bodytrack()),
                        m(parsec::facesim()),
                        c(parsec::freqmine()),
                        m(parsec::canneal()),
                        c(parsec::x264()),
                        m(parsec::vips()),
                    ],
                    2,
                )
            }
            Mix::Mix2 => {
                assert_eq!(cores, 8, "Mix-2 is defined for 8 cores");
                Self::new(
                    vec![
                        c(parsec::blackscholes()),
                        c(parsec::bodytrack()),
                        m(parsec::streamcluster()),
                        m(parsec::facesim()),
                        c(parsec::freqmine()),
                        c(parsec::x264()),
                        m(parsec::canneal()),
                        m(parsec::vips()),
                    ],
                    2,
                )
            }
            Mix::Mix3 => {
                assert!(
                    cores == 16 || cores == 32,
                    "Mix-3 is defined for 16/32 cores"
                );
                let block = [
                    c(parsec::blackscholes()),
                    c(parsec::bodytrack()),
                    c(parsec::freqmine()),
                    c(parsec::x264()),
                    m(parsec::streamcluster()),
                    m(parsec::facesim()),
                    m(parsec::canneal()),
                    m(parsec::vips()),
                ];
                let mut profiles = Vec::with_capacity(cores);
                while profiles.len() < cores {
                    profiles.extend(block.iter().cloned());
                }
                Self::new(profiles, 4)
            }
            Mix::Thermal => {
                assert_eq!(cores, 8, "the thermal mix is defined for 8 cores");
                Self::new(spec::thermal_roster(), 1)
            }
        }
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.profiles.len()
    }

    /// Cores per island (uniform).
    pub fn cores_per_island(&self) -> usize {
        self.cores_per_island
    }

    /// Number of islands.
    pub fn islands(&self) -> usize {
        self.profiles.len() / self.cores_per_island
    }

    /// The profile scheduled on `core`.
    pub fn profile(&self, core: CoreId) -> &BenchmarkProfile {
        &self.profiles[core.index()]
    }

    /// All per-core profiles in core order.
    pub fn profiles(&self) -> &[BenchmarkProfile] {
        &self.profiles
    }

    /// The island a core belongs to.
    pub fn island_of(&self, core: CoreId) -> IslandId {
        IslandId(core.index() / self.cores_per_island)
    }

    /// The cores of an island.
    pub fn cores_of(&self, island: IslandId) -> Vec<CoreId> {
        let start = island.index() * self.cores_per_island;
        (start..start + self.cores_per_island).map(CoreId).collect()
    }

    /// The C/M class string of an island, e.g. `"C, M"` (Table III's
    /// characteristics column).
    pub fn island_classes(&self, island: IslandId) -> String {
        self.cores_of(island)
            .iter()
            .map(|&c| self.profile(c).class().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// True when the island mixes CPU-bound and memory-bound work — the
    /// co-scheduling situation that makes island-level DVFS hard (§IV).
    pub fn island_is_heterogeneous(&self, island: IslandId) -> bool {
        let classes: Vec<WorkloadClass> = self
            .cores_of(island)
            .iter()
            .map(|&c| self.profile(c).class())
            .collect();
        classes.windows(2).any(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix1_matches_table_3a() {
        let a = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
        assert_eq!(a.cores(), 8);
        assert_eq!(a.islands(), 4);
        // Every island pairs a C with an M benchmark.
        for i in 0..4 {
            assert_eq!(a.island_classes(IslandId(i)), "C, M");
            assert!(a.island_is_heterogeneous(IslandId(i)));
        }
        assert_eq!(a.profile(CoreId(0)).short, "bschls");
        assert_eq!(a.profile(CoreId(1)).short, "sclust");
        assert_eq!(a.profile(CoreId(6)).short, "x264");
        assert_eq!(a.profile(CoreId(7)).short, "vips");
    }

    #[test]
    fn mix2_matches_table_3b() {
        let a = WorkloadAssignment::paper_mix(Mix::Mix2, 8);
        assert_eq!(a.island_classes(IslandId(0)), "C, C");
        assert_eq!(a.island_classes(IslandId(1)), "M, M");
        assert_eq!(a.island_classes(IslandId(2)), "C, C");
        assert_eq!(a.island_classes(IslandId(3)), "M, M");
        for i in 0..4 {
            assert!(!a.island_is_heterogeneous(IslandId(i)));
        }
    }

    #[test]
    fn mix3_for_16_and_32_cores() {
        let a16 = WorkloadAssignment::paper_mix(Mix::Mix3, 16);
        assert_eq!(a16.islands(), 4);
        assert_eq!(a16.cores_per_island(), 4);
        assert_eq!(a16.island_classes(IslandId(0)), "C, C, C, C");
        assert_eq!(a16.island_classes(IslandId(1)), "M, M, M, M");

        let a32 = WorkloadAssignment::paper_mix(Mix::Mix3, 32);
        assert_eq!(a32.islands(), 8);
        // 32-core replicates the 16-core mix twice (§IV).
        for c in 0..16 {
            assert_eq!(
                a32.profile(CoreId(c)).short,
                a32.profile(CoreId(c + 16)).short
            );
        }
    }

    #[test]
    fn thermal_mix_is_single_core_islands() {
        let a = WorkloadAssignment::paper_mix(Mix::Thermal, 8);
        assert_eq!(a.islands(), 8);
        assert_eq!(a.cores_per_island(), 1);
        assert_eq!(a.profile(CoreId(0)).short, "mesa");
        assert_eq!(a.profile(CoreId(3)).short, "sixtrack");
    }

    #[test]
    fn island_core_mapping_roundtrips() {
        let a = WorkloadAssignment::paper_mix(Mix::Mix1, 8);
        for i in 0..a.islands() {
            for c in a.cores_of(IslandId(i)) {
                assert_eq!(a.island_of(c), IslandId(i));
            }
        }
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn ragged_assignment_rejected() {
        WorkloadAssignment::new(vec![parsec::x264(); 7], 2);
    }

    #[test]
    #[should_panic(expected = "Mix-1 is defined for 8")]
    fn mix1_requires_8_cores() {
        WorkloadAssignment::paper_mix(Mix::Mix1, 16);
    }
}
