//! The paper's PARSEC roster (Table II): six applications and two kernels.
//!
//! Parameter values are synthetic but shaped by the published PARSEC
//! characterization: `streamcluster` and `canneal` are the memory-hungry
//! kernels (streaming vs. pointer-chasing), `blackscholes` is tiny and
//! regular, `x264` has strong frame periodicity, `canneal` the largest
//! working set. All profiles are defined at their `sim-large` input;
//! [`crate::profile::BenchmarkProfile::with_input`] derives the `native`
//! (memory-intensive) variant the paper uses for the M-class role.

use crate::profile::{BenchmarkProfile, InputSet};

const MB: u64 = 1 << 20;

/// `blackscholes` — "uses PDE to solve an option pricing problem".
pub fn blackscholes() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "blackscholes",
        short: "bschls",
        description: "PDE-based option pricing (application)",
        input: InputSet::SimLarge,
        base_cpi: 0.85,
        l1_mpki: 4.0,
        l2_mpki: 0.15,
        activity: 0.85,
        working_set: 2 * MB,
        stream_fraction: 0.30,
        phase_period: 0.040,
        variability: 0.08,
    }
}

/// `bodytrack` — "tracks the body of a person".
pub fn bodytrack() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "bodytrack",
        short: "btrack",
        description: "computer-vision body tracking (application)",
        input: InputSet::SimLarge,
        base_cpi: 1.0,
        l1_mpki: 8.0,
        l2_mpki: 0.50,
        activity: 0.75,
        working_set: 8 * MB,
        stream_fraction: 0.25,
        phase_period: 0.060,
        variability: 0.20,
    }
}

/// `facesim` — "simulates motion of a human face".
pub fn facesim() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "facesim",
        short: "fsim",
        description: "physics simulation of a human face (application)",
        input: InputSet::SimLarge,
        base_cpi: 1.05,
        l1_mpki: 12.0,
        l2_mpki: 1.10,
        activity: 0.70,
        working_set: 32 * MB,
        stream_fraction: 0.40,
        phase_period: 0.080,
        variability: 0.18,
    }
}

/// `freqmine` — "does frequent item set mining".
pub fn freqmine() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "freqmine",
        short: "fmine",
        description: "frequent itemset mining (application)",
        input: InputSet::SimLarge,
        base_cpi: 0.95,
        l1_mpki: 10.0,
        l2_mpki: 0.50,
        activity: 0.75,
        working_set: 16 * MB,
        stream_fraction: 0.20,
        phase_period: 0.070,
        variability: 0.15,
    }
}

/// `x264` — "a video encoding app" with pronounced per-frame phases.
pub fn x264() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "x264",
        short: "x264",
        description: "H.264 video encoding (application)",
        input: InputSet::SimLarge,
        base_cpi: 0.80,
        l1_mpki: 7.0,
        l2_mpki: 0.45,
        activity: 0.85,
        working_set: 16 * MB,
        stream_fraction: 0.50,
        phase_period: 0.033,
        variability: 0.30,
    }
}

/// `vips` — "an image processing app".
pub fn vips() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "vips",
        short: "vips",
        description: "image transformation pipeline (application)",
        input: InputSet::SimLarge,
        base_cpi: 0.90,
        l1_mpki: 10.0,
        l2_mpki: 1.00,
        activity: 0.80,
        working_set: 32 * MB,
        stream_fraction: 0.60,
        phase_period: 0.050,
        variability: 0.15,
    }
}

/// `streamcluster` — "does online clustering in an input stream" (kernel).
pub fn streamcluster() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "streamcluster",
        short: "sclust",
        description: "online stream clustering (kernel)",
        input: InputSet::SimLarge,
        base_cpi: 1.10,
        l1_mpki: 15.0,
        l2_mpki: 1.40,
        activity: 0.65,
        working_set: 64 * MB,
        stream_fraction: 0.80,
        phase_period: 0.090,
        variability: 0.12,
    }
}

/// `canneal` — "simulates cache aware annealing to optimize routing cost"
/// (kernel; pointer-chasing, biggest working set of the suite).
pub fn canneal() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "canneal",
        short: "canneal",
        description: "cache-aware simulated annealing for chip routing (kernel)",
        input: InputSet::SimLarge,
        base_cpi: 1.30,
        l1_mpki: 18.0,
        l2_mpki: 1.80,
        activity: 0.60,
        working_set: 128 * MB,
        stream_fraction: 0.05,
        phase_period: 0.100,
        variability: 0.22,
    }
}

/// `ferret` — content-based similarity search (pipeline-parallel).
/// Not part of the paper's roster; provided for building custom mixes.
pub fn ferret() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "ferret",
        short: "ferret",
        description: "content-based image similarity search (application, extended roster)",
        input: InputSet::SimLarge,
        base_cpi: 1.0,
        l1_mpki: 11.0,
        l2_mpki: 0.9,
        activity: 0.75,
        working_set: 24 * MB,
        stream_fraction: 0.30,
        phase_period: 0.055,
        variability: 0.17,
    }
}

/// `swaptions` — Monte-Carlo swaption pricing (embarrassingly parallel,
/// very CPU-bound). Extended roster.
pub fn swaptions() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "swaptions",
        short: "swapt",
        description: "Monte-Carlo swaption pricing (application, extended roster)",
        input: InputSet::SimLarge,
        base_cpi: 0.78,
        l1_mpki: 3.5,
        l2_mpki: 0.12,
        activity: 0.88,
        working_set: MB,
        stream_fraction: 0.15,
        phase_period: 0.045,
        variability: 0.05,
    }
}

/// `fluidanimate` — SPH fluid simulation (frame-periodic like x264, more
/// memory traffic). Extended roster.
pub fn fluidanimate() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "fluidanimate",
        short: "fluid",
        description:
            "smoothed-particle-hydrodynamics fluid animation (application, extended roster)",
        input: InputSet::SimLarge,
        base_cpi: 0.95,
        l1_mpki: 12.0,
        l2_mpki: 1.2,
        activity: 0.78,
        working_set: 48 * MB,
        stream_fraction: 0.45,
        phase_period: 0.033,
        variability: 0.22,
    }
}

/// `dedup` — pipelined compression/deduplication (bursty, hash-heavy).
/// Extended roster.
pub fn dedup() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "dedup",
        short: "dedup",
        description: "pipelined deduplication + compression (kernel, extended roster)",
        input: InputSet::SimLarge,
        base_cpi: 1.15,
        l1_mpki: 14.0,
        l2_mpki: 1.5,
        activity: 0.70,
        working_set: 64 * MB,
        stream_fraction: 0.55,
        phase_period: 0.075,
        variability: 0.25,
    }
}

/// `raytrace` — real-time ray tracing (branchy FP, moderate memory).
/// Extended roster.
pub fn raytrace() -> BenchmarkProfile {
    BenchmarkProfile {
        name: "raytrace",
        short: "rtrace",
        description: "real-time ray tracing (application, extended roster)",
        input: InputSet::SimLarge,
        base_cpi: 0.92,
        l1_mpki: 9.0,
        l2_mpki: 0.7,
        activity: 0.82,
        working_set: 32 * MB,
        stream_fraction: 0.25,
        phase_period: 0.033,
        variability: 0.20,
    }
}

/// The five extended-roster profiles (not used by the paper's mixes).
pub fn extended() -> Vec<BenchmarkProfile> {
    vec![ferret(), swaptions(), fluidanimate(), dedup(), raytrace()]
}

/// All eight PARSEC profiles in the paper's Table II order.
pub fn all() -> Vec<BenchmarkProfile> {
    vec![
        blackscholes(),
        bodytrack(),
        facesim(),
        freqmine(),
        x264(),
        vips(),
        streamcluster(),
        canneal(),
    ]
}

/// Looks up a profile by its abbreviation (`bschls`, `btrack`, …),
/// searching the paper roster first and then the extended roster.
pub fn by_short(short: &str) -> Option<BenchmarkProfile> {
    all()
        .into_iter()
        .chain(extended())
        .find(|p| p.short == short)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadClass;

    #[test]
    fn roster_has_eight_unique_benchmarks() {
        let v = all();
        assert_eq!(v.len(), 8);
        let mut shorts: Vec<_> = v.iter().map(|p| p.short).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), 8);
    }

    #[test]
    fn all_are_cpu_bound_on_sim_large() {
        // With sim-large inputs every benchmark can fill the C role.
        for p in all() {
            assert_eq!(
                p.class(),
                WorkloadClass::CpuBound,
                "{} should be C on sim-large",
                p.name
            );
        }
    }

    #[test]
    fn m_role_benchmarks_flip_on_native_input() {
        // The four Mix-1 M-role benchmarks must classify as memory-bound
        // with native inputs (§III).
        for short in ["sclust", "fsim", "canneal", "vips"] {
            let p = by_short(short).unwrap().with_input(crate::InputSet::Native);
            assert_eq!(
                p.class(),
                WorkloadClass::MemoryBound,
                "{short} should be M on native"
            );
        }
    }

    #[test]
    fn lookup_by_short_name() {
        assert_eq!(by_short("x264").unwrap().name, "x264");
        assert_eq!(by_short("swapt").unwrap().name, "swaptions");
        assert!(by_short("doesnotexist").is_none());
    }

    #[test]
    fn extended_roster_is_disjoint_and_well_formed() {
        let paper: Vec<&str> = all().iter().map(|p| p.short).collect();
        for p in extended() {
            assert!(!paper.contains(&p.short), "{} collides", p.short);
            assert!(p.base_cpi > 0.3 && p.base_cpi < 3.0);
            assert!(p.l1_mpki >= p.l2_mpki);
            assert!(p.description.contains("extended roster"));
        }
        assert_eq!(extended().len(), 5);
    }

    #[test]
    fn extended_roster_spans_both_classes_under_native_input() {
        use crate::profile::{InputSet, WorkloadClass};
        // swaptions stays CPU-bound even on native inputs; dedup flips.
        assert_eq!(
            swaptions().with_input(InputSet::Native).class(),
            WorkloadClass::CpuBound
        );
        assert_eq!(
            dedup().with_input(InputSet::Native).class(),
            WorkloadClass::MemoryBound
        );
    }

    #[test]
    fn canneal_is_least_streaming_streamcluster_most() {
        let c = canneal();
        let s = streamcluster();
        assert!(c.stream_fraction < 0.1, "canneal pointer-chases");
        assert!(s.stream_fraction > 0.7, "streamcluster streams");
    }

    #[test]
    fn x264_has_strongest_phase_variability() {
        let max_var = all()
            .into_iter()
            .max_by(|a, b| a.variability.partial_cmp(&b.variability).unwrap())
            .unwrap();
        assert_eq!(max_var.short, "x264");
    }

    #[test]
    fn profiles_have_sane_parameter_ranges() {
        for p in all() {
            assert!(p.base_cpi > 0.3 && p.base_cpi < 3.0, "{}", p.name);
            assert!(p.l1_mpki >= p.l2_mpki, "{}: L1 misses ⊇ L2 misses", p.name);
            assert!((0.0..=1.0).contains(&p.activity));
            assert!((0.0..=1.0).contains(&p.stream_fraction));
            assert!((0.0..1.0).contains(&p.variability));
            assert!(p.working_set >= MB);
        }
    }
}
