//! Injection effects and the timed schedule that drives them.
//!
//! An [`Effect`] is one named fault; a [`TimedEffect`] gives it a target
//! island (or the whole chip) and an active window in simulated seconds
//! *relative to measurement start*. An [`InjectionSchedule`] is an
//! ordered set of timed effects implementing
//! [`cpm_sim::InjectionSeam`], so it plugs straight into
//! `Coordinator::set_injection`.
//!
//! Windows are relative because the coordinator spends a
//! configuration-dependent stretch of simulated time on calibration and
//! settle-in before measurement begins. The schedule *anchors* on the
//! first seam call it sees — which the coordinator makes at measurement
//! start — so `start_s = 0.030` always means "30 ms into the measured
//! story", independent of sensing mode or chip geometry.
//!
//! Determinism: every effect is a pure function of simulated time and
//! its own state. The one stochastic effect (sensor noise) draws from a
//! dedicated [`cpm_rng::Xoshiro256pp`] child stream seeded from the
//! schedule seed and the effect's index, so adding an effect never
//! shifts another effect's stream. The per-step seam methods never
//! allocate — they run inside the coordinator's allocation-free
//! measurement loop.

use cpm_obs::{EventPayload, Recorder};
use cpm_rng::Xoshiro256pp;
use cpm_sim::InjectionSeam;
use cpm_units::{IslandId, Ratio, Seconds, Watts};

/// One named fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Gaussian noise on the sensed capacity utilization (the PIC's fast
    /// transducer input), clamped back into `[0, 1]`.
    SensorNoise {
        /// Noise standard deviation, in utilization units.
        sigma: f64,
    },
    /// Transducer dropout: the controller keeps seeing the last sample
    /// taken before the window opened.
    SensorDropout,
    /// The DVFS actuator stops honoring move requests; the knob holds
    /// whatever point it was at when the window opened.
    StuckActuator,
    /// A slow actuator: only every `period`-th move request lands; the
    /// rest leave the knob where it is.
    SlowActuator {
        /// Requests per honored move (≥ 1; 1 = healthy).
        period: u32,
    },
    /// A chip-budget transient: the budget is scaled by `scale` while
    /// the window is open (the coordinator clamps to the idle floor).
    BudgetStep {
        /// Budget multiplier, e.g. `0.75` for a 25 % dip.
        scale: f64,
    },
    /// The island's local controller dies: no sensing, control, or
    /// rezero while the window is open; the GPM fails over around the
    /// island's uncontrolled draw.
    ControllerFailure,
}

impl Effect {
    /// Stable effect label used in `Injection` events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Effect::SensorNoise { .. } => "sensor-noise",
            Effect::SensorDropout => "sensor-dropout",
            Effect::StuckActuator => "stuck-actuator",
            Effect::SlowActuator { .. } => "slow-actuator",
            Effect::BudgetStep { .. } => "budget-step",
            Effect::ControllerFailure => "controller-failure",
        }
    }

    /// The magnitude recorded on the effect's activation edge.
    fn value(&self) -> f64 {
        match self {
            Effect::SensorNoise { sigma } => *sigma,
            Effect::SlowActuator { period } => *period as f64,
            Effect::BudgetStep { scale } => *scale,
            Effect::SensorDropout | Effect::StuckActuator | Effect::ControllerFailure => 0.0,
        }
    }
}

/// An [`Effect`] with a target and an active window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedEffect {
    /// Target island; `None` targets every island (and is the only
    /// sensible choice for [`Effect::BudgetStep`], which is chip-wide).
    pub island: Option<IslandId>,
    /// Window start, simulated seconds relative to measurement start.
    pub start_s: f64,
    /// Window end (exclusive), simulated seconds relative to
    /// measurement start.
    pub end_s: f64,
    /// The fault.
    pub effect: Effect,
}

impl TimedEffect {
    /// True when `island` is inside this effect's target set.
    fn targets(&self, island: IslandId) -> bool {
        self.island.map_or(true, |i| i == island)
    }

    /// The island recorded on edge events (`u32::MAX` = chip-wide).
    fn event_island(&self) -> u32 {
        self.island.map_or(u32::MAX, |i| i.index() as u32)
    }
}

/// Per-effect mutable state.
#[derive(Debug, Clone)]
struct EffectSlot {
    spec: TimedEffect,
    /// Dedicated noise stream (unused by deterministic effects).
    rng: Xoshiro256pp,
    /// Last pre-window sense sample, for dropout holds.
    held_sense: Option<(f64, f64)>,
    /// Move requests seen while active, for slow actuators.
    requests: u64,
    /// Activation edge emitted.
    started: bool,
    /// Deactivation edge emitted.
    ended: bool,
}

/// An ordered set of timed effects; implements [`InjectionSeam`].
#[derive(Debug, Clone)]
pub struct InjectionSchedule {
    seed: u64,
    slots: Vec<EffectSlot>,
    recorder: Recorder,
    /// Simulated time of the first seam call (= measurement start).
    anchor: Option<f64>,
}

impl InjectionSchedule {
    /// An empty schedule. `seed` roots the per-effect RNG child streams.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            slots: Vec::new(),
            recorder: Recorder::disabled(),
            anchor: None,
        }
    }

    /// Adds one timed effect (builder style). Each effect gets the child
    /// stream at its insertion index, so schedules are stable under
    /// appends.
    pub fn with_effect(mut self, spec: TimedEffect) -> Self {
        let index = self.slots.len() as u64;
        self.slots.push(EffectSlot {
            spec,
            rng: Xoshiro256pp::child(self.seed, index),
            held_sense: None,
            requests: 0,
            started: false,
            ended: false,
        });
        self
    }

    /// Attaches a flight-recorder handle; every effect then emits an
    /// `Injection` event on its activation and deactivation edges.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Number of scheduled effects.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no effects are scheduled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Time relative to the anchor, anchoring on first use.
    fn rel(&mut self, t: Seconds) -> f64 {
        let anchor = *self.anchor.get_or_insert(t.value());
        t.value() - anchor
    }

    /// Emits activation/deactivation edges crossed by `rel`.
    fn mark_edges(&mut self, rel: f64) {
        for slot in &mut self.slots {
            if !slot.started && rel >= slot.spec.start_s - EDGE_EPS_S {
                slot.started = true;
                self.recorder.record(EventPayload::Injection {
                    label: slot.spec.effect.label(),
                    island: slot.spec.event_island(),
                    active: true,
                    value: slot.spec.effect.value(),
                });
            }
            if slot.started && !slot.ended && rel >= slot.spec.end_s - EDGE_EPS_S {
                slot.ended = true;
                self.recorder.record(EventPayload::Injection {
                    label: slot.spec.effect.label(),
                    island: slot.spec.event_island(),
                    active: false,
                    value: slot.spec.effect.value(),
                });
            }
        }
    }
}

/// Window-edge tolerance: relative times are differences of absolute
/// simulated timestamps, so a boundary expressed as an exact multiple of
/// the GPM interval can land a few ULPs short of it. One nanosecond is
/// six orders of magnitude below the PIC interval — far from any real
/// sample — and keeps edge behavior aligned with round boundaries.
const EDGE_EPS_S: f64 = 1e-9;

/// True while `rel` is inside the spec's window.
fn active(spec: &TimedEffect, rel: f64) -> bool {
    rel >= spec.start_s - EDGE_EPS_S && rel < spec.end_s - EDGE_EPS_S
}

impl InjectionSeam for InjectionSchedule {
    fn filter_sense(
        &mut self,
        time: Seconds,
        island: IslandId,
        capacity_utilization: Ratio,
        power: Watts,
    ) -> (Ratio, Watts) {
        let rel = self.rel(time);
        self.mark_edges(rel);
        let mut u = capacity_utilization.value();
        let mut p = power.value();
        for slot in &mut self.slots {
            if !slot.spec.targets(island) {
                continue;
            }
            match slot.spec.effect {
                Effect::SensorNoise { sigma } if active(&slot.spec, rel) => {
                    u = (u + sigma * slot.rng.next_gaussian()).clamp(0.0, 1.0);
                }
                Effect::SensorDropout => {
                    if active(&slot.spec, rel) {
                        let held = *slot.held_sense.get_or_insert((u, p));
                        u = held.0;
                        p = held.1;
                    } else {
                        slot.held_sense = Some((u, p));
                    }
                }
                _ => {}
            }
        }
        (Ratio::new(u), Watts::new(p))
    }

    fn filter_actuate(
        &mut self,
        time: Seconds,
        island: IslandId,
        requested: usize,
        current: usize,
    ) -> usize {
        let rel = self.rel(time);
        self.mark_edges(rel);
        let mut idx = requested;
        for slot in &mut self.slots {
            if !slot.spec.targets(island) || !active(&slot.spec, rel) {
                continue;
            }
            match slot.spec.effect {
                Effect::StuckActuator => idx = current,
                Effect::SlowActuator { period } => {
                    slot.requests += 1;
                    if slot.requests % period.max(1) as u64 != 0 {
                        idx = current;
                    }
                }
                _ => {}
            }
        }
        idx
    }

    fn controller_failed(&mut self, time: Seconds, island: IslandId) -> bool {
        let rel = self.rel(time);
        self.mark_edges(rel);
        self.slots.iter().any(|slot| {
            slot.spec.effect == Effect::ControllerFailure
                && slot.spec.targets(island)
                && active(&slot.spec, rel)
        })
    }

    fn budget_scale(&mut self, time: Seconds) -> f64 {
        let rel = self.rel(time);
        self.mark_edges(rel);
        let mut scale = 1.0;
        for slot in &self.slots {
            if let Effect::BudgetStep { scale: s } = slot.spec.effect {
                if active(&slot.spec, rel) {
                    scale *= s;
                }
            }
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_obs::EventKind;

    fn chip_wide(effect: Effect, start_s: f64, end_s: f64) -> TimedEffect {
        TimedEffect {
            island: None,
            start_s,
            end_s,
            effect,
        }
    }

    #[test]
    fn windows_anchor_on_first_call() {
        // First seam call at t = 2.0 s becomes rel = 0.
        let mut s = InjectionSchedule::new(7).with_effect(chip_wide(
            Effect::BudgetStep { scale: 0.5 },
            0.01,
            0.02,
        ));
        assert_eq!(s.budget_scale(Seconds::new(2.0)), 1.0);
        assert_eq!(s.budget_scale(Seconds::new(2.01)), 0.5);
        assert_eq!(s.budget_scale(Seconds::new(2.02)), 1.0);
    }

    #[test]
    fn stuck_actuator_holds_the_current_point() {
        let mut s = InjectionSchedule::new(7).with_effect(TimedEffect {
            island: Some(IslandId(1)),
            start_s: 0.0,
            end_s: 1.0,
            effect: Effect::StuckActuator,
        });
        let t = Seconds::new(0.5);
        assert_eq!(s.filter_actuate(Seconds::new(0.0), IslandId(1), 7, 3), 3);
        assert_eq!(
            s.filter_actuate(t, IslandId(0), 7, 3),
            7,
            "other island unaffected"
        );
    }

    #[test]
    fn slow_actuator_passes_every_nth_request() {
        let mut s = InjectionSchedule::new(7).with_effect(chip_wide(
            Effect::SlowActuator { period: 3 },
            0.0,
            1.0,
        ));
        let t = Seconds::new(0.1);
        let moved: Vec<usize> = (0..6)
            .map(|_| s.filter_actuate(t, IslandId(0), 9, 2))
            .collect();
        assert_eq!(moved, vec![2, 2, 9, 2, 2, 9]);
    }

    #[test]
    fn dropout_holds_the_last_pre_window_sample() {
        let mut s =
            InjectionSchedule::new(7).with_effect(chip_wide(Effect::SensorDropout, 0.01, 0.02));
        let isl = IslandId(0);
        // Pre-window samples pass through and refresh the held value.
        let (u, p) = s.filter_sense(Seconds::new(0.0), isl, Ratio::new(0.6), Watts::new(10.0));
        assert_eq!((u.value(), p.value()), (0.6, 10.0));
        // In-window samples are replaced by the held one.
        let (u, p) = s.filter_sense(Seconds::new(0.015), isl, Ratio::new(0.9), Watts::new(14.0));
        assert_eq!((u.value(), p.value()), (0.6, 10.0));
        // Post-window samples pass through again.
        let (u, _) = s.filter_sense(Seconds::new(0.025), isl, Ratio::new(0.8), Watts::new(12.0));
        assert_eq!(u.value(), 0.8);
    }

    #[test]
    fn noise_is_deterministic_per_child_stream() {
        let run = |seed: u64| {
            let mut s = InjectionSchedule::new(seed).with_effect(chip_wide(
                Effect::SensorNoise { sigma: 0.05 },
                0.0,
                1.0,
            ));
            (0..8)
                .map(|k| {
                    s.filter_sense(
                        Seconds::new(k as f64 * 0.001),
                        IslandId(0),
                        Ratio::new(0.5),
                        Watts::new(10.0),
                    )
                    .0
                    .value()
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(7), run(7), "same seed, same noise");
        assert_ne!(run(7), run(8), "different seed, different noise");
    }

    #[test]
    fn edges_emit_one_injection_event_each() {
        let recorder = Recorder::enabled(64);
        let mut s = InjectionSchedule::new(7).with_effect(chip_wide(
            Effect::BudgetStep { scale: 0.75 },
            0.01,
            0.02,
        ));
        s.set_recorder(recorder.clone());
        for k in 0..30 {
            s.budget_scale(Seconds::new(k as f64 * 0.001));
        }
        let events = recorder.drain();
        let edges: Vec<_> = events
            .iter()
            .filter(|e| e.kind() == EventKind::Injection)
            .collect();
        assert_eq!(edges.len(), 2, "one on edge, one off edge");
        match (&edges[0].payload, &edges[1].payload) {
            (
                EventPayload::Injection {
                    active: a0,
                    value: v0,
                    ..
                },
                EventPayload::Injection { active: a1, .. },
            ) => {
                assert!(*a0 && !*a1);
                assert_eq!(*v0, 0.75);
            }
            other => panic!("unexpected payloads: {other:?}"),
        }
    }

    #[test]
    fn controller_failure_is_island_scoped() {
        let mut s = InjectionSchedule::new(7).with_effect(TimedEffect {
            island: Some(IslandId(2)),
            start_s: 0.0,
            end_s: 0.5,
            effect: Effect::ControllerFailure,
        });
        let t = Seconds::new(0.1);
        assert!(s.controller_failed(t, IslandId(2)));
        assert!(!s.controller_failed(t, IslandId(0)));
        assert!(!s.controller_failed(Seconds::new(0.6), IslandId(2)));
    }
}
