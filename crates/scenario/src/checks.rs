//! Coarse behavioral assertions evaluated against a scenario's
//! [`cpm_core::Outcome`].
//!
//! Goldens catch *any* trajectory change; these checks state what the
//! trajectory is supposed to *mean* — the controller still tracks after
//! the fault clears, the budget transient actually moved the operating
//! point, the stuck knob really froze. A golden update that silently
//! breaks one of these is a behavioral regression even if the new digest
//! is committed, so every scenario carries both.
//!
//! All thresholds are deliberately loose (whole percent points): they
//! gate physics-level sanity, not sample-level reproduction — the digest
//! already does that.

use cpm_core::Outcome;
use cpm_obs::{Event, EventKind, EventPayload};

/// One evaluated assertion.
#[derive(Debug, Clone)]
pub struct ScenarioCheck {
    /// Stable check name (reported in `BENCH_scenarios.json`).
    pub name: &'static str,
    /// Whether the assertion held.
    pub passed: bool,
    /// Measured values backing the verdict.
    pub detail: String,
}

impl ScenarioCheck {
    fn new(name: &'static str, passed: bool, detail: String) -> Self {
        Self {
            name,
            passed,
            detail,
        }
    }
}

/// Mean chip power over the last `tail` GPM rounds is within `tol_pct`
/// percent points of the budget — the loop re-converges by the end of
/// the story.
pub fn tracks_at_end(outcome: &Outcome, tail: usize, tol_pct: f64) -> ScenarioCheck {
    let series = outcome.chip_power_percent_gpm();
    let samples = series.samples();
    let tail = tail.min(samples.len()).max(1);
    let mean = samples[samples.len() - tail..]
        .iter()
        .map(|s| s.value)
        .sum::<f64>()
        / tail as f64;
    let budget = outcome.budget_percent();
    let err = (mean - budget).abs();
    ScenarioCheck::new(
        "tracks-at-end",
        err <= tol_pct,
        format!(
            "tail-{tail} mean {:.3}% vs budget {:.3}% (|err| {:.3} <= {:.3})",
            mean, budget, err, tol_pct
        ),
    )
}

/// No GPM-resolution sample overshoots the budget by more than
/// `max_over_frac` (fraction of budget) at any point in the run.
pub fn overshoot_bounded(outcome: &Outcome, max_over_frac: f64) -> ScenarioCheck {
    let budget = outcome.budget_percent();
    let worst = outcome
        .chip_power_percent_gpm()
        .max_overshoot_vs(budget)
        .unwrap_or(0.0);
    ScenarioCheck::new(
        "overshoot-bounded",
        worst <= max_over_frac,
        format!(
            "max overshoot {:.4} of budget (limit {:.4})",
            worst, max_over_frac
        ),
    )
}

/// Mean chip power over GPM rounds `[start_round, end_round)` lands
/// within `tol_pct` percent points of `target_pct` — used to assert a
/// budget transient actually moved the chip to the scaled level.
pub fn window_mean_near(
    outcome: &Outcome,
    start_round: usize,
    end_round: usize,
    target_pct: f64,
    tol_pct: f64,
    name: &'static str,
) -> ScenarioCheck {
    let series = outcome.chip_power_percent_gpm();
    let samples = series.samples();
    let lo = start_round.min(samples.len());
    let hi = end_round.min(samples.len());
    if lo >= hi {
        return ScenarioCheck::new(name, false, format!("window [{lo}, {hi}) is empty"));
    }
    let mean = samples[lo..hi].iter().map(|s| s.value).sum::<f64>() / (hi - lo) as f64;
    let err = (mean - target_pct).abs();
    ScenarioCheck::new(
        name,
        err <= tol_pct,
        format!(
            "rounds {start_round}..{end_round} mean {:.3}% vs target {:.3}% \
             (|err| {:.3} <= {:.3})",
            mean, target_pct, err, tol_pct
        ),
    )
}

/// Mean chip power over GPM rounds `[start_round, end_round)` stays at
/// or below `limit_pct` — for policies (thermal-aware) that sit *under*
/// the budget by design, where tracking-to-target is the wrong claim.
pub fn window_mean_below(
    outcome: &Outcome,
    start_round: usize,
    end_round: usize,
    limit_pct: f64,
    name: &'static str,
) -> ScenarioCheck {
    let series = outcome.chip_power_percent_gpm();
    let samples = series.samples();
    let lo = start_round.min(samples.len());
    let hi = end_round.min(samples.len());
    if lo >= hi {
        return ScenarioCheck::new(name, false, format!("window [{lo}, {hi}) is empty"));
    }
    let mean = samples[lo..hi].iter().map(|s| s.value).sum::<f64>() / (hi - lo) as f64;
    ScenarioCheck::new(
        name,
        mean <= limit_pct,
        format!(
            "rounds {start_round}..{end_round} mean {:.3}% <= limit {:.3}%",
            mean, limit_pct
        ),
    )
}

/// Mean chip power inside the dip window sits at least `min_drop_pct`
/// percent points below the reference window's mean — the transient
/// visibly moved the operating point.
pub fn dip_reduces_power(
    outcome: &Outcome,
    dip_start: usize,
    dip_end: usize,
    ref_start: usize,
    ref_end: usize,
    min_drop_pct: f64,
) -> ScenarioCheck {
    let series = outcome.chip_power_percent_gpm();
    let samples = series.samples();
    let mean_of = |lo: usize, hi: usize| -> Option<f64> {
        let lo = lo.min(samples.len());
        let hi = hi.min(samples.len());
        (lo < hi).then(|| samples[lo..hi].iter().map(|s| s.value).sum::<f64>() / (hi - lo) as f64)
    };
    match (mean_of(dip_start, dip_end), mean_of(ref_start, ref_end)) {
        (Some(dip), Some(reference)) => {
            let drop = reference - dip;
            ScenarioCheck::new(
                "dip-reduces-power",
                drop >= min_drop_pct,
                format!(
                    "dip mean {:.3}% vs reference mean {:.3}% (drop {:.3} >= {:.3})",
                    dip, reference, drop, min_drop_pct
                ),
            )
        }
        _ => ScenarioCheck::new("dip-reduces-power", false, "empty window".to_string()),
    }
}

/// The island's DVFS knob never moves between GPM rounds
/// `[start_round, end_round)` — a stuck actuator or dead controller
/// really freezes the operating point.
pub fn knob_frozen(
    outcome: &Outcome,
    island: usize,
    start_round: usize,
    end_round: usize,
) -> ScenarioCheck {
    let per_gpm = outcome.pics_per_gpm;
    let series = &outcome.island_dvfs_index[island];
    let samples = series.samples();
    // Skip the window's first PIC interval: the fault lands mid-round
    // relative to actuation, so the knob settles on entry.
    let lo = (start_round * per_gpm + 1).min(samples.len());
    let hi = (end_round * per_gpm).min(samples.len());
    if lo >= hi {
        return ScenarioCheck::new(
            "knob-frozen",
            false,
            format!("window [{lo}, {hi}) is empty"),
        );
    }
    let first = samples[lo].value;
    let moves = samples[lo..hi].iter().filter(|s| s.value != first).count();
    ScenarioCheck::new(
        "knob-frozen",
        moves == 0,
        format!(
            "island {island} rounds {start_round}..{end_round}: {moves} moves \
             off index {:.0}",
            first
        ),
    )
}

/// The event stream carries exactly `expected` injection-edge events
/// with the given label — the schedule actually fired (and un-fired).
pub fn injection_edges(events: &[Event], label: &str, expected: usize) -> ScenarioCheck {
    let n = events
        .iter()
        .filter(|e| match &e.payload {
            EventPayload::Injection { label: l, .. } => *l == label,
            _ => false,
        })
        .count();
    ScenarioCheck::new(
        "injection-edges",
        n == expected,
        format!("{n} {label:?} edges recorded (expected {expected})"),
    )
}

/// The stream contains at least one event of the kind — guards against a
/// wiring change silently severing a recorder path.
pub fn has_kind(events: &[Event], kind: EventKind, name: &'static str) -> ScenarioCheck {
    let n = events.iter().filter(|e| e.kind() == kind).count();
    ScenarioCheck::new(name, n > 0, format!("{n} {} events", kind.as_str()))
}

/// Number of SLO alarms from `monitor` in the stream (all monitors when
/// `None`).
pub fn alarm_count(events: &[Event], monitor: Option<&str>) -> usize {
    events
        .iter()
        .filter(|e| match &e.payload {
            EventPayload::Alarm { monitor: m, .. } => monitor.map_or(true, |want| *m == want),
            _ => false,
        })
        .count()
}

/// The watchdog stayed quiet: no alarm events at all.
pub fn no_alarms(events: &[Event]) -> ScenarioCheck {
    let n = alarm_count(events, None);
    ScenarioCheck::new("no-alarms", n == 0, format!("{n} alarm events"))
}

/// The named monitor tripped at least `min` times — a fault the watchdog
/// is designed to see must actually raise its alarm.
pub fn alarms_at_least(events: &[Event], monitor: &'static str, min: usize) -> ScenarioCheck {
    let n = alarm_count(events, Some(monitor));
    ScenarioCheck::new(
        "alarms-at-least",
        n >= min,
        format!("{n} {monitor} alarms (expected >= {min})"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_edge_counting_matches_label() {
        let rec = cpm_obs::Recorder::enabled(16);
        rec.record(EventPayload::Injection {
            label: "budget-step",
            island: u32::MAX,
            active: true,
            value: 0.75,
        });
        rec.record(EventPayload::Injection {
            label: "budget-step",
            island: u32::MAX,
            active: false,
            value: 0.75,
        });
        let events = rec.drain();
        assert!(injection_edges(&events, "budget-step", 2).passed);
        assert!(!injection_edges(&events, "sensor-noise", 2).passed);
        assert!(has_kind(&events, EventKind::Injection, "has-injection").passed);
        assert!(!has_kind(&events, EventKind::PicDecision, "has-pic").passed);
    }

    #[test]
    fn alarm_checks_count_by_monitor() {
        let rec = cpm_obs::Recorder::enabled(16);
        rec.record(EventPayload::Alarm {
            monitor: "tracking-error",
            island: 1,
            round: 7,
            value: 0.4,
            threshold: 0.25,
        });
        rec.record(EventPayload::Alarm {
            monitor: "stale-sensor",
            island: 1,
            round: 8,
            value: 6.0,
            threshold: 6.0,
        });
        let events = rec.drain();
        assert_eq!(alarm_count(&events, None), 2);
        assert_eq!(alarm_count(&events, Some("stale-sensor")), 1);
        assert!(!no_alarms(&events).passed);
        assert!(alarms_at_least(&events, "tracking-error", 1).passed);
        assert!(!alarms_at_least(&events, "actuator-churn", 1).passed);
        assert!(no_alarms(&[]).passed);
    }
}
