//! Deterministic fault-injection scenarios over the CPM control stack.
//!
//! The simulator's determinism story (seeded RNG, simulated-time clock,
//! worker-count-independent reductions) makes a stronger kind of CI gate
//! possible: run a *named fault story* against the GPM/PIC loop, render
//! its flight-recorder trajectory to JSONL, and pin the whole stream to
//! a committed fingerprint. Any behavioral drift — an intended control
//! change or an accidental one — moves the digest and fails the gate.
//!
//! Three layers:
//!
//! * [`effect`] — the fault taxonomy ([`Effect`]) and the
//!   [`InjectionSchedule`] that implements [`cpm_sim::InjectionSeam`]:
//!   transducer noise/dropout, stuck/slow DVFS actuators, chip-budget
//!   transients, and per-island controller failure with GPM failover,
//! * [`catalogue`] — the named scenarios (`<effect>@<scheme>`) with
//!   their configurations, seeds, and behavioral checks, plus the
//!   [`run_scenario`] runner,
//! * [`golden`] — the committed trajectory fingerprint ([`GoldenDoc`]:
//!   whole-stream digest + per-block digests + readable anchors) and the
//!   differential-replay report that separates nondeterminism from
//!   behavioral change when a gate fails.
//!
//! The tier-1 tests (root `tests/scenarios.rs`) replay every catalogue
//! entry against `goldens/` and assert byte-identical trajectories
//! across repeated runs and worker counts; `experiments scenarios`
//! drives the same catalogue from the bench CLI and `--update-goldens`
//! regenerates the committed fingerprints when a behavioral change is
//! intended.

pub mod catalogue;
pub mod checks;
pub mod effect;
pub mod golden;

pub use catalogue::{find, run_scenario, Scenario, ScenarioRun, CATALOGUE, SCENARIO_ROUNDS};
pub use checks::ScenarioCheck;
pub use effect::{Effect, InjectionSchedule, TimedEffect};
pub use golden::{
    differential_report, first_differing_line, Divergence, GoldenBlock, GoldenDoc, BLOCK_EVENTS,
    GOLDEN_HEADER,
};
