//! The named scenario catalogue and the deterministic runner.
//!
//! Each [`Scenario`] names one fault story — a chip/policy configuration
//! plus an [`InjectionSchedule`] — and carries its own behavioral
//! checks. Names follow `<effect>@<scheme>` (`stuck-knob@maxbips`,
//! `budget-step@thermal`); the scheme suffix makes it obvious which
//! management stack absorbed the fault.
//!
//! [`run_scenario`] executes one scenario with a flight recorder
//! attached, runs the SLO watchdog over the drained trajectory (the
//! resulting `Alarm` events are appended to the stream, so goldens pin
//! them too), and returns the full rendered trajectory, its digest, the
//! block-level [`GoldenDoc`] fingerprint, the evaluated checks, and the
//! health/Chrome artifacts. Running the same scenario twice yields
//! byte-identical JSONL — that property is itself gated by the tier-1
//! tests.

use cpm_core::coordinator::PolicyKind;
use cpm_core::{ExperimentConfig, ManagementScheme, Outcome, ThermalConstraints};
use cpm_obs::{
    append_alarm_events, digest_str, events_to_chrome, events_to_jsonl, Event, EventKind,
    HealthReport, Recorder, SloPolicy,
};
use cpm_units::IslandId;
use cpm_workloads::Mix;

use crate::checks::{self, ScenarioCheck};
use crate::effect::{Effect, InjectionSchedule, TimedEffect};
use crate::golden::GoldenDoc;

/// GPM rounds every scenario runs for (120 ms of simulated time at the
/// paper's 5 ms global interval).
pub const SCENARIO_ROUNDS: usize = 24;

/// Flight-recorder capacity for scenario runs: comfortably above the
/// ~2.5k events a 24-round, 8-island story emits, so the ring never
/// wraps and the trajectory is complete.
pub const RECORDER_CAPACITY: usize = 1 << 16;

/// Converts a GPM round ordinal to seconds past measurement start.
fn round_s(round: usize) -> f64 {
    round as f64 * 0.005
}

/// One catalogue entry. `build` and `checks` are plain function
/// pointers so the catalogue is a `'static` table the bench runner can
/// fan out over.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Stable name, `<effect>@<scheme>`.
    pub name: &'static str,
    /// One-line description for reports and docs.
    pub description: &'static str,
    /// Builds the experiment configuration and injection schedule.
    pub build: fn() -> (ExperimentConfig, InjectionSchedule),
    /// Evaluates the scenario's behavioral assertions.
    pub checks: fn(&Outcome, &[Event]) -> Vec<ScenarioCheck>,
}

/// A completed scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Scenario name.
    pub name: &'static str,
    /// Number of events in the trajectory.
    pub events: usize,
    /// The rendered JSONL trajectory (newline-terminated lines).
    pub jsonl: String,
    /// Whole-trajectory digest (`fnv1a64:%016x`).
    pub digest: String,
    /// Block-level fingerprint of the trajectory.
    pub golden: GoldenDoc,
    /// Evaluated behavioral assertions.
    pub checks: Vec<ScenarioCheck>,
    /// Budget as percent of the reference (context for reports).
    pub budget_percent: f64,
    /// Mean chip power over the run, percent of the reference.
    pub mean_power_percent: f64,
    /// SLO watchdog alarms raised over the trajectory.
    pub alarms: usize,
    /// One-page health report (`cpm-health-v1` JSON).
    pub health_json: String,
    /// Chrome `trace_event` rendering of the trajectory (Perfetto-ready).
    pub chrome_json: String,
}

impl ScenarioRun {
    /// True when every behavioral check passed.
    pub fn checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// Runs one scenario deterministically.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioRun, String> {
    let (cfg, mut schedule) = (scenario.build)();
    let mut coordinator =
        cpm_core::Coordinator::new(cfg).map_err(|e| format!("{}: {e}", scenario.name))?;
    let recorder = Recorder::enabled(RECORDER_CAPACITY);
    coordinator.set_recorder(recorder.clone());
    schedule.set_recorder(recorder.clone());
    coordinator.set_injection(Box::new(schedule));
    let outcome = coordinator.run_for_gpm_intervals(SCENARIO_ROUNDS);
    let mut events = recorder.drain();
    if recorder.dropped() > 0 {
        return Err(format!(
            "{}: recorder dropped {} events — raise RECORDER_CAPACITY",
            scenario.name,
            recorder.dropped()
        ));
    }
    // SLO watchdog pass: the alarms are appended to the stream itself,
    // so goldens pin them and behavioral checks can consume them.
    let policy = SloPolicy::default();
    let slo_alarms = cpm_obs::slo::scan(&events, policy);
    append_alarm_events(&mut events, &slo_alarms);
    let jsonl = events_to_jsonl(&events);
    let digest = digest_str(&jsonl);
    let golden = GoldenDoc::from_jsonl(scenario.name, &jsonl);
    let checks = (scenario.checks)(&outcome, &events);
    let health = HealthReport::new(scenario.name, &events, &slo_alarms, &policy);
    Ok(ScenarioRun {
        name: scenario.name,
        events: events.len(),
        chrome_json: events_to_chrome(&events),
        jsonl,
        digest,
        golden,
        checks,
        budget_percent: outcome.budget_percent(),
        mean_power_percent: outcome.chip_power_percent_gpm().mean().unwrap_or(0.0),
        alarms: slo_alarms.len(),
        health_json: health.to_json(),
    })
}

/// Looks a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    CATALOGUE.iter().find(|s| s.name == name)
}

// ---------------------------------------------------------------------
// Schedule builders
// ---------------------------------------------------------------------

fn pid_default() -> ExperimentConfig {
    ExperimentConfig::paper_default()
}

fn on(island: Option<usize>, start_round: usize, end_round: usize, effect: Effect) -> TimedEffect {
    TimedEffect {
        island: island.map(IslandId),
        start_s: round_s(start_round),
        end_s: round_s(end_round),
        effect,
    }
}

fn build_baseline() -> (ExperimentConfig, InjectionSchedule) {
    (pid_default(), InjectionSchedule::new(0x5EED_0000))
}

fn build_sensor_noise() -> (ExperimentConfig, InjectionSchedule) {
    let schedule = InjectionSchedule::new(0x5EED_0001).with_effect(on(
        None,
        6,
        18,
        Effect::SensorNoise { sigma: 0.08 },
    ));
    (pid_default(), schedule)
}

fn build_sensor_dropout() -> (ExperimentConfig, InjectionSchedule) {
    let schedule =
        InjectionSchedule::new(0x5EED_0002).with_effect(on(Some(1), 6, 14, Effect::SensorDropout));
    (pid_default(), schedule)
}

fn build_stuck_knob() -> (ExperimentConfig, InjectionSchedule) {
    let schedule =
        InjectionSchedule::new(0x5EED_0003).with_effect(on(Some(2), 6, 16, Effect::StuckActuator));
    (pid_default(), schedule)
}

fn build_stuck_knob_maxbips() -> (ExperimentConfig, InjectionSchedule) {
    let cfg = pid_default().with_scheme(ManagementScheme::MaxBips);
    let schedule =
        InjectionSchedule::new(0x5EED_0004).with_effect(on(Some(2), 6, 16, Effect::StuckActuator));
    (cfg, schedule)
}

fn build_slow_knob() -> (ExperimentConfig, InjectionSchedule) {
    let schedule = InjectionSchedule::new(0x5EED_0005).with_effect(on(
        Some(0),
        4,
        20,
        Effect::SlowActuator { period: 4 },
    ));
    (pid_default(), schedule)
}

fn build_budget_step() -> (ExperimentConfig, InjectionSchedule) {
    let schedule = InjectionSchedule::new(0x5EED_0006).with_effect(on(
        None,
        8,
        16,
        Effect::BudgetStep { scale: 0.75 },
    ));
    (pid_default(), schedule)
}

fn build_budget_step_thermal() -> (ExperimentConfig, InjectionSchedule) {
    let cfg = pid_default()
        .with_mix(Mix::Thermal, 8, 1)
        .with_scheme(ManagementScheme::Cpm(PolicyKind::Thermal(
            ThermalConstraints::paper_eight_island(),
        )));
    let schedule = InjectionSchedule::new(0x5EED_0007).with_effect(on(
        None,
        8,
        16,
        Effect::BudgetStep { scale: 0.85 },
    ));
    (cfg, schedule)
}

fn build_controller_failure() -> (ExperimentConfig, InjectionSchedule) {
    let schedule = InjectionSchedule::new(0x5EED_0008).with_effect(on(
        Some(3),
        6,
        18,
        Effect::ControllerFailure,
    ));
    (pid_default(), schedule)
}

// ---------------------------------------------------------------------
// Check suites
// ---------------------------------------------------------------------

fn checks_baseline(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    vec![
        checks::tracks_at_end(o, 4, 3.0),
        checks::overshoot_bounded(o, 0.15),
        checks::has_kind(e, EventKind::PicDecision, "has-pic-decisions"),
        checks::has_kind(e, EventKind::GpmAllocation, "has-gpm-allocations"),
        checks::has_kind(e, EventKind::GpmRound, "has-gpm-rounds"),
        checks::has_kind(e, EventKind::Actuation, "has-actuations"),
        checks::no_alarms(e),
    ]
}

fn checks_sensor_noise(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    vec![
        checks::tracks_at_end(o, 4, 4.0),
        checks::overshoot_bounded(o, 0.25),
        checks::injection_edges(e, "sensor-noise", 2),
    ]
}

fn checks_sensor_dropout(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    vec![
        checks::tracks_at_end(o, 4, 4.0),
        checks::injection_edges(e, "sensor-dropout", 2),
        // The frozen transducer repeats bit-identical readings: the
        // watchdog's stale-sensor monitor must see it.
        checks::alarms_at_least(e, "stale-sensor", 1),
    ]
}

fn checks_stuck_knob(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    vec![
        checks::knob_frozen(o, 2, 6, 16),
        checks::tracks_at_end(o, 4, 4.0),
        checks::injection_edges(e, "stuck-actuator", 2),
    ]
}

fn checks_stuck_knob_maxbips(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    vec![
        checks::knob_frozen(o, 2, 6, 16),
        checks::overshoot_bounded(o, 0.25),
        checks::injection_edges(e, "stuck-actuator", 2),
        // Open-loop MaxBIPS cannot compensate the stuck island, so the
        // chip blows through the budget and the watchdog must say so.
        checks::alarms_at_least(e, "budget-overshoot", 1),
    ]
}

fn checks_slow_knob(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    vec![
        checks::tracks_at_end(o, 4, 5.0),
        checks::injection_edges(e, "slow-actuator", 2),
        // The lagging knob overcorrects in multi-step swings — exactly
        // the flapping signature actuator-churn exists to catch.
        checks::alarms_at_least(e, "actuator-churn", 1),
    ]
}

fn checks_budget_step(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    let stepped = o.budget_percent() * 0.75;
    vec![
        // Rounds 10..16: two rounds into the dip, the loop should sit at
        // the scaled budget.
        checks::window_mean_near(o, 10, 16, stepped, 4.0, "dip-tracks-scaled-budget"),
        checks::tracks_at_end(o, 4, 4.0),
        checks::injection_edges(e, "budget-step", 2),
    ]
}

fn checks_budget_step_thermal(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    // The thermal-aware policy keeps chip power *below* the budget by
    // design (island caps shave headroom), so the claims are
    // stays-under and moves-down, not tracks-to-target.
    let stepped = o.budget_percent() * 0.85;
    vec![
        checks::window_mean_below(o, 10, 16, stepped + 2.0, "dip-respects-scaled-budget"),
        checks::window_mean_below(o, 20, 24, o.budget_percent() + 2.0, "end-respects-budget"),
        checks::dip_reduces_power(o, 10, 16, 20, 24, 2.0),
        checks::injection_edges(e, "budget-step", 2),
        // Thermal caps pin hot islands below their shares through the
        // dip — sustained tracking error the watchdog must flag.
        checks::alarms_at_least(e, "tracking-error", 1),
    ]
}

fn checks_controller_failure(o: &Outcome, e: &[Event]) -> Vec<ScenarioCheck> {
    vec![
        // The dead island's knob cannot move while its controller is out.
        checks::knob_frozen(o, 3, 6, 18),
        checks::tracks_at_end(o, 4, 5.0),
        checks::injection_edges(e, "controller-failure", 2),
        // The dead PIC reports nothing for whole rounds: the watchdog's
        // silent-island detection must raise stale-sensor.
        checks::alarms_at_least(e, "stale-sensor", 1),
    ]
}

/// The committed scenario catalogue. Order is the execution and report
/// order; names are stable identifiers referenced by goldens, tests,
/// and CI.
pub const CATALOGUE: &[Scenario] = &[
    Scenario {
        name: "baseline@pid",
        description: "no faults: the paper-default CPM story the others perturb",
        build: build_baseline,
        checks: checks_baseline,
    },
    Scenario {
        name: "sensor-noise@pid",
        description: "sigma=0.08 Gaussian noise on every island's utilization sense, rounds 6-18",
        build: build_sensor_noise,
        checks: checks_sensor_noise,
    },
    Scenario {
        name: "sensor-dropout@pid",
        description: "island 1's transducer freezes at its last sample, rounds 6-14",
        build: build_sensor_dropout,
        checks: checks_sensor_dropout,
    },
    Scenario {
        name: "stuck-knob@pid",
        description: "island 2's DVFS actuator ignores moves, rounds 6-16",
        build: build_stuck_knob,
        checks: checks_stuck_knob,
    },
    Scenario {
        name: "stuck-knob@maxbips",
        description: "same stuck actuator under the open-loop MaxBIPS baseline",
        build: build_stuck_knob_maxbips,
        checks: checks_stuck_knob_maxbips,
    },
    Scenario {
        name: "slow-knob@pid",
        description: "island 0's actuator honors one move in four, rounds 4-20",
        build: build_slow_knob,
        checks: checks_slow_knob,
    },
    Scenario {
        name: "budget-step@pid",
        description: "chip budget dips to 75% for rounds 8-16, then recovers",
        build: build_budget_step,
        checks: checks_budget_step,
    },
    Scenario {
        name: "budget-step@thermal",
        description: "85% budget dip under the thermal-aware policy on the 8-island SPEC roster",
        build: build_budget_step_thermal,
        checks: checks_budget_step_thermal,
    },
    Scenario {
        name: "controller-failure@pid",
        description: "island 3's PIC dies for rounds 6-18; the GPM fails over around its draw",
        build: build_controller_failure,
        checks: checks_controller_failure,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for s in CATALOGUE {
            assert!(seen.insert(s.name), "duplicate scenario name {}", s.name);
            assert!(
                s.name.contains('@'),
                "scenario {} must be <effect>@<scheme>",
                s.name
            );
            assert!(!s.description.is_empty());
        }
        assert!(CATALOGUE.len() >= 8, "catalogue must stay at 8+ scenarios");
    }

    #[test]
    fn find_resolves_names() {
        assert!(find("budget-step@thermal").is_some());
        assert!(find("no-such@scenario").is_none());
    }

    #[test]
    fn every_build_constructs_a_valid_coordinator() {
        for s in CATALOGUE {
            let (cfg, schedule) = (s.build)();
            assert!(
                cpm_core::Coordinator::new(cfg).is_ok(),
                "scenario {} has an invalid config",
                s.name
            );
            // The baseline is the only effect-free story.
            if s.name != "baseline@pid" {
                assert!(
                    !schedule.is_empty(),
                    "scenario {} schedules no effects",
                    s.name
                );
            }
        }
    }
}
