//! Golden trajectories: committed fingerprints of a scenario's event
//! stream, and readable reports when a run diverges from one.
//!
//! A [`GoldenDoc`] pins a scenario to its rendered JSONL trajectory with
//! three levels of detail:
//!
//! * one whole-stream FNV-1a 64 digest (the pass/fail gate),
//! * per-block digests over [`BLOCK_EVENTS`]-line chunks, so a diverging
//!   run can be localized without committing the full stream,
//! * each block's first JSONL line, a human-readable anchor naming a
//!   concrete event near the divergence.
//!
//! The on-disk form is a line-oriented text file (header + one line per
//! block) that diffs cleanly in review. [`differential_report`] turns a
//! failed gate plus a replay into a report that first rules out
//! nondeterminism (two runs disagreeing with *each other*) and then
//! anchors the behavioral change at the first diverging event.

use cpm_obs::digest_str;

/// Events per golden block. Small enough to localize a divergence to a
/// couple of GPM rounds, large enough that goldens stay a few dozen
/// lines.
pub const BLOCK_EVENTS: usize = 256;

/// Magic first line of every golden file; bump the suffix on format
/// changes.
pub const GOLDEN_HEADER: &str = "cpm-scenario-golden v1";

/// One [`BLOCK_EVENTS`]-line chunk of the trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenBlock {
    /// FNV-1a 64 digest of the chunk's lines (newline-terminated).
    pub digest: String,
    /// The chunk's first JSONL line — the readable anchor.
    pub first_line: String,
}

/// A committed golden trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenDoc {
    /// Scenario name, e.g. `sensor-dropout@pid`.
    pub scenario: String,
    /// Total event (line) count of the trajectory.
    pub events: usize,
    /// Whole-stream digest (`fnv1a64:%016x` of the full JSONL).
    pub digest: String,
    /// Per-block fingerprints in stream order.
    pub blocks: Vec<GoldenBlock>,
}

/// Where a run first left its golden trajectory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first diverging block.
    pub block: usize,
    /// First event index covered by that block.
    pub first_event: usize,
    /// The golden's anchor line for the block (empty when the run has
    /// extra blocks the golden lacks).
    pub expected_first_line: String,
    /// The run's anchor line for the block (empty when the run ended
    /// before this block).
    pub actual_first_line: String,
}

impl GoldenDoc {
    /// Fingerprints a rendered JSONL trajectory.
    pub fn from_jsonl(scenario: &str, jsonl: &str) -> Self {
        let lines: Vec<&str> = jsonl.lines().collect();
        let blocks = lines
            .chunks(BLOCK_EVENTS)
            .map(|chunk| {
                let mut body = String::new();
                for line in chunk {
                    body.push_str(line);
                    body.push('\n');
                }
                GoldenBlock {
                    digest: digest_str(&body),
                    first_line: chunk.first().map_or(String::new(), |l| l.to_string()),
                }
            })
            .collect();
        Self {
            scenario: scenario.to_string(),
            events: lines.len(),
            digest: digest_str(jsonl),
            blocks,
        }
    }

    /// Renders the committed text form.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(GOLDEN_HEADER);
        s.push('\n');
        s.push_str(&format!("scenario: {}\n", self.scenario));
        s.push_str(&format!("events: {}\n", self.events));
        s.push_str(&format!("digest: {}\n", self.digest));
        for (i, b) in self.blocks.iter().enumerate() {
            s.push_str(&format!("block {} {} {}\n", i, b.digest, b.first_line));
        }
        s
    }

    /// Parses the committed text form.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(GOLDEN_HEADER) => {}
            Some(other) => return Err(format!("bad golden header: {other:?}")),
            None => return Err("empty golden file".to_string()),
        }
        let field = |line: Option<&str>, key: &str| -> Result<String, String> {
            let line = line.ok_or_else(|| format!("golden truncated before {key:?}"))?;
            line.strip_prefix(key)
                .map(|v| v.trim().to_string())
                .ok_or_else(|| format!("expected {key:?} line, got {line:?}"))
        };
        let scenario = field(lines.next(), "scenario:")?;
        let events: usize = field(lines.next(), "events:")?
            .parse()
            .map_err(|e| format!("bad events count: {e}"))?;
        let digest = field(lines.next(), "digest:")?;
        let mut blocks = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("block ")
                .ok_or_else(|| format!("expected block line, got {line:?}"))?;
            let (idx, rest) = rest
                .split_once(' ')
                .ok_or_else(|| format!("malformed block line: {line:?}"))?;
            let idx: usize = idx.parse().map_err(|e| format!("bad block index: {e}"))?;
            if idx != blocks.len() {
                return Err(format!(
                    "block {idx} out of order (expected {})",
                    blocks.len()
                ));
            }
            // The first line itself contains spaces, so split only once
            // more: digest, then everything after it verbatim.
            let (digest, first_line) = rest
                .split_once(' ')
                .map(|(d, f)| (d.to_string(), f.to_string()))
                .unwrap_or_else(|| (rest.to_string(), String::new()));
            blocks.push(GoldenBlock { digest, first_line });
        }
        Ok(Self {
            scenario,
            events,
            digest,
            blocks,
        })
    }

    /// True when `other` reproduces this trajectory exactly.
    pub fn matches(&self, other: &GoldenDoc) -> bool {
        self.digest == other.digest && self.events == other.events
    }

    /// Locates the first diverging block against a run's fingerprint.
    /// `None` when the trajectories match.
    pub fn first_divergence(&self, actual: &GoldenDoc) -> Option<Divergence> {
        let blocks = self.blocks.len().max(actual.blocks.len());
        for i in 0..blocks {
            let expected = self.blocks.get(i);
            let got = actual.blocks.get(i);
            let same = match (expected, got) {
                (Some(e), Some(a)) => e.digest == a.digest,
                _ => false,
            };
            if !same {
                return Some(Divergence {
                    block: i,
                    first_event: i * BLOCK_EVENTS,
                    expected_first_line: expected.map_or(String::new(), |b| b.first_line.clone()),
                    actual_first_line: got.map_or(String::new(), |b| b.first_line.clone()),
                });
            }
        }
        if self.matches(actual) {
            None
        } else {
            // Same blocks but different totals can only happen on a
            // corrupt golden; surface it as a divergence at the end.
            Some(Divergence {
                block: blocks,
                first_event: blocks * BLOCK_EVENTS,
                expected_first_line: String::new(),
                actual_first_line: String::new(),
            })
        }
    }
}

/// First index (and both lines) at which two rendered trajectories
/// disagree; `None` when byte-identical.
pub fn first_differing_line(a: &str, b: &str) -> Option<(usize, String, String)> {
    let mut la = a.lines();
    let mut lb = b.lines();
    let mut i = 0;
    loop {
        match (la.next(), lb.next()) {
            (None, None) => return None,
            (x, y) if x == y => i += 1,
            (x, y) => {
                return Some((
                    i,
                    x.unwrap_or("<stream ended>").to_string(),
                    y.unwrap_or("<stream ended>").to_string(),
                ))
            }
        }
    }
}

/// Builds the differential-replay report for a failed golden gate.
///
/// `first_jsonl` is the trajectory that failed the gate; `replay_jsonl`
/// is the same scenario re-run from scratch. Two outcomes:
///
/// * the runs disagree with each other → **nondeterminism** (the gate's
///   own precondition is broken); the report names the first event where
///   the two runs split, and no golden update can fix it;
/// * the runs agree → a **behavioral change** relative to the committed
///   golden; the report anchors it at the first diverging block and
///   points at the `--update-goldens` workflow.
pub fn differential_report(golden: &GoldenDoc, first_jsonl: &str, replay_jsonl: &str) -> String {
    let mut r = String::new();
    r.push_str(&format!("scenario: {}\n", golden.scenario));
    if let Some((idx, a, b)) = first_differing_line(first_jsonl, replay_jsonl) {
        r.push_str("verdict: NONDETERMINISM\n");
        r.push_str(&format!(
            "Two back-to-back runs of the same scenario disagree at event {idx}:\n"
        ));
        r.push_str(&format!("  run 1: {a}\n"));
        r.push_str(&format!("  run 2: {b}\n"));
        r.push_str(
            "The scenario harness requires bit-identical replays; this is a \
             determinism regression (wall-clock, unseeded RNG, or map-order \
             leakage), not a golden staleness issue. Do NOT update the \
             golden — find the nondeterminism.\n",
        );
        return r;
    }
    let actual = GoldenDoc::from_jsonl(&golden.scenario, first_jsonl);
    r.push_str("verdict: BEHAVIORAL-CHANGE\n");
    r.push_str(&format!(
        "Replay is bit-identical to the first run (digest {}), so the run \
         is deterministic but no longer matches the committed golden \
         (digest {}).\n",
        actual.digest, golden.digest
    ));
    match golden.first_divergence(&actual) {
        Some(d) => {
            r.push_str(&format!(
                "First diverging event: #{} (block {}, {} events per block).\n",
                d.first_event, d.block, BLOCK_EVENTS
            ));
            if d.expected_first_line.is_empty() {
                r.push_str("  expected: <golden trajectory ends here>\n");
            } else {
                r.push_str(&format!("  expected: {}\n", d.expected_first_line));
            }
            if d.actual_first_line.is_empty() {
                r.push_str("  actual:   <run trajectory ends here>\n");
            } else {
                r.push_str(&format!("  actual:   {}\n", d.actual_first_line));
            }
        }
        None => r.push_str("First diverging event: not localized (digests differ).\n"),
    }
    r.push_str(&format!(
        "event counts: golden {} vs run {}\n",
        golden.events, actual.events
    ));
    r.push_str(
        "If this change is intended, regenerate and commit the golden with \
         `cargo run --release -p cpm-bench --bin experiments -- scenarios \
         --update-goldens` and explain the behavioral change in the PR \
         description.\n",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jsonl(n: usize) -> String {
        let mut s = String::new();
        for i in 0..n {
            s.push_str(&format!("{{\"seq\": {i}, \"kind\": \"PicDecision\"}}\n"));
        }
        s
    }

    #[test]
    fn render_parse_roundtrip() {
        let doc = GoldenDoc::from_jsonl("budget-step@thermal", &jsonl(600));
        assert_eq!(doc.events, 600);
        assert_eq!(doc.blocks.len(), 3);
        let back = GoldenDoc::parse(&doc.render()).expect("parse");
        assert_eq!(back, doc);
    }

    #[test]
    fn identical_streams_match() {
        let a = GoldenDoc::from_jsonl("s", &jsonl(300));
        let b = GoldenDoc::from_jsonl("s", &jsonl(300));
        assert!(a.matches(&b));
        assert_eq!(a.first_divergence(&b), None);
    }

    #[test]
    fn divergence_is_localized_to_the_first_differing_block() {
        let a = GoldenDoc::from_jsonl("s", &jsonl(600));
        let mut text = jsonl(600);
        // Perturb an event in the second block (index 300).
        text = text.replace("{\"seq\": 300,", "{\"seq\": 300, \"x\": 1,");
        let b = GoldenDoc::from_jsonl("s", &text);
        let d = a.first_divergence(&b).expect("diverges");
        assert_eq!(d.block, 1);
        assert_eq!(d.first_event, 256);
        assert!(d.expected_first_line.contains("\"seq\": 256"));
    }

    #[test]
    fn truncated_stream_diverges_at_the_missing_block() {
        let a = GoldenDoc::from_jsonl("s", &jsonl(600));
        let b = GoldenDoc::from_jsonl("s", &jsonl(256));
        let d = a.first_divergence(&b).expect("diverges");
        // Block 0 matches (full 256 events); block 1 differs.
        assert_eq!(d.block, 1);
        assert!(d.actual_first_line.is_empty());
    }

    #[test]
    fn first_differing_line_reports_index_and_both_lines() {
        let a = "one\ntwo\nthree\n";
        let b = "one\nTWO\nthree\n";
        let (i, la, lb) = first_differing_line(a, b).expect("differs");
        assert_eq!((i, la.as_str(), lb.as_str()), (1, "two", "TWO"));
        assert_eq!(first_differing_line(a, a), None);
    }

    #[test]
    fn nondeterminism_report_names_the_splitting_event() {
        let golden = GoldenDoc::from_jsonl("s", &jsonl(10));
        let r = differential_report(&golden, &jsonl(10), &jsonl(9));
        assert!(r.contains("NONDETERMINISM"));
        assert!(r.contains("event 9"));
        assert!(r.contains("Do NOT update the golden"));
    }

    #[test]
    fn behavioral_report_points_at_update_workflow() {
        let golden = GoldenDoc::from_jsonl("s", &jsonl(10));
        let changed = jsonl(10).replace("\"seq\": 3,", "\"seq\": 3, \"x\": 9,");
        let r = differential_report(&golden, &changed, &changed);
        assert!(r.contains("BEHAVIORAL-CHANGE"));
        assert!(r.contains("--update-goldens"));
        assert!(r.contains("block 0"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(GoldenDoc::parse("").is_err());
        assert!(GoldenDoc::parse("not a golden\n").is_err());
        let doc = GoldenDoc::from_jsonl("s", &jsonl(10)).render();
        let shuffled = doc.replace("block 0", "block 7");
        assert!(GoldenDoc::parse(&shuffled).is_err());
    }
}
