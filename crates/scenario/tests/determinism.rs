//! Crate-level determinism smoke tests: the cheapest scenario replayed
//! back-to-back must be bit-identical. The full catalogue × golden ×
//! worker-count matrix lives in the root `tests/scenarios.rs` gate.

use cpm_scenario::{differential_report, find, run_scenario};

#[test]
fn replaying_a_scenario_is_byte_identical() {
    let scenario = find("sensor-dropout@pid").expect("catalogue entry");
    let a = run_scenario(scenario).expect("first run");
    let b = run_scenario(scenario).expect("second run");
    assert_eq!(
        a.jsonl, b.jsonl,
        "trajectories must replay byte-identically"
    );
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.golden, b.golden);
    assert!(a.events > 0, "trajectory must not be empty");
}

#[test]
fn behavioral_checks_hold_and_injection_edges_are_recorded() {
    let scenario = find("budget-step@pid").expect("catalogue entry");
    let run = run_scenario(scenario).expect("run");
    for check in &run.checks {
        assert!(
            check.passed,
            "check {} failed: {}",
            check.name, check.detail
        );
    }
    assert!(
        run.jsonl.contains("\"kind\": \"Injection\""),
        "trajectory must carry the injection edge events"
    );
}

#[test]
fn a_perturbed_replay_is_reported_as_nondeterminism() {
    let scenario = find("sensor-dropout@pid").expect("catalogue entry");
    let run = run_scenario(scenario).expect("run");
    // Simulate a replay that splits from the first run at one event.
    let perturbed =
        run.jsonl
            .replacen("\"kind\": \"PicDecision\"", "\"kind\": \"PicDecision!\"", 1);
    let report = differential_report(&run.golden, &run.jsonl, &perturbed);
    assert!(report.contains("NONDETERMINISM"));
    assert!(report.contains("PicDecision!"));
}
